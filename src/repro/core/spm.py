"""SPM — static power management.

Uses *static* slack only: the canonical worst-case finish time of the
longest path, ``T_worst``, versus the deadline ``D``.  All processors are
set once, before the application starts, to the lowest level that still
fits the worst case (accounting for the single voltage switch):

.. math:: S_{SPM} = \\mathrm{snap\\_up}\\big(S_{max} \\cdot
          T_{worst} / (D - t_{adj})\\big)

Because SPM ignores runtime behaviour entirely, its energy curves depend
only on the load — the paper points this out when varying α (Figure 6),
where SPM's curve is flat while the dynamic schemes move.
"""

from __future__ import annotations

from typing import Optional

from ..offline.plan import OfflinePlan
from ..power.model import PowerModel
from ..power.overhead import OverheadModel
from ..sim.realization import Realization
from .base import PolicyRun, SpeedPolicy, _FixedRun


class StaticPowerManagement(SpeedPolicy):
    """One statically chosen speed for the whole application."""

    name = "SPM"
    requires_reserve = False

    def start_run(self, plan: OfflinePlan, power: PowerModel,
                  overhead: OverheadModel,
                  realization: Optional[Realization] = None) -> PolicyRun:
        return _FixedRun(self.name, spm_speed(plan, power, overhead))

    def batch_fixed_speed(self, plan: OfflinePlan, power: PowerModel,
                          overhead: OverheadModel) -> float:
        return spm_speed(plan, power, overhead)


def spm_speed(plan: OfflinePlan, power: PowerModel,
              overhead: OverheadModel) -> float:
    """The statically chosen SPM level for a plan.

    Falls back to ``S_max`` (no switch, hence no switch overhead) when
    the slowdown would not fit once the switch time is reserved.
    """
    deadline = plan.deadline
    horizon = deadline - overhead.adjust_time
    if horizon <= 0 or plan.t_worst >= horizon:
        return power.s_max
    raw = plan.t_worst / horizon
    speed = power.snap_up(min(raw, power.s_max))
    return speed
