"""Policy interface shared by all scheduling schemes.

A :class:`SpeedPolicy` is stateless configuration ("the scheme"); calling
:meth:`SpeedPolicy.start_run` yields a :class:`PolicyRun` holding the
per-run state the engine consults:

* ``fixed_speed`` — if not ``None``, the engine runs every task at this
  level and never visits power-management points (NPM, SPM, oracle);
* ``floor(t)`` — for dynamic schemes, the speculative speed floor at
  time ``t``; the engine executes each task at
  ``snap_up(max(floor(t), S_greedy))`` where ``S_greedy`` is the greedy
  slack-sharing guarantee speed from the offline plan (Section 4: "we
  choose the maximum speed between S_spec and S_GSS");
* ``on_or_fired`` — hook invoked when an OR node fires, used by the
  adaptive scheme to re-speculate.

Dynamic schemes set ``requires_reserve`` so the experiment harness knows
to hand them the overhead-inflated offline plan.
"""

from __future__ import annotations

import abc
from typing import Optional

from ..offline.plan import OfflinePlan
from ..power.model import PowerModel
from ..power.overhead import OverheadModel
from ..sim.realization import Realization


class PolicyRun(abc.ABC):
    """Per-run scheme state consumed by :func:`repro.sim.engine.simulate`."""

    name: str = "abstract"
    #: run everything at this level; ``None`` enables dynamic speed setting
    fixed_speed: Optional[float] = None
    #: when not ``None``, ``floor(t)`` is guaranteed to return exactly
    #: this value until the next ``on_or_fired`` (which may update it) —
    #: the compiled kernel then skips the per-task ``floor`` call.
    #: Schemes with genuinely time-varying floors (SS²) leave it ``None``.
    floor_const: Optional[float] = 0.0
    #: when not ``None``, a ``(f_lo, f_hi, theta)`` triple declaring that
    #: ``floor(t)`` is exactly ``f_lo if t < theta else f_hi`` for the
    #: whole run (SS²); lets the compiled engine vectorize the floor
    floor_step: Optional[tuple] = None
    #: when not ``None``, declares that ``on_or_fired`` re-speculates the
    #: constant floor as ``speculative_speed(stats.<or_respec>, D - t)``
    #: from the fired branch's remaining-time statistics ("average" for
    #: AS, "worst" for PS); lets the compiled engine vectorize OR firings
    or_respec: Optional[str] = None
    #: explicit declaration that *no* attribute of the run object is
    #: mutated during a simulation (per-run configuration set once in
    #: ``__init__`` is fine) — the compiled evaluation path then reuses
    #: one run object for every run of a batch instead of calling
    #: ``start_run`` per run.  Defaults to ``False``: a scheme must opt
    #: in, never be *inferred* stateless from which hooks it overrides
    stateless: bool = False

    def floor(self, t: float) -> float:
        """Speculative speed floor at time ``t`` (0 = pure greedy)."""
        return 0.0

    def on_or_fired(self, or_name: str, target_sid: int, t: float) -> None:
        """Called when an OR node fires and selects a path."""


class SpeedPolicy(abc.ABC):
    """A scheduling scheme; produces one :class:`PolicyRun` per run."""

    #: scheme label used in reports and figures
    name: str = "abstract"
    #: True if the scheme changes speeds at runtime and therefore needs
    #: the per-task overhead reserve built into its offline plan
    requires_reserve: bool = True
    #: True if ``start_run`` must be handed the realization (the
    #: clairvoyant oracle); the compiled evaluation path materializes
    #: per-run :class:`Realization` dicts only for such schemes
    needs_realization: bool = False

    @abc.abstractmethod
    def start_run(self, plan: OfflinePlan, power: PowerModel,
                  overhead: OverheadModel,
                  realization: Optional[Realization] = None) -> PolicyRun:
        """Create the per-run state for one simulation."""

    def batch_fixed_speed(self, plan: OfflinePlan, power: PowerModel,
                          overhead: OverheadModel) -> Optional[float]:
        """The scheme's single speed when it is the same for every run.

        Fixed-speed schemes whose level depends only on the plan (NPM,
        SPM — not the per-realization oracle) return it here, which lets
        the compiled engine evaluate a whole realization batch with the
        vectorized fast path.  ``None`` means "no batch-constant speed";
        the evaluation falls back to per-run ``start_run``.
        """
        del plan, power, overhead
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


class _FixedRun(PolicyRun):
    """Trivial run state for fixed-speed schemes."""

    stateless = True  # the speed is set once and never touched again

    def __init__(self, name: str, speed: float):
        self.name = name
        self.fixed_speed = speed


def speculative_speed(work: float, horizon: float,
                      power: PowerModel) -> float:
    """``S_max * work / horizon`` snapped up to a level and clamped.

    ``work`` is expected remaining execution time at maximum speed;
    ``horizon`` the wall-clock time available for it.
    """
    if horizon <= 0:
        return power.s_max
    raw = work / horizon
    return power.snap_up(min(raw, power.s_max))
