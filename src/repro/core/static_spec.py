"""Static speculative schemes SS¹ and SS² (Section 4.1).

Both decide a speculative speed *before the application starts* from its
statistical profile: the expected (probability-weighted over paths)
average-case finish time ``T_avg``:

.. math:: S_{spec} = S_{max} \\cdot T_{avg} / D

* **SS¹** — rounds ``S_spec`` up to the next available level and uses it
  as a constant floor for the whole run.
* **SS²** — brackets ``S_spec`` between adjacent levels
  ``f_lo ≤ S_spec ≤ f_hi`` and runs the low level until the switch point

  .. math:: \\theta = D \\, (f_{hi} - S_{spec}) / (f_{hi} - f_{lo})

  then the high level, so the *average* amount of work exactly fits the
  deadline with at most one extra speed change.

Timeliness is preserved because the executed speed of each task is
``max(S_spec(t), S_GSS)`` — never below the greedy guarantee (the paper's
argument for why the SS schemes inherit Theorem 1).
"""

from __future__ import annotations

from typing import Optional

from ..offline.plan import OfflinePlan
from ..power.model import PowerModel
from ..power.overhead import OverheadModel
from ..sim.realization import Realization
from .base import PolicyRun, SpeedPolicy, speculative_speed


class _ConstantFloorRun(PolicyRun):
    fixed_speed = None
    stateless = True  # the level is fixed in __init__, never mutated

    def __init__(self, name: str, level: float):
        self.name = name
        self._level = level
        self.floor_const = level

    def floor(self, t: float) -> float:
        return self._level


class _TwoSpeedRun(PolicyRun):
    fixed_speed = None
    floor_const = None  # the floor steps at θ, mid-run
    stateless = True  # the step triple is fixed in __init__

    def __init__(self, name: str, f_lo: float, f_hi: float, theta: float):
        self.name = name
        self.f_lo = f_lo
        self.f_hi = f_hi
        self.theta = theta
        self.floor_step = (f_lo, f_hi, theta)

    def floor(self, t: float) -> float:
        return self.f_lo if t < self.theta else self.f_hi


class StaticSpeculationOneSpeed(SpeedPolicy):
    """SS¹: one statically speculated speed, rounded up to a level."""

    name = "SS1"
    requires_reserve = True

    def start_run(self, plan: OfflinePlan, power: PowerModel,
                  overhead: OverheadModel,
                  realization: Optional[Realization] = None) -> PolicyRun:
        level = speculative_speed(plan.t_avg, plan.deadline, power)
        return _ConstantFloorRun(self.name, level)


class StaticSpeculationTwoSpeeds(SpeedPolicy):
    """SS²: two adjacent levels with a precomputed switch point θ."""

    name = "SS2"
    requires_reserve = True

    def start_run(self, plan: OfflinePlan, power: PowerModel,
                  overhead: OverheadModel,
                  realization: Optional[Realization] = None) -> PolicyRun:
        f_lo, f_hi, theta = two_speed_plan(plan.t_avg, plan.deadline, power)
        return _TwoSpeedRun(self.name, f_lo, f_hi, theta)


def two_speed_plan(t_avg: float, deadline: float, power: PowerModel):
    """Compute SS²'s ``(f_lo, f_hi, theta)`` for a given profile.

    Degenerates to a constant level (θ = 0) when the speculated speed
    lands exactly on a level or below the minimum speed.
    """
    if deadline <= 0:
        return power.s_max, power.s_max, 0.0
    raw = min(t_avg / deadline, power.s_max)
    f_lo, f_hi = power.bracket(raw)
    if f_hi - f_lo <= 1e-12 or raw <= f_lo or f_hi - raw <= 1e-12:
        return f_hi, f_hi, 0.0
    theta = deadline * (f_hi - raw) / (f_hi - f_lo)
    return f_lo, f_hi, theta
