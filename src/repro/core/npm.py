"""NPM — no power management (the normalization baseline).

Every task runs at maximum speed; idle processors still draw the idle
power (5 % of max).  All energies the experiments report are normalized
to NPM's energy on the same realization, exactly as in Section 5.
"""

from __future__ import annotations

from typing import Optional

from ..offline.plan import OfflinePlan
from ..power.model import PowerModel
from ..power.overhead import OverheadModel
from ..sim.realization import Realization
from .base import PolicyRun, SpeedPolicy, _FixedRun


class NoPowerManagement(SpeedPolicy):
    """Run everything at ``S_max``; no PMPs, no overheads."""

    name = "NPM"
    requires_reserve = False

    def start_run(self, plan: OfflinePlan, power: PowerModel,
                  overhead: OverheadModel,
                  realization: Optional[Realization] = None) -> PolicyRun:
        return _FixedRun(self.name, power.s_max)

    def batch_fixed_speed(self, plan: OfflinePlan, power: PowerModel,
                          overhead: OverheadModel) -> float:
        return power.s_max
