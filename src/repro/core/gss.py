"""GSS — greedy slack sharing, extended to AND/OR graphs (Section 3).

The greedy scheme gives every dispatched task *all* the slack available
before its latest start time: at dispatch time ``t`` the task may use
the window up to its shifted canonical finish ``F_i = LST_i + c_i``, so
its speed is

.. math:: S_i = S_{max} \\cdot c_i / (F_i - t - t_{comp} - t_{adj})

snapped up to a level.  Slack sharing between processors is implicit in
the dispatch protocol (a processor that picks a task with an earlier LST
than "its own" next task inherits that task's slack), and the OR
extension adds the per-path shifted schedules: when execution takes a
short path, every remaining task's window grows by the skipped work.

The greedy floor is zero — the scheme is entirely driven by the
guarantee windows.  Theorem 1: if the canonical schedules meet the
deadline, so does GSS; the simulator enforces this with a hard error.
"""

from __future__ import annotations

from typing import Optional

from ..offline.plan import OfflinePlan
from ..power.model import PowerModel
from ..power.overhead import OverheadModel
from ..sim.realization import Realization
from .base import PolicyRun, SpeedPolicy


class _GreedyRun(PolicyRun):
    name = "GSS"
    fixed_speed = None
    stateless = True  # pure greedy: the zero floor never changes

    def floor(self, t: float) -> float:
        return 0.0


class GreedySlackSharing(SpeedPolicy):
    """The paper's extended greedy slack-sharing algorithm."""

    name = "GSS"
    requires_reserve = True

    def start_run(self, plan: OfflinePlan, power: PowerModel,
                  overhead: OverheadModel,
                  realization: Optional[Realization] = None) -> PolicyRun:
        return _GreedyRun()
