"""AS — adaptive speculation at each OR node (Section 4.2).

When the statistical characteristics of the paths differ substantially,
a single static speculation is poor; the adaptive scheme re-speculates
every time an OR node fires, using the profile of the *remaining* tasks
along the selected path:

.. math:: S_{spec} = S_{max} \\cdot \\tilde a(t) / (D - t)

where ``ã(t)`` is the average-case remaining execution time stored at
the PMP for the chosen path (weighted over any OR nodes still ahead).
As with the static speculative schemes, each task executes at
``max(S_spec, S_GSS)``, so the deadline guarantee is inherited.
"""

from __future__ import annotations

from typing import Optional

from ..offline.plan import OfflinePlan
from ..power.model import PowerModel
from ..power.overhead import OverheadModel
from ..sim.realization import Realization
from .base import PolicyRun, SpeedPolicy, speculative_speed


class _AdaptiveRun(PolicyRun):
    fixed_speed = None
    or_respec = "average"

    def __init__(self, name: str, plan: OfflinePlan, power: PowerModel):
        self.name = name
        self._plan = plan
        self._power = power
        self._level = speculative_speed(plan.t_avg, plan.deadline, power)
        self.floor_const = self._level

    def floor(self, t: float) -> float:
        return self._level

    def on_or_fired(self, or_name: str, target_sid: int, t: float) -> None:
        stats = self._plan.remaining_stats(or_name, target_sid)
        self._level = speculative_speed(stats.average,
                                        self._plan.deadline - t,
                                        self._power)
        self.floor_const = self._level


class AdaptiveSpeculation(SpeedPolicy):
    """Re-speculate the speed after every OR synchronization node."""

    name = "AS"
    requires_reserve = True

    def start_run(self, plan: OfflinePlan, power: PowerModel,
                  overhead: OverheadModel,
                  realization: Optional[Realization] = None) -> PolicyRun:
        return _AdaptiveRun(self.name, plan, power)
