"""PS — proportional (worst-case) speculation.  Extension.

The uniprocessor related work the paper builds on (Mossé et al. [14])
includes a *proportional* scheme: instead of letting the current task
greedily consume all available slack, stretch the **remaining
worst-case work** evenly over the time left:

.. math:: S_{prop}(t) = S_{max} \\cdot w(t) / (D - t)

where ``w(t)`` is the worst-case remaining execution time from the
current PMP.  On the AND/OR model, ``w(t)`` is exactly the per-path
``w_i`` profile the offline phase stores at each OR node, so the scheme
drops straight into the speculative-floor framework: it is "AS with
worst-case instead of average-case statistics".  It is deadline-safe
for the same reason as SS/AS (the executed speed is
``max(S_prop, S_GSS)``), and it brackets the design space:

* GSS — no floor (all slack to the current task),
* AS  — average-case floor (optimistic),
* PS  — worst-case floor (pessimistic; fewest regrets, least saving).

The paper's observation that the greedy scheme benefits from a high
``S_min`` can be read as: ``S_min`` acts as a crude constant
proportional floor.  PS makes that floor exact, which the ablation
benches use to test the explanation.
"""

from __future__ import annotations

from typing import Optional

from ..offline.plan import OfflinePlan
from ..power.model import PowerModel
from ..power.overhead import OverheadModel
from ..sim.realization import Realization
from .base import PolicyRun, SpeedPolicy, speculative_speed


class _ProportionalRun(PolicyRun):
    fixed_speed = None
    or_respec = "worst"

    def __init__(self, name: str, plan: OfflinePlan, power: PowerModel):
        self.name = name
        self._plan = plan
        self._power = power
        self._level = speculative_speed(plan.t_worst, plan.deadline,
                                        power)
        self.floor_const = self._level

    def floor(self, t: float) -> float:
        return self._level

    def on_or_fired(self, or_name: str, target_sid: int, t: float) -> None:
        stats = self._plan.remaining_stats(or_name, target_sid)
        self._level = speculative_speed(stats.worst,
                                        self._plan.deadline - t,
                                        self._power)
        self.floor_const = self._level


class ProportionalSpeculation(SpeedPolicy):
    """Worst-case-remaining speculative floor, refreshed at OR nodes."""

    name = "PS"
    requires_reserve = True

    def start_run(self, plan: OfflinePlan, power: PowerModel,
                  overhead: OverheadModel,
                  realization: Optional[Realization] = None) -> PolicyRun:
        return _ProportionalRun(self.name, plan, power)
