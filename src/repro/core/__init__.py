"""The paper's scheduling schemes (Sections 3 and 4).

* :class:`NoPowerManagement` (NPM) — normalization baseline,
* :class:`StaticPowerManagement` (SPM) — static slack only,
* :class:`GreedySlackSharing` (GSS) — the extended greedy algorithm,
* :class:`StaticSpeculationOneSpeed` / :class:`StaticSpeculationTwoSpeeds`
  (SS¹/SS²) — static speculation,
* :class:`AdaptiveSpeculation` (AS) — re-speculation at OR nodes,
* :class:`ClairvoyantOracle` — single-speed lower bound (extension).

Use :func:`get_policy` to resolve by the paper's labels.
"""

from .adaptive_spec import AdaptiveSpeculation
from .base import PolicyRun, SpeedPolicy, speculative_speed
from .clairvoyant import ClairvoyantOracle
from .gss import GreedySlackSharing
from .npm import NoPowerManagement
from .proportional import ProportionalSpeculation
from .registry import (
    ALL_SCHEMES,
    PAPER_SCHEMES,
    available_schemes,
    get_policies,
    get_policy,
)
from .spm import StaticPowerManagement, spm_speed
from .static_spec import (
    StaticSpeculationOneSpeed,
    StaticSpeculationTwoSpeeds,
    two_speed_plan,
)

__all__ = [
    "SpeedPolicy",
    "PolicyRun",
    "speculative_speed",
    "NoPowerManagement",
    "StaticPowerManagement",
    "spm_speed",
    "GreedySlackSharing",
    "StaticSpeculationOneSpeed",
    "StaticSpeculationTwoSpeeds",
    "two_speed_plan",
    "AdaptiveSpeculation",
    "ProportionalSpeculation",
    "ClairvoyantOracle",
    "get_policy",
    "get_policies",
    "available_schemes",
    "PAPER_SCHEMES",
    "ALL_SCHEMES",
]
