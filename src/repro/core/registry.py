"""Name → scheme registry.

The experiment harness, CLI and benches refer to schemes by the paper's
labels; :func:`get_policy` resolves them.  Labels are case-insensitive
and the common aliases from the paper's figures are accepted.
"""

from __future__ import annotations

from typing import Dict, List, Type

from ..errors import ConfigError
from .adaptive_spec import AdaptiveSpeculation
from .base import SpeedPolicy
from .clairvoyant import ClairvoyantOracle
from .gss import GreedySlackSharing
from .npm import NoPowerManagement
from .proportional import ProportionalSpeculation
from .spm import StaticPowerManagement
from .static_spec import StaticSpeculationOneSpeed, StaticSpeculationTwoSpeeds

_REGISTRY: Dict[str, Type[SpeedPolicy]] = {
    "npm": NoPowerManagement,
    "spm": StaticPowerManagement,
    "gss": GreedySlackSharing,
    "ss1": StaticSpeculationOneSpeed,
    "ss2": StaticSpeculationTwoSpeeds,
    "as": AdaptiveSpeculation,
    "ps": ProportionalSpeculation,
    "oracle": ClairvoyantOracle,
}

_ALIASES = {
    "greedy": "gss",
    "static": "spm",
    "ss-1": "ss1",
    "ss-2": "ss2",
    "adaptive": "as",
    "proportional": "ps",
    "clairvoyant": "oracle",
}

#: the five schemes evaluated in the paper's figures, in legend order
PAPER_SCHEMES = ("SPM", "GSS", "SS1", "SS2", "AS")

#: everything, including the baseline and the extensions
ALL_SCHEMES = ("NPM",) + PAPER_SCHEMES + ("PS", "ORACLE")


def available_schemes() -> List[str]:
    return sorted(_REGISTRY)


def get_policy(name: str) -> SpeedPolicy:
    """Instantiate a scheme by (case-insensitive) name or alias."""
    key = name.lower()
    key = _ALIASES.get(key, key)
    try:
        return _REGISTRY[key]()
    except KeyError:
        raise ConfigError(
            f"unknown scheme {name!r}; available: {available_schemes()}"
        ) from None


def get_policies(names) -> List[SpeedPolicy]:
    return [get_policy(n) for n in names]
