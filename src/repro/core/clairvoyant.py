"""Clairvoyant single-speed oracle (extension, not in the paper).

The paper motivates the speculative schemes with the observation that "a
clairvoyant algorithm can achieve minimal energy consumption … by
running all tasks at a single speed setting if the actual running time
of every task is known".  This policy *is* that bound, made concrete:
it peeks at the realization, measures the makespan ``F`` of the actual
workload at maximum speed (same dispatch protocol), and then runs the
whole application at the one level that stretches ``F`` to the deadline:

.. math:: S_{oracle} = \\mathrm{snap\\_up}(F / (D - t_{adj}))

It is *not realizable* (it needs future knowledge) but gives the
ablation benches a floor to compare GSS/SS/AS against.
"""

from __future__ import annotations

from typing import Optional

from ..errors import SimulationError
from ..offline.plan import OfflinePlan
from ..power.model import PowerModel
from ..power.overhead import NO_OVERHEAD, OverheadModel
from ..sim.engine import simulate
from ..sim.realization import Realization
from .base import PolicyRun, SpeedPolicy, _FixedRun


class ClairvoyantOracle(SpeedPolicy):
    """Lower-bound single-speed schedule computed from the realization."""

    name = "ORACLE"
    requires_reserve = False
    needs_realization = True  # the peeked realization sets the speed

    def start_run(self, plan: OfflinePlan, power: PowerModel,
                  overhead: OverheadModel,
                  realization: Optional[Realization] = None) -> PolicyRun:
        if realization is None:
            raise SimulationError(
                "the clairvoyant oracle needs the realization up front")
        probe = simulate(plan, _FixedRun("ORACLE-probe", power.s_max),
                         power, NO_OVERHEAD, realization,
                         check_deadline=False)
        horizon = plan.deadline - overhead.adjust_time
        if horizon <= 0 or probe.finish_time >= horizon:
            return _FixedRun(self.name, power.s_max)
        speed = power.snap_up(min(probe.finish_time / horizon, power.s_max))
        return _FixedRun(self.name, speed)
