"""Compiled array kernel for the simulation inner loop.

:mod:`repro.sim.engine` interprets the dispatch protocol over
string-keyed dicts: every task pays ``graph.node(name)`` lookups,
``Dict[str, float]`` finish maps and per-run method dispatch.  A
Monte-Carlo evaluation replays the *same* plan structure thousands of
times, so this module compiles an :class:`~repro.offline.plan.OfflinePlan`
once into an integer-indexed **section program** and runs it with two
interchangeable kernels:

* :class:`CompiledKernel` — a scalar, allocation-free re-expression of
  the dispatch loop for one run: task attributes live in per-section
  flat tuples (WCET, finish bound, realization column), intra-section
  predecessors in a CSR-style id list, and the ``finishes``/
  ``proc_free`` buffers are preallocated and reused across runs.  Used
  for the dynamic schemes (GSS, SS1, SS2, AS, PS) and any per-run fixed
  speed (ORACLE).
* :func:`run_fixed_batch` — a fully vectorized fixed-speed path that
  evaluates NPM/SPM for an entire ``(n_runs, n_tasks)`` realization
  matrix: runs are grouped by executed path and every dispatch step is
  one NumPy operation across the whole group, so the per-run Python
  loop disappears.  NPM is the denominator of every normalized energy,
  so this path touches every run of every scheme.

Both batch kernels also accept a :class:`~repro.sim.sweepc.
StackedProgram` plus a ``point_of`` run→point index, executing a whole
*sweep* of structurally identical points as one fused
``(points × runs)`` batch (see :mod:`repro.sim.sweepc` and
:mod:`repro.experiments.fused`); per-point constants are gathered per
path group, so fused outputs stay bit-identical to per-point runs.

**Bit-identity contract.**  Both kernels perform float operations in
exactly the order of :func:`repro.sim.engine.simulate` — the same
reductions, the same left-associated sums, the same tie-breaks
(``np.argmin`` returns the first minimal processor, matching
``min(range(m), key=...)``) — so energies, finish times, traces and
path keys are equal *bit for bit*, not merely approximately.  The
golden equivalence suite (``tests/property/test_compiled_equivalence``)
holds both kernels to exact float equality against the dict engine.

One intentional semantic difference: the compiled kernels prefetch the
actual execution times of a section (or the whole batch) up front, so a
hand-built :class:`~repro.sim.realization.Realization` missing a task's
actual time fails when the program is bound rather than at that task's
dispatch.  Sampled and worst-case realizations always carry every task.

The compiled program is cached on the plan instance
(``OfflinePlan.compiled``) next to the offline round-1 canonical-stage
cache; like that cache it is per-process and not thread-safe (the
library is process-parallel only).  The scratch buffers live on the
program, so two interleaved ``CompiledKernel.run`` calls on one program
would corrupt each other — the engine API is strictly run-to-completion.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from collections import OrderedDict
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..errors import DeadlineMissError, SimulationError
from ..offline.plan import OfflinePlan
from ..power.model import PowerModel
from ..power.overhead import OverheadModel
from ..types import EnergyBreakdown, SimResult, TaskRecord
from .realization import Realization, RealizationBatch

_EPS = 1e-9


class _CompiledSection:
    """One program section as flat arrays, ready for integer dispatch.

    ``entries`` holds one tuple per node in canonical dispatch order:
    ``(is_and, gid, col, wcet, finish_bound, name, preds)`` where
    ``gid`` is the node's slot in the global finishes buffer, ``col``
    its column in the realization matrix (-1 for AND nodes) and
    ``preds`` the finish-buffer slots of its intra-section predecessors
    (the CSR row for this node, stored as a tuple because rows are
    short and tuple iteration is the fastest scan in CPython).
    """

    __slots__ = ("sid", "entries", "exit_or", "branch_ids", "branch_set",
                 "forced_target", "branch_stats")

    def __init__(self, sid: int, entries, exit_or: Optional[str],
                 branch_ids: Tuple[int, ...],
                 branch_stats: Dict[int, Tuple[float, float]]):
        self.sid = sid
        self.entries = entries
        self.exit_or = exit_or
        self.branch_ids = branch_ids
        self.branch_set = frozenset(branch_ids)
        self.forced_target = branch_ids[0] if len(branch_ids) == 1 else None
        #: per successor section: ``(worst, average)`` remaining time at
        #: the exit OR, for vectorized AS/PS re-speculation
        self.branch_stats = branch_stats


class CompiledPlan:
    """The integer-indexed section program of one offline plan.

    Built once per plan by :func:`compile_plan`; holds no reference to
    the plan itself (the plan holds the program), pickles cleanly for
    the pool initializer, and carries the preallocated per-run scratch
    buffers the scalar kernel reuses.
    """

    def __init__(self, plan: OfflinePlan):
        graph = plan.app.graph
        structure = plan.structure
        self.m = plan.n_processors
        self.deadline = plan.app.deadline
        self.root_sid = structure.root_id

        #: computation tasks in realization-matrix column order
        self.comp_names: List[str] = [n.name
                                      for n in graph.computation_nodes()]
        col_of = {name: i for i, name in enumerate(self.comp_names)}

        gid_of: Dict[str, int] = {}
        self.sections: Dict[int, _CompiledSection] = {}
        for sid, sp in plan.sections.items():
            entries = []
            for name in sp.dispatch_order:
                gid_of[name] = len(gid_of)
            for name in sp.dispatch_order:
                node = graph.node(name)
                preds = tuple(gid_of[p] for p in sp.preds_within[name])
                if node.is_and:
                    entries.append((True, gid_of[name], -1, 0.0, 0.0,
                                    name, preds))
                else:
                    entries.append((False, gid_of[name], col_of[name],
                                    node.wcet, sp.finish_bound[name],
                                    name, preds))
            exit_or = structure.section(sid).exit_or
            branch_ids: Tuple[int, ...] = ()
            branch_stats: Dict[int, Tuple[float, float]] = {}
            if exit_or is not None:
                branch_ids = tuple(t for t, _p in structure.branches(exit_or))
                stats = plan.branch_stats.get(exit_or, {})
                branch_stats = {t: (ps.worst, ps.average)
                                for t, ps in stats.items()}
            self.sections[sid] = _CompiledSection(
                sid, tuple(entries), exit_or, branch_ids, branch_stats)

        self.n_slots = len(gid_of)
        #: the plan fingerprint this program was compiled from, stamped
        #: by :func:`compile_plan`; lets downstream caches (the stacked-
        #: program LRU in ``repro.sim.sweepc``) key on program identity
        #: without holding the plan
        self.fingerprint: Optional[tuple] = None
        # per-run scratch, reused across runs (single-threaded use only)
        self._fin: List[float] = [0.0] * self.n_slots
        self._proc_free: List[float] = [0.0] * self.m
        self._proc_speed: List[float] = [0.0] * self.m

    # -- realization binding ------------------------------------------------
    def actuals_row(self, realization: Realization) -> List[float]:
        """The realization's actual times as a column-ordered flat list."""
        actuals = realization.actuals
        row = []
        for name in self.comp_names:
            try:
                row.append(actuals[name])
            except KeyError:
                raise SimulationError(
                    f"realization has no actual time for task "
                    f"{name!r}") from None
        return row

    def realization_matrix(self, batch: RealizationBatch) -> np.ndarray:
        """The batch's actual-time matrix aligned to this program's columns."""
        if batch.names == self.comp_names:
            return batch.actuals
        cols = [batch.column_of(name) for name in self.comp_names]
        return batch.actuals[:, cols]

    # -- executed paths -----------------------------------------------------
    def executed_paths(self, choices: Mapping[str, Sequence[int]], n: int
                       ) -> Tuple[List[Tuple[Tuple[int, ...], np.ndarray]],
                                  List[str]]:
        """Group ``n`` runs by the section path their OR choices select.

        ``choices`` maps each branching OR node to a length-``n``
        sequence of chosen section ids.  Returns ``(groups, keys)``:
        ``groups`` is a list of ``(path, run_indices)`` pairs in first-
        occurrence order and ``keys`` the per-run path key, formatted
        exactly like ``ExecutionPath.key()`` (``"0>2>5"``).
        """
        picks = {name: (seq.tolist() if isinstance(seq, np.ndarray) else
                        list(seq))
                 for name, seq in choices.items()}
        sections = self.sections
        root = self.root_sid
        by_path: Dict[Tuple[int, ...], List[int]] = {}
        key_of: Dict[Tuple[int, ...], str] = {}
        keys: List[str] = []
        for i in range(n):
            sid = root
            path = [sid]
            while True:
                sec = sections[sid]
                if sec.exit_or is None or not sec.branch_ids:
                    break
                if sec.forced_target is not None:
                    sid = sec.forced_target
                else:
                    try:
                        sid = picks[sec.exit_or][i]
                    except KeyError:
                        raise SimulationError(
                            f"realization has no branch choice for OR "
                            f"node {sec.exit_or!r}") from None
                    if sid not in sec.branch_set:
                        raise SimulationError(
                            f"realization chose section {sid} at "
                            f"{sec.exit_or!r}, not a successor path")
                path.append(sid)
            tup = tuple(path)
            runs = by_path.get(tup)
            if runs is None:
                by_path[tup] = runs = []
                key_of[tup] = ">".join(str(s) for s in tup)
            runs.append(i)
            keys.append(key_of[tup])
        groups = [(path, np.asarray(runs, dtype=np.intp))
                  for path, runs in by_path.items()]
        return groups, keys


#: cross-instance program cache keyed by plan *fingerprint* (graph,
#: deadline, m, reserve, heuristic): long-lived sweep workers rebuild
#: plan objects per evaluation, but two builds with equal inputs yield
#: equal plans, so the program compiles once per worker, not once per
#: point.  Per-process, bounded LRU, like the offline round-1 cache.
_PROGRAM_CACHE: "OrderedDict[tuple, CompiledPlan]" = OrderedDict()
_PROGRAM_CACHE_MAX = 32
_program_cache_hits = 0
_program_cache_misses = 0


def program_cache_stats() -> Dict[str, int]:
    """Hit/miss/size counters of this process's program cache."""
    return {"hits": _program_cache_hits, "misses": _program_cache_misses,
            "size": len(_PROGRAM_CACHE)}


def clear_program_cache() -> None:
    """Drop every cached program and reset the hit/miss counters
    (tests and memory-pressure escape hatch)."""
    global _program_cache_hits, _program_cache_misses
    _PROGRAM_CACHE.clear()
    _program_cache_hits = 0
    _program_cache_misses = 0


def compile_plan(plan: OfflinePlan) -> CompiledPlan:
    """The plan's section program, compiled once and cached.

    Two caches compose here: the instance slot (``plan.compiled``)
    makes repeat calls on one plan free, and the fingerprint-keyed LRU
    makes repeat compilations of *equal* plans (rebuilt instances in a
    pool worker) a lookup instead of a compile.  A program only reads
    the plan it was compiled from, so sharing across equal plans cannot
    leak state — the scratch-buffer caveat in the module docstring is
    unchanged (strictly run-to-completion, per process).
    """
    global _program_cache_hits, _program_cache_misses
    prog = plan.compiled
    if prog is not None:
        return prog
    key = plan.fingerprint()
    prog = _PROGRAM_CACHE.get(key)
    if prog is not None:
        _program_cache_hits += 1
        _PROGRAM_CACHE.move_to_end(key)
    else:
        _program_cache_misses += 1
        prog = CompiledPlan(plan)
        prog.fingerprint = key
        _PROGRAM_CACHE[key] = prog
        while len(_PROGRAM_CACHE) > _PROGRAM_CACHE_MAX:
            _PROGRAM_CACHE.popitem(last=False)
    plan.compiled = prog
    return prog


class CompiledKernel:
    """Scalar compiled dispatch loop for one (program, power, overhead).

    Mirrors :func:`repro.sim.engine.simulate` operation for operation;
    the constructor hoists everything that is constant across runs
    (speed-computation times per level, the switch energy) so the
    per-run loop touches only flat lists and local floats.
    """

    def __init__(self, prog: CompiledPlan, power: PowerModel,
                 overhead: OverheadModel):
        self.prog = prog
        self.power = power
        self.overhead = overhead
        self._adj_energy = overhead.adjustment_energy(power)
        self._tcomp: Dict[float, float] = {}
        # discrete models expose their level table and power-by-level
        # dict; binding them here lets the hot loop skip the snap_up /
        # power() method calls (identical values, same bisect epsilons)
        self._speeds: Optional[List[float]] = getattr(power, "_speeds",
                                                      None)
        pbs = getattr(power, "_power_by_speed", None)
        self._pget = pbs.get if pbs is not None else None

    def run(self, policy_run, actuals: Sequence[float],
            choices: Mapping[str, int],
            collect_trace: bool = False,
            check_deadline: bool = True) -> SimResult:
        """Simulate one run; drop-in equal to the dict engine's result.

        ``actuals`` is the realization's actual-time row in program
        column order (see :meth:`CompiledPlan.actuals_row`); ``choices``
        maps fired OR nodes to chosen section ids.
        """
        prog = self.prog
        power = self.power
        overhead = self.overhead
        m = prog.m
        deadline = prog.deadline
        s_max = power.s_max
        s_max_guard = s_max * (1 + 1e-6)
        snap_up = power.snap_up
        power_of = power.power
        speeds = self._speeds
        pget = self._pget
        tcomp = self._tcomp
        comp_time = overhead.computation_time
        adjust_time = overhead.adjust_time
        adj_energy = self._adj_energy
        sections = prog.sections
        fin = prog._fin
        proc_free = prog._proc_free
        proc_speed = prog._proc_speed
        floor = policy_run.floor
        fc = policy_run.floor_const
        fixed = policy_run.fixed_speed

        busy_time = 0.0
        overhead_time = 0.0
        e_busy = 0.0
        e_over = 0.0
        n_changes = 0
        n_tasks = 0
        trace: List[TaskRecord] = []
        path_choices: Dict[str, str] = {}

        t_section = 0.0
        speed0 = s_max
        if fixed is not None and abs(fixed - s_max) > _EPS:
            # SPM-style synchronized switch on every processor up front
            t_section = adjust_time
            overhead_time += m * adjust_time
            e_over += m * adj_energy
            n_changes += m
            speed0 = fixed
        for j in range(m):
            proc_free[j] = t_section
            proc_speed[j] = speed0

        last_dispatch = t_section
        sid = prog.root_sid
        t_end = t_section

        while True:
            sec = sections[sid]
            sec_max = None
            for is_and, gid, col, c, fb, name, preds in sec.entries:
                ready = t_section
                for p in preds:
                    f = fin[p]
                    if f > ready:
                        ready = f
                if is_and:
                    fin[gid] = ready
                    if sec_max is None or ready > sec_max:
                        sec_max = ready
                    continue

                j = 0
                pf = proc_free[0]
                for jj in range(1, m):
                    v = proc_free[jj]
                    if v < pf:
                        pf = v
                        j = jj
                t = ready
                if last_dispatch > t:
                    t = last_dispatch
                if pf > t:
                    t = pf
                last_dispatch = t
                actual = actuals[col]
                if actual > c * (1 + 1e-9):
                    raise SimulationError(
                        f"actual time {actual} of {name!r} exceeds WCET {c}")

                if fixed is not None:
                    speed = fixed
                    start_exec = t
                    changed = False
                else:
                    s_cur = proc_speed[j]
                    t_comp = tcomp.get(s_cur)
                    if t_comp is None:
                        t_comp = comp_time(power, s_cur)
                        tcomp[s_cur] = t_comp
                    avail = fb - t - t_comp
                    denom = avail - adjust_time
                    s_req = c / denom if denom > 0 else math.inf
                    fl = fc if fc is not None else floor(t)
                    target = fl if fl > s_req else s_req
                    if target > s_max_guard:
                        raise SimulationError(
                            f"guarantee violated for {name!r}: required "
                            f"speed {target:.6g} exceeds maximum "
                            f"(t={t:.6g}, bound={fb:.6g})")
                    want = s_max if s_max < target else target
                    if speeds is None:
                        speed = snap_up(want)
                    elif want <= speeds[0]:
                        speed = speeds[0]
                    elif want >= speeds[-1] - 1e-12:
                        speed = speeds[-1]
                    else:
                        speed = speeds[bisect_left(speeds, want - 1e-12)]
                    changed = abs(speed - s_cur) > _EPS
                    t_adj = adjust_time if changed else 0.0
                    start_exec = t + t_comp + t_adj
                    if t_comp > 0:
                        overhead_time += t_comp
                        p = pget(s_cur) if pget is not None else None
                        if p is None:
                            p = power_of(s_cur)
                        e_over += p * t_comp
                    if changed:
                        overhead_time += t_adj
                        e_over += adj_energy
                        n_changes += 1
                        proc_speed[j] = speed

                wall = actual / speed
                finish = start_exec + wall
                busy_time += wall
                p = pget(speed) if pget is not None else None
                if p is None:
                    p = power_of(speed)
                e_task = p * wall
                e_busy += e_task
                proc_free[j] = finish
                fin[gid] = finish
                n_tasks += 1
                if sec_max is None or finish > sec_max:
                    sec_max = finish
                if collect_trace:
                    trace.append(TaskRecord(
                        name=name, processor=j, start=start_exec,
                        finish=finish, speed=speed, actual_cycles=actual,
                        energy=e_task, speed_changed=changed))

            if sec_max is None:
                t_end = t_section
            else:
                t_end = t_section if t_section > sec_max else sec_max

            exit_or = sec.exit_or
            if exit_or is None:
                break
            if not sec.branch_ids:
                break  # terminal merge OR: the application ends here
            if sec.forced_target is not None:
                target_sid = sec.forced_target
            else:
                try:
                    target_sid = choices[exit_or]
                except KeyError:
                    raise SimulationError(
                        f"realization has no branch choice for OR node "
                        f"{exit_or!r}") from None
            if target_sid not in sec.branch_set:
                raise SimulationError(
                    f"realization chose section {target_sid} at "
                    f"{exit_or!r}, not a successor path")
            path_choices[exit_or] = str(target_sid)
            # all processors synchronize at the OR node before continuing
            t_section = t_end
            last_dispatch = t_end
            for j in range(m):
                proc_free[j] = t_end
            if fixed is None:
                policy_run.on_or_fired(exit_or, target_sid, t_end)
                fc = policy_run.floor_const  # AS/PS re-speculate here
            sid = target_sid

        finish_time = t_end
        if check_deadline and finish_time > deadline * (1 + 1e-9) + _EPS:
            raise DeadlineMissError(finish_time, deadline,
                                    scheme=policy_run.name)

        window = m * (finish_time if finish_time > deadline else deadline)
        idle_time = window - busy_time - overhead_time
        if idle_time < -1e-6 * (deadline if deadline > 1.0 else 1.0):
            raise SimulationError(
                f"negative idle time {idle_time}: busy={busy_time}, "
                f"overhead={overhead_time}, window={window}")
        e_idle = power.idle_energy(0.0 if 0.0 > idle_time else idle_time)

        return SimResult(
            scheme=policy_run.name,
            finish_time=finish_time,
            deadline=deadline,
            energy=EnergyBreakdown(busy=e_busy, idle=e_idle,
                                   overhead=e_over),
            n_speed_changes=n_changes,
            n_tasks_run=n_tasks,
            trace=trace,
            path_choices=path_choices,
        )


def simulate_compiled(plan: OfflinePlan, policy_run, power: PowerModel,
                      overhead: OverheadModel, realization: Realization,
                      collect_trace: bool = False,
                      check_deadline: bool = True) -> SimResult:
    """Drop-in replacement for :func:`repro.sim.engine.simulate`.

    Compiles (or reuses) the plan's section program and runs the scalar
    compiled kernel on one realization.  Results are bit-identical to
    the dict engine's.
    """
    prog = compile_plan(plan)
    kernel = CompiledKernel(prog, power, overhead)
    return kernel.run(policy_run, prog.actuals_row(realization),
                      realization.choices, collect_trace=collect_trace,
                      check_deadline=check_deadline)


class FixedBatchResult:
    """Per-run outputs of one vectorized fixed-speed batch simulation."""

    __slots__ = ("scheme", "total_energy", "finish_time", "n_speed_changes",
                 "path_keys")

    def __init__(self, scheme: str, total_energy: np.ndarray,
                 finish_time: np.ndarray, n_speed_changes,
                 path_keys: List[str]):
        self.scheme = scheme
        self.total_energy = total_energy
        self.finish_time = finish_time
        #: switches per run (identical across runs for a fixed speed):
        #: an int, or an ``(n_points,)`` int array when the batch was a
        #: fused sweep with one fixed speed per point
        self.n_speed_changes = n_speed_changes
        self.path_keys = path_keys


def _gather(value, pt):
    """One group's values of a possibly per-point constant.

    Scalars pass through unchanged (the non-fused path, and stacked
    constants that every point agrees on — broadcasting then performs
    the exact scalar operation); a stacked ``(n_points,)`` vector is
    fancy-indexed by the group's per-run point indices ``pt``.
    """
    if isinstance(value, np.ndarray):
        return value[pt]
    return value


def _at(value, k):
    """Row ``k``'s value of a gathered constant, for error messages."""
    if isinstance(value, np.ndarray):
        return value[k]
    return value


def run_fixed_batch(prog, power: PowerModel,
                    overhead: OverheadModel, matrix: np.ndarray,
                    groups, path_keys: List[str], speed,
                    scheme: str,
                    check_deadline: bool = True,
                    point_of: Optional[np.ndarray] = None,
                    kernel_tier: Optional[str] = None
                    ) -> FixedBatchResult:
    """Vectorized fixed-speed simulation of a whole realization batch.

    Dispatches to the kernel tier selected by ``kernel_tier`` (None for
    the session default — see
    :func:`repro.sim.kernels.resolve_kernel_tier`): ``legacy`` runs
    :func:`_run_fixed_legacy` below, ``numpy`` the tape interpreter,
    ``jit`` the numba-compiled tape cores.  All tiers are bit-identical;
    the contract is documented on :func:`_run_fixed_legacy`.
    """
    from . import kernels  # local import breaks the cycle
    tier = kernels.resolve_kernel_tier(kernel_tier)
    if tier == "legacy":
        return _run_fixed_legacy(prog, power, overhead, matrix, groups,
                                 path_keys, speed, scheme,
                                 check_deadline=check_deadline,
                                 point_of=point_of)
    fixed, _dynamic = kernels.get_kernels(tier)
    return fixed(prog, power, overhead, matrix, groups, path_keys, speed,
                 scheme, check_deadline=check_deadline, point_of=point_of)


def _run_fixed_legacy(prog, power: PowerModel,
                      overhead: OverheadModel, matrix: np.ndarray,
                      groups, path_keys: List[str], speed,
                      scheme: str,
                      check_deadline: bool = True,
                      point_of: Optional[np.ndarray] = None
                      ) -> FixedBatchResult:
    """Vectorized fixed-speed simulation of a whole realization batch
    (the ``legacy`` kernel tier: the original entry-tuple loop, kept as
    the differential-testing reference the tape tiers are pinned
    bit-identical against).

    ``matrix`` is the ``(n_runs, n_tasks)`` actual-time matrix in
    program column order and ``groups``/``path_keys`` the output of
    :meth:`CompiledPlan.executed_paths`.  Runs sharing an executed path
    are simulated together: each dispatch step is one NumPy operation
    over the group, in exactly the dict engine's float-operation order,
    so every per-run output is bit-identical to a scalar simulation.

    **Fused sweeps.**  ``prog`` may be a
    :class:`~repro.sim.sweepc.StackedProgram` covering several sweep
    points at once; ``point_of`` is then the ``(n_runs,)`` point index
    of every row of ``matrix``, and ``speed`` may be an ``(n_points,)``
    vector of per-point fixed speeds.  Per-point constants are gathered
    into each path group, so every run still sees exactly its own
    point's floats — fused outputs are bit-identical to evaluating the
    points one program at a time.
    """
    n = matrix.shape[0]
    m = prog.m
    deadline = prog.deadline
    s_max = power.s_max

    if isinstance(speed, np.ndarray):
        # fused: one fixed speed per point; every derived preamble
        # constant is computed with the same scalar formulas, selected
        # per point — bit-identical to the scalar preamble per point
        switched = np.abs(speed - s_max) > _EPS
        t0 = np.where(switched, overhead.adjust_time, 0.0)
        overhead_time = np.where(switched, m * overhead.adjust_time, 0.0)
        e_over = np.where(switched, m * overhead.adjustment_energy(power),
                          0.0)
        n_changes = np.where(switched, m, 0)
        p_busy = power.power_table(speed)
    else:
        switched = abs(speed - s_max) > _EPS
        t0 = overhead.adjust_time if switched else 0.0
        overhead_time = m * overhead.adjust_time if switched else 0.0
        e_over = m * overhead.adjustment_energy(power) if switched else 0.0
        n_changes = m if switched else 0
        p_busy = power.power(speed)
    idle_power = power.idle_power

    total_energy = np.empty(n)
    finish_time = np.empty(n)

    for path, idx in groups:
        block = matrix[idx]
        ng = idx.size
        rows = np.arange(ng)
        pt = point_of[idx] if point_of is not None else None
        speed_g = _gather(speed, pt)
        p_busy_g = _gather(p_busy, pt)
        t0_g = _gather(t0, pt)
        dl_g = _gather(deadline, pt)
        ot_g = _gather(overhead_time, pt)
        eo_g = _gather(e_over, pt)
        fin = np.empty((ng, prog.n_slots))
        if isinstance(t0_g, np.ndarray):
            proc_free = np.repeat(t0_g[:, None], m, axis=1)
            last_dispatch = t0_g.copy()
            t_section = t0_g.copy()
            t_end = t0_g.copy()
        else:
            proc_free = np.full((ng, m), t0_g)
            last_dispatch = np.full(ng, t0_g)
            t_section = np.full(ng, t0_g)
            t_end = np.full(ng, t0_g)
        busy_time = np.zeros(ng)
        e_busy = np.zeros(ng)

        for sid in path:
            sec = prog.sections[sid]
            sec_max = None
            for is_and, gid, col, c, fb, name, preds in sec.entries:
                ready = t_section.copy()
                for p in preds:
                    np.maximum(ready, fin[:, p], out=ready)
                if is_and:
                    fin[:, gid] = ready
                    if sec_max is None:
                        sec_max = ready.copy()
                    else:
                        np.maximum(sec_max, ready, out=sec_max)
                    continue

                j = np.argmin(proc_free, axis=1)  # first-idle, lowest id
                t = np.maximum(np.maximum(ready, last_dispatch),
                               proc_free[rows, j])
                last_dispatch = t
                actual = block[:, col]
                c_g = _gather(c, pt)
                over = actual > c_g * (1 + 1e-9)
                if over.any():
                    k = int(np.argmax(over))
                    raise SimulationError(
                        f"actual time {actual[k]} of {name!r} exceeds "
                        f"WCET {_at(c_g, k)}")
                wall = actual / speed_g
                finish = t + wall
                busy_time += wall
                e_busy += p_busy_g * wall
                proc_free[rows, j] = finish
                fin[:, gid] = finish
                if sec_max is None:
                    sec_max = finish.copy()
                else:
                    np.maximum(sec_max, finish, out=sec_max)

            if sec_max is None:
                t_end = t_section
            else:
                t_end = np.maximum(sec_max, t_section)
            # synchronize at the OR before the next section of the path
            t_section = t_end
            last_dispatch = t_end
            proc_free = np.broadcast_to(t_end[:, None], (ng, m)).copy()

        if check_deadline:
            late = t_end > dl_g * (1 + 1e-9) + _EPS
            if late.any():
                k = int(np.argmax(late))
                raise DeadlineMissError(float(t_end[k]),
                                        float(_at(dl_g, k)),
                                        scheme=scheme)
        window = m * np.maximum(dl_g, t_end)
        idle_time = window - busy_time - ot_g
        if isinstance(dl_g, np.ndarray):
            thresh = -1e-6 * np.where(dl_g > 1.0, dl_g, 1.0)
        else:
            thresh = -1e-6 * (dl_g if dl_g > 1.0 else 1.0)
        bad = idle_time < thresh
        if bad.any():
            k = int(np.argmax(bad))
            raise SimulationError(
                f"negative idle time {idle_time[k]}: busy={busy_time[k]}, "
                f"overhead={_at(ot_g, k)}, window={window[k]}")
        e_idle = idle_power * np.maximum(idle_time, 0.0)
        total_energy[idx] = e_busy + e_idle + eo_g
        finish_time[idx] = t_end

    return FixedBatchResult(scheme, total_energy, finish_time, n_changes,
                            list(path_keys))


class DynamicBatchResult:
    """Per-run outputs of one vectorized dynamic-scheme batch simulation."""

    __slots__ = ("scheme", "total_energy", "finish_time", "n_speed_changes",
                 "path_keys")

    def __init__(self, scheme: str, total_energy: np.ndarray,
                 finish_time: np.ndarray, n_speed_changes: np.ndarray,
                 path_keys: List[str]):
        self.scheme = scheme
        self.total_energy = total_energy
        self.finish_time = finish_time
        #: switches per run, as an int array (runs differ)
        self.n_speed_changes = n_speed_changes
        self.path_keys = path_keys


def supports_dynamic_batch(policy_run, power: PowerModel) -> bool:
    """Whether :func:`run_dynamic_batch` can replay ``policy_run`` exactly.

    Requires a discrete power model (the vector snap-up indexes its
    level table) and a run whose behaviour is fully declared by the
    :class:`~repro.core.base.PolicyRun` protocol attributes: a dynamic
    speed, a floor that is either a constant (``floor_const``), a single
    step (``floor_step``) or an OR-respeculated constant (``or_respec``)
    — i.e. GSS, SS1, SS2, AS and PS.  A subclass that overrides
    ``on_or_fired`` without declaring ``or_respec`` falls back to the
    scalar kernel.
    """
    from ..core.base import PolicyRun  # local import breaks the cycle
    if getattr(power, "_speeds", None) is None:
        return False
    if policy_run.fixed_speed is not None:
        return False
    if policy_run.floor_const is None and policy_run.floor_step is None:
        return False
    if (type(policy_run).on_or_fired is not PolicyRun.on_or_fired
            and policy_run.or_respec not in ("average", "worst")):
        return False
    return True


def run_dynamic_batch(prog, power: PowerModel,
                      overhead: OverheadModel, matrix: np.ndarray,
                      groups, path_keys: List[str], policy_run,
                      scheme: str,
                      check_deadline: bool = True,
                      point_of: Optional[np.ndarray] = None,
                      kernel_tier: Optional[str] = None
                      ) -> DynamicBatchResult:
    """Vectorized dynamic-scheme simulation of a whole realization batch.

    Dispatches to the kernel tier selected by ``kernel_tier`` (None for
    the session default — see
    :func:`repro.sim.kernels.resolve_kernel_tier`); all tiers are
    bit-identical, and the contract is documented on
    :func:`_run_dynamic_legacy`.
    """
    from . import kernels  # local import breaks the cycle
    tier = kernels.resolve_kernel_tier(kernel_tier)
    if tier == "legacy":
        return _run_dynamic_legacy(prog, power, overhead, matrix, groups,
                                   path_keys, policy_run, scheme,
                                   check_deadline=check_deadline,
                                   point_of=point_of)
    _fixed, dynamic = kernels.get_kernels(tier)
    return dynamic(prog, power, overhead, matrix, groups, path_keys,
                   policy_run, scheme, check_deadline=check_deadline,
                   point_of=point_of)


def _run_dynamic_legacy(prog, power: PowerModel,
                        overhead: OverheadModel, matrix: np.ndarray,
                        groups, path_keys: List[str], policy_run,
                        scheme: str,
                        check_deadline: bool = True,
                        point_of: Optional[np.ndarray] = None
                        ) -> DynamicBatchResult:
    """Vectorized dynamic-scheme simulation of a whole realization batch
    (the ``legacy`` kernel tier — the differential-testing reference).

    The dynamic counterpart of :func:`run_fixed_batch` for the schemes
    that :func:`supports_dynamic_batch` accepts.  Each processor's
    current speed is tracked as an *index* into the discrete level
    table, so the per-level speed-computation time and power draw become
    single fancy-indexing gathers; the greedy required speed, the floor,
    the snap-up (``searchsorted`` with the same ``1e-12`` epsilon as
    ``DiscretePowerModel.snap_up``) and the switch bookkeeping are one
    NumPy operation each across a path group.  Where the scalar engine
    *skips* an accumulation (no speed-computation overhead, no switch),
    this kernel adds an exact ``0.0``, which is bit-identical on the
    non-negative accumulators involved.

    ``policy_run`` is consulted only for its protocol attributes
    (``floor_const``/``floor_step``/``or_respec``) and is not mutated.
    The only observable difference from running the scalar kernel n
    times is *which* run raises first when a plan is infeasible — errors
    surface in path-group order rather than run order.

    **Fused sweeps.**  ``prog`` may be a
    :class:`~repro.sim.sweepc.StackedProgram` with ``point_of`` the
    per-run point index; the run's protocol attributes
    (``floor_const``, the ``floor_step`` triple) may then hold
    ``(n_points,)`` vectors, and the program's per-entry constants and
    branch statistics are gathered per group — every run computes with
    exactly its own point's floats.
    """
    n = matrix.shape[0]
    m = prog.m
    deadline = prog.deadline
    s_max = power.s_max
    s_max_guard = s_max * (1 + 1e-6)

    # per-level constants, cached on the model/overhead instances and
    # computed through the scalar API, so every gathered value is the
    # exact float the dict engine uses
    speeds_arr = power.level_speed_table()
    n_lv = speeds_arr.size
    pow_arr = power.level_power_table()
    tc_arr = overhead.computation_time_table(power)
    adjust_time = overhead.adjust_time
    adj_energy = overhead.adjustment_energy(power)
    idle_power = power.idle_power

    fc = policy_run.floor_const
    step = policy_run.floor_step
    respec = policy_run.or_respec

    total_energy = np.empty(n)
    finish_time = np.empty(n)
    n_changes = np.empty(n, dtype=np.int64)

    for path, idx in groups:
        block = matrix[idx]
        ng = idx.size
        rows = np.arange(ng)
        pt = point_of[idx] if point_of is not None else None
        fc_g = _gather(fc, pt)
        if step is not None:
            f_lo_g = _gather(step[0], pt)
            f_hi_g = _gather(step[1], pt)
            theta_g = _gather(step[2], pt)
        dl_g = _gather(deadline, pt)
        fin = np.empty((ng, prog.n_slots))
        proc_free = np.zeros((ng, m))
        # every processor starts at S_max = the top level
        proc_idx = np.full((ng, m), n_lv - 1, dtype=np.intp)
        last_dispatch = np.zeros(ng)
        t_section = np.zeros(ng)
        busy_time = np.zeros(ng)
        overhead_time = np.zeros(ng)
        e_busy = np.zeros(ng)
        e_over = np.zeros(ng)
        changes = np.zeros(ng, dtype=np.int64)
        fl_vec = None  # AS/PS floor after the first OR fires
        t_end = np.zeros(ng)

        for pos, sid in enumerate(path):
            sec = prog.sections[sid]
            sec_max = None
            for is_and, gid, col, c, fb, name, preds in sec.entries:
                ready = t_section.copy()
                for p in preds:
                    np.maximum(ready, fin[:, p], out=ready)
                if is_and:
                    fin[:, gid] = ready
                    if sec_max is None:
                        sec_max = ready.copy()
                    else:
                        np.maximum(sec_max, ready, out=sec_max)
                    continue

                j = np.argmin(proc_free, axis=1)  # first-idle, lowest id
                t = np.maximum(np.maximum(ready, last_dispatch),
                               proc_free[rows, j])
                last_dispatch = t
                actual = block[:, col]
                c_g = _gather(c, pt)
                fb_g = _gather(fb, pt)
                over = actual > c_g * (1 + 1e-9)
                if over.any():
                    k = int(np.argmax(over))
                    raise SimulationError(
                        f"actual time {actual[k]} of {name!r} exceeds "
                        f"WCET {_at(c_g, k)}")

                si = proc_idx[rows, j]
                t_comp = tc_arr[si]
                avail = fb_g - t - t_comp
                denom = avail - adjust_time
                with np.errstate(divide="ignore"):
                    s_req = np.where(denom > 0, c_g / denom, math.inf)
                if step is not None:
                    fl = np.where(t < theta_g, f_lo_g, f_hi_g)
                elif fl_vec is not None:
                    fl = fl_vec
                else:
                    fl = fc_g
                target = np.maximum(s_req, fl)
                viol = target > s_max_guard
                if viol.any():
                    k = int(np.argmax(viol))
                    raise SimulationError(
                        f"guarantee violated for {name!r}: required "
                        f"speed {target[k]:.6g} exceeds maximum "
                        f"(t={t[k]:.6g}, bound={_at(fb_g, k):.6g})")
                want = np.minimum(target, s_max)
                new_idx = np.searchsorted(speeds_arr, want - 1e-12,
                                          side="left")
                np.clip(new_idx, 0, n_lv - 1, out=new_idx)
                speed = speeds_arr[new_idx]
                s_cur = speeds_arr[si]
                changed = np.abs(speed - s_cur) > _EPS
                t_adj = np.where(changed, adjust_time, 0.0)
                start_exec = t + t_comp + t_adj
                overhead_time += t_comp
                e_over += pow_arr[si] * t_comp
                overhead_time += t_adj
                e_over += np.where(changed, adj_energy, 0.0)
                changes += changed
                proc_idx[rows, j] = np.where(changed, new_idx, si)

                wall = actual / speed
                finish = start_exec + wall
                busy_time += wall
                e_busy += pow_arr[new_idx] * wall
                proc_free[rows, j] = finish
                fin[:, gid] = finish
                if sec_max is None:
                    sec_max = finish.copy()
                else:
                    np.maximum(sec_max, finish, out=sec_max)

            if sec_max is None:
                t_end = t_section
            else:
                t_end = np.maximum(sec_max, t_section)
            # synchronize at the OR before the next section of the path
            t_section = t_end
            last_dispatch = t_end
            proc_free = np.broadcast_to(t_end[:, None], (ng, m)).copy()
            if respec is not None and pos + 1 < len(path):
                # on_or_fired: re-speculate the constant floor from the
                # fired branch's remaining-time statistics, exactly like
                # speculative_speed() but across the group
                worst, average = sec.branch_stats[path[pos + 1]]
                work = _gather(average if respec == "average" else worst,
                               pt)
                horizon = dl_g - t_end
                with np.errstate(divide="ignore", invalid="ignore"):
                    raw = work / horizon
                want = np.minimum(raw, s_max)
                snap_idx = np.searchsorted(speeds_arr, want - 1e-12,
                                           side="left")
                np.clip(snap_idx, 0, n_lv - 1, out=snap_idx)
                fl_vec = np.where(horizon > 0, speeds_arr[snap_idx], s_max)

        if check_deadline:
            late = t_end > dl_g * (1 + 1e-9) + _EPS
            if late.any():
                k = int(np.argmax(late))
                raise DeadlineMissError(float(t_end[k]),
                                        float(_at(dl_g, k)),
                                        scheme=scheme)
        window = m * np.maximum(dl_g, t_end)
        idle_time = window - busy_time - overhead_time
        if isinstance(dl_g, np.ndarray):
            thresh = -1e-6 * np.where(dl_g > 1.0, dl_g, 1.0)
        else:
            thresh = -1e-6 * (dl_g if dl_g > 1.0 else 1.0)
        bad = idle_time < thresh
        if bad.any():
            k = int(np.argmax(bad))
            raise SimulationError(
                f"negative idle time {idle_time[k]}: busy={busy_time[k]}, "
                f"overhead={overhead_time[k]}, window={window[k]}")
        e_idle = idle_power * np.maximum(idle_time, 0.0)
        total_energy[idx] = e_busy + e_idle + e_over
        finish_time[idx] = t_end
        n_changes[idx] = changes

    return DynamicBatchResult(scheme, total_energy, finish_time, n_changes,
                              list(path_keys))
