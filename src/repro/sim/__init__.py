"""The online-phase simulator (Figure 2's protocol).

Public surface: :func:`simulate` (one run of one scheme on one
realization) and realization sampling.
"""

from .compiled import (
    CompiledKernel,
    CompiledPlan,
    DynamicBatchResult,
    FixedBatchResult,
    compile_plan,
    run_dynamic_batch,
    run_fixed_batch,
    simulate_compiled,
    supports_dynamic_batch,
)
from .engine import simulate
from .event_engine import simulate_events
from .power_trace import (
    PowerProfile,
    compare_profiles,
    power_profile,
    render_profile,
)
from .realization import (
    Realization,
    RealizationBatch,
    batch_in_chunks,
    sample_realization,
    sample_realization_batch,
    sample_realizations,
    worst_case_realization,
)

__all__ = [
    "simulate",
    "simulate_compiled",
    "simulate_events",
    "CompiledKernel",
    "CompiledPlan",
    "DynamicBatchResult",
    "FixedBatchResult",
    "compile_plan",
    "run_dynamic_batch",
    "run_fixed_batch",
    "supports_dynamic_batch",
    "PowerProfile",
    "power_profile",
    "render_profile",
    "compare_profiles",
    "Realization",
    "RealizationBatch",
    "batch_in_chunks",
    "sample_realization",
    "sample_realization_batch",
    "sample_realizations",
    "worst_case_realization",
]
