"""The online-phase simulator (Figure 2's protocol).

Public surface: :func:`simulate` (one run of one scheme on one
realization) and realization sampling.
"""

from .engine import simulate
from .event_engine import simulate_events
from .power_trace import (
    PowerProfile,
    compare_profiles,
    power_profile,
    render_profile,
)
from .realization import (
    Realization,
    batch_in_chunks,
    sample_realization,
    sample_realization_batch,
    sample_realizations,
    worst_case_realization,
)

__all__ = [
    "simulate",
    "simulate_events",
    "PowerProfile",
    "power_profile",
    "render_profile",
    "compare_profiles",
    "Realization",
    "batch_in_chunks",
    "sample_realization",
    "sample_realization_batch",
    "sample_realizations",
    "worst_case_realization",
]
