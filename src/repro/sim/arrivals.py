"""Arrival processes for the online sporadic-job scenario mode.

The online simulator (:mod:`repro.experiments.online`) feeds a stream
of AND/OR job arrivals through an admission test.  This module owns the
*event clock*: where the arrival instants come from and how they are
seeded so replays are bit-identical.

Three pluggable processes, all sampling against one horizon:

``poisson``
    Memoryless arrivals with exponential inter-arrival gaps at a
    constant rate — the classic sporadic model.
``bursty``
    A two-state Markov-modulated Poisson process (MMPP-2): the stream
    alternates between a *high* and a *low* rate, dwelling in each
    state for an exponentially distributed time.  Same long-run mean
    rate as the Poisson process (the two state rates average to the
    requested rate), but arrivals clump — the adversarial input for an
    admission controller.
``trace``
    Replay of an explicit list of arrival instants, e.g. loaded from a
    JSON file with :func:`load_arrival_trace`.  Deterministic: the rng
    is never consulted.

Seeding contract
----------------
One stream seed fixes everything.  Arrival instants are drawn from a
*derived* generator (:func:`arrival_rng`: the first spawned child of
``numpy.random.SeedSequence(seed)``), while job realizations are drawn
from ``numpy.random.default_rng(seed)`` itself — exactly the stream
:func:`~repro.experiments.runner.evaluate_application` uses.  The two
streams are independent, so changing the arrival process never
perturbs the realizations (and vice versa), and the online evaluation
of ``n`` admitted jobs sees *exactly* the realizations of an offline
evaluation with ``n_runs = n``.
"""

from __future__ import annotations

import json
from typing import List, Optional, Sequence

import numpy as np

from ..errors import ConfigError

#: the registered arrival-process kinds (CLI ``--arrival`` choices)
ARRIVAL_KINDS = ("poisson", "bursty", "trace")


def arrival_rng(seed: int) -> np.random.Generator:
    """The derived arrival stream of one online-stream seed.

    Independent of ``default_rng(seed)`` (the realization stream) by
    construction: it is the first spawned child of the seed's
    ``SeedSequence``.
    """
    return np.random.default_rng(np.random.SeedSequence(seed).spawn(1)[0])


class ArrivalProcess:
    """Base interface: sample sorted arrival instants on ``[0, horizon)``."""

    #: the registry kind this process implements
    kind: str = "?"

    def sample(self, horizon: float,
               rng: np.random.Generator) -> np.ndarray:
        raise NotImplementedError

    def describe(self) -> str:
        return self.kind


class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals at a constant ``rate`` (events per time unit)."""

    kind = "poisson"

    def __init__(self, rate: float):
        if rate < 0:
            raise ConfigError(f"arrival rate must be >= 0, got {rate}")
        self.rate = float(rate)

    def sample(self, horizon: float,
               rng: np.random.Generator) -> np.ndarray:
        return _exponential_scan(rng, self.rate, 0.0, horizon)

    def describe(self) -> str:
        return f"poisson(rate={self.rate:g})"


class BurstyArrivals(ArrivalProcess):
    """MMPP-2: Poisson arrivals whose rate alternates high/low.

    ``rate`` is the long-run mean; ``burstiness`` in ``[1, 2]`` splits
    it into ``rate_high = burstiness * rate`` and
    ``rate_low = (2 - burstiness) * rate`` (equal expected dwell in
    each state keeps the time-averaged rate at ``rate``; burstiness 1
    degenerates to the plain Poisson process, 2 to an on/off source).
    ``dwell`` is the mean sojourn time per state, in the same time unit
    as ``rate``.
    """

    kind = "bursty"

    def __init__(self, rate: float, burstiness: float = 1.8,
                 dwell: float = 5.0):
        if rate < 0:
            raise ConfigError(f"arrival rate must be >= 0, got {rate}")
        if not (1.0 <= burstiness <= 2.0):
            raise ConfigError(
                f"burstiness must be in [1, 2], got {burstiness}")
        if dwell <= 0:
            raise ConfigError(f"dwell must be > 0, got {dwell}")
        self.rate = float(rate)
        self.burstiness = float(burstiness)
        self.dwell = float(dwell)

    def sample(self, horizon: float,
               rng: np.random.Generator) -> np.ndarray:
        rate_high = self.burstiness * self.rate
        rate_low = (2.0 - self.burstiness) * self.rate
        out: List[float] = []
        t = 0.0
        high = True  # deterministic start state: the burst comes first
        while t < horizon:
            end = min(t + rng.exponential(self.dwell), horizon)
            rate = rate_high if high else rate_low
            out.extend(_exponential_scan(rng, rate, t, end))
            t = end
            high = not high
        return np.asarray(out, dtype=float)

    def describe(self) -> str:
        return (f"bursty(rate={self.rate:g}, "
                f"burstiness={self.burstiness:g}, dwell={self.dwell:g})")


class TraceArrivals(ArrivalProcess):
    """Replay explicit arrival instants (sorted; clipped to the horizon)."""

    kind = "trace"

    def __init__(self, times: Sequence[float]):
        arr = np.asarray(list(times), dtype=float)
        if arr.ndim != 1:
            raise ConfigError("a trace must be a flat sequence of times")
        if arr.size and float(arr.min()) < 0:
            raise ConfigError("trace arrival times must be >= 0")
        self.times = np.sort(arr)

    def sample(self, horizon: float,
               rng: np.random.Generator) -> np.ndarray:
        return self.times[self.times < horizon].copy()

    def describe(self) -> str:
        return f"trace({self.times.size} arrivals)"


def _exponential_scan(rng: np.random.Generator, rate: float,
                      start: float, end: float) -> np.ndarray:
    """Exponential-gap arrival instants on ``[start, end)``.

    Drawn one gap at a time so the consumed stream length depends only
    on the realized gaps — never on an implementation block size —
    which is what keeps multi-segment (bursty) sampling replayable.
    """
    if rate <= 0 or end <= start:
        return np.empty(0)
    out: List[float] = []
    t = start
    while True:
        t += rng.exponential(1.0 / rate)
        if t >= end:
            break
        out.append(t)
    return np.asarray(out, dtype=float)


def load_arrival_trace(path: str) -> List[float]:
    """Arrival instants from a JSON file.

    Accepts a bare list (``[0.0, 1.7, ...]``) or an object with an
    ``"arrivals"`` key holding one.
    """
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    if isinstance(data, dict):
        data = data.get("arrivals")
    if not isinstance(data, list) or not all(
            isinstance(v, (int, float)) and not isinstance(v, bool)
            for v in data):
        raise ConfigError(
            f"{path}: expected a JSON list of arrival times "
            f"(or an object with an 'arrivals' list)")
    return [float(v) for v in data]


def make_arrival_process(kind: str, rate: float,
                         burstiness: float = 1.8,
                         dwell: float = 5.0,
                         trace: Optional[Sequence[float]] = None
                         ) -> ArrivalProcess:
    """Factory keyed by the registry kind (CLI ``--arrival`` values)."""
    if kind == "poisson":
        return PoissonArrivals(rate)
    if kind == "bursty":
        return BurstyArrivals(rate, burstiness=burstiness, dwell=dwell)
    if kind == "trace":
        if trace is None:
            raise ConfigError(
                "arrival kind 'trace' needs explicit arrival times "
                "(pass trace=..., e.g. from load_arrival_trace)")
        return TraceArrivals(trace)
    raise ConfigError(
        f"arrival kind must be one of {ARRIVAL_KINDS}, got {kind!r}")
