"""Execution traces and ASCII Gantt rendering.

Useful for examples and debugging: trace one run of one scheme and show
where every task ran, at which speed, and where the idle/sync gaps are.
"""

from __future__ import annotations

import io
from collections import defaultdict
from typing import Dict, List, Optional

import numpy as np

from ..errors import ConfigError
from ..graph.andor import Application
from ..power.model import make_power_model
from ..power.overhead import NO_OVERHEAD, PAPER_OVERHEAD, OverheadModel
from ..types import SimResult, TaskRecord
from .engine import simulate
from .realization import sample_realization


def trace_one_run(app: Application, scheme: str,
                  power_model: str = "transmeta",
                  n_processors: Optional[int] = None,
                  overhead: Optional[OverheadModel] = None,
                  seed: int = 2002) -> SimResult:
    """Simulate one seeded run with trace collection on."""
    from ..core.registry import get_policy  # local: avoid import cycle
    from ..offline.plan import build_plan

    m = n_processors or int(app.meta.get("n_processors", 2))
    power = make_power_model(power_model)
    policy = get_policy(scheme)
    if policy.name == "NPM":
        ov = NO_OVERHEAD
    else:
        ov = overhead if overhead is not None else PAPER_OVERHEAD
    reserve = ov.per_task_reserve(power) if policy.requires_reserve else 0.0
    plan = build_plan(app, m, reserve=reserve)
    rng = np.random.default_rng(seed)
    rl = sample_realization(plan.structure, rng)
    run = policy.start_run(plan, power, ov, realization=rl)
    return simulate(plan, run, power, ov, rl, collect_trace=True)


def render_gantt(result: SimResult, deadline: Optional[float] = None,
                 width: int = 100) -> str:
    """ASCII Gantt chart of a traced run (one row per processor)."""
    if not result.trace:
        raise ConfigError(
            "result has no trace; simulate with collect_trace=True")
    horizon = deadline if deadline is not None else result.deadline
    if horizon <= 0:
        raise ConfigError(f"non-positive horizon {horizon}")
    scale = width / horizon

    per_proc: Dict[int, List[TaskRecord]] = defaultdict(list)
    for rec in result.trace:
        per_proc[rec.processor].append(rec)

    out = io.StringIO()
    out.write(f"scheme={result.scheme} finish={result.finish_time:.2f} "
              f"deadline={result.deadline:.2f} "
              f"switches={result.n_speed_changes} "
              f"E={result.total_energy:.2f} "
              f"(busy={result.energy.busy:.2f} idle={result.energy.idle:.2f}"
              f" ovh={result.energy.overhead:.2f})\n")
    for pid in sorted(per_proc):
        row = [" "] * width
        for rec in sorted(per_proc[pid], key=lambda r: r.start):
            a = min(int(rec.start * scale), width - 1)
            b = min(max(int(rec.finish * scale), a + 1), width)
            label = rec.name[: b - a]
            for k in range(a, b):
                row[k] = "#"
            for k, ch in enumerate(label):
                row[a + k] = ch
        out.write(f"P{pid} |" + "".join(row) + "|\n")
    out.write("    " + f"0{'':{width - 10}}{horizon:>9.1f}\n")
    out.write(task_table(result))
    return out.getvalue()


def task_table(result: SimResult) -> str:
    """Per-task lines: placement, speed, energy."""
    out = io.StringIO()
    out.write(f"{'task':>16} {'proc':>4} {'start':>9} {'finish':>9} "
              f"{'speed':>6} {'chg':>3} {'energy':>9}\n")
    for rec in sorted(result.trace, key=lambda r: r.start):
        out.write(f"{rec.name:>16} {rec.processor:>4} {rec.start:>9.3f} "
                  f"{rec.finish:>9.3f} {rec.speed:>6.3f} "
                  f"{'*' if rec.speed_changed else ' ':>3} "
                  f"{rec.energy:>9.4f}\n")
    return out.getvalue()
