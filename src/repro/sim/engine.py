"""The online phase: the Figure 2 dispatch protocol as a simulator.

One engine executes every scheme; a *policy run* object (duck-typed, see
``repro.core.base``) tells it either a fixed speed (NPM, SPM) or, for the
dynamic schemes, a speculative speed floor combined with the greedy
slack-sharing guarantee computed from the offline plan's latest start
times.

Protocol modeled (Figure 2 of the paper):

* processors serve a global ready queue strictly in the canonical
  execution order — an idle processor whose next-expected task is not
  ready sleeps (consuming idle power) until signalled;
* before a computation task runs, the dispatching processor spends the
  speed-computation overhead, computes the new speed, and pays the
  voltage-switch overhead if the level differs from its current one;
* AND nodes are dummy tasks: they complete the moment their last
  predecessor does;
* at an OR node all processors synchronize (the section drains), the
  branch is selected, and the chosen section begins.

Energy is integrated over the whole window ``[0, m·D]``: busy energy at
the per-task speed/voltage, overhead energy (speed computation at the
old speed, switches at max power), and idle energy at 5 % of max power
for all remaining processor-time, including after early completion —
this is what makes NPM's energy fall as load rises, as the paper notes.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from ..errors import DeadlineMissError, SimulationError
from ..offline.plan import OfflinePlan
from ..power.model import PowerModel
from ..power.overhead import OverheadModel
from ..types import EnergyBreakdown, SimResult, TaskRecord
from .realization import Realization

_EPS = 1e-9


def simulate(plan: OfflinePlan, policy_run, power: PowerModel,
             overhead: OverheadModel, realization: Realization,
             collect_trace: bool = False,
             check_deadline: bool = True) -> SimResult:
    """Simulate one application run under one scheme.

    ``policy_run`` must provide:

    * ``name`` — scheme label;
    * ``fixed_speed`` — a speed level, or ``None`` for dynamic schemes;
    * ``floor(t)`` — the speculative speed floor at time ``t`` (dynamic);
    * ``on_or_fired(or_name, target_sid, t)`` — OR-node hook (dynamic).

    Raises :class:`DeadlineMissError` if the run overshoots the deadline
    (all the paper's schemes are proven not to when the offline phase
    succeeded, so a miss is a bug, not a data point).
    """
    app = plan.app
    graph = app.graph
    structure = plan.structure
    m = plan.n_processors
    deadline = app.deadline

    proc_speed = [power.s_max] * m
    energy = EnergyBreakdown()
    busy_time = 0.0
    overhead_time = 0.0
    n_changes = 0
    n_tasks = 0
    trace: List[TaskRecord] = []
    path_choices: Dict[str, str] = {}

    fixed = policy_run.fixed_speed
    t_section = 0.0
    if fixed is not None and abs(fixed - power.s_max) > _EPS:
        # SPM: one synchronized switch on every processor before starting
        t_section = overhead.adjust_time
        overhead_time += m * overhead.adjust_time
        energy.overhead += m * overhead.adjustment_energy(power)
        n_changes += m
        proc_speed = [fixed] * m

    proc_free = [t_section] * m
    last_dispatch = t_section
    sid = structure.root_id
    t_end = t_section

    while True:
        sp = plan.sections[sid]
        finishes: Dict[str, float] = {}
        for name in sp.dispatch_order:
            node = graph.node(name)
            preds = sp.preds_within[name]
            ready = t_section
            for p in preds:
                f = finishes[p]
                if f > ready:
                    ready = f
            if node.is_and:
                finishes[name] = ready
                continue

            # the first-idle processor takes the next-expected task; the
            # dispatch itself is serialized in canonical order
            j = min(range(m), key=proc_free.__getitem__)
            t = max(ready, last_dispatch, proc_free[j])
            last_dispatch = t
            actual = realization.actual(name)
            c = node.wcet
            if actual > c * (1 + 1e-9):
                raise SimulationError(
                    f"actual time {actual} of {name!r} exceeds WCET {c}")

            if fixed is not None:
                speed = fixed
                start_exec = t
                changed = False
            else:
                s_cur = proc_speed[j]
                t_comp = overhead.computation_time(power, s_cur)
                avail = sp.finish_bound[name] - t - t_comp
                denom = avail - overhead.adjust_time
                s_req = c / denom if denom > 0 else math.inf
                target = max(s_req, policy_run.floor(t))
                if target > power.s_max * (1 + 1e-6):
                    raise SimulationError(
                        f"guarantee violated for {name!r}: required speed "
                        f"{target:.6g} exceeds maximum (t={t:.6g}, "
                        f"bound={sp.finish_bound[name]:.6g})")
                speed = power.snap_up(min(target, power.s_max))
                changed = abs(speed - s_cur) > _EPS
                t_adj = overhead.adjust_time if changed else 0.0
                start_exec = t + t_comp + t_adj
                if t_comp > 0:
                    overhead_time += t_comp
                    energy.overhead += power.busy_energy(s_cur, t_comp)
                if changed:
                    overhead_time += t_adj
                    energy.overhead += overhead.adjustment_energy(power)
                    n_changes += 1
                    proc_speed[j] = speed

            wall = actual / speed
            finish = start_exec + wall
            busy_time += wall
            energy.busy += power.busy_energy(speed, wall)
            proc_free[j] = finish
            finishes[name] = finish
            n_tasks += 1
            if collect_trace:
                trace.append(TaskRecord(
                    name=name, processor=j, start=start_exec, finish=finish,
                    speed=speed, actual_cycles=actual,
                    energy=power.busy_energy(speed, wall),
                    speed_changed=changed))

        if finishes:
            t_end = max(max(finishes.values()), t_section)
        else:
            t_end = t_section

        exit_or = structure.section(sid).exit_or
        if exit_or is None:
            break
        branches = structure.branches(exit_or)
        if not branches:
            break  # terminal merge OR: the application ends here
        if len(branches) == 1:
            target = branches[0][0]  # merge/continuation: choice is forced
        else:
            try:
                target = realization.choices[exit_or]
            except KeyError:
                raise SimulationError(
                    f"realization has no branch choice for OR node "
                    f"{exit_or!r}") from None
        if target not in (b for b, _ in branches):
            raise SimulationError(
                f"realization chose section {target} at {exit_or!r}, not a "
                f"successor path")
        path_choices[exit_or] = str(target)
        # all processors synchronize at the OR node before continuing:
        # every processor becomes available exactly at the drain time
        # (this also fixes the post-OR tie-break: lowest processor id)
        t_section = t_end
        last_dispatch = t_end
        proc_free = [t_end] * m
        if fixed is None:
            policy_run.on_or_fired(exit_or, target, t_end)
        sid = target

    finish_time = t_end
    if check_deadline and finish_time > deadline * (1 + 1e-9) + _EPS:
        raise DeadlineMissError(finish_time, deadline,
                                scheme=policy_run.name)

    # the energy window extends to the deadline (idle after early finish
    # is charged); a missed deadline under check_deadline=False extends
    # the window to the actual finish so idle time stays well-defined
    window = m * max(deadline, finish_time)
    idle_time = window - busy_time - overhead_time
    if idle_time < -1e-6 * max(deadline, 1.0):
        raise SimulationError(
            f"negative idle time {idle_time}: busy={busy_time}, "
            f"overhead={overhead_time}, window={window}")
    energy.idle = power.idle_energy(max(idle_time, 0.0))

    return SimResult(
        scheme=policy_run.name,
        finish_time=finish_time,
        deadline=deadline,
        energy=energy,
        n_speed_changes=n_changes,
        n_tasks_run=n_tasks,
        trace=trace,
        path_choices=path_choices,
    )
