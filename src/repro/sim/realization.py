"""Sampling of one run's random outcomes.

A *realization* fixes everything that is random in one execution of the
application: each task's actual execution time and each OR node's branch
choice.  Sampling it separately from the simulation lets every scheme be
evaluated on the *same* realization (paired comparison), which is how
normalized-to-NPM energies are meaningful run by run; the paper averages
1000 such runs per point.

Actual execution times follow the paper's Section 5: the actual time of
task *i* is drawn from a normal distribution around its average-case
execution time ``a_i``; we use ``σ = (c_i − a_i) / 3`` so that ±3σ spans
the distance to the worst case, and clip into ``(0, c_i]`` — hard
real-time tasks never exceed their WCET.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..errors import SimulationError
from ..graph.sections import SectionStructure


@dataclass(frozen=True)
class Realization:
    """The resolved randomness of one application run."""

    #: actual execution time (at maximum speed) per computation task
    actuals: Dict[str, float]
    #: chosen successor section id per fired OR node (sampled for all,
    #: even those not reached — harmless and simpler)
    choices: Dict[str, int]

    def actual(self, name: str) -> float:
        try:
            return self.actuals[name]
        except KeyError:
            raise SimulationError(
                f"realization has no actual time for task {name!r}") from None


class RealizationBatch:
    """``n`` realizations kept in the matrix form they were sampled as.

    The vectorized sampler draws all actual times as one
    ``(n, n_tasks)`` float matrix and all branch choices as one integer
    block per OR node.  This class keeps that columnar layout — the
    compiled simulation kernel (:mod:`repro.sim.compiled`) consumes it
    directly, with no per-run dict materialization — while still
    behaving like a read-only sequence of :class:`Realization` objects
    for the dict engine and for existing callers: ``len(batch)``,
    ``batch[i]`` (materializes one :class:`Realization`), iteration and
    slicing (``batch[a:b]`` is a zero-copy view batch) all work.

    ``names`` lists the computation tasks in column order;
    ``choices[or_name]`` is an ``(n,)`` integer array of chosen
    successor section ids.
    """

    __slots__ = ("names", "actuals", "choices", "_col_of")

    def __init__(self, names: List[str], actuals: np.ndarray,
                 choices: Dict[str, np.ndarray]):
        if actuals.ndim != 2 or actuals.shape[1] != len(names):
            raise SimulationError(
                f"actuals matrix shape {actuals.shape} does not match "
                f"{len(names)} task columns")
        self.names = list(names)
        self.actuals = actuals
        self.choices = choices
        self._col_of: Optional[Dict[str, int]] = None

    def __len__(self) -> int:
        return self.actuals.shape[0]

    def __getitem__(self, index):
        if isinstance(index, slice):
            return RealizationBatch(
                self.names, self.actuals[index],
                {k: v[index] for k, v in self.choices.items()})
        return self.realization(int(index))

    def __iter__(self):
        for i in range(len(self)):
            yield self.realization(i)

    def realization(self, i: int) -> Realization:
        """Materialize run ``i`` as a dict-based :class:`Realization`."""
        n = len(self)
        if not -n <= i < n:
            raise IndexError(f"run index {i} out of range for {n} runs")
        if i < 0:
            i += n
        actuals = dict(zip(self.names, self.actuals[i].tolist()))
        choices = {name: int(picks[i])
                   for name, picks in self.choices.items()}
        return Realization(actuals=actuals, choices=choices)

    def column_of(self, name: str) -> int:
        """Column index of one task in the actuals matrix."""
        if self._col_of is None:
            self._col_of = {n: i for i, n in enumerate(self.names)}
        try:
            return self._col_of[name]
        except KeyError:
            raise SimulationError(
                f"realization batch has no actual times for task "
                f"{name!r}") from None

    def choice_rows(self) -> List[Dict[str, int]]:
        """Per-run ``{or_name: target_sid}`` dicts (one small dict per run)."""
        lists = {name: picks.tolist()
                 for name, picks in self.choices.items()}
        return [{name: picks[i] for name, picks in lists.items()}
                for i in range(len(self))]


def worst_case_realization(structure: SectionStructure,
                           plan=None) -> "Realization":
    """Every task at its WCET, every OR taking its longest remaining path.

    Useful for tests: under this realization every scheme must finish by
    the deadline with zero dynamic slack exploited.  When an
    :class:`~repro.offline.plan.OfflinePlan` is supplied, branch choices
    use its exact (processor-count-aware) remaining-time statistics;
    otherwise a serial (sum-of-WCETs) recursion is used, which agrees
    with the plan whenever branch ordering is not changed by parallelism.
    """
    graph = structure.graph
    actuals = {n.name: n.wcet for n in graph.computation_nodes()}

    if plan is not None:
        def remaining(target: int, or_name: str) -> float:
            return plan.branch_stats[or_name][target].worst
    else:
        memo: Dict[int, float] = {}

        def serial_remaining(sid: int) -> float:
            if sid in memo:
                return memo[sid]
            total = sum(graph.node(n).wcet
                        for n in structure.section(sid).nodes)
            exit_or = structure.section(sid).exit_or
            down = 0.0
            if exit_or is not None:
                down = max((serial_remaining(t)
                            for t, _p in structure.branches(exit_or)),
                           default=0.0)
            memo[sid] = total + down
            return memo[sid]

        def remaining(target: int, or_name: str) -> float:
            del or_name
            return serial_remaining(target)

    choices: Dict[str, int] = {}
    for node in graph.or_nodes():
        branches = structure.branches(node.name)
        if not branches:
            continue
        choices[node.name] = max(
            branches, key=lambda b: remaining(b[0], node.name))[0]
    return Realization(actuals=actuals, choices=choices)


def sample_realization(structure: SectionStructure,
                       rng: np.random.Generator,
                       sigma_fraction: float = 1.0 / 3.0) -> Realization:
    """Draw one realization (Section 5 distributional assumptions).

    ``sigma_fraction`` scales the standard deviation relative to
    ``c_i − a_i`` (default 1/3).
    """
    graph = structure.graph
    comp = graph.computation_nodes()
    if comp:
        wcet = np.array([n.wcet for n in comp])
        acet = np.array([n.acet for n in comp])
        # clamp like the batch sampler: a task profiled with acet == wcet
        # has zero spread, not a negative one (rng.normal rejects σ < 0)
        sigma = np.maximum((wcet - acet) * sigma_fraction, 0.0)
        raw = rng.normal(acet, sigma)
        lo = np.minimum(acet * 0.01, wcet * 0.01)
        actual = np.clip(raw, lo, wcet)
        actuals = {n.name: float(a) for n, a in zip(comp, actual)}
    else:  # pragma: no cover - validated graphs always have comp nodes
        actuals = {}

    choices: Dict[str, int] = {}
    for node in graph.or_nodes():
        branches = structure.branches(node.name)
        if not branches:
            continue
        u = float(rng.random())
        acc = 0.0
        chosen = branches[-1][0]
        for target, p in branches:
            acc += p
            if u < acc:
                chosen = target
                break
        choices[node.name] = chosen
    return Realization(actuals=actuals, choices=choices)


def sample_realizations(structure: SectionStructure,
                        rng: np.random.Generator, n: int,
                        sigma_fraction: float = 1.0 / 3.0):
    """Yield ``n`` independent realizations from one generator."""
    for _ in range(n):
        yield sample_realization(structure, rng, sigma_fraction)


def sample_realization_batch(structure: SectionStructure,
                             rng: np.random.Generator, n: int,
                             sigma_fraction: float = 1.0 / 3.0
                             ) -> RealizationBatch:
    """Draw ``n`` realizations with vectorized sampling.

    Statistically identical to ``n`` calls of
    :func:`sample_realization` in distribution, but draws all actual
    times as one ``(n, tasks)`` matrix and all branch choices as one
    uniform block per OR node — the profiled fast path for Monte-Carlo
    evaluations.  (The random streams differ from the sequential
    sampler's, so fixed-seed results are reproducible per-sampler, not
    across samplers.)

    Returns a :class:`RealizationBatch`, which keeps the sampled matrix
    intact for the compiled kernel while still iterating as a sequence
    of :class:`Realization` objects for the dict engine.
    """
    if n < 1:
        raise SimulationError(f"batch size must be >= 1, got {n}")
    graph = structure.graph
    comp = graph.computation_nodes()
    names = [node.name for node in comp]
    wcet = np.array([node.wcet for node in comp])
    acet = np.array([node.acet for node in comp])
    sigma = (wcet - acet) * sigma_fraction
    raw = rng.normal(acet, np.maximum(sigma, 0.0), size=(n, len(comp)))
    lo = np.minimum(acet * 0.01, wcet * 0.01)
    actual = np.clip(raw, lo, wcet)

    choice_matrix: Dict[str, np.ndarray] = {}
    for node in graph.or_nodes():
        branches = structure.branches(node.name)
        if not branches:
            continue
        targets = np.array([t for t, _p in branches])
        cum = np.cumsum([p for _t, p in branches])
        u = rng.random(n)
        idx = np.minimum(np.searchsorted(cum, u, side="right"),
                         len(targets) - 1)
        choice_matrix[node.name] = targets[idx]

    return RealizationBatch(names, actual, choice_matrix)


def batch_in_chunks(realizations, chunk_size: int):
    """Yield ``(start, block)`` slices of a prebuilt realization batch.

    The run-level parallel evaluator samples the whole batch once in the
    parent process (so fixed-seed random streams stay bit-identical to
    the sequential path) and farms these contiguous blocks to workers;
    ``start`` is the block's offset in run order, which the parent uses
    to merge per-chunk results back into position.  Works on plain lists
    and on :class:`RealizationBatch` (slicing keeps the matrix layout).
    """
    if chunk_size < 1:
        raise SimulationError(
            f"chunk size must be >= 1, got {chunk_size}")
    for start in range(0, len(realizations), chunk_size):
        yield start, realizations[start:start + chunk_size]
