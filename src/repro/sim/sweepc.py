"""Sweep compiler: stack per-point section programs into one array program.

:mod:`repro.sim.compiled` made one evaluation point fast; a sweep still
paid a full kernel invocation — and, before this layer, a process-pool
round-trip — per point.  For the sweeps the paper's figures are built
from (load and α grids over one graph shape), every point compiles to a
*structurally identical* section program: same sections, same dispatch
order, same realization columns — only the float constants differ (WCET
stays put, but the finish bounds, deadline and branch statistics scale
with the point's load/α).  This module exploits that: it **stacks** the
per-point programs into one :class:`StackedProgram` whose varying
constants become ``(n_points,)`` vectors, so the batch kernels in
:mod:`repro.sim.compiled` can execute the whole ``points × runs`` axis
in one pass, gathering each run's point constants through a ``point_of``
index.

**Bit-identity.**  Stacking never changes a single float: a fused kernel
performs exactly the per-point kernels' elementwise operations with each
run's own point constants gathered into position, so per-run outputs are
equal bit for bit to evaluating every point on its own — the same
contract the compiled kernels hold against the dict engine
(``tests/property/test_fused_equivalence``).

Structural compatibility is checked, never assumed:
:func:`stack_programs` returns ``None`` for heterogeneous point sets
(different graphs, different processor counts), and the caller
(:mod:`repro.experiments.fused`) falls back to per-point evaluation —
pooled at the *point* level when a pool is available.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from .compiled import CompiledPlan, _CompiledSection

#: a per-entry constant in a stacked program: a plain float when every
#: point agrees, else one value per point
Stacked = Union[float, np.ndarray]

#: coarse multiplier of the realization-matrix footprint covering the
#: batch kernels' per-run scratch lanes (actual/speed/wall/energy per
#: slot plus the path-grouped gathers); used only to pick a shard count
#: against a memory budget, never to allocate
FUSED_MEM_FACTOR = 6.0


def plan_shards(n_runs: int, shards: int) -> List[tuple]:
    """Deterministic near-equal run ranges ``[(lo, hi), ...]``.

    Partitions the run axis — every point keeps all its points-axis
    structure; a shard is the same sweep over a contiguous slice of
    each point's run rows.  The requested count is clamped into
    ``[1, n_runs]`` (a shard must hold at least one run), the first
    ``n_runs % shards`` ranges take the extra run, and ranges tile
    ``[0, n_runs)`` exactly: run ``r`` lands in precisely one shard,
    in run order, so a concat in shard-index order reproduces the
    monolithic run axis.
    """
    if n_runs < 1:
        raise ValueError(f"n_runs must be >= 1, got {n_runs}")
    k = max(1, min(int(shards), n_runs))
    base, rem = divmod(n_runs, k)
    ranges = []
    lo = 0
    for i in range(k):
        hi = lo + base + (1 if i < rem else 0)
        ranges.append((lo, hi))
        lo = hi
    return ranges


def fused_bytes_estimate(prog, total_runs: int) -> int:
    """Rough peak-memory bytes of one fused pass over ``total_runs`` rows.

    The dominant allocations scale with the run axis: the float64
    realization matrix (``total_runs × n_cols``) plus the kernels'
    per-slot scratch, folded into :data:`FUSED_MEM_FACTOR`.  Accepts a
    :class:`CompiledPlan` or :class:`StackedProgram` (both expose
    ``comp_names``/``n_slots``).  Intentionally coarse — it only
    informs automatic shard-count selection against ``--shard-mem-mb``.
    """
    n_cols = max(len(prog.comp_names), 1)
    per_run = 8.0 * (n_cols + prog.n_slots) * FUSED_MEM_FACTOR
    return int(per_run * max(total_runs, 0))


def _stack_values(values: Sequence[float]) -> Stacked:
    """Collapse one per-point constant column to a scalar when possible.

    Keeping constants scalar where the points agree (WCETs in a load
    sweep, the deadline in an α sweep) keeps those kernel operations
    scalar-broadcast — cheaper, and trivially identical to the
    per-point kernels.
    """
    arr = np.asarray(values, dtype=float)
    first = arr.flat[0]
    if np.all(arr == first):
        return float(first)
    return arr


def programs_compatible(a: CompiledPlan, b: CompiledPlan) -> bool:
    """Whether two section programs share executable structure.

    Compatible means: same processor count, same realization columns,
    same sections with the same dispatch order, slots, intra-section
    predecessor lists and branch topology.  The float constants (WCET,
    finish bound, deadline, branch statistics) are allowed to differ —
    they are exactly what stacking vectorizes.
    """
    if (a.m != b.m or a.root_sid != b.root_sid
            or a.n_slots != b.n_slots or a.comp_names != b.comp_names
            or a.sections.keys() != b.sections.keys()):
        return False
    for sid, sa in a.sections.items():
        sb = b.sections[sid]
        if (sa.exit_or != sb.exit_or or sa.branch_ids != sb.branch_ids
                or len(sa.entries) != len(sb.entries)):
            return False
        for ea, eb in zip(sa.entries, sb.entries):
            # (is_and, gid, col, c, fb, name, preds): everything but the
            # float constants c/fb must match exactly
            if (ea[0] != eb[0] or ea[1] != eb[1] or ea[2] != eb[2]
                    or ea[5] != eb[5] or ea[6] != eb[6]):
                return False
        if sa.branch_stats.keys() != sb.branch_stats.keys():
            return False
    return True


class StackedProgram:
    """One array program covering every point of a homogeneous sweep.

    Structurally a :class:`~repro.sim.compiled.CompiledPlan` — same
    section/entry layout, consumed by the same batch kernels — whose
    float constants are :data:`Stacked`: scalars where the points
    agree, ``(n_points,)`` vectors where they differ.  The kernels
    gather a group's values with ``point_of`` (the per-run point index)
    and otherwise run unchanged.

    Holds no scratch buffers: stacked programs only ever run through
    the batch kernels, never the scalar one.
    """

    def __init__(self, progs: Sequence[CompiledPlan]):
        base = progs[0]
        self.n_points = len(progs)
        self.m = base.m
        self.root_sid = base.root_sid
        self.n_slots = base.n_slots
        self.comp_names = list(base.comp_names)
        self.deadline: Stacked = _stack_values([p.deadline for p in progs])

        self.sections = {}
        for sid, sec in base.sections.items():
            entries = []
            for k, (is_and, gid, col, _c, _fb, name, preds) in \
                    enumerate(sec.entries):
                if is_and:
                    entries.append((True, gid, -1, 0.0, 0.0, name, preds))
                    continue
                c = _stack_values([p.sections[sid].entries[k][3]
                                   for p in progs])
                fb = _stack_values([p.sections[sid].entries[k][4]
                                    for p in progs])
                entries.append((False, gid, col, c, fb, name, preds))
            branch_stats = {}
            for target in sec.branch_stats:
                worst = _stack_values(
                    [p.sections[sid].branch_stats[target][0] for p in progs])
                average = _stack_values(
                    [p.sections[sid].branch_stats[target][1] for p in progs])
                branch_stats[target] = (worst, average)
            self.sections[sid] = _CompiledSection(
                sid, tuple(entries), sec.exit_or, sec.branch_ids,
                branch_stats)

    # path grouping only reads section topology (exit_or / forced_target
    # / branch_set), which stacking preserves verbatim — borrow the
    # plan implementations unchanged
    executed_paths = CompiledPlan.executed_paths
    realization_matrix = CompiledPlan.realization_matrix


#: stacked programs keyed by the tuple of point-program fingerprints:
#: re-sweeping the same point set (a report rebuilding a figure, a
#: cache-warm benchmark pass) reuses the stacked program *and* the tape
#: lowered onto it, instead of re-stacking per sweep.  Per-process,
#: bounded LRU, like the compiled-program cache.
_STACKED_CACHE: "OrderedDict[tuple, StackedProgram]" = OrderedDict()
_STACKED_CACHE_MAX = 8
_stacked_hits = 0
_stacked_misses = 0


def stacked_cache_stats() -> Dict[str, int]:
    """Hit/miss/size counters of this process's stacked-program cache."""
    return {"hits": _stacked_hits, "misses": _stacked_misses,
            "size": len(_STACKED_CACHE)}


def clear_stacked_cache() -> None:
    """Drop every cached stacked program and reset the counters."""
    global _stacked_hits, _stacked_misses
    _STACKED_CACHE.clear()
    _stacked_hits = 0
    _stacked_misses = 0


def stack_programs(progs: Sequence[CompiledPlan]
                   ) -> Optional[StackedProgram]:
    """Stack compatible per-point programs, or ``None``.

    ``None`` means the points do not share section-program structure —
    the fused path must fall back to per-point evaluation.  Results are
    cached by the tuple of point-program fingerprints when every input
    carries one (i.e. came through ``compile_plan``'s cache); stacked
    programs are immutable once built, so sharing them across identical
    point sets cannot leak state.
    """
    global _stacked_hits, _stacked_misses
    if not progs:
        return None
    base = progs[0]
    for other in progs[1:]:
        if not programs_compatible(base, other):
            return None
    fps = tuple(getattr(p, "fingerprint", None) for p in progs)
    key = fps if all(fp is not None for fp in fps) else None
    if key is not None:
        stacked = _STACKED_CACHE.get(key)
        if stacked is not None:
            _stacked_hits += 1
            _STACKED_CACHE.move_to_end(key)
            return stacked
    _stacked_misses += 1
    stacked = StackedProgram(progs)
    if key is not None:
        _STACKED_CACHE[key] = stacked
        while len(_STACKED_CACHE) > _STACKED_CACHE_MAX:
            _STACKED_CACHE.popitem(last=False)
    return stacked
