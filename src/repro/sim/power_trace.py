"""Power-over-time profiles from execution traces.

Converts a traced :class:`~repro.types.SimResult` into the piecewise
power draw `P(t)` of the whole system (busy power per running task plus
idle power for inactive processors), sampled on a uniform grid for
plotting, integration checks and profile comparisons between schemes.

Integrating the profile recovers busy + idle energy — a redundant path
through the numbers the tests use to cross-check the engine's
accounting (overhead energy is event-based and excluded from the
profile; :func:`profile_energy` reports it separately).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..errors import ConfigError
from ..power.model import PowerModel
from ..types import SimResult


@dataclass(frozen=True)
class PowerProfile:
    """System power sampled on a uniform time grid."""

    times: np.ndarray      # grid points, length n
    power: np.ndarray      # P(t) at each grid point, length n
    n_processors: int
    scheme: str

    @property
    def horizon(self) -> float:
        return float(self.times[-1])

    @property
    def peak(self) -> float:
        return float(self.power.max())

    @property
    def mean(self) -> float:
        return float(self.power.mean())

    def energy(self) -> float:
        """Trapezoidal integral of the profile (busy + idle energy)."""
        return float(np.trapezoid(self.power, self.times))


def power_profile(result: SimResult, power: PowerModel,
                  n_processors: int, n_samples: int = 500,
                  horizon: Optional[float] = None) -> PowerProfile:
    """Sample the system power of one traced run.

    The profile is right-continuous between task events; the grid is
    fine enough (default 500 points) that trapezoidal integration
    recovers the energy to well under a percent on the paper workloads.
    """
    if not result.trace:
        raise ConfigError(
            "result has no trace; simulate with collect_trace=True")
    if n_samples < 2:
        raise ConfigError("need at least two samples")
    h = horizon if horizon is not None else result.deadline
    if h <= 0:
        raise ConfigError(f"non-positive horizon {h}")

    times = np.linspace(0.0, h, n_samples)
    total = np.full(n_samples, n_processors * power.idle_power)
    for rec in result.trace:
        p_busy = power.power(rec.speed)
        mask = (times >= rec.start) & (times < rec.finish)
        total[mask] += p_busy - power.idle_power
    return PowerProfile(times=times, power=total,
                        n_processors=n_processors, scheme=result.scheme)


def profile_energy(result: SimResult) -> float:
    """Busy + idle energy of a run (the part a profile integrates)."""
    return result.energy.busy + result.energy.idle


def render_profile(profile: PowerProfile, width: int = 64,
                   height: int = 10) -> str:
    """ASCII rendering of a power profile (bars per time bucket)."""
    if width < 8 or height < 3:
        raise ConfigError("profile rendering needs width>=8, height>=3")
    # average the profile into `width` buckets
    buckets = np.array_split(profile.power, width)
    levels = np.array([b.mean() for b in buckets])
    top = max(profile.peak, 1e-9)
    rows: List[str] = []
    for r in range(height, 0, -1):
        thresh = top * (r - 0.5) / height
        rows.append("".join("#" if lv >= thresh else " "
                            for lv in levels))
    out = [f"# power profile: {profile.scheme}  "
           f"(peak {profile.peak:.3f}, mean {profile.mean:.3f}, "
           f"m={profile.n_processors})"]
    out += [f"{top * r / height:7.3f} |{row}|"
            for r, row in zip(range(height, 0, -1), rows)]
    out.append(" " * 8 + "+" + "-" * width + "+")
    out.append(" " * 9 + f"0{'':{max(width - 12, 0)}}"
               f"{profile.horizon:>10.1f}")
    return "\n".join(out) + "\n"


def compare_profiles(profiles: Sequence[PowerProfile]) -> str:
    """Summary table: peak/mean power and integral per scheme."""
    lines = [f"{'scheme':>8} {'peak P':>8} {'mean P':>8} {'∫P dt':>10}"]
    for p in profiles:
        lines.append(f"{p.scheme:>8} {p.peak:>8.3f} {p.mean:>8.3f} "
                     f"{p.energy():>10.2f}")
    return "\n".join(lines) + "\n"
