"""A literal, event-driven implementation of the Figure 2 protocol.

:mod:`repro.sim.engine` simulates the dispatch protocol in a *derived*
serialized form (dispatch times computed directly in canonical order).
This module implements the protocol the way the paper writes it —
processors as state machines around a shared ready queue, with explicit
``wait()``/``signal()`` sleep and wake-up — as an independent oracle:

* an idle processor inspects the head of the ready queue; if the head
  is the next-expected task and is ready, the processor dequeues and
  runs it, otherwise it sleeps;
* completing a task decrements successors' unfinished-predecessor
  counts; AND nodes cascade instantly; newly ready tasks are enqueued
  in canonical-order position and a sleeping processor is signalled;
* at an OR node all processors synchronize, the branch is selected, and
  the chosen section's tasks are seeded.

Determinism matches the serialized engine's documented tie-break: when
several processors could take a task, the one that became idle earliest
wins (ties by processor id).  With identical plans, policies and
realizations the two engines must produce identical dispatch times,
speeds, energies and switch counts — a property test holds them to it.

This engine is intentionally unoptimized; use :func:`repro.sim.simulate`
for experiments.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, List, Optional, Tuple

from ..errors import DeadlineMissError, SimulationError
from ..offline.plan import OfflinePlan
from ..power.model import PowerModel
from ..power.overhead import OverheadModel
from ..types import EnergyBreakdown, SimResult, TaskRecord
from .realization import Realization

_EPS = 1e-9


class _Processor:
    __slots__ = ("pid", "idle_since", "speed")

    def __init__(self, pid: int, speed: float):
        self.pid = pid
        self.idle_since = 0.0
        self.speed = speed


def simulate_events(plan: OfflinePlan, policy_run, power: PowerModel,
                    overhead: OverheadModel, realization: Realization,
                    collect_trace: bool = False,
                    check_deadline: bool = True) -> SimResult:
    """Event-driven counterpart of :func:`repro.sim.engine.simulate`."""
    app = plan.app
    graph = app.graph
    structure = plan.structure
    m = plan.n_processors
    deadline = app.deadline

    fixed = policy_run.fixed_speed
    t_section = 0.0
    energy = EnergyBreakdown()
    busy_time = 0.0
    overhead_time = 0.0
    n_changes = 0
    n_tasks = 0
    trace: List[TaskRecord] = []
    path_choices: Dict[str, str] = {}

    initial_speed = power.s_max
    if fixed is not None and abs(fixed - power.s_max) > _EPS:
        t_section = overhead.adjust_time
        overhead_time += m * overhead.adjust_time
        energy.overhead += m * overhead.adjustment_energy(power)
        n_changes += m
        initial_speed = fixed

    procs = [_Processor(i, initial_speed) for i in range(m)]
    for p in procs:
        p.idle_since = t_section

    sid = structure.root_id
    t_end = t_section

    while True:
        sp = plan.sections[sid]
        section = structure.section(sid)
        # the canonical-order constraint applies to computation tasks
        # (AND nodes are dummy: they fire instantly, outside the queue)
        comp_order = [n for n in sp.dispatch_order
                      if graph.node(n).is_computation]
        order_pos = {name: i for i, name in enumerate(comp_order)}
        unfinished = {name: len(sp.preds_within[name])
                      for name in sp.dispatch_order}
        finishes: Dict[str, float] = {}
        # ready queue ordered by canonical dispatch position
        ready: List[Tuple[int, str]] = []
        next_expected = 0
        done = 0
        total = len(sp.dispatch_order)
        # completion events: (time, seq, task, processor)
        events: List[Tuple[float, int, str, int]] = []
        seq = 0
        now = t_section

        def complete(name: str, t: float) -> None:
            nonlocal done
            done += 1
            finishes[name] = t
            for s in graph.successors(name):
                if s in unfinished:
                    unfinished[s] -= 1
                    if unfinished[s] == 0:
                        arrive(s, t)

        def arrive(name: str, t: float) -> None:
            node = graph.node(name)
            if node.is_and:
                # dummy task: completes the instant it becomes ready
                complete(name, t)
            else:
                heapq.heappush(ready, (order_pos[name], name))

        # seed the section's entry nodes
        roots = [n for n in sp.dispatch_order if unfinished[n] == 0]
        for name in roots:
            arrive(name, t_section)

        def try_dispatch(t: float) -> None:
            """Idle processors serve the queue head if next-expected."""
            nonlocal next_expected, busy_time, overhead_time, n_changes
            nonlocal n_tasks, seq
            while ready:
                pos, name = ready[0]
                if pos != next_expected:
                    # head is not the next expected task: everyone waits
                    return
                idle = [p for p in procs if p.idle_since <= t + _EPS]
                if not idle:
                    return
                proc = min(idle, key=lambda p: (p.idle_since, p.pid))
                heapq.heappop(ready)
                next_expected = pos + 1

                node = graph.node(name)
                actual = realization.actual(name)
                c = node.wcet
                if actual > c * (1 + 1e-9):
                    raise SimulationError(
                        f"actual time {actual} of {name!r} exceeds WCET")
                if fixed is not None:
                    speed = fixed
                    start_exec = t
                    changed = False
                else:
                    s_cur = proc.speed
                    t_comp = overhead.computation_time(power, s_cur)
                    avail = sp.finish_bound[name] - t - t_comp
                    denom = avail - overhead.adjust_time
                    s_req = c / denom if denom > 0 else math.inf
                    target = max(s_req, policy_run.floor(t))
                    if target > power.s_max * (1 + 1e-6):
                        raise SimulationError(
                            f"guarantee violated for {name!r} at "
                            f"t={t:.6g}")
                    speed = power.snap_up(min(target, power.s_max))
                    changed = abs(speed - s_cur) > _EPS
                    t_adj = overhead.adjust_time if changed else 0.0
                    start_exec = t + t_comp + t_adj
                    if t_comp > 0:
                        overhead_time += t_comp
                        energy.overhead += power.busy_energy(s_cur,
                                                             t_comp)
                    if changed:
                        overhead_time += t_adj
                        energy.overhead += \
                            overhead.adjustment_energy(power)
                        n_changes += 1
                        proc.speed = speed

                wall = actual / speed
                finish = start_exec + wall
                busy_time += wall
                energy.busy += power.busy_energy(speed, wall)
                proc.idle_since = math.inf  # busy until completion event
                n_tasks += 1
                seq += 1
                heapq.heappush(events, (finish, seq, name, proc.pid))
                if collect_trace:
                    trace.append(TaskRecord(
                        name=name, processor=proc.pid, start=start_exec,
                        finish=finish, speed=speed, actual_cycles=actual,
                        energy=power.busy_energy(speed, wall),
                        speed_changed=changed))

        try_dispatch(now)
        while done < total:
            if not events:
                raise SimulationError(
                    f"section {sid} stalled at t={now:.6g}: "
                    f"{total - done} nodes unfinished and no task "
                    "running")
            finish, _, name, pid = heapq.heappop(events)
            now = finish
            procs[pid].idle_since = now
            complete(name, now)
            # drain simultaneous completions before dispatching
            while events and events[0][0] <= now + 1e-15:
                f2, _, n2, p2 = heapq.heappop(events)
                procs[p2].idle_since = f2
                complete(n2, f2)
            try_dispatch(now)

        t_end = max(finishes.values(), default=t_section)
        t_end = max(t_end, t_section)

        exit_or = section.exit_or
        if exit_or is None:
            break
        branches = structure.branches(exit_or)
        if not branches:
            break
        if len(branches) == 1:
            target = branches[0][0]
        else:
            target = realization.choices[exit_or]
        path_choices[exit_or] = str(target)
        t_section = t_end
        for p in procs:
            p.idle_since = t_end  # processors synchronize at the OR
        if fixed is None:
            policy_run.on_or_fired(exit_or, target, t_end)
        sid = target

    finish_time = t_end
    if check_deadline and finish_time > deadline * (1 + 1e-9) + _EPS:
        raise DeadlineMissError(finish_time, deadline,
                                scheme=policy_run.name)
    window = m * max(deadline, finish_time)
    idle_time = window - busy_time - overhead_time
    if idle_time < -1e-6 * max(deadline, 1.0):
        raise SimulationError(f"negative idle time {idle_time}")
    energy.idle = power.idle_energy(max(idle_time, 0.0))

    return SimResult(
        scheme=policy_run.name,
        finish_time=finish_time,
        deadline=deadline,
        energy=energy,
        n_speed_changes=n_changes,
        n_tasks_run=n_tasks,
        trace=trace,
        path_choices=path_choices,
    )
