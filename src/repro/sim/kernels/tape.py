"""Flat numeric tape form of a compiled section program.

A :class:`~repro.sim.compiled.CompiledPlan` (or a
:class:`~repro.sim.sweepc.StackedProgram`) stores each section as a
tuple of per-entry tuples — convenient to build, but the batch kernels
then pay CPython tuple unpacking and a nested ``for p in preds`` Python
reduction on every entry of every path group.  This module lowers a
program once into a **tape**: parallel ``int32``/``float64`` arrays per
section —

* ``kind``  — 1 for AND nodes, 0 for computation tasks;
* ``gid``   — the entry's slot in the global finishes buffer;
* ``col``   — its column in the realization matrix (``-1`` for AND);
* ``c``/``fb`` — WCET and finish bound (the scalar lanes);
* ``pred_off``/``pred_idx`` — intra-section predecessors in CSR form,
  so the readiness max-reduction becomes one gather + ``max`` over the
  CSR row instead of a Python loop;

plus, for stacked programs whose constants vary per sweep point,
``c_pt``/``fb_pt`` matrices of shape ``(n_entries, n_points)`` with
scalar rows broadcast — one fancy-index per section per path group then
gathers *every* entry's per-run constants at once.  Broadcasting a
scalar to a vector changes no float: the kernels perform the same
elementwise operations on the same values, so tape execution stays
bit-identical to the entry-tuple loop.

Entry *names* survive only in ``names`` for error paths (WCET
violations, guarantee violations); the hot loop never touches a string.

The tape is built lazily and cached on the program instance
(``prog._tape``), so it compiles once per program per process and
travels with the program through the pool initializer.  ``steps`` is a
derived iteration structure for the pure-NumPy interpreter (pre-split
predecessor rows: ``None`` / single ``int`` / index array); the
canonical arrays above are what the JIT tier consumes.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

_tape_hits = 0
_tape_misses = 0


def tape_cache_stats() -> Dict[str, int]:
    """Hit/miss counters of this process's tape builds (hits = a program
    whose tape was already built, misses = fresh lowerings)."""
    return {"hits": _tape_hits, "misses": _tape_misses}


def clear_tape_cache() -> None:
    """Reset the tape hit/miss counters (tapes themselves live on their
    program instances and are dropped with them)."""
    global _tape_hits, _tape_misses
    _tape_hits = 0
    _tape_misses = 0


class SectionTape:
    """One section of a program, lowered to flat arrays."""

    __slots__ = ("n_entries", "kind", "gid", "col", "c", "fb",
                 "pred_off", "pred_idx", "names", "steps",
                 "c_pt", "fb_pt", "c_list", "fb_list",
                 "comp_sel", "comp_cols", "c_guard")

    def __init__(self, sec, n_points: int):
        entries = sec.entries
        n = len(entries)
        self.n_entries = n
        kind = np.empty(n, dtype=np.int32)
        gid = np.empty(n, dtype=np.int32)
        col = np.empty(n, dtype=np.int32)
        c_lane = np.empty(n, dtype=np.float64)
        fb_lane = np.empty(n, dtype=np.float64)
        pred_off = np.zeros(n + 1, dtype=np.int32)
        pred_flat = []
        steps = []
        names = []
        c_cols = []
        fb_cols = []
        stacked = False
        n_comp = 0
        for e, (is_and, g, cl, c, fb, name, preds) in enumerate(entries):
            kind[e] = 1 if is_and else 0
            gid[e] = g
            col[e] = cl
            names.append(name)
            pred_flat.extend(preds)
            pred_off[e + 1] = len(pred_flat)
            if not preds:
                pred = None
            elif len(preds) == 1:
                pred = int(preds[0])
            else:
                pred = np.asarray(preds, dtype=np.intp)
            # crel: this entry's ordinal among the section's computation
            # entries — its column in the interpreter's per-section
            # precomputed matrices (-1 for AND nodes, never used)
            crel = -1
            if not is_and:
                crel = n_comp
                n_comp += 1
            steps.append((bool(is_and), int(g), int(cl), pred, crel))
            c_cols.append(c)
            fb_cols.append(fb)
            c_vec = isinstance(c, np.ndarray)
            fb_vec = isinstance(fb, np.ndarray)
            stacked = stacked or c_vec or fb_vec
            # the scalar lane is only meaningful when c_pt/fb_pt is None
            c_lane[e] = np.nan if c_vec else float(c)
            fb_lane[e] = np.nan if fb_vec else float(fb)
        self.kind = kind
        self.gid = gid
        self.col = col
        self.c = c_lane
        self.fb = fb_lane
        self.pred_off = pred_off
        self.pred_idx = np.asarray(pred_flat, dtype=np.int32)
        self.names = tuple(names)
        self.steps = tuple(steps)
        self.c_list = tuple(c_cols)
        self.fb_list = tuple(fb_cols)
        #: computation entries only: their entry indices, realization
        #: columns, and WCET guard row (``c * (1 + 1e-9)``, the exact
        #: product the per-entry check computes) — lets the interpreter
        #: run one whole-section WCET check instead of one per entry
        self.comp_sel = np.nonzero(kind == 0)[0].astype(np.intp)
        self.comp_cols = col[self.comp_sel].astype(np.intp)
        self.c_guard = c_lane[self.comp_sel] * (1 + 1e-9)
        self.c_pt: Optional[np.ndarray] = None
        self.fb_pt: Optional[np.ndarray] = None
        if stacked and n_points:
            c_pt = np.empty((n, n_points))
            fb_pt = np.empty((n, n_points))
            for e in range(n):
                c_pt[e, :] = c_cols[e]   # broadcasts point-agreed scalars
                fb_pt[e, :] = fb_cols[e]
            self.c_pt = c_pt
            self.fb_pt = fb_pt


class ProgramTape:
    """The tape of every section of one program, plus per-path caches."""

    __slots__ = ("sections", "n_points", "path_cache", "_wcet_cache")

    def __init__(self, sections: Dict[int, SectionTape], n_points: int):
        self.sections = sections
        self.n_points = n_points
        #: flattened (concatenated-section) views per executed path,
        #: built on demand by the JIT driver
        self.path_cache: Dict[Tuple[int, ...], tuple] = {}
        self._wcet_cache: Dict[Tuple[int, ...], tuple] = {}

    def path_wcet(self, path: Tuple[int, ...]) -> tuple:
        """Cached per-path WCET-check arrays ``(cols, offs, guard,
        g_pt)``: the realization columns of every computation entry on
        the path (section by section, path order), per-section offsets
        into that concatenation (section ``i``'s entries sit at
        ``cols[offs[i]:offs[i+1]]``), and the guard — the precomputed
        ``c * (1 + 1e-9)`` row for programs with scalar constants
        (``g_pt`` is then ``None``), or a per-point ``(n_comp,
        n_points)`` WCET matrix for stacked programs (``guard`` is then
        ``None``; scalar-collapsed sections are broadcast into it, the
        same floats either way)."""
        hit = self._wcet_cache.get(path)
        if hit is not None:
            return hit
        col_parts = []
        offs = [0]
        for sid in path:
            st = self.sections[sid]
            col_parts.append(st.comp_cols)
            offs.append(offs[-1] + st.comp_cols.size)
        cols = (np.concatenate(col_parts) if col_parts
                else np.empty(0, dtype=np.intp))
        offs_arr = np.asarray(offs, dtype=np.intp)
        guard = None
        g_pt = None
        if self.n_points:
            rows = [self.sections[sid].c_pt[self.sections[sid].comp_sel]
                    if self.sections[sid].c_pt is not None
                    else np.broadcast_to(
                        self.sections[sid].c[
                            self.sections[sid].comp_sel][:, None],
                        (self.sections[sid].comp_sel.size, self.n_points))
                    for sid in path]
            g_pt = (np.concatenate(rows) if rows
                    else np.empty((0, self.n_points)))
        else:
            guard = (np.concatenate([self.sections[sid].c_guard
                                     for sid in path]) if path
                     else np.empty(0))
        entry = (cols, offs_arr, guard, g_pt)
        self._wcet_cache[path] = entry
        return entry


def build_tape(prog) -> ProgramTape:
    """The program's tape, lowered once and cached on the instance."""
    global _tape_hits, _tape_misses
    tape = getattr(prog, "_tape", None)
    if tape is not None:
        _tape_hits += 1
        return tape
    _tape_misses += 1
    n_points = int(getattr(prog, "n_points", 0) or 0)
    tape = ProgramTape({sid: SectionTape(sec, n_points)
                        for sid, sec in prog.sections.items()}, n_points)
    prog._tape = tape
    return tape
