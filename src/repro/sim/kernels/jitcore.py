"""Scalar tape cores for the ``jit`` tier.

Each core replays one path group run by run as a plain scalar loop over
the flattened tape (sections of the executed path concatenated, with
``sec_end`` marking boundaries).  The functions here are written in the
numba *nopython* subset — flat loops, no Python objects, fixed-dtype
arrays, tuple returns — but they are ordinary Python functions:
:mod:`.jit` wraps them with ``numba.njit(cache=True, fastmath=False)``
when numba is importable and runs them uncompiled otherwise, so the
exact code the JIT compiles is also directly unit-testable without
numba.

Bit-identity with the vectorized tiers: a vectorized kernel applies
each elementwise operation to every lane of a group in entry order;
these cores apply the same operations to one lane at a time in the same
entry order.  Elementwise float ops have no cross-lane interaction, so
the per-run float sequences — and therefore the results — are
identical.  ``fastmath=False`` keeps numba from licensing reassociation
that would break this.

Errors are returned as codes (entry index, run index, payload floats)
and raised by the driver, which still owns the entry names; *which* run
surfaces an error may differ from the vectorized tiers (first run with
any violation, vs. the first violating lane of the first violating
entry), matching the documented group-order error contract.
"""

from __future__ import annotations

import math

import numpy as np

#: error codes returned by the cores
OK = 0
ERR_WCET = 1
ERR_GUARANTEE = 2


def fixed_core(block, kind, gid, col, c_flat, c_stk, stacked, sec_end,
               pred_off, pred_idx, m, n_slots, t0, speed, p_busy,
               busy_time, e_busy, t_end_out):
    """Fixed-speed replay of one path group.

    ``block`` is the group's ``(ng, n_tasks)`` actual-time matrix;
    ``t0``/``speed``/``p_busy`` are per-run ``(ng,)`` vectors (scalars
    pre-broadcast by the driver — same floats, see module docstring).
    ``c_stk`` is the ``(n_entries, ng)`` per-run WCET matrix when
    ``stacked``, else an empty placeholder and ``c_flat`` holds the
    scalar lane.  Outputs are written into ``busy_time``/``e_busy``/
    ``t_end_out``; returns ``(code, entry, run, v0, v1)``.
    """
    ng = block.shape[0]
    n_secs = sec_end.shape[0] - 1
    fin = np.zeros(n_slots)
    proc_free = np.zeros(m)
    for k in range(ng):
        t_section = t0[k]
        last_dispatch = t0[k]
        for j in range(m):
            proc_free[j] = t_section
        sp = speed[k]
        pb = p_busy[k]
        bt = 0.0
        eb = 0.0
        t_end = t_section
        for s in range(n_secs):
            have_max = False
            sec_max = 0.0
            for e in range(sec_end[s], sec_end[s + 1]):
                ready = t_section
                for q in range(pred_off[e], pred_off[e + 1]):
                    f = fin[pred_idx[q]]
                    if f > ready:
                        ready = f
                if kind[e] == 1:
                    fin[gid[e]] = ready
                    if not have_max or ready > sec_max:
                        sec_max = ready
                        have_max = True
                    continue

                j = 0
                pf = proc_free[0]
                for jj in range(1, m):
                    if proc_free[jj] < pf:  # first-idle, lowest id
                        pf = proc_free[jj]
                        j = jj
                t = ready
                if last_dispatch > t:
                    t = last_dispatch
                if pf > t:
                    t = pf
                last_dispatch = t
                actual = block[k, col[e]]
                cv = c_stk[e, k] if stacked else c_flat[e]
                if actual > cv * (1 + 1e-9):
                    return (ERR_WCET, e, k, actual, cv)
                wall = actual / sp
                finish = t + wall
                bt += wall
                eb += pb * wall
                proc_free[j] = finish
                fin[gid[e]] = finish
                if not have_max or finish > sec_max:
                    sec_max = finish
                    have_max = True

            if have_max and sec_max > t_section:
                t_end = sec_max
            else:
                t_end = t_section
            t_section = t_end
            last_dispatch = t_end
            for j in range(m):
                proc_free[j] = t_end
        busy_time[k] = bt
        e_busy[k] = eb
        t_end_out[k] = t_end
    return (OK, -1, -1, 0.0, 0.0)


def dynamic_core(block, kind, gid, col, c_flat, c_stk, fb_flat, fb_stk,
                 stacked, sec_end, pred_off, pred_idx, m, n_slots,
                 speeds, pows, tcs, adjust_time, adj_energy, s_max,
                 s_max_guard, eps, fc, f_lo, f_hi, theta, has_step,
                 work, has_respec, dl,
                 busy_time, overhead_time, e_busy, e_over, changes,
                 t_end_out):
    """Dynamic-scheme replay of one path group.

    ``speeds``/``pows``/``tcs`` are the discrete level tables;
    ``fc``/``f_lo``/``f_hi``/``theta``/``dl`` per-run ``(ng,)`` vectors;
    ``work`` the ``(n_secs - 1, ng)`` respec work matrix (empty when
    ``has_respec`` is false).  Snap-up is an inlined
    ``bisect_left(speeds, want - 1e-12)`` clipped to the top level —
    the same epsilon and side as ``DiscretePowerModel.snap_up`` and the
    vectorized ``searchsorted``.
    """
    ng = block.shape[0]
    n_secs = sec_end.shape[0] - 1
    n_lv = speeds.shape[0]
    fin = np.zeros(n_slots)
    proc_free = np.zeros(m)
    proc_idx = np.zeros(m, dtype=np.intp)
    for k in range(ng):
        t_section = 0.0
        last_dispatch = 0.0
        for j in range(m):
            proc_free[j] = 0.0
            proc_idx[j] = n_lv - 1
        bt = 0.0
        ot = 0.0
        eb = 0.0
        eo = 0.0
        ch = 0
        fl_respec = 0.0
        use_respec_floor = False
        t_end = 0.0
        for s in range(n_secs):
            have_max = False
            sec_max = 0.0
            for e in range(sec_end[s], sec_end[s + 1]):
                ready = t_section
                for q in range(pred_off[e], pred_off[e + 1]):
                    f = fin[pred_idx[q]]
                    if f > ready:
                        ready = f
                if kind[e] == 1:
                    fin[gid[e]] = ready
                    if not have_max or ready > sec_max:
                        sec_max = ready
                        have_max = True
                    continue

                j = 0
                pf = proc_free[0]
                for jj in range(1, m):
                    if proc_free[jj] < pf:  # first-idle, lowest id
                        pf = proc_free[jj]
                        j = jj
                t = ready
                if last_dispatch > t:
                    t = last_dispatch
                if pf > t:
                    t = pf
                last_dispatch = t
                actual = block[k, col[e]]
                if stacked:
                    cv = c_stk[e, k]
                    fbv = fb_stk[e, k]
                else:
                    cv = c_flat[e]
                    fbv = fb_flat[e]
                if actual > cv * (1 + 1e-9):
                    return (ERR_WCET, e, k, actual, cv)

                si = proc_idx[j]
                t_comp = tcs[si]
                avail = fbv - t - t_comp
                denom = avail - adjust_time
                if denom > 0:
                    s_req = cv / denom
                else:
                    s_req = math.inf
                if has_step:
                    fl = f_lo[k] if t < theta[k] else f_hi[k]
                elif use_respec_floor:
                    fl = fl_respec
                else:
                    fl = fc[k]
                target = s_req if s_req > fl else fl
                if target > s_max_guard:
                    return (ERR_GUARANTEE, e, k, target, t)
                want = target if target < s_max else s_max
                # snap up: bisect_left(speeds, want - 1e-12), clipped
                x = want - 1e-12
                lo = 0
                hi = n_lv
                while lo < hi:
                    mid = (lo + hi) // 2
                    if speeds[mid] < x:
                        lo = mid + 1
                    else:
                        hi = mid
                new_idx = lo if lo < n_lv else n_lv - 1
                sp = speeds[new_idx]
                s_cur = speeds[si]
                diff = sp - s_cur
                if diff < 0.0:
                    diff = -diff
                changed = diff > eps
                t_adj = adjust_time if changed else 0.0
                start_exec = t + t_comp + t_adj
                ot += t_comp
                eo += pows[si] * t_comp
                ot += t_adj
                if changed:
                    eo += adj_energy
                    ch += 1
                    proc_idx[j] = new_idx

                wall = actual / sp
                finish = start_exec + wall
                bt += wall
                eb += pows[new_idx] * wall
                proc_free[j] = finish
                fin[gid[e]] = finish
                if not have_max or finish > sec_max:
                    sec_max = finish
                    have_max = True

            if have_max and sec_max > t_section:
                t_end = sec_max
            else:
                t_end = t_section
            t_section = t_end
            last_dispatch = t_end
            for j in range(m):
                proc_free[j] = t_end
            if has_respec and s + 1 < n_secs:
                horizon = dl[k] - t_end
                if horizon > 0:
                    raw = work[s, k] / horizon
                    want = raw if raw < s_max else s_max
                    x = want - 1e-12
                    lo = 0
                    hi = n_lv
                    while lo < hi:
                        mid = (lo + hi) // 2
                        if speeds[mid] < x:
                            lo = mid + 1
                        else:
                            hi = mid
                    snap = lo if lo < n_lv else n_lv - 1
                    fl_respec = speeds[snap]
                else:
                    fl_respec = s_max
                use_respec_floor = True
        busy_time[k] = bt
        overhead_time[k] = ot
        e_busy[k] = eb
        e_over[k] = eo
        changes[k] = ch
        t_end_out[k] = t_end
    return (OK, -1, -1, 0.0, 0.0)
