"""The ``numpy`` kernel tier: batch kernels over the lowered tape.

Same group-at-a-time vectorization as the legacy entry-tuple loop in
``repro.sim.compiled``, but iterating the program's
:class:`~repro.sim.kernels.tape.SectionTape` instead of per-entry
tuples: predecessor readiness is a CSR-row gather + ``max`` reduction
(one ``np.maximum`` against the single-predecessor column, or a fancy
slice ``fin[:, pred].max(axis=1)`` for joins) and a stacked section's
per-point constants are gathered for *all* entries at once
(``c_pt[:, pt]``) instead of one ``_gather`` per entry.

Bit-identity with the legacy tier holds operation by operation:

* ``max(a, max(b, c))`` equals the legacy fold ``maximum(maximum(...))``
  exactly — max is associative and exact on floats;
* when an entry has no predecessors, ``ready`` aliases ``t_section``
  instead of copying it; both kernels only ever *rebind* ``t_section``,
  never mutate it in place, so the values are the same objects' floats;
* the per-entry constant is the same float whether read from the tape
  lane, the Python tuple, or a broadcast row of ``c_pt``;
* the WCET check runs once per *path group* over every computation
  entry on the path at once (``act > guard`` with the guard products
  precomputed and concatenated per path on the tape) instead of once
  per entry — the same comparisons on the same floats, just batched —
  and the fixed kernel likewise batches ``actual / speed`` and the
  busy-energy product per section (identical elementwise operations,
  consumed column by column in entry order).

Error classes, messages and the group-order error surface match the
legacy kernels; entry names come from ``tape.names`` only on those
paths (the path-level check re-scans section by section on violation
to reproduce the legacy selection: first entry in path order with any
violating run, first violating run in the group).  One documented
divergence: because the WCET check is hoisted ahead of the group's
dispatch loop, a batch containing *both* a WCET violation and a
guarantee violation in the same path group may report the WCET error
where the legacy entry loop would have reported the guarantee error
first.  Realization sampling clamps actuals to WCET, so this defensive
path never fires on sampler-produced batches.
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from ...errors import DeadlineMissError, SimulationError
from ...power.model import PowerModel
from ...power.overhead import OverheadModel
from ..compiled import (
    _EPS,
    DynamicBatchResult,
    FixedBatchResult,
    _at,
    _gather,
)
from .tape import build_tape


def _check_wcet(st, block: np.ndarray,
                c_all: Optional[np.ndarray]) -> np.ndarray:
    """One whole-section WCET check; returns the section's actual-time
    columns ``(ng, n_comp)`` in computation-entry order.

    The guard products (``c * (1 + 1e-9)``) are precomputed on the tape
    for the scalar case, so the comparisons are float-for-float the ones
    the per-entry legacy loop performs.  On violation the raised error
    replicates the legacy selection exactly: the first entry in entry
    order with any violating run, the first violating run within the
    group, and the same message.
    """
    act = block[:, st.comp_cols]
    if c_all is not None:
        viol = act > c_all[st.comp_sel].T * (1 + 1e-9)
    else:
        viol = act > st.c_guard
    if viol.any():
        e_rel = int(np.nonzero(viol.any(axis=0))[0][0])
        e = int(st.comp_sel[e_rel])
        k = int(np.argmax(viol[:, e_rel]))
        c_g = c_all[e] if c_all is not None else st.c_list[e]
        raise SimulationError(
            f"actual time {act[k, e_rel]} of {st.names[e]!r} "
            f"exceeds WCET {_at(c_g, k)}")
    return act


def _raise_first_wcet(tape, path, block: np.ndarray,
                      pt: Optional[np.ndarray]) -> None:
    """Legacy-order error selection once the path-level WCET check has
    tripped: re-scan the sections in path order; the first one with a
    violation raises through :func:`_check_wcet`."""
    for sid in path:
        st = tape.sections[sid]
        if st.comp_sel.size:
            c_all = (st.c_pt[:, pt]
                     if st.c_pt is not None and pt is not None else None)
            _check_wcet(st, block, c_all)
    raise AssertionError(
        "path-level WCET check tripped but no section reproduced it")


def run_fixed_tape(prog, power: PowerModel,
                   overhead: OverheadModel, matrix: np.ndarray,
                   groups, path_keys: List[str], speed,
                   scheme: str,
                   check_deadline: bool = True,
                   point_of: Optional[np.ndarray] = None
                   ) -> FixedBatchResult:
    """Tape-interpreted :func:`repro.sim.compiled.run_fixed_batch`."""
    tape = build_tape(prog)
    n = matrix.shape[0]
    m = prog.m
    deadline = prog.deadline
    s_max = power.s_max

    if isinstance(speed, np.ndarray):
        switched = np.abs(speed - s_max) > _EPS
        t0 = np.where(switched, overhead.adjust_time, 0.0)
        overhead_time = np.where(switched, m * overhead.adjust_time, 0.0)
        e_over = np.where(switched, m * overhead.adjustment_energy(power),
                          0.0)
        n_changes = np.where(switched, m, 0)
        p_busy = power.power_table(speed)
    else:
        switched = abs(speed - s_max) > _EPS
        t0 = overhead.adjust_time if switched else 0.0
        overhead_time = m * overhead.adjust_time if switched else 0.0
        e_over = m * overhead.adjustment_energy(power) if switched else 0.0
        n_changes = m if switched else 0
        p_busy = power.power(speed)
    idle_power = power.idle_power

    total_energy = np.empty(n)
    finish_time = np.empty(n)

    for path, idx in groups:
        block = matrix[idx]
        ng = idx.size
        rows = np.arange(ng)
        pt = point_of[idx] if point_of is not None else None
        speed_g = _gather(speed, pt)
        p_busy_g = _gather(p_busy, pt)
        t0_g = _gather(t0, pt)
        dl_g = _gather(deadline, pt)
        ot_g = _gather(overhead_time, pt)
        eo_g = _gather(e_over, pt)
        fin = np.empty((ng, prog.n_slots))
        if isinstance(t0_g, np.ndarray):
            proc_free = np.repeat(t0_g[:, None], m, axis=1)
            last_dispatch = t0_g.copy()
            t_section = t0_g.copy()
            t_end = t0_g.copy()
        else:
            proc_free = np.full((ng, m), t0_g)
            last_dispatch = np.full(ng, t0_g)
            t_section = np.full(ng, t0_g)
            t_end = np.full(ng, t0_g)
        busy_time = np.zeros(ng)
        e_busy = np.zeros(ng)

        cols, offs, guard, g_pt = tape.path_wcet(path)
        if cols.size:
            # one gather and one WCET check for the whole path group;
            # on violation the error path re-scans section by section
            # so the raised error matches the legacy per-entry
            # selection exactly
            act_path = block[:, cols]
            viol = (act_path > g_pt[:, pt].T * (1 + 1e-9)
                    if g_pt is not None and pt is not None
                    else act_path > guard)
            if viol.any():
                _raise_first_wcet(tape, path, block, pt)

        for sec_i, sid in enumerate(path):
            st = tape.sections[sid]
            sec_max = None
            if st.comp_sel.size:
                # the section's slice of the path gather (a view), its
                # wall-time division and busy-power product batched;
                # the dispatch loop below consumes them column by
                # column in entry order
                act = act_path[:, offs[sec_i]:offs[sec_i + 1]]
                wall_all = (act / speed_g[:, None]
                            if isinstance(speed_g, np.ndarray)
                            else act / speed_g)
                e_all = (wall_all * p_busy_g[:, None]
                         if isinstance(p_busy_g, np.ndarray)
                         else wall_all * p_busy_g)
            for is_and, gid, col, pred, crel in st.steps:
                if pred is None:
                    ready = t_section
                elif type(pred) is int:
                    ready = np.maximum(t_section, fin[:, pred])
                else:
                    ready = np.maximum(t_section, fin[:, pred].max(axis=1))
                if is_and:
                    fin[:, gid] = ready
                    if sec_max is None:
                        sec_max = ready.copy()
                    else:
                        np.maximum(sec_max, ready, out=sec_max)
                    continue

                # ndarray methods dodge the np.* python wrappers (~1us
                # per call); identical algorithm, identical result
                j = proc_free.argmin(axis=1)  # first-idle, lowest id
                t = np.maximum(np.maximum(ready, last_dispatch),
                               proc_free[rows, j])
                last_dispatch = t
                wall = wall_all[:, crel]
                finish = t + wall
                busy_time += wall
                e_busy += e_all[:, crel]
                proc_free[rows, j] = finish
                fin[:, gid] = finish
                if sec_max is None:
                    sec_max = finish.copy()
                else:
                    np.maximum(sec_max, finish, out=sec_max)

            if sec_max is None:
                t_end = t_section
            else:
                t_end = np.maximum(sec_max, t_section)
            t_section = t_end
            last_dispatch = t_end
            proc_free = np.broadcast_to(t_end[:, None], (ng, m)).copy()

        if check_deadline:
            late = t_end > dl_g * (1 + 1e-9) + _EPS
            if late.any():
                k = int(np.argmax(late))
                raise DeadlineMissError(float(t_end[k]),
                                        float(_at(dl_g, k)),
                                        scheme=scheme)
        window = m * np.maximum(dl_g, t_end)
        idle_time = window - busy_time - ot_g
        if isinstance(dl_g, np.ndarray):
            thresh = -1e-6 * np.where(dl_g > 1.0, dl_g, 1.0)
        else:
            thresh = -1e-6 * (dl_g if dl_g > 1.0 else 1.0)
        bad = idle_time < thresh
        if bad.any():
            k = int(np.argmax(bad))
            raise SimulationError(
                f"negative idle time {idle_time[k]}: busy={busy_time[k]}, "
                f"overhead={_at(ot_g, k)}, window={window[k]}")
        e_idle = idle_power * np.maximum(idle_time, 0.0)
        total_energy[idx] = e_busy + e_idle + eo_g
        finish_time[idx] = t_end

    return FixedBatchResult(scheme, total_energy, finish_time, n_changes,
                            list(path_keys))


# one errstate for the whole kernel instead of one context per entry
# (~1us each); it only silences divide/invalid *warnings* — the guarded
# np.where selections below are unchanged float for float
@np.errstate(divide="ignore", invalid="ignore")
def run_dynamic_tape(prog, power: PowerModel,
                     overhead: OverheadModel, matrix: np.ndarray,
                     groups, path_keys: List[str], policy_run,
                     scheme: str,
                     check_deadline: bool = True,
                     point_of: Optional[np.ndarray] = None
                     ) -> DynamicBatchResult:
    """Tape-interpreted :func:`repro.sim.compiled.run_dynamic_batch`."""
    tape = build_tape(prog)
    n = matrix.shape[0]
    m = prog.m
    deadline = prog.deadline
    s_max = power.s_max
    s_max_guard = s_max * (1 + 1e-6)

    speeds_arr = power.level_speed_table()
    n_lv = speeds_arr.size
    pow_arr = power.level_power_table()
    tc_arr = overhead.computation_time_table(power)
    adjust_time = overhead.adjust_time
    adj_energy = overhead.adjustment_energy(power)
    idle_power = power.idle_power

    fc = policy_run.floor_const
    step = policy_run.floor_step
    respec = policy_run.or_respec

    total_energy = np.empty(n)
    finish_time = np.empty(n)
    n_changes = np.empty(n, dtype=np.int64)

    for path, idx in groups:
        block = matrix[idx]
        ng = idx.size
        rows = np.arange(ng)
        pt = point_of[idx] if point_of is not None else None
        fc_g = _gather(fc, pt)
        if step is not None:
            f_lo_g = _gather(step[0], pt)
            f_hi_g = _gather(step[1], pt)
            theta_g = _gather(step[2], pt)
        dl_g = _gather(deadline, pt)
        fin = np.empty((ng, prog.n_slots))
        proc_free = np.zeros((ng, m))
        proc_idx = np.full((ng, m), n_lv - 1, dtype=np.intp)
        last_dispatch = np.zeros(ng)
        t_section = np.zeros(ng)
        busy_time = np.zeros(ng)
        overhead_time = np.zeros(ng)
        e_busy = np.zeros(ng)
        e_over = np.zeros(ng)
        changes = np.zeros(ng, dtype=np.int64)
        fl_vec = None
        t_end = np.zeros(ng)

        cols, _offs, guard, g_pt = tape.path_wcet(path)
        if cols.size:
            # one gather and one WCET check for the whole path group
            # (see run_fixed_tape and the module docstring)
            act_path = block[:, cols]
            viol = (act_path > g_pt[:, pt].T * (1 + 1e-9)
                    if g_pt is not None and pt is not None
                    else act_path > guard)
            if viol.any():
                _raise_first_wcet(tape, path, block, pt)

        for pos, sid in enumerate(path):
            st = tape.sections[sid]
            stacked = st.c_pt is not None and pt is not None
            c_all = st.c_pt[:, pt] if stacked else None
            fb_all = st.fb_pt[:, pt] if stacked else None
            sec_max = None
            for e, (is_and, gid, col, pred, _crel) in enumerate(st.steps):
                if pred is None:
                    ready = t_section
                elif type(pred) is int:
                    ready = np.maximum(t_section, fin[:, pred])
                else:
                    ready = np.maximum(t_section, fin[:, pred].max(axis=1))
                if is_and:
                    fin[:, gid] = ready
                    if sec_max is None:
                        sec_max = ready.copy()
                    else:
                        np.maximum(sec_max, ready, out=sec_max)
                    continue

                j = proc_free.argmin(axis=1)  # first-idle, lowest id
                t = np.maximum(np.maximum(ready, last_dispatch),
                               proc_free[rows, j])
                last_dispatch = t
                actual = block[:, col]
                if stacked:
                    c_g = c_all[e]
                    fb_g = fb_all[e]
                else:
                    # an unstacked section's constants are always
                    # scalars (vectors force c_pt/fb_pt), so skip the
                    # _gather call
                    c_g = st.c_list[e]
                    fb_g = st.fb_list[e]

                si = proc_idx[rows, j]
                t_comp = tc_arr[si]
                avail = fb_g - t - t_comp
                denom = avail - adjust_time
                s_req = np.where(denom > 0, c_g / denom, math.inf)
                if step is not None:
                    fl = np.where(t < theta_g, f_lo_g, f_hi_g)
                elif fl_vec is not None:
                    fl = fl_vec
                else:
                    fl = fc_g
                target = np.maximum(s_req, fl)
                viol = target > s_max_guard
                if viol.any():
                    k = int(np.argmax(viol))
                    raise SimulationError(
                        f"guarantee violated for {st.names[e]!r}: required "
                        f"speed {target[k]:.6g} exceeds maximum "
                        f"(t={t[k]:.6g}, bound={_at(fb_g, k):.6g})")
                want = np.minimum(target, s_max)
                new_idx = speeds_arr.searchsorted(want - 1e-12,
                                                  side="left")
                # searchsorted never returns < 0, so the legacy
                # clip(0, n_lv - 1) is exactly an upper clamp — and
                # np.minimum is a raw ufunc where np.clip is a ~4us
                # python wrapper
                np.minimum(new_idx, n_lv - 1, out=new_idx)
                speed = speeds_arr[new_idx]
                s_cur = speeds_arr[si]
                changed = np.abs(speed - s_cur) > _EPS
                t_adj = np.where(changed, adjust_time, 0.0)
                start_exec = t + t_comp + t_adj
                overhead_time += t_comp
                e_over += pow_arr[si] * t_comp
                overhead_time += t_adj
                e_over += np.where(changed, adj_energy, 0.0)
                changes += changed
                proc_idx[rows, j] = np.where(changed, new_idx, si)

                wall = actual / speed
                finish = start_exec + wall
                busy_time += wall
                e_busy += pow_arr[new_idx] * wall
                proc_free[rows, j] = finish
                fin[:, gid] = finish
                if sec_max is None:
                    sec_max = finish.copy()
                else:
                    np.maximum(sec_max, finish, out=sec_max)

            if sec_max is None:
                t_end = t_section
            else:
                t_end = np.maximum(sec_max, t_section)
            t_section = t_end
            last_dispatch = t_end
            proc_free = np.broadcast_to(t_end[:, None], (ng, m)).copy()
            if respec is not None and pos + 1 < len(path):
                # branch stats stay on the program (not the tape): the
                # respec floor is per OR firing, outside the entry loop
                sec = prog.sections[sid]
                worst, average = sec.branch_stats[path[pos + 1]]
                work = _gather(average if respec == "average" else worst,
                               pt)
                horizon = dl_g - t_end
                raw = work / horizon
                want = np.minimum(raw, s_max)
                snap_idx = speeds_arr.searchsorted(want - 1e-12,
                                                   side="left")
                np.minimum(snap_idx, n_lv - 1, out=snap_idx)
                fl_vec = np.where(horizon > 0, speeds_arr[snap_idx], s_max)

        if check_deadline:
            late = t_end > dl_g * (1 + 1e-9) + _EPS
            if late.any():
                k = int(np.argmax(late))
                raise DeadlineMissError(float(t_end[k]),
                                        float(_at(dl_g, k)),
                                        scheme=scheme)
        window = m * np.maximum(dl_g, t_end)
        idle_time = window - busy_time - overhead_time
        if isinstance(dl_g, np.ndarray):
            thresh = -1e-6 * np.where(dl_g > 1.0, dl_g, 1.0)
        else:
            thresh = -1e-6 * (dl_g if dl_g > 1.0 else 1.0)
        bad = idle_time < thresh
        if bad.any():
            k = int(np.argmax(bad))
            raise SimulationError(
                f"negative idle time {idle_time[k]}: busy={busy_time[k]}, "
                f"overhead={overhead_time[k]}, window={window[k]}")
        e_idle = idle_power * np.maximum(idle_time, 0.0)
        total_energy[idx] = e_busy + e_idle + e_over
        finish_time[idx] = t_end
        n_changes[idx] = changes

    return DynamicBatchResult(scheme, total_energy, finish_time, n_changes,
                              list(path_keys))
