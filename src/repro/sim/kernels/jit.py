"""The ``jit`` kernel tier: numba-compiled scalar cores over the tape.

The drivers here do everything the vectorized tiers do *outside* the
entry loop — preamble constants, per-group gathers, deadline/idle
epilogue, error raising — in NumPy, and hand the per-group replay to
the scalar cores in :mod:`.jitcore`.  Per executed path, the tape's
sections are flattened once (concatenated entry arrays with ``sec_end``
boundaries, CSR predecessor rows left in global-slot terms) and cached
on the :class:`~repro.sim.kernels.tape.ProgramTape`.

When numba is importable the cores are wrapped with
``numba.njit(fastmath=False)`` — IEEE semantics, no reassociation, so
bit-identity with the other tiers holds; without numba the very same
Python functions run uncompiled (slow, but exercised by unit tests so
the core logic is verified even where the ``[jit]`` extra is absent).

Scalar preamble constants are pre-broadcast to per-run vectors before
entering a core; broadcasting changes no float.  Errors come back from
a core as ``(code, entry, run, payload...)`` and are raised here with
the flattened entry names — which *run* raises may differ from the
vectorized tiers (first violating run, not first violating entry
lane), within the documented group-order error contract.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ...errors import DeadlineMissError, SimulationError
from ...power.model import PowerModel
from ...power.overhead import OverheadModel
from ..compiled import (
    _EPS,
    DynamicBatchResult,
    FixedBatchResult,
    _at,
    _gather,
)
from .tape import ProgramTape, build_tape

_cores = None


def _get_cores():
    """The (fixed, dynamic) cores, numba-compiled when available."""
    global _cores
    if _cores is None:
        from . import jit_available
        from .jitcore import dynamic_core, fixed_core

        if jit_available():
            import numba

            wrap = numba.njit(cache=False, fastmath=False)
            _cores = (wrap(fixed_core), wrap(dynamic_core))
        else:
            _cores = (fixed_core, dynamic_core)
    return _cores


_EMPTY_STK = np.zeros((0, 0))


def _flatten_path(tape: ProgramTape, path):
    """Concatenate the path's section tapes into one flat tape.

    CSR predecessor indices are already global finish-slot ids, so only
    the offsets need rebasing.  Stacked constants are merged into
    ``(n_entries, n_points)`` matrices (sections whose constants are all
    point-agreed broadcast their scalar lanes — same floats).  Cached
    per path on the tape.
    """
    key = tuple(path)
    flat = tape.path_cache.get(key)
    if flat is not None:
        return flat
    secs = [tape.sections[sid] for sid in path]
    total = sum(s.n_entries for s in secs)
    kind = np.concatenate([s.kind for s in secs])
    gid = np.concatenate([s.gid for s in secs])
    col = np.concatenate([s.col for s in secs])
    c_flat = np.concatenate([s.c for s in secs])
    fb_flat = np.concatenate([s.fb for s in secs])
    pred_idx = np.concatenate([s.pred_idx for s in secs])
    sec_end = np.zeros(len(secs) + 1, dtype=np.int64)
    np.cumsum([s.n_entries for s in secs], out=sec_end[1:])
    pred_off = np.zeros(total + 1, dtype=np.int32)
    pos = 0
    base = 0
    for s in secs:
        pred_off[pos + 1:pos + 1 + s.n_entries] = s.pred_off[1:] + base
        pos += s.n_entries
        base += s.pred_idx.size
    names = tuple(name for s in secs for name in s.names)
    stacked = tape.n_points > 0 and any(s.c_pt is not None for s in secs)
    if stacked:
        c_stk = np.concatenate(
            [s.c_pt if s.c_pt is not None
             else np.repeat(s.c[:, None], tape.n_points, axis=1)
             for s in secs])
        fb_stk = np.concatenate(
            [s.fb_pt if s.fb_pt is not None
             else np.repeat(s.fb[:, None], tape.n_points, axis=1)
             for s in secs])
    else:
        c_stk = _EMPTY_STK
        fb_stk = _EMPTY_STK
    flat = (kind, gid, col, c_flat, c_stk, fb_flat, fb_stk, stacked,
            sec_end, pred_off, pred_idx, names)
    tape.path_cache[key] = flat
    return flat


def _per_run(value, pt, ng):
    """A per-run ``(ng,)`` float vector of a possibly per-point
    constant; scalars are broadcast (bit-identical — see module
    docstring)."""
    if isinstance(value, np.ndarray):
        return np.ascontiguousarray(value[pt], dtype=np.float64)
    return np.full(ng, float(value))


def run_fixed_jit(prog, power: PowerModel,
                  overhead: OverheadModel, matrix: np.ndarray,
                  groups, path_keys: List[str], speed,
                  scheme: str,
                  check_deadline: bool = True,
                  point_of: Optional[np.ndarray] = None
                  ) -> FixedBatchResult:
    """JIT-tier :func:`repro.sim.compiled.run_fixed_batch`."""
    tape = build_tape(prog)
    fixed_core = _get_cores()[0]
    n = matrix.shape[0]
    m = prog.m
    deadline = prog.deadline
    s_max = power.s_max

    if isinstance(speed, np.ndarray):
        switched = np.abs(speed - s_max) > _EPS
        t0 = np.where(switched, overhead.adjust_time, 0.0)
        overhead_time = np.where(switched, m * overhead.adjust_time, 0.0)
        e_over = np.where(switched, m * overhead.adjustment_energy(power),
                          0.0)
        n_changes = np.where(switched, m, 0)
        p_busy = power.power_table(speed)
    else:
        switched = abs(speed - s_max) > _EPS
        t0 = overhead.adjust_time if switched else 0.0
        overhead_time = m * overhead.adjust_time if switched else 0.0
        e_over = m * overhead.adjustment_energy(power) if switched else 0.0
        n_changes = m if switched else 0
        p_busy = power.power(speed)
    idle_power = power.idle_power

    total_energy = np.empty(n)
    finish_time = np.empty(n)

    for path, idx in groups:
        block = matrix[idx]
        ng = idx.size
        pt = point_of[idx] if point_of is not None else None
        (kind, gid, col, c_flat, c_stk_pt, _fb_flat, _fb_stk, stacked,
         sec_end, pred_off, pred_idx, names) = _flatten_path(tape, path)
        stacked = stacked and pt is not None
        c_stk = (np.ascontiguousarray(c_stk_pt[:, pt]) if stacked
                 else _EMPTY_STK)
        speed_g = _per_run(speed, pt, ng)
        p_busy_g = _per_run(p_busy, pt, ng)
        t0_g = _per_run(t0, pt, ng)
        dl_g = _gather(deadline, pt)
        ot_g = _gather(overhead_time, pt)
        eo_g = _gather(e_over, pt)
        busy_time = np.empty(ng)
        e_busy = np.empty(ng)
        t_end = np.empty(ng)
        code, e, k, v0, v1 = fixed_core(
            block, kind, gid, col, c_flat, c_stk, stacked, sec_end,
            pred_off, pred_idx, m, prog.n_slots, t0_g, speed_g, p_busy_g,
            busy_time, e_busy, t_end)
        if code != 0:
            raise SimulationError(
                f"actual time {v0} of {names[e]!r} exceeds WCET {v1}")

        if check_deadline:
            late = t_end > dl_g * (1 + 1e-9) + _EPS
            if late.any():
                k = int(np.argmax(late))
                raise DeadlineMissError(float(t_end[k]),
                                        float(_at(dl_g, k)),
                                        scheme=scheme)
        window = m * np.maximum(dl_g, t_end)
        idle_time = window - busy_time - ot_g
        if isinstance(dl_g, np.ndarray):
            thresh = -1e-6 * np.where(dl_g > 1.0, dl_g, 1.0)
        else:
            thresh = -1e-6 * (dl_g if dl_g > 1.0 else 1.0)
        bad = idle_time < thresh
        if bad.any():
            k = int(np.argmax(bad))
            raise SimulationError(
                f"negative idle time {idle_time[k]}: busy={busy_time[k]}, "
                f"overhead={_at(ot_g, k)}, window={window[k]}")
        e_idle = idle_power * np.maximum(idle_time, 0.0)
        total_energy[idx] = e_busy + e_idle + eo_g
        finish_time[idx] = t_end

    return FixedBatchResult(scheme, total_energy, finish_time, n_changes,
                            list(path_keys))


def run_dynamic_jit(prog, power: PowerModel,
                    overhead: OverheadModel, matrix: np.ndarray,
                    groups, path_keys: List[str], policy_run,
                    scheme: str,
                    check_deadline: bool = True,
                    point_of: Optional[np.ndarray] = None
                    ) -> DynamicBatchResult:
    """JIT-tier :func:`repro.sim.compiled.run_dynamic_batch`."""
    tape = build_tape(prog)
    dynamic_core = _get_cores()[1]
    n = matrix.shape[0]
    m = prog.m
    deadline = prog.deadline
    s_max = power.s_max
    s_max_guard = s_max * (1 + 1e-6)

    speeds_arr = power.level_speed_table()
    pow_arr = power.level_power_table()
    tc_arr = overhead.computation_time_table(power)
    adjust_time = overhead.adjust_time
    adj_energy = overhead.adjustment_energy(power)
    idle_power = power.idle_power

    fc = policy_run.floor_const
    step = policy_run.floor_step
    respec = policy_run.or_respec
    has_step = step is not None

    total_energy = np.empty(n)
    finish_time = np.empty(n)
    n_changes = np.empty(n, dtype=np.int64)
    zeros1 = np.zeros(1)

    for path, idx in groups:
        block = matrix[idx]
        ng = idx.size
        pt = point_of[idx] if point_of is not None else None
        (kind, gid, col, c_flat, c_stk_pt, fb_flat, fb_stk_pt, stacked,
         sec_end, pred_off, pred_idx, names) = _flatten_path(tape, path)
        stacked = stacked and pt is not None
        if stacked:
            c_stk = np.ascontiguousarray(c_stk_pt[:, pt])
            fb_stk = np.ascontiguousarray(fb_stk_pt[:, pt])
        else:
            c_stk = _EMPTY_STK
            fb_stk = _EMPTY_STK
        fc_g = _per_run(fc if fc is not None else 0.0, pt, ng)
        if has_step:
            f_lo_g = _per_run(step[0], pt, ng)
            f_hi_g = _per_run(step[1], pt, ng)
            theta_g = _per_run(step[2], pt, ng)
        else:
            f_lo_g = f_hi_g = theta_g = zeros1
        dl_g = _gather(deadline, pt)
        dl_run = _per_run(deadline, pt, ng)
        has_respec = respec is not None
        if has_respec and len(path) > 1:
            # the respec floor needs each OR firing's remaining-work
            # statistic; gather them up front into an (n_secs-1, ng)
            # matrix so the core never touches branch_stats
            work = np.empty((len(path) - 1, ng))
            for pos in range(len(path) - 1):
                sec = prog.sections[path[pos]]
                worst, average = sec.branch_stats[path[pos + 1]]
                work[pos] = _gather(
                    average if respec == "average" else worst, pt)
        else:
            work = np.zeros((0, ng))
        busy_time = np.empty(ng)
        overhead_time = np.empty(ng)
        e_busy = np.empty(ng)
        e_over = np.empty(ng)
        changes = np.empty(ng, dtype=np.int64)
        t_end = np.empty(ng)
        code, e, k, v0, v1 = dynamic_core(
            block, kind, gid, col, c_flat, c_stk, fb_flat, fb_stk,
            stacked, sec_end, pred_off, pred_idx, m, prog.n_slots,
            speeds_arr, pow_arr, tc_arr, adjust_time, adj_energy, s_max,
            s_max_guard, _EPS, fc_g, f_lo_g, f_hi_g, theta_g, has_step,
            work, has_respec, dl_run,
            busy_time, overhead_time, e_busy, e_over, changes, t_end)
        if code == 1:
            raise SimulationError(
                f"actual time {v0} of {names[e]!r} exceeds WCET {v1}")
        if code == 2:
            fb_k = (fb_stk[e, k] if stacked else fb_flat[e])
            raise SimulationError(
                f"guarantee violated for {names[e]!r}: required "
                f"speed {v0:.6g} exceeds maximum "
                f"(t={v1:.6g}, bound={fb_k:.6g})")

        if check_deadline:
            late = t_end > dl_g * (1 + 1e-9) + _EPS
            if late.any():
                k = int(np.argmax(late))
                raise DeadlineMissError(float(t_end[k]),
                                        float(_at(dl_g, k)),
                                        scheme=scheme)
        window = m * np.maximum(dl_g, t_end)
        idle_time = window - busy_time - overhead_time
        if isinstance(dl_g, np.ndarray):
            thresh = -1e-6 * np.where(dl_g > 1.0, dl_g, 1.0)
        else:
            thresh = -1e-6 * (dl_g if dl_g > 1.0 else 1.0)
        bad = idle_time < thresh
        if bad.any():
            k = int(np.argmax(bad))
            raise SimulationError(
                f"negative idle time {idle_time[k]}: busy={busy_time[k]}, "
                f"overhead={overhead_time[k]}, window={window[k]}")
        e_idle = idle_power * np.maximum(idle_time, 0.0)
        total_energy[idx] = e_busy + e_idle + e_over
        finish_time[idx] = t_end
        n_changes[idx] = changes

    return DynamicBatchResult(scheme, total_energy, finish_time, n_changes,
                              list(path_keys))
