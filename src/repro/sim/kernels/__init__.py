"""Kernel-tier registry for the batch simulation kernels.

`repro.sim.compiled` exposes two batch entry points —
``run_fixed_batch`` and ``run_dynamic_batch`` — and this package owns
*how* they execute.  Three tiers implement the same contract
(bit-identical floats, same error classes):

``legacy``
    The original entry-tuple loop kept verbatim inside
    ``repro.sim.compiled``.  Exists for differential testing: every
    other tier is pinned exact-float-equal to it by the golden suites.
``numpy``
    The tape interpreter (:mod:`.interp`) — programs lowered once to
    flat arrays (:mod:`.tape`), predecessor max-reductions done as CSR
    gathers, per-point constants gathered a section at a time.  The
    default when numba is absent.
``jit``
    numba-compiled scalar cores over the same tape
    (:mod:`.jit` / :mod:`.jitcore`), ``fastmath=False`` so IEEE
    ordering and NaN semantics — and therefore bit-identity — hold.
    Requires the optional ``[jit]`` extra; ``auto`` falls back to
    ``numpy`` with a one-time warning when numba is missing.

The tier is an execution knob, never a result knob: it is excluded
from the evaluation-cache key and only recorded in
``series.meta["kernel"]`` for observability.
"""

from __future__ import annotations

import os
import warnings
from typing import Dict, Optional

from ...errors import ConfigError
from .tape import (  # noqa: F401  (re-exported)
    ProgramTape,
    SectionTape,
    build_tape,
    clear_tape_cache,
    tape_cache_stats,
)

#: the registered tiers, in documentation order
TIERS = ("legacy", "numpy", "jit")

#: session default consulted when ``RunConfig.kernel_tier`` is None —
#: the tape interpreter, so a default install never warns about the
#: missing [jit] extra; ``auto``/``jit`` are explicit opt-ins.  Read at
#: resolve time (module attribute) so tests can monkeypatch it,
#: mirroring ``engine.DEFAULT_BACKEND``
DEFAULT_KERNEL_TIER = os.environ.get("REPRO_KERNEL_TIER", "numpy")

_jit_probe: Optional[bool] = None
_warned_no_jit = False


def jit_available() -> bool:
    """Whether numba is importable (probed once per process)."""
    global _jit_probe
    if _jit_probe is None:
        try:
            import numba  # noqa: F401
        except ImportError:
            _jit_probe = False
        else:
            _jit_probe = True
    return _jit_probe


def resolve_kernel_tier(tier: Optional[str] = None) -> str:
    """Resolve a requested tier (or None for the session default) to a
    concrete registered tier.

    ``auto`` and ``jit`` select the numba tier when it is importable
    and otherwise fall back to ``numpy``, warning once per process so a
    missing extra never silently changes what users think they asked
    for.  Already-concrete tiers pass through, so resolving twice is
    idempotent.
    """
    global _warned_no_jit
    if tier is None:
        tier = DEFAULT_KERNEL_TIER
    if tier in ("auto", "jit"):
        if jit_available():
            return "jit"
        if not _warned_no_jit:
            _warned_no_jit = True
            warnings.warn(
                "numba is not installed; kernel tier "
                f"{tier!r} falls back to the numpy tape interpreter "
                "(pip install 'repro[jit]' for the JIT tier)",
                RuntimeWarning,
                stacklevel=2,
            )
        return "numpy"
    if tier not in TIERS:
        raise ConfigError(
            f"unknown kernel tier {tier!r}; expected one of "
            f"{('auto',) + TIERS}"
        )
    return tier


def get_kernels(tier: str):
    """The ``(run_fixed, run_dynamic)`` implementations of a resolved
    tier.  Imports lazily: ``legacy`` lives in ``repro.sim.compiled``
    (which imports this package from inside its dispatchers), and the
    jit driver is only pulled in when actually selected."""
    if tier == "legacy":
        from ..compiled import _run_dynamic_legacy, _run_fixed_legacy

        return _run_fixed_legacy, _run_dynamic_legacy
    if tier == "numpy":
        from .interp import run_dynamic_tape, run_fixed_tape

        return run_fixed_tape, run_dynamic_tape
    if tier == "jit":
        from .jit import run_dynamic_jit, run_fixed_jit

        return run_fixed_jit, run_dynamic_jit
    raise ConfigError(f"unknown kernel tier {tier!r}")


def kernel_meta(tier: Optional[str] = None) -> Dict[str, object]:
    """Observability snapshot for ``series.meta["kernel"]``: the
    resolved tier plus the compile-side cache counters."""
    from ..compiled import program_cache_stats
    from ..sweepc import stacked_cache_stats

    return {
        "tier": resolve_kernel_tier(tier),
        "program_cache": program_cache_stats(),
        "tape_cache": tape_cache_stats(),
        "stacked_cache": stacked_cache_stats(),
    }
