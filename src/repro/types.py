"""Shared plain-data types used across subpackages.

The simulator, offline analyzer and experiment harness exchange small
immutable records; keeping them in one module avoids import cycles between
``repro.sim``, ``repro.offline`` and ``repro.core``.

Units
-----
* *time* is in abstract "time units"; the paper's synthetic app uses
  microseconds.  All WCET/ACET values are expressed **at maximum speed**.
* *speed* is normalized: ``1.0`` is the maximum frequency of the power
  model.  Discrete levels are fractions of the maximum.
* *energy* is in units of ``C_ef * V_max^2 * f_max * time``; only energy
  *ratios* (normalized to NPM) are meaningful, exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class TaskStats:
    """Per-task timing attributes, at maximum processor speed.

    ``wcet`` is the worst-case execution time :math:`c_i` and ``acet`` the
    average-case execution time :math:`a_i` from profiling; the paper labels
    computation nodes with the pair ``c_i/a_i`` (e.g. ``8/5``).
    """

    wcet: float
    acet: float

    def __post_init__(self) -> None:
        if self.wcet <= 0:
            raise ValueError(f"wcet must be positive, got {self.wcet}")
        if not (0 < self.acet <= self.wcet):
            raise ValueError(
                f"acet must be in (0, wcet={self.wcet}], got {self.acet}"
            )

    @property
    def alpha(self) -> float:
        """Ratio of average over worst case execution time (the paper's α)."""
        return self.acet / self.wcet


@dataclass(frozen=True)
class TaskRecord:
    """One executed task in a simulation trace."""

    name: str
    processor: int
    start: float
    finish: float
    speed: float
    actual_cycles: float  # work actually executed, in time-at-S_max units
    energy: float
    speed_changed: bool = False

    @property
    def duration(self) -> float:
        return self.finish - self.start


@dataclass
class EnergyBreakdown:
    """Where the energy of one simulated run went.

    The paper normalizes total energy to NPM; the breakdown lets us also
    check the *explanations* (idle energy dominating at low load, overhead
    eating dynamic slack at high α...).
    """

    busy: float = 0.0
    idle: float = 0.0
    overhead: float = 0.0

    @property
    def total(self) -> float:
        return self.busy + self.idle + self.overhead

    def __iadd__(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        self.busy += other.busy
        self.idle += other.idle
        self.overhead += other.overhead
        return self


@dataclass
class SimResult:
    """Outcome of simulating one application instance under one scheme."""

    scheme: str
    finish_time: float
    deadline: float
    energy: EnergyBreakdown
    n_speed_changes: int
    n_tasks_run: int
    trace: List[TaskRecord] = field(default_factory=list)
    path_choices: Dict[str, str] = field(default_factory=dict)

    @property
    def met_deadline(self) -> bool:
        # tolerance for float round-off in the shifted-schedule arithmetic
        return self.finish_time <= self.deadline * (1 + 1e-9) + 1e-9

    @property
    def total_energy(self) -> float:
        return self.energy.total


@dataclass(frozen=True)
class PathStats:
    """Worst/average remaining execution time stored at a PMP.

    The offline phase attaches one of these to the application entry
    (``w``/``a`` of the whole application) and one per successor path of
    each OR node (``w_i``/``a_i`` of the remaining tasks along path *i*).
    """

    worst: float
    average: float

    def __post_init__(self) -> None:
        if self.worst < 0 or self.average < 0:
            raise ValueError("path statistics must be non-negative")
        if self.average > self.worst * (1 + 1e-9):
            raise ValueError(
                f"average remaining time {self.average} exceeds worst "
                f"{self.worst}"
            )


Interval = Tuple[float, float]


@dataclass(frozen=True)
class ScheduledTask:
    """Placement of one task inside a canonical (offline) schedule."""

    name: str
    processor: int
    start: float
    finish: float
    order: int

    @property
    def duration(self) -> float:
        return self.finish - self.start


@dataclass(frozen=True)
class ExperimentPoint:
    """One (x, scheme) → normalized-energy measurement with error bars."""

    x: float
    scheme: str
    mean: float
    std: float
    n_runs: int
    ci95: float = 0.0

    def as_row(self) -> Tuple[float, str, float, float, int]:
        return (self.x, self.scheme, self.mean, self.std, self.n_runs)


@dataclass
class SeriesResult:
    """A full sweep: for each x value, one ExperimentPoint per scheme."""

    name: str
    x_label: str
    points: List[ExperimentPoint] = field(default_factory=list)
    meta: Dict[str, object] = field(default_factory=dict)

    def schemes(self) -> List[str]:
        seen: List[str] = []
        for p in self.points:
            if p.scheme not in seen:
                seen.append(p.scheme)
        return seen

    def xs(self) -> List[float]:
        seen: List[float] = []
        for p in self.points:
            if p.x not in seen:
                seen.append(p.x)
        return seen

    def get(self, x: float, scheme: str) -> Optional[ExperimentPoint]:
        for p in self.points:
            if p.scheme == scheme and abs(p.x - x) < 1e-12:
                return p
        return None


def speed_change_items(value) -> List[Tuple[float, Dict[str, float]]]:
    """A series' ``speed_changes`` meta as aligned ``(x, per_scheme)`` pairs.

    The recorded format is a list of ``[x, {scheme: mean}]`` pairs — it
    keeps duplicate x values distinct and round-trips JSON, unlike the
    older dict keyed by raw float x.  This helper normalizes both: lists
    come back in recorded order, legacy dicts (possibly with stringified
    float keys from old JSON files) sorted by x.  ``None`` or an empty
    value yields ``[]``.
    """
    if not value:
        return []
    if isinstance(value, dict):
        return [(float(x), value[x]) for x in sorted(value, key=float)]
    return [(float(x), per_x) for x, per_x in value]
