"""Command-line interface: regenerate the paper's tables and figures.

Usage::

    python -m repro tables
    python -m repro fig4 [--runs 1000] [--jobs 4 | --n-jobs 4] [--csv out.csv]
    python -m repro fig5 --backend dispatch --executors 8
    python -m repro fig6 ...
    python -m repro fig_online --runs 500 --arrival bursty
    python -m repro run --app atr --load 0.5 --model xscale --procs 2
    python -m repro online --arrival poisson --rate 0.8 --horizon 50
    python -m repro gantt --app fig3 --scheme GSS --load 0.5
    python -m repro worker --connect host:7070   # join a remote fleet

Figures print the same series the paper plots (normalized energy per
scheme) as aligned tables plus the mean speed-change counts.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional

from .core.registry import ALL_SCHEMES, PAPER_SCHEMES
from .experiments.figures import ALL_FIGURES
from .experiments.report import (
    render_online_meta,
    render_series,
    render_speed_changes,
    series_to_csv,
)
from .experiments.runner import RunConfig, evaluate_application
from .experiments.tables import all_tables
from .types import SeriesResult
from .workloads.atr import atr_graph
from .workloads.scaling import application_with_load
from .workloads.synthetic import figure3_graph

_APPS = {
    "atr": atr_graph,
    "fig3": figure3_graph,
}


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce 'Power Aware Scheduling for AND/OR Graphs in "
                    "Multi-Processor Real-Time Systems' (ICPP 2002)")
    sub = p.add_subparsers(dest="command", required=True)

    sub.add_parser("tables", help="print Table 1 and Table 2")

    for fig in ("fig4", "fig5", "fig6", "fig_online"):
        fp = sub.add_parser(fig, help=f"regenerate {fig} (both power models)"
                            if fig != "fig_online" else
                            "arrival rate vs energy vs miss ratio through "
                            "the online streaming simulator")
        fp.add_argument("--runs", type=int, default=1000,
                        help="Monte-Carlo runs per point (paper: 1000); "
                             "for fig_online: expected arrivals per rate "
                             "point")
        if fig == "fig_online":
            fp.add_argument("--rates", nargs="*", type=float, default=None,
                            help="arrival rates to sweep, in mean arrivals "
                                 "per canonical worst-case length "
                                 "(default: 0.25..2.0)")
            fp.add_argument("--arrival", choices=("poisson", "bursty"),
                            default="poisson",
                            help="arrival process per stream (trace-driven "
                                 "streams: see 'repro online --trace')")
            fp.add_argument("--load", type=float, default=None,
                            help="per-job relative-deadline load "
                                 "D = T_worst/load (default: 0.7)")
        fp.add_argument("--jobs", type=int, default=1,
                        help="worker processes across sweep points "
                             "(0 = all cores)")
        fp.add_argument("--n-jobs", type=int, default=1, dest="n_jobs",
                        help="worker processes for the Monte-Carlo runs "
                             "inside each point (0 = all cores); opts "
                             "into the legacy run-level pool and is "
                             "mutually exclusive with --jobs > 1")
        fp.add_argument("--no-fused", action="store_true", dest="no_fused",
                        help="disable the fused sweep compiler and "
                             "evaluate each point separately")
        fp.add_argument("--backend", choices=("local", "dispatch"),
                        default=None,
                        help="sweep-point execution backend: 'local' "
                             "(fused/pooled, the default) or 'dispatch' "
                             "(work-stealing executor fleet; results "
                             "are bit-identical)")
        fp.add_argument("--executors", type=int, default=None,
                        help="executor processes for --backend dispatch "
                             "(0 = all cores; clamped to the number of "
                             "sweep points; default: --jobs)")
        fp.add_argument("--connect", type=str, default=None,
                        help="dispatch rendezvous endpoint host:port "
                             "the driver binds; remote 'repro worker' "
                             "processes join the fleet there (default: "
                             "loopback, ephemeral port)")
        fp.add_argument("--runs-per-chunk", type=int, default=0,
                        dest="runs_per_chunk",
                        help="runs per worker task for --n-jobs "
                             "(0 = auto)")
        fp.add_argument("--seed", type=int, default=2002)
        fp.add_argument("--engine", choices=("compiled", "dict"),
                        default="compiled",
                        help="simulation kernel (results are "
                             "bit-identical; 'dict' is the reference "
                             "engine, ~4x slower)")
        fp.add_argument("--kernel-tier", dest="kernel_tier",
                        choices=("auto", "legacy", "numpy", "jit"),
                        default=None,
                        help="batch-kernel tier for the compiled engine "
                             "(results are bit-identical; default: the "
                             "numpy tape interpreter, or "
                             "$REPRO_KERNEL_TIER; 'auto' prefers the "
                             "numba JIT when the [jit] extra is "
                             "installed)")
        fp.add_argument("--shards", type=int, default=None,
                        help="split the fused sweep's runs axis into "
                             "this many seed-aligned shards executed on "
                             "pool workers or dispatch executors "
                             "(0 = auto from cores and --shard-mem-mb; "
                             "default: unsharded; results are "
                             "bit-identical)")
        fp.add_argument("--shard-mem-mb", type=int, default=0,
                        dest="shard_mem_mb",
                        help="peak-memory budget per shard in MiB for "
                             "--shards 0: the auto shard count is "
                             "raised until the estimated fused "
                             "footprint fits (0 = unbudgeted)")
        fp.add_argument("--cache-stats", action="store_true",
                        dest="cache_stats",
                        help="print the kernel-side cache counters "
                             "(compiled-program / tape / stacked-program "
                             "caches) after the figure, aggregated "
                             "across live pool workers")
        fp.add_argument("--profile", action="store_true",
                        help="run under cProfile and print the top 25 "
                             "functions by cumulative time")
        fp.add_argument("--max-retries", type=int, default=2,
                        dest="max_retries",
                        help="re-dispatches per chunk/point after a "
                             "worker crash, hang or transport failure "
                             "before degrading to serial execution")
        fp.add_argument("--chunk-timeout", type=float, default=0.0,
                        dest="chunk_timeout",
                        help="seconds per dispatched chunk/point before "
                             "it is considered hung and re-dispatched "
                             "(0 = no timeout)")
        fp.add_argument("--no-degrade", action="store_true",
                        dest="no_degrade",
                        help="fail with an error once retry budgets are "
                             "exhausted instead of degrading to serial "
                             "execution in the parent")
        fp.add_argument("--no-cache", action="store_true",
                        help="recompute every point, bypassing the "
                             "on-disk evaluation cache")
        fp.add_argument("--cache-dir", type=str, default=None,
                        dest="cache_dir",
                        help="evaluation-cache directory (default: "
                             ".repro-cache)")
        fp.add_argument("--oracle", action="store_true",
                        help="include the clairvoyant lower bound")
        fp.add_argument("--csv", type=str, default=None,
                        help="also write the series to this CSV file")
        fp.add_argument("--chart", action="store_true",
                        help="also render an ASCII chart of each series")
        fp.add_argument("--save", type=str, default=None,
                        help="persist the series bundle to this JSON file")

    rp = sub.add_parser("run", help="evaluate one application at one point")
    rp.add_argument("--app", choices=sorted(_APPS), default="atr")
    rp.add_argument("--load", type=float, default=0.5)
    rp.add_argument("--model", choices=("transmeta", "xscale"),
                    default="transmeta")
    rp.add_argument("--procs", type=int, default=2)
    rp.add_argument("--runs", type=int, default=1000)
    rp.add_argument("--seed", type=int, default=2002)
    rp.add_argument("--n-jobs", type=int, default=1, dest="n_jobs",
                    help="worker processes for the Monte-Carlo runs "
                         "(0 = all cores); opts into the legacy "
                         "run-level pool")
    rp.add_argument("--runs-per-chunk", type=int, default=0,
                    dest="runs_per_chunk",
                    help="runs per worker task (0 = auto)")
    rp.add_argument("--engine", choices=("compiled", "dict"),
                    default="compiled",
                    help="simulation kernel (results are bit-identical; "
                         "'dict' is the reference engine, ~4x slower)")
    rp.add_argument("--kernel-tier", dest="kernel_tier",
                    choices=("auto", "legacy", "numpy", "jit"),
                    default=None,
                    help="batch-kernel tier for the compiled engine "
                         "(results are bit-identical; default: the numpy "
                         "tape interpreter, or $REPRO_KERNEL_TIER)")
    rp.add_argument("--cache-stats", action="store_true",
                    dest="cache_stats",
                    help="print the kernel-side cache counters "
                         "(compiled-program / tape / stacked-program "
                         "caches) after the evaluation")
    rp.add_argument("--profile", action="store_true",
                    help="run under cProfile and print the top 25 "
                         "functions by cumulative time")
    rp.add_argument("--max-retries", type=int, default=2,
                    dest="max_retries",
                    help="re-dispatches per chunk after a worker crash, "
                         "hang or transport failure")
    rp.add_argument("--chunk-timeout", type=float, default=0.0,
                    dest="chunk_timeout",
                    help="seconds per dispatched chunk before it is "
                         "considered hung (0 = no timeout)")
    rp.add_argument("--no-degrade", action="store_true", dest="no_degrade",
                    help="error out instead of degrading to serial "
                         "execution when retries are exhausted")
    rp.add_argument("--schemes", nargs="*", default=list(PAPER_SCHEMES),
                    help=f"subset of {list(ALL_SCHEMES)}")

    gp = sub.add_parser("gantt", help="trace one run and print its schedule")
    gp.add_argument("--app", choices=sorted(_APPS), default="fig3")
    gp.add_argument("--scheme", default="GSS")
    gp.add_argument("--load", type=float, default=0.5)
    gp.add_argument("--model", choices=("transmeta", "xscale"),
                    default="transmeta")
    gp.add_argument("--procs", type=int, default=2)
    gp.add_argument("--seed", type=int, default=2002)

    ap = sub.add_parser("analyze",
                        help="work/span, slack anatomy and plan summary")
    ap.add_argument("--app", choices=sorted(_APPS), default="atr")
    ap.add_argument("--load", type=float, default=0.5)
    ap.add_argument("--procs", type=int, default=2)

    sp = sub.add_parser("stream",
                        help="simulate a periodic frame mission")
    sp.add_argument("--app", choices=sorted(_APPS), default="atr")
    sp.add_argument("--load", type=float, default=0.5)
    sp.add_argument("--frames", type=int, default=100)
    sp.add_argument("--model", choices=("transmeta", "xscale"),
                    default="transmeta")
    sp.add_argument("--procs", type=int, default=2)
    sp.add_argument("--seed", type=int, default=2002)
    sp.add_argument("--schemes", nargs="*",
                    default=["NPM", "SPM", "GSS", "SS1", "SS2", "AS"])

    op = sub.add_parser("online",
                        help="simulate one sporadic-arrival stream with "
                             "admission control")
    op.add_argument("--app", choices=sorted(_APPS), default="fig3")
    op.add_argument("--arrival", choices=("poisson", "bursty", "trace"),
                    default="poisson",
                    help="arrival process feeding the admission test")
    op.add_argument("--rate", type=float, default=0.5,
                    help="mean arrivals per canonical worst-case length "
                         "(a utilization-like congestion knob)")
    op.add_argument("--horizon", type=float, default=50.0,
                    help="stream length in canonical worst-case lengths")
    op.add_argument("--load", type=float, default=0.7,
                    help="per-job relative-deadline load: D = T_worst/load")
    op.add_argument("--burstiness", type=float, default=1.8,
                    help="MMPP-2 burstiness in [1, 2] for --arrival bursty")
    op.add_argument("--dwell", type=float, default=5.0,
                    help="mean MMPP-2 state sojourn, in worst-case lengths")
    op.add_argument("--trace", type=str, default=None,
                    help="JSON arrival-trace file for --arrival trace "
                         "(a list of times, or {'arrivals': [...]}; in "
                         "worst-case-length units)")
    op.add_argument("--model", choices=("transmeta", "xscale"),
                    default="transmeta")
    op.add_argument("--procs", type=int, default=2)
    op.add_argument("--seed", type=int, default=2002)
    op.add_argument("--engine", choices=("compiled", "dict"),
                    default="compiled",
                    help="simulation kernel (results are bit-identical)")
    op.add_argument("--kernel-tier", dest="kernel_tier",
                    choices=("auto", "legacy", "numpy", "jit"),
                    default=None,
                    help="batch-kernel tier for the compiled engine "
                         "(results are bit-identical)")
    op.add_argument("--schemes", nargs="*", default=list(PAPER_SCHEMES),
                    help=f"subset of {list(ALL_SCHEMES)}")

    ex = sub.add_parser("exact",
                        help="deterministic path-enumeration evaluation")
    ex.add_argument("--app", choices=sorted(_APPS), default="fig3")
    ex.add_argument("--load", type=float, default=0.6)
    ex.add_argument("--model", choices=("transmeta", "xscale"),
                    default="transmeta")
    ex.add_argument("--procs", type=int, default=2)

    mp = sub.add_parser("misprofile",
                        help="robustness to wrong branch probabilities")
    mp.add_argument("--app", choices=sorted(_APPS), default="fig3")
    mp.add_argument("--load", type=float, default=0.7)
    mp.add_argument("--model", choices=("transmeta", "xscale"),
                    default="transmeta")
    mp.add_argument("--procs", type=int, default=2)
    mp.add_argument("--runs", type=int, default=300)
    mp.add_argument("--gammas", nargs="*", type=float,
                    default=[-2.0, 0.25, 1.0, 4.0])
    mp.add_argument("--seed", type=int, default=2002)

    rep = sub.add_parser("report",
                         help="regenerate all figures into a markdown "
                              "report")
    rep.add_argument("-o", "--output", type=str, default="results.md")
    rep.add_argument("--runs", type=int, default=1000)
    rep.add_argument("--seed", type=int, default=2002)
    rep.add_argument("--jobs", type=int, default=1)
    rep.add_argument("--figures", nargs="*", default=None,
                     choices=["fig4", "fig5", "fig6"])

    su = sub.add_parser("suite",
                        help="evaluate every workload x scheme x model")
    su.add_argument("--runs", type=int, default=300)
    su.add_argument("--loads", nargs="*", type=float, default=[0.4, 0.7])
    su.add_argument("--models", nargs="*", default=["transmeta",
                                                    "xscale"])
    su.add_argument("--procs", type=int, default=2)
    su.add_argument("--seed", type=int, default=2002)
    su.add_argument("--jobs", type=int, default=1,
                    help="worker processes across suite cells "
                         "(0 = all cores)")
    su.add_argument("--no-cache", action="store_true",
                    help="recompute every cell, bypassing the on-disk "
                         "evaluation cache")
    su.add_argument("--cache-dir", type=str, default=None, dest="cache_dir",
                    help="evaluation-cache directory (default: "
                         ".repro-cache)")
    su.add_argument("--max-retries", type=int, default=2,
                    dest="max_retries",
                    help="re-dispatches per suite cell after a worker "
                         "crash, hang or transport failure")
    su.add_argument("--chunk-timeout", type=float, default=0.0,
                    dest="chunk_timeout",
                    help="seconds per dispatched cell before it is "
                         "considered hung (0 = no timeout)")
    su.add_argument("--no-degrade", action="store_true", dest="no_degrade",
                    help="error out instead of degrading to serial "
                         "execution when retries are exhausted")

    wk = sub.add_parser("worker",
                        help="join a dispatch driver's executor fleet "
                             "(see --backend dispatch / --connect)")
    wk.add_argument("--connect", type=str, required=True,
                    help="the driver's rendezvous endpoint host:port")
    wk.add_argument("--name", type=str, default=None,
                    help="executor name reported to the driver "
                         "(default: worker-<pid>)")
    wk.add_argument("--cache-dir", type=str, default=None, dest="cache_dir",
                    help="probe this evaluation-cache directory before "
                         "computing each task and store fresh results "
                         "back (default: .repro-cache)")
    wk.add_argument("--no-cache", action="store_true",
                    help="compute every task, without probing or "
                         "filling the local evaluation cache")
    return p


def _make_context(n_jobs: int, no_cache: bool, cache_dir: Optional[str],
                  backend: Optional[str] = None,
                  executors: Optional[int] = None,
                  connect: Optional[str] = None):
    """One ExecutionContext per CLI command: shared pool + optional cache."""
    from .experiments.engine import ExecutionContext
    cache = None
    if not no_cache:
        from .experiments.evalcache import DEFAULT_CACHE_DIR, EvaluationCache
        cache = EvaluationCache(cache_dir or DEFAULT_CACHE_DIR)
    return ExecutionContext(n_jobs=n_jobs, cache=cache, backend=backend,
                            executors=executors, connect=connect)


def _print_cache_stats(context) -> None:
    stats = context.cache_stats()
    if stats is not None:
        print(f"(cache: {stats['hits']} hits, {stats['misses']} misses"
              + (f", {stats['quarantined']} corrupt entries quarantined"
                 if stats["quarantined"] else "")
              + f" in {context.cache.root})")
    res = context.resilience_stats()
    if any(res.values()):
        print("(resilience: "
              + ", ".join(f"{k}={v}" for k, v in res.items() if v) + ")")
    disp = context.dispatch_stats()
    per = disp.pop("per_executor")
    if any(disp.values()):
        print("(dispatch: "
              + ", ".join(f"{k}={v}" for k, v in disp.items() if v)
              + "; " + ", ".join(f"{n}:{c}" for n, c in sorted(per.items()))
              + ")")


def _print_kernel_stats(kernel_tier: Optional[str],
                        context=None) -> None:
    """--cache-stats: the resolved tier plus compile-side cache counters.

    The parent-process counters come first; when the context still has
    a live worker pool, each worker's program/tape/stacked counters are
    collected (one probe per process) and printed as an aggregated
    ``workers`` line — sharded fused sweeps compile in the workers, so
    parent-only counters would read as all-miss.  Dispatch executors
    are separate processes reached over sockets and are not probed.
    """
    from .sim.kernels import kernel_meta
    meta = kernel_meta(kernel_tier)
    parts = []
    for label in ("program_cache", "tape_cache", "stacked_cache"):
        stats = meta[label]
        part = (f"{label.replace('_cache', '')} "
                f"{stats['hits']}h/{stats['misses']}m")
        if "size" in stats:  # tapes live on their programs: no store
            part += f" size={stats['size']}"
        parts.append(part)
    print(f"(kernel: tier={meta['tier']}; " + ", ".join(parts) + ")")
    if context is None:
        return
    worker_stats = context.worker_kernel_stats()
    if not worker_stats:
        return
    totals = {"program_cache": {"hits": 0, "misses": 0},
              "tape_cache": {"hits": 0, "misses": 0},
              "stacked_cache": {"hits": 0, "misses": 0}}
    for counters in worker_stats:
        for label, agg in totals.items():
            stats = counters.get(label, {})
            agg["hits"] += int(stats.get("hits", 0))
            agg["misses"] += int(stats.get("misses", 0))
    joined = ", ".join(
        f"{label.replace('_cache', '')} {agg['hits']}h/{agg['misses']}m"
        for label, agg in totals.items())
    print(f"(kernel workers: {len(worker_stats)} probed; {joined})")


def _emit_figure(series_by_model: Dict[str, SeriesResult],
                 csv_path: Optional[str], chart: bool = False) -> None:
    chunks = []
    for model, series in series_by_model.items():
        print(render_series(series))
        if chart:
            from .experiments.chart import render_chart
            print(render_chart(series))
        print(render_speed_changes(series))
        if series.meta.get("online"):
            print(render_online_meta(series))
        cache = series.meta.get("cache")
        if cache is not None:
            print(f"({series.name}: cache {cache['hits']} hits / "
                  f"{cache['misses']} misses)")
        chunks.append(series_to_csv(series))
    if csv_path:
        with open(csv_path, "w", encoding="utf-8") as fh:
            fh.write("\n".join(chunks))
        print(f"(csv written to {csv_path})")


def _run_profiled(fn, *args, **kwargs):
    """Run ``fn`` under cProfile, print top-25 cumulative, return result."""
    import cProfile
    import pstats
    prof = cProfile.Profile()
    result = prof.runcall(fn, *args, **kwargs)
    stats = pstats.Stats(prof, stream=sys.stdout)
    stats.sort_stats("cumulative").print_stats(25)
    return result


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "tables":
        print(all_tables())
        return 0

    if args.command in ALL_FIGURES:
        schemes = list(PAPER_SCHEMES)
        if args.oracle:
            schemes.append("ORACLE")
        fig_fn = ALL_FIGURES[args.command]
        # the pool serves whichever level is parallel (the two are
        # mutually exclusive: point-level --jobs or run-level --n-jobs)
        ctx_jobs = args.jobs if args.jobs != 1 else args.n_jobs
        # asking for the dispatch backend without --executors means
        # "use the fleet anyway": default the request to all cores
        executors = args.executors
        if args.backend == "dispatch" and executors is None \
                and args.jobs == 1:
            executors = 0
        with _make_context(ctx_jobs, args.no_cache, args.cache_dir,
                           backend=args.backend, executors=executors,
                           connect=args.connect) as ctx:
            fig_kwargs = dict(
                n_runs=args.runs, schemes=schemes, n_jobs=args.jobs,
                seed=args.seed, run_jobs=args.n_jobs,
                runs_per_chunk=args.runs_per_chunk, engine=args.engine,
                max_retries=args.max_retries,
                chunk_timeout=args.chunk_timeout,
                degrade=not args.no_degrade,
                backend=args.backend, executors=executors,
                connect=args.connect, kernel_tier=args.kernel_tier,
                shards=args.shards, shard_mem_mb=args.shard_mem_mb,
                context=ctx, fused=not args.no_fused)
            if args.command == "fig_online":
                fig_kwargs["arrival"] = args.arrival
                if args.rates:
                    fig_kwargs["rates"] = tuple(args.rates)
                if args.load is not None:
                    fig_kwargs["load"] = args.load
            if args.profile:
                series = _run_profiled(fig_fn, **fig_kwargs)
            else:
                series = fig_fn(**fig_kwargs)
            _emit_figure(series, args.csv, chart=args.chart)
            _print_cache_stats(ctx)
            if args.cache_stats:
                _print_kernel_stats(args.kernel_tier, context=ctx)
        if args.save:
            from .experiments.persist import save_series
            save_series(series, args.save)
            print(f"(series bundle written to {args.save})")
        return 0

    if args.command == "run":
        graph = _APPS[args.app]()
        app = application_with_load(graph, args.load, args.procs)
        cfg = RunConfig(schemes=tuple(args.schemes),
                        power_model=args.model,
                        n_processors=args.procs, n_runs=args.runs,
                        seed=args.seed, n_jobs=args.n_jobs,
                        runs_per_chunk=args.runs_per_chunk,
                        engine=args.engine,
                        max_retries=args.max_retries,
                        chunk_timeout=args.chunk_timeout,
                        degrade=not args.no_degrade,
                        run_level_pool=(args.n_jobs != 1),
                        kernel_tier=args.kernel_tier)
        if args.profile:
            result = _run_profiled(evaluate_application, app, cfg)
        else:
            result = evaluate_application(app, cfg)
        print(f"app={args.app} load={args.load} model={args.model} "
              f"m={args.procs} runs={args.runs}")
        print(f"{'scheme':>8} {'E/E_NPM':>10} {'switches':>10}")
        means = result.mean_normalized()
        switches = result.mean_speed_changes()
        for scheme in result.normalized:
            print(f"{scheme:>8} {means[scheme]:>10.4f} "
                  f"{switches[scheme]:>10.1f}")
        if args.cache_stats:
            _print_kernel_stats(args.kernel_tier)
        return 0

    if args.command == "gantt":
        from .sim.trace import render_gantt, trace_one_run
        graph = _APPS[args.app]()
        app = application_with_load(graph, args.load, args.procs)
        result = trace_one_run(app, args.scheme, power_model=args.model,
                               seed=args.seed)
        print(render_gantt(result, app.deadline))
        return 0

    if args.command == "analyze":
        from .analysis import graph_metrics, slack_profile
        from .offline import build_plan
        graph = _APPS[args.app]()
        app = application_with_load(graph, args.load, args.procs)
        plan = build_plan(app, args.procs)
        m = graph_metrics(plan.structure)
        prof = slack_profile(plan)
        print(f"app={args.app}  load={args.load}  m={args.procs}  "
              f"D={app.deadline:.2f}")
        print(f"offline: T_worst={plan.t_worst:.2f}  "
              f"T_avg={plan.t_avg:.2f}  sections="
              f"{len(plan.sections)}")
        print(f"work: expected={m.expected_work:.2f}  "
              f"max={m.max_work:.2f}")
        print(f"span: expected={m.expected_span:.2f}  "
              f"max={m.max_span:.2f}")
        print(f"parallelism: {m.expected_parallelism:.2f}  "
              f"(effective of {args.procs}: "
              f"{m.effective_processors(args.procs):.2f})")
        print(f"slack: static={prof.static_slack:.2f} "
              f"({prof.static_fraction:.0%} of D)  "
              f"path={prof.expected_path_slack:.2f}  "
              f"runtime={prof.expected_runtime_slack:.2f}")
        return 0

    if args.command == "stream":
        from .workloads.frames import compare_streams, render_stream_report
        from .workloads.scaling import worst_case_length
        graph = _APPS[args.app]()
        period = worst_case_length(graph, args.procs) / args.load
        schemes = list(dict.fromkeys(["NPM"] + list(args.schemes)))
        results = compare_streams(graph, period, schemes, args.frames,
                                  power_model=args.model,
                                  n_processors=args.procs,
                                  seed=args.seed)
        print(f"mission: {args.frames} frames, period {period:.2f} "
              f"(load {args.load}), {args.model}, m={args.procs}")
        print(render_stream_report(results))
        return 0

    if args.command == "online":
        from .experiments.online import (
            OnlineConfig,
            render_online_report,
            simulate_online,
        )
        graph = _APPS[args.app]()
        cfg = RunConfig(schemes=tuple(args.schemes),
                        power_model=args.model,
                        n_processors=args.procs, seed=args.seed,
                        engine=args.engine,
                        kernel_tier=args.kernel_tier)
        online = OnlineConfig(arrival=args.arrival, rate=args.rate,
                              horizon=args.horizon, load=args.load,
                              burstiness=args.burstiness,
                              burst_dwell=args.dwell,
                              trace_path=args.trace)
        print(render_online_report(simulate_online(graph, cfg, online)))
        return 0

    if args.command == "exact":
        from .experiments.exact import exact_evaluation, render_exact
        graph = _APPS[args.app]()
        app = application_with_load(graph, args.load, args.procs)
        cfg = RunConfig(power_model=args.model,
                        n_processors=args.procs, n_runs=1)
        print(f"exact path-enumeration: app={args.app} load={args.load} "
              f"model={args.model} m={args.procs}")
        print(render_exact(exact_evaluation(app, cfg)))
        return 0

    if args.command == "misprofile":
        from .experiments.misprofile import (
            misprofile_evaluation,
            render_misprofile,
        )
        graph = _APPS[args.app]()
        cfg = RunConfig(power_model=args.model,
                        n_processors=args.procs, n_runs=args.runs,
                        seed=args.seed)
        results = {g: misprofile_evaluation(graph, args.load, cfg, g)
                   for g in args.gammas}
        print(f"misprofiling regret: app={args.app} load={args.load} "
              f"model={args.model} ({args.runs} runs/γ)")
        print(render_misprofile(results))
        return 0

    if args.command == "report":
        from .experiments.report_md import write_report
        write_report(args.output, n_runs=args.runs, seed=args.seed,
                     n_jobs=args.jobs, figures=args.figures)
        print(f"report written to {args.output}")
        return 0

    if args.command == "worker":
        import os
        from .experiments.dispatch import DispatchWorker, parse_endpoint
        host, port = parse_endpoint(args.connect)
        name = args.name or f"worker-{os.getpid()}"
        cache_dir = None
        if not args.no_cache:
            from .experiments.evalcache import DEFAULT_CACHE_DIR
            cache_dir = args.cache_dir or DEFAULT_CACHE_DIR
        print(f"joining dispatch fleet at {host}:{port} as {name}"
              + (f" (cache: {cache_dir})" if cache_dir else ""))
        return DispatchWorker(host, port, name=name,
                              cache_dir=cache_dir).run()

    if args.command == "suite":
        from .experiments.suite import SuiteConfig, render_suite, run_suite
        cfg = SuiteConfig(loads=tuple(args.loads),
                          models=tuple(args.models),
                          n_processors=args.procs, n_runs=args.runs,
                          seed=args.seed,
                          max_retries=args.max_retries,
                          chunk_timeout=args.chunk_timeout,
                          degrade=not args.no_degrade)
        with _make_context(args.jobs, args.no_cache, args.cache_dir) as ctx:
            print(render_suite(run_suite(cfg, n_jobs=args.jobs,
                                         context=ctx)))
            _print_cache_stats(ctx)
        return 0

    return 2  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
