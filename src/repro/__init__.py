"""repro — reproduction of *Power Aware Scheduling for AND/OR Graphs in
Multi-Processor Real-Time Systems* (Zhu, AbouGhazaleh, Mossé, Melhem;
ICPP 2002).

The package implements the paper's extended AND/OR application model,
the two processor power configurations (Transmeta TM5400, Intel XScale),
the offline canonical-schedule/shifting phase, the online Figure 2
dispatch protocol, and all evaluated schemes — NPM, SPM, greedy slack
sharing (GSS), static speculation (SS¹/SS²) and adaptive speculation
(AS) — plus the Monte-Carlo harness regenerating every table and figure
of the evaluation.  See DESIGN.md for the paper→module map.

Quickstart::

    from repro import GraphBuilder, RunConfig, evaluate_application
    from repro.workloads import atr_graph, application_with_load

    app = application_with_load(atr_graph(), load=0.5, n_processors=2)
    result = evaluate_application(app, RunConfig(n_runs=100))
    print(result.mean_normalized())
"""

from .core import (
    ALL_SCHEMES,
    PAPER_SCHEMES,
    AdaptiveSpeculation,
    ClairvoyantOracle,
    GreedySlackSharing,
    NoPowerManagement,
    SpeedPolicy,
    StaticPowerManagement,
    StaticSpeculationOneSpeed,
    StaticSpeculationTwoSpeeds,
    get_policy,
)
from .errors import (
    ConfigError,
    DeadlineMissError,
    GraphError,
    InfeasibleError,
    ParallelError,
    PowerModelError,
    ReproError,
    SimulationError,
    ValidationError,
)
from .experiments import RunConfig, evaluate_application
from .graph import (
    AndOrGraph,
    Application,
    GraphBuilder,
    NodeKind,
    validate_graph,
)
from .offline import (
    OfflinePlan,
    build_plan,
    clear_plan_cache,
    plan_cache_stats,
)
from .power import (
    ContinuousPowerModel,
    DiscretePowerModel,
    OverheadModel,
    PowerModel,
    make_power_model,
    transmeta_model,
    xscale_model,
)
from .sim import Realization, sample_realization, simulate
from .types import EnergyBreakdown, SimResult, TaskStats

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # graph model
    "AndOrGraph",
    "Application",
    "GraphBuilder",
    "NodeKind",
    "validate_graph",
    "TaskStats",
    # power
    "PowerModel",
    "ContinuousPowerModel",
    "DiscretePowerModel",
    "OverheadModel",
    "make_power_model",
    "transmeta_model",
    "xscale_model",
    # offline + online
    "OfflinePlan",
    "build_plan",
    "clear_plan_cache",
    "plan_cache_stats",
    "simulate",
    "Realization",
    "sample_realization",
    "SimResult",
    "EnergyBreakdown",
    # schemes
    "SpeedPolicy",
    "NoPowerManagement",
    "StaticPowerManagement",
    "GreedySlackSharing",
    "StaticSpeculationOneSpeed",
    "StaticSpeculationTwoSpeeds",
    "AdaptiveSpeculation",
    "ClairvoyantOracle",
    "get_policy",
    "PAPER_SCHEMES",
    "ALL_SCHEMES",
    # experiments
    "RunConfig",
    "evaluate_application",
    # errors
    "ReproError",
    "GraphError",
    "ValidationError",
    "InfeasibleError",
    "PowerModelError",
    "SimulationError",
    "ParallelError",
    "DeadlineMissError",
    "ConfigError",
]
