"""List-scheduling priority heuristics.

The paper uses longest-task-first (LTF) but notes that the whole
construction is heuristic-agnostic: *"Given any heuristic, if the
off-line phase does not fail, the following on-line phase can be
applied under the same heuristic."*  This module provides the common
alternatives so that claim can be exercised (and the heuristic's effect
on energy measured — see ``benchmarks/bench_ablation_heuristics.py``):

* ``ltf`` — longest task first (the paper's choice; default);
* ``stf`` — shortest task first;
* ``fifo`` — graph insertion order among simultaneously ready tasks;
* ``cpf`` — critical-path first: priority = the longest WCET chain from
  the task to the end of its section (classic HLF/level scheduling).

A heuristic maps a section subgraph to a priority function (larger =
dispatched first among simultaneously ready tasks).  Correctness is
untouched: the online phase replays whatever order the canonical
schedule fixed.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..errors import ConfigError
from ..graph.andor import AndOrGraph

#: a priority factory: section subgraph -> (node name -> priority)
HeuristicFn = Callable[[AndOrGraph], Callable[[str], float]]


def ltf(section: AndOrGraph) -> Callable[[str], float]:
    """Longest task first (the paper's heuristic)."""

    def priority(name: str) -> float:
        return section.node(name).wcet

    return priority


def stf(section: AndOrGraph) -> Callable[[str], float]:
    """Shortest task first (inverse of LTF)."""

    def priority(name: str) -> float:
        return -section.node(name).wcet

    return priority


def fifo(section: AndOrGraph) -> Callable[[str], float]:
    """No reordering: ties resolve to graph insertion order anyway."""

    def priority(name: str) -> float:
        del name
        return 0.0

    return priority


def cpf(section: AndOrGraph) -> Callable[[str], float]:
    """Critical-path first: longest downstream WCET chain.

    Computed once per section by a reverse-topological pass.
    """
    downstream: Dict[str, float] = {}
    order: List[str] = section.topological_order()
    for name in reversed(order):
        node = section.node(name)
        best = max((downstream[s] for s in section.successors(name)),
                   default=0.0)
        downstream[name] = node.wcet + best

    def priority(name: str) -> float:
        return downstream[name]

    return priority


_HEURISTICS: Dict[str, HeuristicFn] = {
    "ltf": ltf,
    "stf": stf,
    "fifo": fifo,
    "cpf": cpf,
}

#: the paper's default
DEFAULT_HEURISTIC = "ltf"


def available_heuristics() -> List[str]:
    return sorted(_HEURISTICS)


def get_heuristic(name: str) -> HeuristicFn:
    """Resolve a heuristic by (case-insensitive) name."""
    try:
        return _HEURISTICS[name.lower()]
    except KeyError:
        raise ConfigError(
            f"unknown heuristic {name!r}; available: "
            f"{available_heuristics()}") from None
