"""Canonical list schedules (the first round of the offline phase).

For each program section the offline phase generates a *canonical
schedule*: list scheduling with the longest-task-first (LTF) heuristic,
every task at its worst-case execution time, processors at maximum speed
(Section 3.2).  The canonical schedule fixes the **execution order** the
online phase must preserve, and — after shifting — each task's latest
start time.

AND synchronization nodes are dummy tasks with zero execution time: they
complete the instant their last predecessor does and never occupy a
processor; they still appear in the dispatch order so the online engine
can propagate readiness identically.

The scheduler is deterministic: simultaneous-ready ties break by longer
WCET first (the paper's heuristic), then by graph insertion order.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import SimulationError
from ..graph.andor import AndOrGraph
from ..types import ScheduledTask


@dataclass
class CanonicalSchedule:
    """The offline schedule of one program section.

    ``dispatch_order`` lists *all* section nodes (computation and AND) in
    the order the online phase must observe them; ``tasks`` holds the
    placement of computation nodes only.
    """

    n_processors: int
    tasks: Dict[str, ScheduledTask] = field(default_factory=dict)
    dispatch_order: List[str] = field(default_factory=list)
    length: float = 0.0

    def start(self, name: str) -> float:
        return self.tasks[name].start

    def finish(self, name: str) -> float:
        return self.tasks[name].finish


DurationFn = Callable[[str], float]
PriorityFn = Callable[[str], float]


def list_schedule(graph: AndOrGraph, n_processors: int,
                  duration: DurationFn,
                  priority: Optional[PriorityFn] = None
                  ) -> CanonicalSchedule:
    """LTF list scheduling of an AND-only section graph.

    Parameters
    ----------
    graph:
        A section subgraph — computation and AND nodes only.
    n_processors:
        Number of identical processors.
    duration:
        Maps a node name to its scheduling duration (WCET for the
        canonical worst-case schedule, ACET for the average-case one,
        possibly inflated by the per-task overhead reserve).
    priority:
        Tie-break priority among simultaneously ready tasks; defaults to
        ``duration`` (longest task first).  Pass the plain WCET when
        scheduling with average durations so both schedules share one
        heuristic order.
    """
    if n_processors < 1:
        raise SimulationError(
            f"need at least one processor, got {n_processors}")
    prio = priority or duration

    sched = CanonicalSchedule(n_processors=n_processors)
    unfinished: Dict[str, int] = {}
    seq = itertools.count()
    # ready computation tasks: max-heap on priority, FIFO among equals
    ready: List[Tuple[float, int, str]] = []
    # processors: min-heap of (free_time, index)
    procs: List[Tuple[float, int]] = [(0.0, i) for i in range(n_processors)]
    heapq.heapify(procs)
    running: List[Tuple[float, int, str, int]] = []  # (finish, seq, name, proc)
    order = itertools.count()
    done = 0
    total = len(graph)

    def complete(name: str, t: float) -> None:
        """Propagate completion of ``name`` at time ``t`` (cascading ANDs)."""
        nonlocal done
        done += 1
        for s in graph.successors(name):
            unfinished[s] -= 1
            if unfinished[s] == 0:
                fire(s, t)

    def fire(name: str, t: float) -> None:
        """Node ``name`` became ready at ``t``."""
        node = graph.node(name)
        if node.is_and:
            sched.dispatch_order.append(name)
            complete(name, t)
        else:
            heapq.heappush(ready, (-prio(name), next(seq), name))

    for name in graph.node_names:
        unfinished[name] = graph.in_degree(name)
    # snapshot the roots first: firing an AND root cascades and may drive
    # other nodes' counts to zero, which must not fire them twice
    roots = [name for name in graph.node_names if unfinished[name] == 0]
    for name in roots:
        fire(name, 0.0)

    now = 0.0
    while done < total:
        # dispatch ready tasks onto idle processors (idle processors in
        # `procs` became free at some time <= now, so they can start now)
        while ready and procs:
            _, _, name = heapq.heappop(ready)
            _free_t, pid = heapq.heappop(procs)
            dur = duration(name)
            if dur < 0:
                raise SimulationError(f"negative duration for {name!r}")
            finish = now + dur
            sched.tasks[name] = ScheduledTask(
                name=name, processor=pid, start=now, finish=finish,
                order=next(order))
            sched.dispatch_order.append(name)
            heapq.heappush(running, (finish, next(seq), name, pid))
        if done >= total:
            break
        if not running:
            raise SimulationError(
                "section schedule stalled: no running task and nothing "
                "ready — graph is not a connected AND-only section")
        # advance to the next completion; drain all simultaneous finishes
        finish, _, name, pid = heapq.heappop(running)
        now = finish
        heapq.heappush(procs, (finish, pid))
        complete(name, now)
        while running and running[0][0] <= now + 1e-15:
            f2, _, n2, p2 = heapq.heappop(running)
            heapq.heappush(procs, (f2, p2))
            complete(n2, now)

    sched.length = max((t.finish for t in sched.tasks.values()), default=0.0)
    return sched


def wcet_duration(graph: AndOrGraph, reserve: float = 0.0) -> DurationFn:
    """Duration function: WCET plus the per-task overhead reserve."""

    def fn(name: str) -> float:
        node = graph.node(name)
        return node.wcet + (reserve if node.is_computation else 0.0)

    return fn


def acet_duration(graph: AndOrGraph) -> DurationFn:
    """Duration function: average-case execution time."""

    def fn(name: str) -> float:
        return graph.node(name).acet

    return fn
