"""The offline phase of the scheduling algorithms (Section 3.2).

Public surface: :func:`list_schedule` (canonical LTF schedules),
:func:`build_plan` / :class:`OfflinePlan` (profile + shifting + latest
start times), and the duration helpers used to schedule with worst-case,
average-case or overhead-inflated times.
"""

from .canonical import (
    CanonicalSchedule,
    acet_duration,
    list_schedule,
    wcet_duration,
)
from .heuristics import (
    DEFAULT_HEURISTIC,
    available_heuristics,
    get_heuristic,
)
from .plan import (
    OfflinePlan,
    SectionPlan,
    build_plan,
    clear_plan_cache,
    graph_fingerprint,
    plan_cache_stats,
)
from .visualize import render_plan, render_section

__all__ = [
    "CanonicalSchedule",
    "list_schedule",
    "wcet_duration",
    "acet_duration",
    "OfflinePlan",
    "SectionPlan",
    "build_plan",
    "clear_plan_cache",
    "graph_fingerprint",
    "plan_cache_stats",
    "get_heuristic",
    "available_heuristics",
    "DEFAULT_HEURISTIC",
    "render_plan",
    "render_section",
]
