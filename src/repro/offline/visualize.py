"""ASCII rendering of offline plans.

Shows what the offline phase actually computed: per section, the
canonical schedule (processor rows) and the shifted latest-start-time
window of every task.  Invaluable when explaining why GSS picked a
speed — the window ``[LST_i, F_i]`` is right there.
"""

from __future__ import annotations

import io
from typing import List, Optional

from ..errors import ConfigError
from .plan import OfflinePlan, SectionPlan


def render_section(plan: OfflinePlan, sid: int, width: int = 72) -> str:
    """Render one section's canonical schedule and shifted windows."""
    try:
        sp: SectionPlan = plan.sections[sid]
    except KeyError:
        raise ConfigError(f"plan has no section {sid}") from None
    out = io.StringIO()
    section = plan.structure.section(sid)
    out.write(f"section {sid}"
              f"{' (root)' if section.is_root else ''}"
              f"{' (terminal)' if section.is_terminal else ''}: "
              f"len_wc={sp.length_wc:.2f} len_ac={sp.length_ac:.2f} "
              f"shift={sp.shift:.2f} worst_after={sp.worst_after:.2f}\n")
    if not sp.schedule.tasks:
        out.write("  (synchronization only — no computation tasks)\n")
        return out.getvalue()

    horizon = max(sp.length_wc, 1e-9)
    scale = width / horizon
    by_proc: dict = {}
    for name, st in sp.schedule.tasks.items():
        by_proc.setdefault(st.processor, []).append((name, st))
    for pid in sorted(by_proc):
        row = [" "] * width
        for name, st in sorted(by_proc[pid], key=lambda kv: kv[1].start):
            a = min(int(st.start * scale), width - 1)
            b = min(max(int(st.finish * scale), a + 1), width)
            for k in range(a, b):
                row[k] = "#"
            for k, ch in enumerate(name[: b - a]):
                row[a + k] = ch
        out.write(f"  P{pid} |{''.join(row)}|\n")
    out.write(f"      0{'':{max(width - 8, 0)}}{horizon:>8.1f}\n")
    out.write(f"  {'task':>14} {'start':>8} {'order':>6} {'LST':>9} "
              f"{'F=LST+c':>9}\n")
    for name, st in sorted(sp.schedule.tasks.items(),
                           key=lambda kv: kv[1].order):
        out.write(f"  {name:>14} {st.start:>8.2f} {st.order:>6d} "
                  f"{sp.lst[name]:>9.2f} {sp.finish_bound[name]:>9.2f}\n")
    return out.getvalue()


def render_plan(plan: OfflinePlan, width: int = 72,
                sections: Optional[List[int]] = None) -> str:
    """Render the whole offline plan (or a subset of sections)."""
    out = io.StringIO()
    out.write(f"offline plan: app={plan.app.name!r} "
              f"m={plan.n_processors} D={plan.deadline:.2f} "
              f"T_worst={plan.t_worst:.2f} T_avg={plan.t_avg:.2f} "
              f"reserve={plan.reserve:.4f}\n")
    ids = sections if sections is not None else sorted(plan.sections)
    for sid in ids:
        out.write(render_section(plan, sid, width))
    if plan.branch_stats:
        out.write("PMP remaining-time profile (per OR branch):\n")
        for or_name, stats in plan.branch_stats.items():
            for target, ps in stats.items():
                out.write(f"  {or_name} -> section {target}: "
                          f"w={ps.worst:.2f} a={ps.average:.2f}\n")
    return out.getvalue()
