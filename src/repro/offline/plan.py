"""The offline phase: profile, canonical schedules, shifting, LSTs.

This implements Section 3.2's two-round offline phase:

* **round 1** — per program section, a canonical LTF list schedule with
  worst-case execution times (optionally inflated by the per-task
  overhead reserve), plus an average-case schedule for the statistical
  profile.  Recursing over the OR structure yields the worst/average
  *remaining* execution times stored at each power-management point:
  ``w``/``a`` for the whole application and ``w_i``/``a_i`` per path
  after every OR node.  If the worst case exceeds the deadline, the
  offline phase fails (:class:`~repro.errors.InfeasibleError`).
* **round 2** — shift every section's canonical schedule as late as the
  worst-case remaining work after it allows, so the application would
  finish exactly on the deadline; the shifted start of each task is its
  **latest start time** (LST), which the online phase uses to claim
  slack, and the shifted finish is the bound ``F_i = LST_i + c_i`` that
  the greedy speed computation targets.
"""

from __future__ import annotations

import hashlib
import json
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import InfeasibleError, ValidationError
from ..graph.andor import AndOrGraph, Application
from ..graph.sections import SectionStructure
from ..graph.validate import validate_application
from ..types import PathStats, ScheduledTask
from .canonical import CanonicalSchedule, acet_duration, list_schedule, wcet_duration


@dataclass
class SectionPlan:
    """Offline data for one program section."""

    sid: int
    schedule: CanonicalSchedule          # worst-case (possibly inflated)
    length_wc: float                      # canonical worst-case length
    length_ac: float                      # average-case canonical length
    worst_after: float = 0.0              # worst remaining after exit OR
    avg_after: float = 0.0                # average remaining after exit OR
    shift: float = 0.0                    # round-2 shift of this section
    #: per computation task: latest start time in the shifted schedule
    lst: Dict[str, float] = field(default_factory=dict)
    #: per computation task: shifted worst-case finish (LST + inflated WCET)
    finish_bound: Dict[str, float] = field(default_factory=dict)
    #: dispatch order (computation + AND nodes)
    dispatch_order: List[str] = field(default_factory=list)
    #: per node: predecessors within the section
    preds_within: Dict[str, List[str]] = field(default_factory=dict)

    @property
    def worst_from_here(self) -> float:
        """Worst-case remaining time from this section's start."""
        return self.length_wc + self.worst_after

    @property
    def avg_from_here(self) -> float:
        return self.length_ac + self.avg_after


@dataclass
class OfflinePlan:
    """Everything the online phase needs, computed once per application.

    ``reserve`` is the per-task time reserved for runtime overheads
    (speed computation + one voltage switch); the dynamic schemes build
    their plan with the reserve, the static baselines with reserve 0.
    """

    app: Application
    structure: SectionStructure
    n_processors: int
    reserve: float
    sections: Dict[int, SectionPlan]
    t_worst: float
    t_avg: float
    #: per OR node, per successor section id: remaining-time statistics
    branch_stats: Dict[str, Dict[int, PathStats]]
    #: list-scheduling priority the canonical schedules were built with;
    #: part of the plan's identity (it reorders sections), recorded so
    #: content-addressed caches can key compiled programs by it
    heuristic: str = "ltf"
    #: lazily compiled section program (:mod:`repro.sim.compiled`); the
    #: deadline-shifted finish bounds bake into it, so it lives on the
    #: plan instance rather than in the deadline-independent round-1
    #: cache above.  Per-process, like that cache.
    compiled: Optional[object] = field(default=None, repr=False,
                                       compare=False)

    @property
    def deadline(self) -> float:
        return self.app.deadline

    def fingerprint(self) -> Tuple[str, float, int, float, str]:
        """Content identity of the plan (not the instance).

        Two :func:`build_plan` calls with equal inputs produce plans
        with equal fingerprints, which is what lets long-lived worker
        processes reuse a compiled section program across plan
        *instances* (:mod:`repro.sim.compiled`'s program cache).
        """
        return (graph_fingerprint(self.app.graph), float(self.deadline),
                self.n_processors, float(self.reserve), self.heuristic)

    @property
    def static_slack(self) -> float:
        return self.deadline - self.t_worst

    def section_plan(self, sid: int) -> SectionPlan:
        return self.sections[sid]

    def remaining_stats(self, or_name: str, target_sid: int) -> PathStats:
        """The PMP's ``(w_i, a_i)`` for one path after an OR node."""
        return self.branch_stats[or_name][target_sid]


@dataclass
class _CanonicalStage:
    """The deadline-independent output of round 1 for one cache key.

    Canonical list schedules depend only on the graph, the processor
    count, the reserve and the heuristic — not on the deadline — so a
    load sweep that revisits the same graph at many deadlines can reuse
    them.  Everything mutable in :class:`SectionPlan` (shift, LSTs,
    remaining-time fields) is recomputed per :func:`build_plan` call
    from this read-only snapshot.
    """

    structure: SectionStructure
    #: sid -> (wc schedule, length_wc, length_ac, dispatch_order, preds)
    sections: Dict[int, Tuple[CanonicalSchedule, float, float,
                              List[str], Dict[str, List[str]]]]


#: canonical-stage cache: (graph fingerprint, m, reserve, heuristic) ->
#: :class:`_CanonicalStage`.  Per-process (workers each grow their own),
#: bounded LRU.  Not thread-safe; the library is process-parallel only.
_PLAN_CACHE: "OrderedDict[Tuple[str, int, float, str], _CanonicalStage]" \
    = OrderedDict()
_PLAN_CACHE_MAX = 64
_plan_cache_hits = 0
_plan_cache_misses = 0


def graph_fingerprint(graph: AndOrGraph) -> str:
    """A deterministic content hash of a graph (nodes, edges, probabilities).

    Two structurally identical graphs fingerprint identically regardless
    of object identity; any change to a node's timing, an edge, or a
    branch probability changes the digest.  Used as the graph component
    of the offline-plan cache key.
    """
    from ..graph.serialize import graph_to_dict
    payload = json.dumps(graph_to_dict(graph), sort_keys=True)
    return hashlib.sha1(payload.encode("utf-8")).hexdigest()


def clear_plan_cache() -> None:
    """Drop every cached canonical stage (and reset the hit counters)."""
    global _plan_cache_hits, _plan_cache_misses
    _PLAN_CACHE.clear()
    _plan_cache_hits = 0
    _plan_cache_misses = 0


def plan_cache_stats() -> Dict[str, int]:
    """Cache effectiveness counters: ``{"hits", "misses", "size"}``."""
    return {"hits": _plan_cache_hits, "misses": _plan_cache_misses,
            "size": len(_PLAN_CACHE)}


def _canonical_stage(app: Application, n_processors: int, reserve: float,
                     structure: Optional[SectionStructure],
                     heuristic: str, use_cache: bool) -> _CanonicalStage:
    """Round 1, memoized on ``(graph, m, reserve, heuristic)``."""
    global _plan_cache_hits, _plan_cache_misses
    key = (graph_fingerprint(app.graph), n_processors, float(reserve),
           heuristic)
    if use_cache:
        stage = _PLAN_CACHE.get(key)
        if stage is not None:
            _plan_cache_hits += 1
            _PLAN_CACHE.move_to_end(key)
            return stage
        _plan_cache_misses += 1

    from .heuristics import get_heuristic
    heuristic_fn = get_heuristic(heuristic)
    if structure is None:
        structure = validate_application(app)

    sections: Dict[int, Tuple[CanonicalSchedule, float, float,
                              List[str], Dict[str, List[str]]]] = {}
    for section in structure.sections:
        sub = structure.subgraph(section.id)
        priority = heuristic_fn(sub)
        wc = list_schedule(sub, n_processors,
                           duration=wcet_duration(sub, reserve),
                           priority=priority)
        ac = list_schedule(sub, n_processors, duration=acet_duration(sub),
                           priority=priority)
        preds_within = {
            name: [p for p in sub.predecessors(name)]
            for name in sub.node_names
        }
        sections[section.id] = (wc, wc.length, ac.length,
                                list(wc.dispatch_order), preds_within)

    stage = _CanonicalStage(structure=structure, sections=sections)
    if use_cache:
        _PLAN_CACHE[key] = stage
        while len(_PLAN_CACHE) > _PLAN_CACHE_MAX:
            _PLAN_CACHE.popitem(last=False)
    return stage


def build_plan(app: Application, n_processors: int,
               reserve: float = 0.0,
               structure: Optional[SectionStructure] = None,
               require_feasible: bool = True,
               heuristic: str = "ltf",
               use_cache: bool = True) -> OfflinePlan:
    """Run the offline phase for ``app`` on ``n_processors`` processors.

    ``heuristic`` picks the list-scheduling priority (see
    :mod:`repro.offline.heuristics`); the paper uses LTF.  Raises
    :class:`InfeasibleError` if the canonical worst case misses the
    deadline (set ``require_feasible=False`` to obtain the plan anyway,
    e.g. to measure by how much a deadline must be extended).

    The expensive round-1 canonical schedules are memoized on
    ``(graph fingerprint, n_processors, reserve, heuristic)`` — they do
    not depend on the deadline, so load sweeps over one graph rebuild
    only the cheap shifting round.  ``use_cache=False`` bypasses the
    memo (and does not populate it).
    """
    if app.deadline <= 0:  # validate_application may be skipped on a hit
        raise ValidationError(
            f"deadline must be positive, got {app.deadline}")
    stage = _canonical_stage(app, n_processors, reserve, structure,
                             heuristic, use_cache)
    if structure is None:
        structure = stage.structure

    sections: Dict[int, SectionPlan] = {}
    for sid, (wc, length_wc, length_ac, order, preds) in \
            stage.sections.items():
        sections[sid] = SectionPlan(
            sid=sid,
            schedule=wc,
            length_wc=length_wc,
            length_ac=length_ac,
            dispatch_order=list(order),
            preds_within={k: list(v) for k, v in preds.items()},
        )

    branch_stats: Dict[str, Dict[int, PathStats]] = {}
    _fill_remaining(structure, sections, branch_stats, structure.root_id)

    root = sections[structure.root_id]
    t_worst = root.worst_from_here
    t_avg = root.avg_from_here
    if require_feasible and t_worst > app.deadline * (1 + 1e-12):
        raise InfeasibleError(t_worst, app.deadline,
                              detail=f"app={app.name!r}, m={n_processors}")

    _shift(structure, sections, app.deadline, structure.root_id)

    return OfflinePlan(app=app, structure=structure,
                       n_processors=n_processors, reserve=reserve,
                       sections=sections, t_worst=t_worst, t_avg=t_avg,
                       branch_stats=branch_stats, heuristic=heuristic)


def _fill_remaining(structure: SectionStructure,
                    sections: Dict[int, SectionPlan],
                    branch_stats: Dict[str, Dict[int, PathStats]],
                    sid: int) -> None:
    """Post-order recursion computing worst/avg remaining after each section."""
    plan = sections[sid]
    exit_or = structure.section(sid).exit_or
    if exit_or is None:
        plan.worst_after = 0.0
        plan.avg_after = 0.0
        return
    branches = structure.branches(exit_or)
    if not branches:  # terminal merge: nothing after the OR
        plan.worst_after = 0.0
        plan.avg_after = 0.0
        branch_stats.setdefault(exit_or, {})
        return
    stats = branch_stats.setdefault(exit_or, {})
    worst = 0.0
    avg = 0.0
    for target, prob in branches:
        if target not in stats:  # shared merge targets: compute once
            _fill_remaining(structure, sections, branch_stats, target)
            child = sections[target]
            stats[target] = PathStats(worst=child.worst_from_here,
                                      average=child.avg_from_here)
        worst = max(worst, stats[target].worst)
        avg += prob * stats[target].average
    plan.worst_after = worst
    plan.avg_after = avg


def _shift(structure: SectionStructure, sections: Dict[int, SectionPlan],
           deadline: float, root_sid: int) -> None:
    """Round 2: shift each section so worst-case work ends exactly at D.

    The shift of a section depends only on the worst-case remaining work
    *from* it (``shift = D − worst_from_here``), which is path
    independent: any OR firing that reaches the section does so no later
    than its shift, because the predecessor section's shifted finish is
    ``D − worst_after(pred) ≤ shift`` (the max over branches includes
    this one).  This is the recursive shifting of embedded OR nodes the
    paper describes, collapsed to a closed form.
    """
    del root_sid  # shifts are global; parameter kept for call symmetry
    for plan in sections.values():
        shift = deadline - plan.worst_from_here
        plan.shift = shift
        plan.lst = {name: shift + st.start
                    for name, st in plan.schedule.tasks.items()}
        plan.finish_bound = {name: shift + st.finish
                             for name, st in plan.schedule.tasks.items()}
