"""Fused sweep evaluation: one array program over ``points × runs``.

``BENCH_engine.json`` recorded the motivating regression: with the
compiled kernels a Monte-Carlo run costs tens of microseconds, so
process-pool chunking of runs *within* one point is ~9× slower than
serial — the pool's transport and scheduling dominate.  The profitable
axis is the opposite one: amortize the *per-point* kernel invocations.

:func:`evaluate_points_fused` takes a whole sweep (several applications,
one config each), stacks their compiled section programs into one
:class:`~repro.sim.sweepc.StackedProgram` (when the points are
structurally homogeneous — load and α sweeps are), samples every
point's realization batch from its own seed exactly as
:func:`~repro.experiments.runner.evaluate_application` would, and runs
the batch kernels once over the fused run axis with a ``point_of``
gather index.  The result list is sliced back per point, so callers —
and the per-point evaluation cache — see ordinary
:class:`~repro.experiments.runner.EvaluationResult`\\ s.

**Sharded execution.**  The fused pass itself is embarrassingly
parallel along the run axis: every run's outputs are elementwise in its
own realization row.  With ``shards=N`` (``RunConfig.shards``, CLI
``--shards``, or the ``REPRO_SHARDS`` session default) the run axis is
partitioned by :func:`~repro.sim.sweepc.plan_shards` into deterministic
ranges and each shard executes the same stacked program over its row
slice as an independent :class:`ShardTask` — on the persistent worker
pool (``backend="local"``) or on the dispatch executor fleet
(``backend="dispatch"``), inheriting the full retry/steal/degrade
semantics of :meth:`~repro.experiments.engine.ExecutionContext.map` and
:func:`~repro.experiments.dispatch.dispatch_points`.  Seed alignment
makes this exact, not approximate: a shard samples each point's *full*
realization batch from the config seed and slices its row range, so it
sees bit-for-bit the rows the monolithic pass would have, and the
parent reduces shard blocks back by concatenation in shard-index order
(fixed accumulation order).  Sharded output is therefore byte-identical
to the unsharded fused reference — pinned by the golden suites.

Returns ``None`` whenever fusion does not apply (heterogeneous configs,
incompatible graph structure, a non-"compiled" engine); the caller
falls back to per-point evaluation, pooled at the point level.  Every
fused output is bit-identical to the per-point path — and therefore to
the serial dict engine — which ``tests/property/test_fused_equivalence``
pins exactly.
"""

from __future__ import annotations

import os
import warnings
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.registry import get_policy
from ..errors import ConfigError, FaultInjected, ParallelError, TransportError
from ..graph.andor import Application
from ..power.overhead import NO_OVERHEAD
from ..sim.compiled import (CompiledKernel, compile_plan, run_dynamic_batch,
                            run_fixed_batch, supports_dynamic_batch)
from ..sim.realization import sample_realization_batch
from ..sim.sweepc import (StackedProgram, _stack_values, fused_bytes_estimate,
                          plan_shards, programs_compatible, stack_programs)
from . import faults
from .engine import (SHARD_SHM_MIN_BYTES, ExecutionContext, default_executors,
                     effective_cores, publish_shard_block)
from .runner import EvaluationResult, RunConfig, build_plans

#: session default consulted when ``RunConfig.shards`` is None, seeded
#: from ``REPRO_SHARDS`` (module attribute so tests can monkeypatch it;
#: read via :func:`default_shards` at call time).  ``None`` = unsharded
#: monolithic execution, ``0`` = auto (cores + memory budget), ``N`` =
#: exactly N shards.
DEFAULT_SHARDS = os.environ.get("REPRO_SHARDS")


def default_shards() -> Optional[int]:
    """The session-default shard request (env/monkeypatch, call time)."""
    raw = DEFAULT_SHARDS
    if raw in (None, ""):
        return None
    try:
        value = int(raw)
    except (TypeError, ValueError):
        raise ConfigError(
            f"REPRO_SHARDS must be an integer, got {raw!r}") from None
    if value < 0:
        raise ConfigError(f"REPRO_SHARDS must be >= 0, got {value}")
    return value


#: observability snapshot of the most recent fused pass in this process
#: (shard count, run ranges, transport); popped by the sweep layer into
#: ``series.meta["fused"]`` via :func:`take_fused_meta`
_LAST_FUSED: Optional[Dict[str, object]] = None


def take_fused_meta() -> Optional[Dict[str, object]]:
    """Pop the most recent fused pass's meta (``None`` if none ran)."""
    global _LAST_FUSED
    out = _LAST_FUSED
    _LAST_FUSED = None
    return out


class _FusedRunSpec:
    """A duck-typed PolicyRun whose protocol attributes are per-point.

    :func:`~repro.sim.compiled.run_dynamic_batch` consults only the
    declared protocol attributes (``floor_const``/``floor_step``/
    ``or_respec``) and never mutates the run, so a plain object carrying
    stacked values replays every point's probe exactly.
    """

    fixed_speed = None

    def __init__(self, name, floor_const, floor_step, or_respec):
        self.name = name
        self.floor_const = floor_const
        self.floor_step = floor_step
        self.or_respec = or_respec


class _View:
    """One stacked program plus the per-point data aligned to its rows.

    The static view covers every run of the sweep; the dynamic view may
    cover a subset (points whose dynamic plan exists), with ``rows``
    mapping its run axis back into the full sweep's.
    """

    __slots__ = ("prog", "plans", "progs", "batches", "matrix", "groups",
                 "keys", "point_of", "offsets", "rows")

    def __init__(self, prog, plans, progs, batches, matrix, groups, keys,
                 point_of, offsets, rows):
        self.prog = prog
        self.plans = plans
        self.progs = progs
        self.batches = batches
        self.matrix = matrix
        self.groups = groups
        self.keys = keys
        self.point_of = point_of
        self.offsets = offsets
        self.rows = rows


class _FusedBuild:
    """The structural half of a fused sweep: plans, programs, stacks.

    Built once in the parent (and rebuilt deterministically inside each
    shard worker, where the per-process plan/program/stacked caches make
    it nearly free); holds everything that does not depend on sampled
    runs, so the sampling/execution half can be invoked per run-range.
    """

    __slots__ = ("base", "power", "overhead", "scheme_names", "tier",
                 "plans", "static_plans", "static_progs", "stacked_static",
                 "dyn_points", "dyn_plans", "dyn_progs", "stacked_dyn")

    def __init__(self, base, power, overhead, scheme_names, tier, plans,
                 static_plans, static_progs, stacked_static, dyn_points,
                 dyn_plans, dyn_progs, stacked_dyn):
        self.base = base
        self.power = power
        self.overhead = overhead
        self.scheme_names = scheme_names
        self.tier = tier
        self.plans = plans
        self.static_plans = static_plans
        self.static_progs = static_progs
        self.stacked_static = stacked_static
        self.dyn_points = dyn_points
        self.dyn_plans = dyn_plans
        self.dyn_progs = dyn_progs
        self.stacked_dyn = stacked_dyn


def _configs_fusable(configs: Sequence[RunConfig]) -> bool:
    """Whether every point shares the knobs a fused kernel hard-codes."""
    base = configs[0]
    if base.engine != "compiled":
        return False
    base_schemes = tuple(get_policy(n).name for n in base.schemes)
    for cfg in configs[1:]:
        if (cfg.engine != base.engine
                or cfg.power_model != base.power_model
                or cfg.idle_fraction != base.idle_fraction
                or cfg.overhead != base.overhead
                or cfg.n_processors != base.n_processors
                or cfg.heuristic != base.heuristic):
            return False
        if tuple(get_policy(n).name for n in cfg.schemes) != base_schemes:
            return False
    return True


def _build_fused(apps: Sequence[Application],
                 configs: Sequence[RunConfig]) -> Optional[_FusedBuild]:
    """Compile and stack a sweep's section programs, or ``None``.

    ``None`` means the points do not share executable structure (or the
    engine is not "compiled"); the caller falls back to per-point
    evaluation.  Bails at the first structural mismatch — cheap for
    heterogeneous app sets, since plan construction is itself cached by
    fingerprint.
    """
    base = configs[0]
    power = base.make_power()
    overhead = base.overhead
    scheme_names = tuple(get_policy(n).name for n in base.schemes)
    # resolved once so every kernel call of the sweep uses one tier
    # (kernel_tier is an execution knob: not fusability-gated, not part
    # of the evaluation-cache key)
    from ..sim.kernels import resolve_kernel_tier
    tier = resolve_kernel_tier(base.kernel_tier)

    plans = []
    static_progs = []
    for app, cfg in zip(apps, configs):
        plan_dyn, plan_static = build_plans(app, cfg, power)
        prog = compile_plan(plan_static)
        if static_progs and not programs_compatible(static_progs[0], prog):
            return None
        plans.append((plan_dyn, plan_static))
        static_progs.append(prog)
    static_plans = [ps for _pd, ps in plans]
    stacked_static = stack_programs(static_progs)
    if stacked_static is None:
        return None

    dyn_points = [i for i, (pd, _ps) in enumerate(plans) if pd is not None]
    dyn_plans = [plans[i][0] for i in dyn_points]
    stacked_dyn: Optional[StackedProgram] = None
    dyn_progs: List = []
    if dyn_points:
        dyn_progs = [compile_plan(p) for p in dyn_plans]
        stacked_dyn = stack_programs(dyn_progs)
        if stacked_dyn is None:
            return None
    return _FusedBuild(base, power, overhead, scheme_names, tier, plans,
                       static_plans, static_progs, stacked_static,
                       dyn_points, dyn_plans, dyn_progs, stacked_dyn)


def _stack_probes(name: str, probes) -> Optional[_FusedRunSpec]:
    """Stack per-point dynamic probes into one fused run spec, or ``None``.

    The probes must agree on *which* protocol attributes they declare
    (all-constant floor, all-step floor, same ``or_respec``); the
    declared float values may differ per point and are stacked.
    """
    respec = probes[0].or_respec
    if any(p.or_respec != respec for p in probes[1:]):
        return None
    consts = [p.floor_const for p in probes]
    steps = [p.floor_step for p in probes]
    if all(c is not None for c in consts) and all(s is None for s in steps):
        return _FusedRunSpec(name, _stack_values(consts), None, respec)
    if all(s is not None for s in steps) and all(c is None for c in consts):
        f_lo = _stack_values([s[0] for s in steps])
        f_hi = _stack_values([s[1] for s in steps])
        theta = _stack_values([s[2] for s in steps])
        return _FusedRunSpec(name, None, (f_lo, f_hi, theta), respec)
    return None


def _scalar_fallback(policy, view: _View, power, overhead):
    """Per-point scalar-kernel loop for schemes the batch kernels skip.

    Mirrors the tail of ``_simulate_runs_compiled`` point by point (the
    oracle's per-realization probing, or a custom scheme outside the
    declared protocol), so fused sweeps never change *which* code
    computes a scheme — only how the batchable ones are batched.
    """
    needs_rl = policy.needs_realization
    total = view.matrix.shape[0]
    abs_arr = np.empty(total)
    chg_arr = np.empty(total, dtype=float)
    for p in range(len(view.plans)):
        lo, hi = int(view.offsets[p]), int(view.offsets[p + 1])
        plan = view.plans[p]
        batch = view.batches[p]
        kernel = CompiledKernel(view.progs[p], power, overhead)
        rows = view.matrix[lo:hi].tolist()
        choice_rows = batch.choice_rows()
        shared_run = None
        if not needs_rl:
            probe = policy.start_run(plan, power, overhead)
            if probe.stateless:
                shared_run = probe
        for i in range(hi - lo):
            if shared_run is not None:
                run = shared_run
            else:
                rl = batch.realization(i) if needs_rl else None
                run = policy.start_run(plan, power, overhead,
                                       realization=rl)
            res = kernel.run(run, rows[i], choice_rows[i])
            abs_arr[lo + i] = res.total_energy
            chg_arr[lo + i] = res.n_speed_changes
    return abs_arr, chg_arr


def _eval_scheme(policy, name: str, view: _View, power, overhead,
                 kernel_tier=None):
    """One scheme's (absolute, changes) over a view's whole run axis.

    The fused mirror of the per-scheme dispatch in
    ``_simulate_runs_compiled``: batch-constant fixed speeds (stacked to
    a per-point vector), then the protocol-declared dynamic schemes,
    then the scalar per-run fallback.
    """
    speeds = [policy.batch_fixed_speed(p, power, overhead)
              for p in view.plans]
    if all(s is not None for s in speeds):
        speed = _stack_values(speeds)
        res = run_fixed_batch(view.prog, power, overhead, view.matrix,
                              view.groups, view.keys, speed, name,
                              point_of=view.point_of,
                              kernel_tier=kernel_tier)
        per_point = np.asarray(res.n_speed_changes, dtype=float)
        if per_point.ndim == 0:  # every point stacked to one scalar speed
            changes = np.full(view.matrix.shape[0], float(per_point))
        else:
            changes = per_point[view.point_of]
        return res.total_energy, changes
    if any(s is not None for s in speeds):
        # mixed fixed/dynamic across points: no single kernel shape
        # covers the view — punt the whole sweep to per-point evaluation
        return None
    if not policy.needs_realization:
        probes = [policy.start_run(plan, power, overhead)
                  for plan in view.plans]
        if all(supports_dynamic_batch(pr, power) for pr in probes):
            spec = _stack_probes(name, probes)
            if spec is not None:
                res = run_dynamic_batch(view.prog, power, overhead,
                                        view.matrix, view.groups,
                                        view.keys, spec, name,
                                        point_of=view.point_of,
                                        kernel_tier=kernel_tier)
                return res.total_energy, res.n_speed_changes.astype(float)
    return _scalar_fallback(policy, view, power, overhead)


def _compute_fused(build: _FusedBuild, configs: Sequence[RunConfig],
                   run_range: Optional[Tuple[int, int]] = None):
    """Sample and execute a fused sweep over one run-range.

    ``run_range=None`` covers every run (the monolithic pass); a
    ``(lo, hi)`` range samples each point's *full* batch from its seed
    and slices rows ``[lo, hi)`` — seed alignment — so a shard computes
    bit-for-bit the rows the monolithic pass holds at those positions.
    Returns ``(offsets, npm_energy, absolute, changes, path_keys)``
    over the covered rows, or ``None`` when a scheme's shape punts the
    sweep to per-point evaluation.
    """
    n_points = len(configs)
    power, overhead, tier = build.power, build.overhead, build.tier
    scheme_names = build.scheme_names
    static_plans = build.static_plans
    static_progs = build.static_progs
    stacked_static = build.stacked_static
    dyn_points, dyn_plans = build.dyn_points, build.dyn_plans
    dyn_progs, stacked_dyn = build.dyn_progs, build.stacked_dyn

    # per-point sampling from each config's own generator: the exact
    # stream evaluate_application draws, so fused results (and the cache
    # entries they fill) are interchangeable with per-point ones
    batches = []
    for (pd, ps), cfg in zip(build.plans, configs):
        rng = np.random.default_rng(cfg.seed)
        batch = sample_realization_batch(
            ps.structure, rng, cfg.n_runs,
            sigma_fraction=cfg.sigma_fraction)
        if run_range is not None:
            batch = batch[run_range[0]:run_range[1]]
        batches.append(batch)
    counts = [len(b) for b in batches]
    offsets = np.concatenate(([0], np.cumsum(counts)))
    total = int(offsets[-1])
    point_of = np.repeat(np.arange(n_points), counts)
    matrix = np.vstack([prog.realization_matrix(b)
                        for prog, b in zip(static_progs, batches)])
    choices = {name: np.concatenate([b.choices[name] for b in batches])
               for name in batches[0].choices}
    groups, path_keys = stacked_static.executed_paths(choices, total)

    static_view = _View(stacked_static, static_plans, static_progs,
                        batches, matrix, groups, path_keys, point_of,
                        offsets, np.arange(total))
    dyn_view: Optional[_View] = None

    def _build_dyn_view() -> _View:
        if len(dyn_points) == n_points:
            # the common case: every point has a dynamic plan, and the
            # dynamic program's section topology equals the static one's
            # (same structure object), so the grouping carries over
            return _View(stacked_dyn, dyn_plans, dyn_progs, batches,
                         matrix, groups, path_keys, point_of, offsets,
                         np.arange(total))
        sel = np.concatenate([np.arange(offsets[i], offsets[i + 1])
                              for i in dyn_points])
        sub_counts = [counts[i] for i in dyn_points]
        sub_offsets = np.concatenate(([0], np.cumsum(sub_counts)))
        sub_matrix = matrix[sel]
        sub_choices = {name: v[sel] for name, v in choices.items()}
        sub_groups, sub_keys = stacked_dyn.executed_paths(
            sub_choices, sel.size)
        sub_point_of = np.repeat(np.arange(len(dyn_points)), sub_counts)
        sub_batches = [batches[i] for i in dyn_points]
        return _View(stacked_dyn, dyn_plans, dyn_progs, sub_batches,
                     sub_matrix, sub_groups, sub_keys, sub_point_of,
                     sub_offsets, sel)

    base_res = run_fixed_batch(stacked_static, power, NO_OVERHEAD, matrix,
                               groups, path_keys, power.s_max, "NPM",
                               point_of=point_of, kernel_tier=tier)
    npm_energy = base_res.total_energy
    absolute = {}
    changes = {}
    for name in scheme_names:
        policy = get_policy(name)
        if name == "NPM":
            absolute[name] = npm_energy.copy()
            changes[name] = np.full(total, float(base_res.n_speed_changes))
            continue
        if policy.requires_reserve and not dyn_points:
            # DVS disabled at every point: the scheme runs like NPM
            absolute[name] = npm_energy.copy()
            changes[name] = np.zeros(total)
            continue
        if policy.requires_reserve:
            if dyn_view is None:
                dyn_view = _build_dyn_view()
            view = dyn_view
        else:
            view = static_view
        out = _eval_scheme(policy, name, view, power, overhead,
                           kernel_tier=tier)
        if out is None:
            return None
        abs_v, chg_v = out
        if view.rows.size == total:
            absolute[name] = abs_v
            changes[name] = chg_v
        else:
            # points without a dynamic plan run like NPM, zero switches
            a = npm_energy.copy()
            c = np.zeros(total)
            a[view.rows] = abs_v
            c[view.rows] = chg_v
            absolute[name] = a
            changes[name] = c
    return offsets, npm_energy, absolute, changes, path_keys


# ---------------------------------------------------------------------------
# sharded execution
# ---------------------------------------------------------------------------

class ShardTask:
    """One run-range of a fused sweep, shipped to a worker whole.

    Picklable and self-contained: carries the applications and configs
    so the worker rebuilds the stacked program deterministically (the
    per-process plan/program caches make the rebuild nearly free) and
    samples its rows seed-aligned.  Travels in place of an ``app``
    through both execution backends —
    :func:`~repro.experiments.parallel._evaluate_app_point` detects it
    on pool workers and dispatch executors alike — so shards inherit
    retry, stealing, dedup and degrade semantics without a wire-protocol
    change.
    """

    __slots__ = ("index", "n_shards", "lo", "hi", "apps", "configs",
                 "allow_shm")

    def __init__(self, index: int, n_shards: int, lo: int, hi: int,
                 apps: Tuple[Application, ...],
                 configs: Tuple[RunConfig, ...], allow_shm: bool):
        self.index = index
        self.n_shards = n_shards
        self.lo = lo
        self.hi = hi
        self.apps = apps
        self.configs = configs
        self.allow_shm = allow_shm

    @property
    def name(self) -> str:
        return (f"shard {self.index + 1}/{self.n_shards} "
                f"runs[{self.lo}:{self.hi})")

    def __getstate__(self):
        return {s: getattr(self, s) for s in self.__slots__}

    def __setstate__(self, state):
        for s, v in state.items():
            setattr(self, s, v)


class ShardResult:
    """One shard's result block: a packed matrix, inline or via shm.

    The matrix stacks, over the shard's point-major row axis,
    ``[npm, absolute per scheme..., speed changes per scheme...]``; the
    path keys ride as an ordinary pickled list (shared key strings
    memoize well).  ``block`` is an
    :class:`~repro.experiments.engine.ShardBlock` descriptor when the
    worker published the matrix through shared memory (local pool only;
    dispatch executors may live on other hosts).
    """

    __slots__ = ("matrix", "block", "path_keys", "schemes", "n_points")

    def __init__(self, matrix, block, path_keys, schemes, n_points):
        self.matrix = matrix
        self.block = block
        self.path_keys = path_keys
        self.schemes = schemes
        self.n_points = n_points

    def __getstate__(self):
        return {s: getattr(self, s) for s in self.__slots__}

    def __setstate__(self, state):
        for s, v in state.items():
            setattr(self, s, v)


def _pack_shard(scheme_names, npm, absolute, changes) -> np.ndarray:
    rows = [np.asarray(npm, dtype=float)]
    rows += [np.asarray(absolute[n], dtype=float) for n in scheme_names]
    rows += [np.asarray(changes[n], dtype=float) for n in scheme_names]
    return np.vstack(rows)


def run_shard(task: ShardTask) -> ShardResult:
    """Execute one shard (worker side): rebuild, sample, run, pack.

    Fires the ``shard-exec`` fault site first, so the chaos tier can
    crash/hang/fail a shard mid-sweep on either backend and prove the
    retry/steal/degrade recovery bit-identical.
    """
    if faults.fire("shard-exec", key=task.index) == "raise":
        raise FaultInjected(f"injected shard-exec fault on {task.name}")
    build = _build_fused(task.apps, task.configs)
    if build is None:
        raise ParallelError(
            task.name, RuntimeError("shard is no longer fusable"))
    out = _compute_fused(build, task.configs, run_range=(task.lo, task.hi))
    if out is None:
        raise ParallelError(
            task.name,
            RuntimeError("shard punted to per-point evaluation"))
    _offsets, npm, absolute, changes, path_keys = out
    matrix = _pack_shard(build.scheme_names, npm, absolute, changes)
    if task.allow_shm and matrix.nbytes >= SHARD_SHM_MIN_BYTES:
        block = publish_shard_block(matrix)
        if block is not None:
            return ShardResult(None, block, list(path_keys),
                               build.scheme_names, len(task.apps))
    return ShardResult(matrix, None, list(path_keys),
                       build.scheme_names, len(task.apps))


def _stateful_scalar_schemes(build: _FusedBuild) -> Optional[List[str]]:
    """Schemes whose scalar-path runs declare themselves stateful.

    Sharding splits the run sequence across processes; a policy whose
    ``PolicyRun`` declares ``stateless=False`` on the scalar-fallback
    path may legitimately carry state across its ``start_run`` sequence
    (that is what the declaration reserves the right to do), so such
    sweeps refuse to shard and run monolithically instead.  Schemes
    covered by the batch kernels never consult run state per row, and
    ``needs_realization`` schemes construct every run independently
    from its realization — both shard freely.

    Returns ``None`` when the sweep mixes fixed and dynamic shapes for
    one scheme — the monolithic pass would punt those to per-point
    evaluation anyway.
    """
    power, overhead = build.power, build.overhead
    stateful: List[str] = []
    for name in build.scheme_names:
        policy = get_policy(name)
        if name == "NPM":
            continue
        if policy.requires_reserve and not build.dyn_points:
            continue
        plans = (build.dyn_plans if policy.requires_reserve
                 else build.static_plans)
        speeds = [policy.batch_fixed_speed(p, power, overhead)
                  for p in plans]
        if all(s is not None for s in speeds):
            continue
        if any(s is not None for s in speeds):
            return None
        if policy.needs_realization:
            continue
        probes = [policy.start_run(p, power, overhead) for p in plans]
        if all(supports_dynamic_batch(pr, power) for pr in probes) \
                and _stack_probes(name, probes) is not None:
            continue
        if not all(pr.stateless for pr in probes):
            stateful.append(name)
    return stateful


def _resolve_shard_count(build: _FusedBuild, configs: Sequence[RunConfig],
                         shards: Optional[int]) -> int:
    """The effective shard count: explicit request, config, or auto.

    Resolution order: the ``shards`` argument, then the base config's
    ``shards`` field, then the ``REPRO_SHARDS`` session default; absent
    everywhere means 1 (monolithic).  ``0`` selects automatically:
    :func:`~repro.experiments.engine.effective_cores`, raised further
    when ``shard_mem_mb`` caps the per-shard working set below the
    sweep's estimated fused footprint.  Always clamped to the run count,
    and to 1 when the points disagree on ``n_runs`` (run ranges must
    mean the same rows at every point).
    """
    base = configs[0]
    request = shards
    if request is None:
        request = base.shards
    if request is None:
        request = default_shards()
    if request is None:
        return 1
    n_runs = base.n_runs
    if any(cfg.n_runs != n_runs for cfg in configs):
        return 1
    if request == 0:
        k = effective_cores()
        budget_mb = base.shard_mem_mb
        if budget_mb:
            est = fused_bytes_estimate(build.stacked_static,
                                       len(configs) * n_runs)
            need = -(-est // (budget_mb * 1024 * 1024))
            k = max(k, int(need))
    else:
        k = request
    return max(1, min(k, n_runs))


def _run_sharded(build: _FusedBuild, apps: Sequence[Application],
                 configs: Sequence[RunConfig], ranges,
                 context: Optional[ExecutionContext]):
    """Fan shards out over a backend; ``(shard results, transport)``.

    Routes through the provided context when it can host the fan-out
    (a dispatch fleet, or a local pool of two or more workers);
    otherwise spins up an ephemeral pool sized to the shards and the
    schedulable cores.  Returns ``None`` when no backend is usable
    (e.g. an unreachable dispatch fleet on a one-job context) — the
    caller then runs the monolithic pass, which is always correct.
    """
    base = build.base
    policy = base.retry_policy()
    n_points = len(apps)
    owned = False
    ctx = context
    if ctx is None or (ctx.backend != "dispatch" and ctx.jobs() < 2):
        # honor the configs' execution knobs and the session defaults,
        # exactly like an owned context in map_evaluations
        ctx = ExecutionContext(
            n_jobs=min(len(ranges), effective_cores()),
            backend=base.backend,
            executors=(base.executors if base.executors is not None
                       else default_executors()),
            connect=base.connect)
        owned = True
    try:
        allow_shm = (ctx.backend != "dispatch"
                     and getattr(ctx, "shared_memory", True))
        tasks = [ShardTask(s, len(ranges), lo, hi, tuple(apps),
                           tuple(configs), allow_shm)
                 for s, (lo, hi) in enumerate(ranges)]
        labels = [f"{t.name} x {n_points} point(s)" for t in tasks]
        if ctx.backend == "dispatch" \
                and ctx.dispatch_jobs(n_items=len(tasks)) >= 2:
            from .dispatch import dispatch_points
            results = dispatch_points(
                ctx, tasks, [base.with_(n_jobs=1)] * len(tasks),
                labels=labels, policy=policy)
            if results is not None:
                return results, "dispatch"
            return None  # fleet unreachable: monolithic fallback
        if ctx.backend == "dispatch":
            return None  # a one-executor fleet is never engaged
        if ctx.jobs(n_items=len(tasks)) < 2:
            return None
        results = ctx.map(run_shard, [(t,) for t in tasks],
                          labels=labels, policy=policy)
        return results, "pool"
    finally:
        if owned:
            ctx.close()


def _reduce_shards(build: _FusedBuild, configs: Sequence[RunConfig],
                   ranges, shard_results, context):
    """Merge shard blocks into full sweep arrays, in shard-index order.

    The reduction is pure placement — each shard's rows are copied into
    their monolithic positions (concat, never summation), so float
    accumulation order is fixed by construction.  A shard whose shm
    block cannot be attached is recomputed inline in the parent (warned
    and counted as an shm fallback): slower, still bit-identical.
    """
    scheme_names = build.scheme_names
    n_points = len(configs)
    n_runs = configs[0].n_runs
    n_schemes = len(scheme_names)
    total = n_points * n_runs
    npm = np.empty(total)
    absolute = {n: np.empty(total) for n in scheme_names}
    changes = {n: np.empty(total) for n in scheme_names}
    path_keys: List = [None] * total
    for (lo, hi), res in zip(ranges, shard_results):
        span = hi - lo
        matrix = None
        keys = None
        if res is not None:
            keys = res.path_keys
            if res.matrix is not None:
                matrix = res.matrix
            else:
                try:
                    matrix = res.block.take()
                except TransportError as exc:
                    if context is not None:
                        context.resilience["shm_fallbacks"] += 1
                    warnings.warn(
                        f"could not attach shard result block for "
                        f"runs[{lo}:{hi}) ({exc}); recomputing the shard "
                        "in the parent", RuntimeWarning, stacklevel=3)
        if matrix is None:
            out = _compute_fused(build, configs, run_range=(lo, hi))
            if out is None:  # pragma: no cover - parent pre-checked
                raise ParallelError(
                    f"shard runs[{lo}:{hi})",
                    RuntimeError("shard recompute punted"))
            _off, s_npm, s_abs, s_chg, keys = out
            matrix = _pack_shard(scheme_names, s_npm, s_abs, s_chg)
        expected = (1 + 2 * n_schemes, n_points * span)
        if matrix.shape != expected:
            raise ParallelError(
                f"shard runs[{lo}:{hi})",
                RuntimeError(f"shard block shape {matrix.shape} != "
                             f"expected {expected}"))
        for p in range(n_points):
            src = slice(p * span, (p + 1) * span)
            dst = slice(p * n_runs + lo, p * n_runs + hi)
            npm[dst] = matrix[0, src]
            for j, name in enumerate(scheme_names):
                absolute[name][dst] = matrix[1 + j, src]
                changes[name][dst] = matrix[1 + n_schemes + j, src]
            path_keys[p * n_runs + lo:p * n_runs + hi] = \
                keys[p * span:(p + 1) * span]
    offsets = np.arange(n_points + 1) * n_runs
    return offsets, npm, absolute, changes, path_keys


def evaluate_points_fused(apps: Sequence[Application],
                          configs: Sequence[RunConfig],
                          context: Optional[ExecutionContext] = None,
                          shards: Optional[int] = None
                          ) -> Optional[List[EvaluationResult]]:
    """Evaluate a homogeneous sweep as one fused array program.

    Returns per-point :class:`EvaluationResult`\\ s — bit-identical to
    calling :func:`~repro.experiments.runner.evaluate_application` per
    point — or ``None`` when the points cannot fuse (the caller then
    falls back to per-point evaluation).

    ``shards`` overrides the sharding request (``None`` defers to the
    base config and the ``REPRO_SHARDS`` session default; ``0`` selects
    automatically from cores and the memory budget; ``N >= 2`` fans the
    run axis out over ``context``'s backend).  ``context`` supplies the
    pool or fleet for sharded execution; without one, an ephemeral pool
    honoring the config's backend knobs is used and closed again.
    """
    n_points = len(apps)
    if n_points == 0:
        return []
    if not _configs_fusable(configs):
        return None
    build = _build_fused(apps, configs)
    if build is None:
        return None

    n_shards = _resolve_shard_count(build, configs, shards)
    if n_shards > 1:
        stateful = _stateful_scalar_schemes(build)
        if stateful is None:
            return None  # mixed shapes: per-point fallback either way
        if stateful:
            warnings.warn(
                f"scheme(s) {', '.join(sorted(stateful))} declare stateful "
                "runs (PolicyRun.stateless=False) on the scalar path; "
                "sharding would split their run sequence across processes "
                "— running the sweep unsharded", RuntimeWarning,
                stacklevel=2)
            n_shards = 1

    transport = "inline"
    shard_runs: List[int] = []
    out = None
    if n_shards > 1:
        ranges = plan_shards(configs[0].n_runs, n_shards)
        if len(ranges) > 1:
            fanned = _run_sharded(build, apps, configs, ranges, context)
            if fanned is not None:
                shard_results, transport = fanned
                out = _reduce_shards(build, configs, ranges,
                                     shard_results, context)
                shard_runs = [hi - lo for lo, hi in ranges]
    if out is None:
        transport = "inline"
        shard_runs = []
        out = _compute_fused(build, configs)
        if out is None:
            return None
    offsets, npm_energy, absolute, changes, path_keys = out

    scheme_names = build.scheme_names
    results = []
    for i, (app, cfg) in enumerate(zip(apps, configs)):
        lo, hi = int(offsets[i]), int(offsets[i + 1])
        res = EvaluationResult(app_name=app.name, config=cfg,
                               npm_energy=npm_energy[lo:hi].copy(),
                               path_keys=list(path_keys[lo:hi]))
        for name in scheme_names:
            res.absolute[name] = absolute[name][lo:hi].copy()
            res.normalized[name] = res.absolute[name] / res.npm_energy
            res.speed_changes[name] = changes[name][lo:hi].copy()
        results.append(res)

    global _LAST_FUSED
    meta: Dict[str, object] = {
        "points": n_points,
        "shards": len(shard_runs) if shard_runs else 1,
        "transport": transport,
    }
    if shard_runs:
        meta["shard_runs"] = shard_runs
    _LAST_FUSED = meta
    return results
