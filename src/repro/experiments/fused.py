"""Fused sweep evaluation: one array program over ``points × runs``.

``BENCH_engine.json`` recorded the motivating regression: with the
compiled kernels a Monte-Carlo run costs tens of microseconds, so
process-pool chunking of runs *within* one point is ~9× slower than
serial — the pool's transport and scheduling dominate.  The profitable
axis is the opposite one: amortize the *per-point* kernel invocations.

:func:`evaluate_points_fused` takes a whole sweep (several applications,
one config each), stacks their compiled section programs into one
:class:`~repro.sim.sweepc.StackedProgram` (when the points are
structurally homogeneous — load and α sweeps are), samples every
point's realization batch from its own seed exactly as
:func:`~repro.experiments.runner.evaluate_application` would, and runs
the batch kernels once over the fused run axis with a ``point_of``
gather index.  The result list is sliced back per point, so callers —
and the per-point evaluation cache — see ordinary
:class:`~repro.experiments.runner.EvaluationResult`\\ s.

Returns ``None`` whenever fusion does not apply (heterogeneous configs,
incompatible graph structure, a non-"compiled" engine); the caller
falls back to per-point evaluation, pooled at the point level.  Every
fused output is bit-identical to the per-point path — and therefore to
the serial dict engine — which ``tests/property/test_fused_equivalence``
pins exactly.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..core.registry import get_policy
from ..graph.andor import Application
from ..power.overhead import NO_OVERHEAD
from ..sim.compiled import (CompiledKernel, compile_plan, run_dynamic_batch,
                            run_fixed_batch, supports_dynamic_batch)
from ..sim.realization import sample_realization_batch
from ..sim.sweepc import (StackedProgram, _stack_values,
                          programs_compatible, stack_programs)
from .runner import EvaluationResult, RunConfig, build_plans


class _FusedRunSpec:
    """A duck-typed PolicyRun whose protocol attributes are per-point.

    :func:`~repro.sim.compiled.run_dynamic_batch` consults only the
    declared protocol attributes (``floor_const``/``floor_step``/
    ``or_respec``) and never mutates the run, so a plain object carrying
    stacked values replays every point's probe exactly.
    """

    fixed_speed = None

    def __init__(self, name, floor_const, floor_step, or_respec):
        self.name = name
        self.floor_const = floor_const
        self.floor_step = floor_step
        self.or_respec = or_respec


class _View:
    """One stacked program plus the per-point data aligned to its rows.

    The static view covers every run of the sweep; the dynamic view may
    cover a subset (points whose dynamic plan exists), with ``rows``
    mapping its run axis back into the full sweep's.
    """

    __slots__ = ("prog", "plans", "progs", "batches", "matrix", "groups",
                 "keys", "point_of", "offsets", "rows")

    def __init__(self, prog, plans, progs, batches, matrix, groups, keys,
                 point_of, offsets, rows):
        self.prog = prog
        self.plans = plans
        self.progs = progs
        self.batches = batches
        self.matrix = matrix
        self.groups = groups
        self.keys = keys
        self.point_of = point_of
        self.offsets = offsets
        self.rows = rows


def _configs_fusable(configs: Sequence[RunConfig]) -> bool:
    """Whether every point shares the knobs a fused kernel hard-codes."""
    base = configs[0]
    if base.engine != "compiled":
        return False
    base_schemes = tuple(get_policy(n).name for n in base.schemes)
    for cfg in configs[1:]:
        if (cfg.engine != base.engine
                or cfg.power_model != base.power_model
                or cfg.idle_fraction != base.idle_fraction
                or cfg.overhead != base.overhead
                or cfg.n_processors != base.n_processors
                or cfg.heuristic != base.heuristic):
            return False
        if tuple(get_policy(n).name for n in cfg.schemes) != base_schemes:
            return False
    return True


def _stack_probes(name: str, probes) -> Optional[_FusedRunSpec]:
    """Stack per-point dynamic probes into one fused run spec, or ``None``.

    The probes must agree on *which* protocol attributes they declare
    (all-constant floor, all-step floor, same ``or_respec``); the
    declared float values may differ per point and are stacked.
    """
    respec = probes[0].or_respec
    if any(p.or_respec != respec for p in probes[1:]):
        return None
    consts = [p.floor_const for p in probes]
    steps = [p.floor_step for p in probes]
    if all(c is not None for c in consts) and all(s is None for s in steps):
        return _FusedRunSpec(name, _stack_values(consts), None, respec)
    if all(s is not None for s in steps) and all(c is None for c in consts):
        f_lo = _stack_values([s[0] for s in steps])
        f_hi = _stack_values([s[1] for s in steps])
        theta = _stack_values([s[2] for s in steps])
        return _FusedRunSpec(name, None, (f_lo, f_hi, theta), respec)
    return None


def _scalar_fallback(policy, view: _View, power, overhead):
    """Per-point scalar-kernel loop for schemes the batch kernels skip.

    Mirrors the tail of ``_simulate_runs_compiled`` point by point (the
    oracle's per-realization probing, or a custom scheme outside the
    declared protocol), so fused sweeps never change *which* code
    computes a scheme — only how the batchable ones are batched.
    """
    needs_rl = policy.needs_realization
    total = view.matrix.shape[0]
    abs_arr = np.empty(total)
    chg_arr = np.empty(total, dtype=float)
    for p in range(len(view.plans)):
        lo, hi = int(view.offsets[p]), int(view.offsets[p + 1])
        plan = view.plans[p]
        batch = view.batches[p]
        kernel = CompiledKernel(view.progs[p], power, overhead)
        rows = view.matrix[lo:hi].tolist()
        choice_rows = batch.choice_rows()
        shared_run = None
        if not needs_rl:
            probe = policy.start_run(plan, power, overhead)
            if probe.stateless:
                shared_run = probe
        for i in range(hi - lo):
            if shared_run is not None:
                run = shared_run
            else:
                rl = batch.realization(i) if needs_rl else None
                run = policy.start_run(plan, power, overhead,
                                       realization=rl)
            res = kernel.run(run, rows[i], choice_rows[i])
            abs_arr[lo + i] = res.total_energy
            chg_arr[lo + i] = res.n_speed_changes
    return abs_arr, chg_arr


def _eval_scheme(policy, name: str, view: _View, power, overhead,
                 kernel_tier=None):
    """One scheme's (absolute, changes) over a view's whole run axis.

    The fused mirror of the per-scheme dispatch in
    ``_simulate_runs_compiled``: batch-constant fixed speeds (stacked to
    a per-point vector), then the protocol-declared dynamic schemes,
    then the scalar per-run fallback.
    """
    speeds = [policy.batch_fixed_speed(p, power, overhead)
              for p in view.plans]
    if all(s is not None for s in speeds):
        speed = _stack_values(speeds)
        res = run_fixed_batch(view.prog, power, overhead, view.matrix,
                              view.groups, view.keys, speed, name,
                              point_of=view.point_of,
                              kernel_tier=kernel_tier)
        per_point = np.asarray(res.n_speed_changes, dtype=float)
        if per_point.ndim == 0:  # every point stacked to one scalar speed
            changes = np.full(view.matrix.shape[0], float(per_point))
        else:
            changes = per_point[view.point_of]
        return res.total_energy, changes
    if any(s is not None for s in speeds):
        # mixed fixed/dynamic across points: no single kernel shape
        # covers the view — punt the whole sweep to per-point evaluation
        return None
    if not policy.needs_realization:
        probes = [policy.start_run(plan, power, overhead)
                  for plan in view.plans]
        if all(supports_dynamic_batch(pr, power) for pr in probes):
            spec = _stack_probes(name, probes)
            if spec is not None:
                res = run_dynamic_batch(view.prog, power, overhead,
                                        view.matrix, view.groups,
                                        view.keys, spec, name,
                                        point_of=view.point_of,
                                        kernel_tier=kernel_tier)
                return res.total_energy, res.n_speed_changes.astype(float)
    return _scalar_fallback(policy, view, power, overhead)


def evaluate_points_fused(apps: Sequence[Application],
                          configs: Sequence[RunConfig]
                          ) -> Optional[List[EvaluationResult]]:
    """Evaluate a homogeneous sweep as one fused array program.

    Returns per-point :class:`EvaluationResult`\\ s — bit-identical to
    calling :func:`~repro.experiments.runner.evaluate_application` per
    point — or ``None`` when the points cannot fuse (the caller then
    falls back to per-point evaluation).
    """
    n_points = len(apps)
    if n_points == 0:
        return []
    if not _configs_fusable(configs):
        return None
    base = configs[0]
    power = base.make_power()
    overhead = base.overhead
    scheme_names = tuple(get_policy(n).name for n in base.schemes)
    # resolved once so every kernel call of the sweep uses one tier
    # (kernel_tier is an execution knob: not fusability-gated, not part
    # of the evaluation-cache key)
    from ..sim.kernels import resolve_kernel_tier
    tier = resolve_kernel_tier(base.kernel_tier)

    # build + compile per point, bailing at the first structural mismatch
    # (cheap for heterogeneous app sets: only the mismatching prefix is
    # built, and plan construction is itself cached by fingerprint)
    plans = []
    static_progs = []
    for app, cfg in zip(apps, configs):
        plan_dyn, plan_static = build_plans(app, cfg, power)
        prog = compile_plan(plan_static)
        if static_progs and not programs_compatible(static_progs[0], prog):
            return None
        plans.append((plan_dyn, plan_static))
        static_progs.append(prog)
    static_plans = [ps for _pd, ps in plans]
    stacked_static = stack_programs(static_progs)
    if stacked_static is None:
        return None

    dyn_points = [i for i, (pd, _ps) in enumerate(plans) if pd is not None]
    dyn_plans = [plans[i][0] for i in dyn_points]
    stacked_dyn: Optional[StackedProgram] = None
    dyn_progs: List = []
    if dyn_points:
        dyn_progs = [compile_plan(p) for p in dyn_plans]
        stacked_dyn = stack_programs(dyn_progs)
        if stacked_dyn is None:
            return None

    # per-point sampling from each config's own generator: the exact
    # stream evaluate_application draws, so fused results (and the cache
    # entries they fill) are interchangeable with per-point ones
    batches = []
    for (pd, ps), cfg in zip(plans, configs):
        rng = np.random.default_rng(cfg.seed)
        batches.append(sample_realization_batch(
            ps.structure, rng, cfg.n_runs,
            sigma_fraction=cfg.sigma_fraction))
    counts = [len(b) for b in batches]
    offsets = np.concatenate(([0], np.cumsum(counts)))
    total = int(offsets[-1])
    point_of = np.repeat(np.arange(n_points), counts)
    matrix = np.vstack([prog.realization_matrix(b)
                        for prog, b in zip(static_progs, batches)])
    choices = {name: np.concatenate([b.choices[name] for b in batches])
               for name in batches[0].choices}
    groups, path_keys = stacked_static.executed_paths(choices, total)

    static_view = _View(stacked_static, static_plans, static_progs,
                        batches, matrix, groups, path_keys, point_of,
                        offsets, np.arange(total))
    dyn_view: Optional[_View] = None

    def _build_dyn_view() -> _View:
        if len(dyn_points) == n_points:
            # the common case: every point has a dynamic plan, and the
            # dynamic program's section topology equals the static one's
            # (same structure object), so the grouping carries over
            return _View(stacked_dyn, dyn_plans, dyn_progs, batches,
                         matrix, groups, path_keys, point_of, offsets,
                         np.arange(total))
        sel = np.concatenate([np.arange(offsets[i], offsets[i + 1])
                              for i in dyn_points])
        sub_counts = [counts[i] for i in dyn_points]
        sub_offsets = np.concatenate(([0], np.cumsum(sub_counts)))
        sub_matrix = matrix[sel]
        sub_choices = {name: v[sel] for name, v in choices.items()}
        sub_groups, sub_keys = stacked_dyn.executed_paths(
            sub_choices, sel.size)
        sub_point_of = np.repeat(np.arange(len(dyn_points)), sub_counts)
        sub_batches = [batches[i] for i in dyn_points]
        return _View(stacked_dyn, dyn_plans, dyn_progs, sub_batches,
                     sub_matrix, sub_groups, sub_keys, sub_point_of,
                     sub_offsets, sel)

    base_res = run_fixed_batch(stacked_static, power, NO_OVERHEAD, matrix,
                               groups, path_keys, power.s_max, "NPM",
                               point_of=point_of, kernel_tier=tier)
    npm_energy = base_res.total_energy
    absolute = {}
    changes = {}
    for name in scheme_names:
        policy = get_policy(name)
        if name == "NPM":
            absolute[name] = npm_energy.copy()
            changes[name] = np.full(total, float(base_res.n_speed_changes))
            continue
        if policy.requires_reserve and not dyn_points:
            # DVS disabled at every point: the scheme runs like NPM
            absolute[name] = npm_energy.copy()
            changes[name] = np.zeros(total)
            continue
        if policy.requires_reserve:
            if dyn_view is None:
                dyn_view = _build_dyn_view()
            view = dyn_view
        else:
            view = static_view
        out = _eval_scheme(policy, name, view, power, overhead,
                           kernel_tier=tier)
        if out is None:
            return None
        abs_v, chg_v = out
        if view.rows.size == total:
            absolute[name] = abs_v
            changes[name] = chg_v
        else:
            # points without a dynamic plan run like NPM, zero switches
            a = npm_energy.copy()
            c = np.zeros(total)
            a[view.rows] = abs_v
            c[view.rows] = chg_v
            absolute[name] = a
            changes[name] = c

    results = []
    for i, (app, cfg) in enumerate(zip(apps, configs)):
        lo, hi = int(offsets[i]), int(offsets[i + 1])
        res = EvaluationResult(app_name=app.name, config=cfg,
                               npm_energy=npm_energy[lo:hi].copy(),
                               path_keys=list(path_keys[lo:hi]))
        for name in scheme_names:
            res.absolute[name] = absolute[name][lo:hi].copy()
            res.normalized[name] = res.absolute[name] / res.npm_energy
            res.speed_changes[name] = changes[name][lo:hi].copy()
        results.append(res)
    return results
