"""Regeneration of every figure in the paper's evaluation (Section 5).

Each ``figureN`` function reproduces the corresponding experiment and
returns one :class:`~repro.types.SeriesResult` per sub-figure (a =
Transmeta, b = Intel XScale):

* **Figure 4** — normalized energy vs load; ATR on 2 processors,
  α = 0.9 (the measured "little run-time slack" regime);
* **Figure 5** — same sweep on 6 processors, switch overhead 5 µs;
* **Figure 6** — normalized energy vs α; the Figure 3 synthetic
  application on 2 processors at load 0.9.

``fig_online`` extends the family beyond the paper: normalized energy
*and* deadline-miss ratio vs sporadic arrival rate, through the online
streaming simulator (:mod:`repro.experiments.online`).

``n_runs`` defaults to the paper's 1000; benches pass a smaller count.
The schemes plotted are the paper's five (SPM, GSS, SS1, SS2, AS); the
clairvoyant oracle can be appended for the extension benches.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from ..core.registry import PAPER_SCHEMES
from ..types import SeriesResult
from ..workloads.atr import AtrConfig, atr_graph
from ..workloads.synthetic import figure3_graph
from .online import DEFAULT_RATES, ONLINE_LOAD, OnlineConfig, \
    sweep_arrival_rate
from .runner import RunConfig
from .sweeps import DEFAULT_ALPHAS, DEFAULT_LOADS, sweep_alpha, sweep_load

#: the two power configurations of Section 2.3
PAPER_POWER_MODELS = ("transmeta", "xscale")

#: α the paper measured for ATR ("little slack from run-time behaviour")
ATR_ALPHA = 0.9

#: load used for the Figure 6 α sweep (the paper's text discusses SPM's
#: behaviour "with load = 0.9" on the XScale model)
FIG6_LOAD = 0.9


def _fig_config(n_runs: int, n_processors: int, power_model: str,
                schemes: Sequence[str], seed: int,
                run_jobs: int = 1, runs_per_chunk: int = 0,
                engine: str = "compiled", max_retries: int = 2,
                chunk_timeout: float = 0.0,
                degrade: bool = True,
                backend: Optional[str] = None,
                executors: Optional[int] = None,
                connect: Optional[str] = None,
                kernel_tier: Optional[str] = None,
                shards: Optional[int] = None,
                shard_mem_mb: int = 0) -> RunConfig:
    # asking for run-level workers is the explicit opt-in to the legacy
    # chunked pool — the default path fuses the sweep with no pool
    return RunConfig(schemes=tuple(schemes), power_model=power_model,
                     n_processors=n_processors, n_runs=n_runs, seed=seed,
                     n_jobs=run_jobs, runs_per_chunk=runs_per_chunk,
                     engine=engine, max_retries=max_retries,
                     chunk_timeout=chunk_timeout, degrade=degrade,
                     run_level_pool=(run_jobs != 1),
                     backend=backend, executors=executors, connect=connect,
                     kernel_tier=kernel_tier,
                     shards=shards, shard_mem_mb=shard_mem_mb)


def figure4(n_runs: int = 1000,
            loads: Sequence[float] = DEFAULT_LOADS,
            schemes: Sequence[str] = PAPER_SCHEMES,
            n_jobs: int = 1, seed: int = 2002,
            alpha: float = ATR_ALPHA,
            run_jobs: int = 1,
            runs_per_chunk: int = 0,
            engine: str = "compiled",
            max_retries: int = 2,
            chunk_timeout: float = 0.0,
            degrade: bool = True,
            backend: Optional[str] = None,
            executors: Optional[int] = None,
            connect: Optional[str] = None,
            kernel_tier: Optional[str] = None,
            shards: Optional[int] = None,
            shard_mem_mb: int = 0,
            context=None, fused: bool = True) -> Dict[str, SeriesResult]:
    """Energy vs load, ATR, dual-processor (Figure 4a/4b).

    The default execution fuses each sub-figure's whole load sweep into
    one array program (``fused=True``).  ``n_jobs`` parallelizes across
    sweep points when fusion is off; ``run_jobs`` (and
    ``runs_per_chunk``) opt into the legacy run-level pool inside each
    point instead.  ``context`` (an
    :class:`~repro.experiments.engine.ExecutionContext`) shares one
    worker pool and evaluation cache across both sub-figures — and
    across figures, if the caller passes the same context to each.
    """
    out: Dict[str, SeriesResult] = {}
    graph = atr_graph(AtrConfig(alpha=alpha))
    for model in PAPER_POWER_MODELS:
        cfg = _fig_config(n_runs, 2, model, schemes, seed,
                          run_jobs, runs_per_chunk, engine,
                          max_retries, chunk_timeout, degrade,
                          backend, executors, connect, kernel_tier,
                          shards, shard_mem_mb)
        out[model] = sweep_load(graph, cfg, loads, n_jobs=n_jobs,
                                name=f"figure4-{model}", context=context,
                                fused=fused)
    return out


def figure5(n_runs: int = 1000,
            loads: Sequence[float] = DEFAULT_LOADS,
            schemes: Sequence[str] = PAPER_SCHEMES,
            n_jobs: int = 1, seed: int = 2002,
            alpha: float = ATR_ALPHA,
            run_jobs: int = 1,
            runs_per_chunk: int = 0,
            engine: str = "compiled",
            max_retries: int = 2,
            chunk_timeout: float = 0.0,
            degrade: bool = True,
            backend: Optional[str] = None,
            executors: Optional[int] = None,
            connect: Optional[str] = None,
            kernel_tier: Optional[str] = None,
            shards: Optional[int] = None,
            shard_mem_mb: int = 0,
            context=None, fused: bool = True) -> Dict[str, SeriesResult]:
    """Energy vs load, ATR, 6 processors, overhead 5 µs (Figure 5a/5b).

    The ATR graph is widened (more simultaneous ROIs) so that six
    processors have parallelism to exploit; the paper notes that with
    more processors the scheduler forces idle time between tasks "for
    the sake of synchronization", which this configuration exhibits.
    """
    out: Dict[str, SeriesResult] = {}
    cfg_atr = AtrConfig(alpha=alpha, max_rois=6,
                        roi_probs=(0.05, 0.15, 0.20, 0.20, 0.15, 0.15, 0.10))
    graph = atr_graph(cfg_atr)
    for model in PAPER_POWER_MODELS:
        cfg = _fig_config(n_runs, 6, model, schemes, seed,
                          run_jobs, runs_per_chunk, engine,
                          max_retries, chunk_timeout, degrade,
                          backend, executors, connect, kernel_tier,
                          shards, shard_mem_mb)
        out[model] = sweep_load(graph, cfg, loads, n_jobs=n_jobs,
                                name=f"figure5-{model}", context=context,
                                fused=fused)
    return out


def figure6(n_runs: int = 1000,
            alphas: Sequence[float] = DEFAULT_ALPHAS,
            schemes: Sequence[str] = PAPER_SCHEMES,
            n_jobs: int = 1, seed: int = 2002,
            load: float = FIG6_LOAD,
            run_jobs: int = 1,
            runs_per_chunk: int = 0,
            engine: str = "compiled",
            max_retries: int = 2,
            chunk_timeout: float = 0.0,
            degrade: bool = True,
            backend: Optional[str] = None,
            executors: Optional[int] = None,
            connect: Optional[str] = None,
            kernel_tier: Optional[str] = None,
            shards: Optional[int] = None,
            shard_mem_mb: int = 0,
            context=None, fused: bool = True) -> Dict[str, SeriesResult]:
    """Energy vs α, synthetic application, dual-processor (Figure 6a/6b).

    ``context`` (an :class:`~repro.experiments.engine.ExecutionContext`)
    shares one worker pool and evaluation cache across both sub-figures.
    """
    out: Dict[str, SeriesResult] = {}
    for model in PAPER_POWER_MODELS:
        cfg = _fig_config(n_runs, 2, model, schemes, seed,
                          run_jobs, runs_per_chunk, engine,
                          max_retries, chunk_timeout, degrade,
                          backend, executors, connect, kernel_tier,
                          shards, shard_mem_mb)
        out[model] = sweep_alpha(figure3_graph, cfg, load, alphas,
                                 n_jobs=n_jobs, name=f"figure6-{model}",
                                 context=context, fused=fused)
    return out


def fig_online(n_runs: int = 1000,
               rates: Sequence[float] = DEFAULT_RATES,
               schemes: Sequence[str] = PAPER_SCHEMES,
               n_jobs: int = 1, seed: int = 2002,
               load: float = ONLINE_LOAD,
               arrival: str = "poisson",
               run_jobs: int = 1,
               runs_per_chunk: int = 0,
               engine: str = "compiled",
               max_retries: int = 2,
               chunk_timeout: float = 0.0,
               degrade: bool = True,
               backend: Optional[str] = None,
               executors: Optional[int] = None,
               connect: Optional[str] = None,
               kernel_tier: Optional[str] = None,
               shards: Optional[int] = None,
               shard_mem_mb: int = 0,
               context=None, fused: bool = True) -> Dict[str, SeriesResult]:
    """Energy and deadline-miss ratio vs sporadic arrival rate (online).

    One independent stream per rate point (Figure 3's synthetic
    application, 2 processors, per-job relative deadline fixed by
    ``load``), all fanned out through ``context`` like any other sweep.
    ``n_runs`` sets the *expected arrivals per point*
    (``OnlineConfig.target_arrivals``), so every rate sees comparable
    statistics; the miss/admit/reject ledger lands in
    ``series.meta["online"]``.  ``fused`` is accepted for signature
    compatibility — streams are sequential by nature and never fuse.
    """
    del fused  # accepted for uniform figure signature, not meaningful
    out: Dict[str, SeriesResult] = {}
    online = OnlineConfig(arrival=arrival, load=load,
                          target_arrivals=n_runs)
    for model in PAPER_POWER_MODELS:
        cfg = _fig_config(n_runs, 2, model, schemes, seed,
                          run_jobs, runs_per_chunk, engine,
                          max_retries, chunk_timeout, degrade,
                          backend, executors, connect, kernel_tier,
                          shards, shard_mem_mb)
        out[model] = sweep_arrival_rate(figure3_graph(), cfg, online,
                                        rates, n_jobs=n_jobs,
                                        name=f"fig-online-{model}",
                                        context=context)
    return out


ALL_FIGURES = {
    "fig4": figure4,
    "fig5": figure5,
    "fig6": figure6,
    "fig_online": fig_online,
}
