"""Misprofiling robustness: scheduling with wrong branch probabilities.

The speculative schemes (SS¹, SS², AS) and the static baseline consume
the application's statistical profile; GSS consumes only worst-case
structure.  What happens when the profile is wrong — the deployed
workload's branch probabilities drift from the ones measured offline?

* **Safety is unaffected**: Theorem 1 depends only on worst cases, so
  deadlines hold under arbitrary probability error (property-tested).
* **Energy degrades only for the schemes that use the profile** — this
  module measures by how much, by building plans/policies from an
  *assumed* probability assignment while sampling realizations from the
  *true* one.

This is an extension study (the paper assumes exact profiles), but it
directly supports the paper's headline: the greedy scheme's advantage
is partly that it has nothing to be wrong about.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from ..core.registry import get_policy
from ..errors import ConfigError
from ..graph.andor import AndOrGraph
from ..graph.sections import SectionStructure
from ..graph.transform import skew_probabilities
from ..power.overhead import NO_OVERHEAD
from ..sim.engine import simulate
from ..sim.realization import sample_realization_batch
from ..workloads.scaling import application_with_load
from .runner import RunConfig, build_plans


@dataclass
class MisprofileResult:
    """Normalized energies when the profile is wrong by a skew γ."""

    gamma: float
    #: scheme -> mean normalized energy under the true distribution
    means: Dict[str, float] = field(default_factory=dict)
    #: scheme -> mean under a *correct* profile (same true distribution)
    oracle_profile_means: Dict[str, float] = field(default_factory=dict)

    def regret(self, scheme: str) -> float:
        """Extra normalized energy paid for profiling error."""
        return self.means[scheme] - self.oracle_profile_means[scheme]


def misprofile_evaluation(graph: AndOrGraph, load: float,
                          config: RunConfig, gamma: float,
                          ) -> MisprofileResult:
    """Schedule with the graph's declared probabilities; run under a
    γ-skewed *true* distribution (see
    :func:`repro.graph.transform.skew_probabilities`)."""
    if gamma == 0:
        raise ConfigError("gamma must be non-zero (0 is undefined; "
                          "negative values invert the branch ordering)")
    power = config.make_power()

    # assumed profile: the graph as declared
    app = application_with_load(graph, load, config.n_processors)
    plan_dyn, plan_static = build_plans(app, config, power)

    # true behaviour: same structure, skewed probabilities; plans built
    # from it give the "perfect profile" reference
    true_graph = skew_probabilities(graph, gamma)
    true_structure = SectionStructure(true_graph)
    true_app = application_with_load(true_graph, load,
                                     config.n_processors)
    ref_dyn, ref_static = build_plans(true_app, config, power)

    rng = np.random.default_rng(config.seed)
    realizations = sample_realization_batch(
        true_structure, rng, config.n_runs,
        sigma_fraction=config.sigma_fraction)

    result = MisprofileResult(gamma=gamma)
    npm = get_policy("NPM")
    sums: Dict[str, float] = {n: 0.0 for n in config.schemes}
    ref_sums: Dict[str, float] = {n: 0.0 for n in config.schemes}
    for rl in realizations:
        base = simulate(plan_static,
                        npm.start_run(plan_static, power, NO_OVERHEAD,
                                      realization=rl),
                        power, NO_OVERHEAD, rl)
        for name in config.schemes:
            policy = get_policy(name)
            if policy.requires_reserve and plan_dyn is None:
                sums[name] += 1.0
                ref_sums[name] += 1.0
                continue
            plan = plan_dyn if policy.requires_reserve else plan_static
            run = policy.start_run(plan, power, config.overhead,
                                   realization=rl)
            res = simulate(plan, run, power, config.overhead, rl)
            sums[policy.name] += res.total_energy / base.total_energy

            ref_plan = ref_dyn if policy.requires_reserve else ref_static
            ref_run = policy.start_run(ref_plan, power, config.overhead,
                                       realization=rl)
            ref = simulate(ref_plan, ref_run, power, config.overhead,
                           rl)
            ref_sums[policy.name] += ref.total_energy / base.total_energy

    n = config.n_runs
    for name in config.schemes:
        label = get_policy(name).name
        result.means[label] = sums[name] / n
        result.oracle_profile_means[label] = ref_sums[name] / n
    return result


def render_misprofile(results: Dict[float, MisprofileResult]) -> str:
    """Regret table: rows = γ, columns = schemes."""
    if not results:
        raise ConfigError("no misprofile results to render")
    first = next(iter(results.values()))
    schemes = list(first.means)
    lines = [f"{'gamma':>7} | " +
             " ".join(f"{s + ' regret':>12}" for s in schemes)]
    for gamma in sorted(results):
        r = results[gamma]
        row = " ".join(f"{r.regret(s):>+12.4f}" for s in schemes)
        lines.append(f"{gamma:>7.2f} | {row}")
    return "\n".join(lines) + "\n"
