"""Distributional views of per-run results.

Means hide the shape: OR-branchy workloads produce multi-modal energy
distributions (one mode per execution path), and the speculative
schemes narrow the spread (that is what a constant speed *does*).
These helpers expose percentiles and ASCII histograms of the per-run
normalized energies an :class:`EvaluationResult` already carries.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigError
from .runner import EvaluationResult

DEFAULT_PERCENTILES = (5, 25, 50, 75, 95)


@dataclass(frozen=True)
class DistributionSummary:
    """Percentile summary of one scheme's per-run values."""

    scheme: str
    n: int
    mean: float
    std: float
    minimum: float
    maximum: float
    percentiles: Tuple[Tuple[float, float], ...]

    def percentile(self, q: float) -> float:
        for qq, v in self.percentiles:
            if qq == q:
                return v
        raise ConfigError(f"percentile {q} not computed")

    @property
    def iqr(self) -> float:
        return self.percentile(75) - self.percentile(25)


def summarize_distribution(scheme: str, values: np.ndarray,
                           percentiles: Sequence[float]
                           = DEFAULT_PERCENTILES) -> DistributionSummary:
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ConfigError("cannot summarize an empty sample")
    pct = tuple((float(q), float(np.percentile(arr, q)))
                for q in percentiles)
    return DistributionSummary(
        scheme=scheme, n=int(arr.size), mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        minimum=float(arr.min()), maximum=float(arr.max()),
        percentiles=pct)


def result_distributions(result: EvaluationResult,
                         schemes: Optional[Sequence[str]] = None
                         ) -> Dict[str, DistributionSummary]:
    names = list(schemes) if schemes else list(result.normalized)
    missing = [n for n in names if n not in result.normalized]
    if missing:
        raise ConfigError(f"schemes not in result: {missing}")
    return {n: summarize_distribution(n, result.normalized[n])
            for n in names}


def render_distributions(summaries: Dict[str, DistributionSummary]
                         ) -> str:
    """Percentile table across schemes."""
    qs = [q for q, _ in next(iter(summaries.values())).percentiles]
    out = io.StringIO()
    out.write(f"{'scheme':>8} {'mean':>7} {'std':>7} {'min':>7} "
              + " ".join(f"p{q:<4g}" for q in qs) + f" {'max':>7}\n")
    for name, s in summaries.items():
        cells = " ".join(f"{v:5.3f}" for _q, v in s.percentiles)
        out.write(f"{name:>8} {s.mean:>7.3f} {s.std:>7.3f} "
                  f"{s.minimum:>7.3f} {cells} {s.maximum:>7.3f}\n")
    return out.getvalue()


def render_histogram(scheme: str, values: np.ndarray, bins: int = 24,
                     width: int = 40,
                     value_range: Optional[Tuple[float, float]] = None
                     ) -> str:
    """One scheme's per-run energy histogram as ASCII bars."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ConfigError("cannot plot an empty sample")
    if bins < 2 or width < 4:
        raise ConfigError("need bins >= 2 and width >= 4")
    counts, edges = np.histogram(arr, bins=bins, range=value_range)
    top = max(int(counts.max()), 1)
    out = io.StringIO()
    out.write(f"# {scheme}: n={arr.size}, mean={arr.mean():.3f}\n")
    for c, lo, hi in zip(counts, edges, edges[1:]):
        bar = "#" * round(c / top * width)
        out.write(f"  [{lo:6.3f},{hi:6.3f}) {bar:<{width}} {c}\n")
    return out.getvalue()
