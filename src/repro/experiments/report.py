"""Text rendering of experiment series (the "figures" as tables).

The paper's figures plot normalized energy against load or α with one
curve per scheme; :func:`render_series` prints the same data as an
aligned table (x down the rows, schemes across the columns), which is
what the benches and the CLI emit and what EXPERIMENTS.md records.
"""

from __future__ import annotations

import io
from typing import Iterable, List, Optional, Sequence

from ..types import SeriesResult, speed_change_items


def render_series(series: SeriesResult, precision: int = 3,
                  with_ci: bool = False,
                  schemes: Optional[Sequence[str]] = None) -> str:
    """Render a sweep as an aligned text table."""
    cols = list(schemes) if schemes else series.schemes()
    xs = series.xs()
    width = max(9, precision + 5 + (7 if with_ci else 0))
    out = io.StringIO()
    header_meta = ", ".join(f"{k}={v}" for k, v in series.meta.items()
                            if k not in ("speed_changes", "online"))
    out.write(f"# {series.name}")
    if header_meta:
        out.write(f"  [{header_meta}]")
    out.write("\n")
    out.write(f"{series.x_label:>10} " +
              " ".join(f"{c:>{width}}" for c in cols) + "\n")
    for x in xs:
        cells: List[str] = []
        for c in cols:
            p = series.get(x, c)
            if p is None:
                cells.append("-".rjust(width))
            elif with_ci:
                cells.append(
                    f"{p.mean:.{precision}f}±{p.ci95:.{precision}f}"
                    .rjust(width))
            else:
                cells.append(f"{p.mean:.{precision}f}".rjust(width))
        out.write(f"{x:>10g} " + " ".join(cells) + "\n")
    return out.getvalue()


def render_speed_changes(series: SeriesResult, precision: int = 1) -> str:
    """Mean voltage/speed switches per run (the overhead explanation)."""
    items = speed_change_items(series.meta.get("speed_changes"))
    if not items:
        return "(no speed-change data recorded)\n"
    cols = sorted({c for _, per_x in items for c in per_x})
    width = max(8, precision + 6)
    out = io.StringIO()
    out.write(f"# {series.name}: mean speed changes per run\n")
    out.write(f"{series.x_label:>10} " +
              " ".join(f"{c:>{width}}" for c in cols) + "\n")
    for x, row in items:
        out.write(f"{x:>10g} " +
                  " ".join(f"{row.get(c, float('nan')):>{width}.{precision}f}"
                           for c in cols) + "\n")
    return out.getvalue()


def render_online_meta(series: SeriesResult, precision: int = 3) -> str:
    """The online stream ledger behind an arrival-rate sweep.

    Renders ``series.meta["online"]`` (written by
    :func:`~repro.experiments.online.sweep_arrival_rate`): per rate the
    arrival/admit/reject counts and each scheme's deadline-miss ratio.
    """
    meta = series.meta.get("online")
    if not meta:
        return "(no online stream data recorded)\n"
    ratios = {x: row for x, row in meta.get("miss_ratio", [])}
    counts = {
        name: {x: n for x, n in meta.get(name, [])}
        for name in ("arrivals", "admitted", "rejected")
    }
    cols = sorted({c for row in ratios.values() for c in row})
    width = max(8, precision + 5)
    out = io.StringIO()
    out.write(f"# {series.name}: stream ledger "
              f"(arrival={meta.get('arrival')}, load={meta.get('load')}, "
              f"miss ratio per scheme)\n")
    out.write(f"{series.x_label:>10} {'arriv':>7} {'admit':>7} {'rej':>7} "
              + " ".join(f"{c:>{width}}" for c in cols) + "\n")
    for x in sorted(ratios):
        row = ratios[x]
        out.write(
            f"{x:>10g} {counts['arrivals'].get(x, 0):>7} "
            f"{counts['admitted'].get(x, 0):>7} "
            f"{counts['rejected'].get(x, 0):>7} "
            + " ".join(f"{row.get(c, float('nan')):>{width}.{precision}f}"
                       for c in cols) + "\n")
    return out.getvalue()


def series_to_csv(series: SeriesResult) -> str:
    """Machine-readable CSV (x, scheme, mean, std, ci95, n_runs)."""
    out = io.StringIO()
    out.write("x,scheme,mean,std,ci95,n_runs\n")
    for p in series.points:
        out.write(f"{p.x},{p.scheme},{p.mean:.6f},{p.std:.6f},"
                  f"{p.ci95:.6f},{p.n_runs}\n")
    return out.getvalue()


def render_many(series_list: Iterable[SeriesResult], **kwargs) -> str:
    return "\n".join(render_series(s, **kwargs) for s in series_list)
