"""Statistical comparison of schemes on paired runs.

The evaluation design is *paired*: every scheme sees the same
realizations, so scheme differences should be tested with paired
statistics, which are far more sensitive than comparing the two means.
This module provides:

* :func:`paired_comparison` — per-run differences, their CI, and a
  paired t-test p-value (scipy);
* :func:`compare_all` — the full scheme×scheme matrix for one
  evaluation;
* :func:`render_comparison` — a readable win/loss matrix.

Used to back statements like "GSS is better than SS1 at load 0.5"
with actual significance rather than eyeballed curve gaps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np
from scipy import stats as _stats

from ..errors import ConfigError
from .runner import EvaluationResult

#: two-sided significance threshold used by the renderers
ALPHA = 0.05


@dataclass(frozen=True)
class PairedComparison:
    """Outcome of comparing scheme ``a`` against scheme ``b``.

    ``mean_diff`` is ``mean(a − b)`` on normalized energies: negative
    means ``a`` consumes less energy.
    """

    a: str
    b: str
    mean_diff: float
    ci95: float
    p_value: float
    n: int

    @property
    def significant(self) -> bool:
        return self.p_value < ALPHA

    @property
    def winner(self) -> Optional[str]:
        """The significantly better scheme, or None for a tie."""
        if not self.significant:
            return None
        return self.a if self.mean_diff < 0 else self.b


def paired_comparison(name_a: str, sample_a: np.ndarray,
                      name_b: str, sample_b: np.ndarray
                      ) -> PairedComparison:
    """Paired t-test of two schemes' per-run normalized energies."""
    a = np.asarray(sample_a, dtype=float)
    b = np.asarray(sample_b, dtype=float)
    if a.shape != b.shape or a.ndim != 1:
        raise ConfigError(
            f"paired samples must be equal-length vectors, got "
            f"{a.shape} vs {b.shape}")
    if a.size < 2:
        raise ConfigError("need at least two paired runs")
    diff = a - b
    mean = float(diff.mean())
    sem = float(diff.std(ddof=1) / np.sqrt(diff.size))
    if sem <= 1e-12 * max(abs(mean), 1.0):
        # (near-)constant difference: the t-test degenerates (scipy
        # warns about catastrophic cancellation); decide directly
        p = 1.0 if mean == 0.0 else 0.0
    else:
        p = float(_stats.ttest_rel(a, b).pvalue)
    ci95 = 1.959963984540054 * sem
    return PairedComparison(a=name_a, b=name_b, mean_diff=mean,
                            ci95=ci95, p_value=p, n=int(a.size))


def compare_all(result: EvaluationResult,
                schemes: Optional[Sequence[str]] = None
                ) -> List[PairedComparison]:
    """All pairwise comparisons within one evaluation."""
    names = list(schemes) if schemes else list(result.normalized)
    missing = [n for n in names if n not in result.normalized]
    if missing:
        raise ConfigError(f"schemes not in result: {missing}")
    out: List[PairedComparison] = []
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            out.append(paired_comparison(
                a, result.normalized[a], b, result.normalized[b]))
    return out


def render_comparison(comparisons: Sequence[PairedComparison]) -> str:
    """Render pairwise results as aligned rows."""
    lines = [f"{'pair':>14} {'Δ mean':>9} {'±95%':>8} {'p':>10} "
             f"{'verdict':>12}"]
    for c in comparisons:
        verdict = c.winner or "tie"
        lines.append(
            f"{c.a + ' vs ' + c.b:>14} {c.mean_diff:>+9.4f} "
            f"{c.ci95:>8.4f} {c.p_value:>10.2e} {verdict:>12}")
    return "\n".join(lines) + "\n"


def win_matrix(comparisons: Sequence[PairedComparison]) -> Dict[str, int]:
    """Significant wins per scheme (for quick ranking)."""
    wins: Dict[str, int] = {}
    for c in comparisons:
        wins.setdefault(c.a, 0)
        wins.setdefault(c.b, 0)
        if c.winner:
            wins[c.winner] += 1
    return wins
