"""Exact path-enumeration evaluation (deterministic complement to MC).

Monte-Carlo evaluation samples OR choices and actual times; this module
instead *enumerates* every execution path (with its exact probability)
and simulates each path once with deterministic actual times (the ACETs
by default).  The result is

.. math:: E[\\text{energy}] \\approx \\sum_{paths} p \\cdot E(path, ACET)

which is exact over branch randomness and a first-order approximation
over execution-time randomness (energy is mildly nonlinear in the
actual times, so MC with σ > 0 differs slightly — the integration tests
quantify how slightly).  Uses: fast scans of large design spaces, and
an independent cross-check of the Monte-Carlo harness (a bug in the
sampler would show up as MC drifting from the enumeration as σ → 0).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..core.registry import get_policy
from ..errors import ConfigError
from ..graph.andor import Application
from ..graph.paths import ExecutionPath, enumerate_paths
from ..power.overhead import NO_OVERHEAD
from ..sim.engine import simulate
from ..sim.realization import Realization
from .runner import RunConfig, build_plans


@dataclass
class ExactResult:
    """Per-path and expected energies of one exact evaluation."""

    app_name: str
    config: RunConfig
    #: scheme -> expected absolute energy (probability-weighted)
    expected: Dict[str, float] = field(default_factory=dict)
    #: scheme -> expected energy normalized to NPM per path
    expected_normalized: Dict[str, float] = field(default_factory=dict)
    #: scheme -> per-path absolute energies, keyed by path key
    per_path: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: path key -> probability
    path_probability: Dict[str, float] = field(default_factory=dict)


def _acet_realization(app: Application, path: ExecutionPath
                      ) -> Realization:
    graph = app.graph
    actuals = {n.name: n.acet for n in graph.computation_nodes()}
    return Realization(actuals=actuals, choices=path.choice_map)


def exact_evaluation(app: Application, config: RunConfig,
                     max_paths: int = 10_000) -> ExactResult:
    """Enumerate execution paths and evaluate every scheme on each.

    ``config.n_runs``/``seed``/``sigma_fraction`` are ignored — the
    evaluation is deterministic.
    """
    power = config.make_power()
    plan_dyn, plan_static = build_plans(app, config, power)
    structure = plan_static.structure
    paths = enumerate_paths(structure, max_paths=max_paths)

    result = ExactResult(app_name=app.name, config=config)
    npm_policy = get_policy("NPM")
    npm_by_path: Dict[str, float] = {}

    for path in paths:
        rl = _acet_realization(app, path)
        key = path.key()
        result.path_probability[key] = path.probability
        npm_run = npm_policy.start_run(plan_static, power, NO_OVERHEAD,
                                       realization=rl)
        base = simulate(plan_static, npm_run, power, NO_OVERHEAD, rl)
        npm_by_path[key] = base.total_energy
        for name in config.schemes:
            policy = get_policy(name)
            if policy.requires_reserve and plan_dyn is None:
                energy = base.total_energy  # DVS disabled at this load
            else:
                plan = plan_dyn if policy.requires_reserve \
                    else plan_static
                run = policy.start_run(plan, power, config.overhead,
                                       realization=rl)
                res = simulate(plan, run, power, config.overhead, rl)
                energy = res.total_energy
            result.per_path.setdefault(policy.name, {})[key] = energy

    for scheme, by_path in result.per_path.items():
        result.expected[scheme] = sum(
            result.path_probability[k] * e for k, e in by_path.items())
        result.expected_normalized[scheme] = sum(
            result.path_probability[k] * e / npm_by_path[k]
            for k, e in by_path.items())
    return result


def render_exact(result: ExactResult,
                 schemes: Optional[Sequence[str]] = None) -> str:
    """Expected + per-path normalized energies as a text table."""
    names = list(schemes) if schemes else list(result.expected)
    missing = [n for n in names if n not in result.expected]
    if missing:
        raise ConfigError(f"schemes not evaluated: {missing}")
    keys = sorted(result.path_probability,
                  key=lambda k: -result.path_probability[k])
    lines: List[str] = []
    lines.append(f"{'path':>16} {'prob':>6} | "
                 + " ".join(f"{n:>7}" for n in names))
    for key in keys:
        row = " ".join(f"{result.per_path[n][key]:7.2f}" for n in names)
        lines.append(f"{key:>16} {result.path_probability[key]:>6.3f} | "
                     f"{row}")
    lines.append(f"{'expected':>16} {'1.000':>6} | "
                 + " ".join(f"{result.expected[n]:7.2f}" for n in names))
    lines.append(f"{'E[E/E_NPM]':>16} {'':>6} | "
                 + " ".join(f"{result.expected_normalized[n]:7.3f}"
                            for n in names))
    return "\n".join(lines) + "\n"
