"""Sweep-scale execution engine: one pool per sweep, not per point.

PR 2/3 made a *single* evaluation point fast; the figure/suite layer
still paid full setup cost at every one of its dozens of points — a
fresh ``ProcessPoolExecutor`` (fork + import + initializer pickling)
per point for run-level parallelism, re-pickled realization chunks, and
full recomputation on every regeneration.  This module amortizes all
three, one level up the stack:

* :class:`ExecutionContext` — a **persistent, reusable process pool**
  created lazily once per sweep/figure/suite and shared by the
  point-level fan-out (:mod:`repro.experiments.parallel`) and the
  run-level chunking inside :func:`~repro.experiments.runner.
  evaluate_application`.  Workers are long-lived, so their per-process
  caches (the offline round-1 plan cache, the compiled section-program
  cache keyed by plan fingerprint) persist across sweep points: each
  program ships/compiles once per worker, not once per point.
* **Zero-copy realization transport** — the parent samples the
  ``(runs × tasks)`` realization matrix once and publishes it in a
  :mod:`multiprocessing.shared_memory` segment; workers receive
  ``(name, shape, dtype, row range)`` descriptors and map the matrix
  as a NumPy view instead of unpickling per-chunk array copies.  When
  shared memory is unavailable (or the matrix is empty) the transport
  degrades to plain pickled chunks — values are identical either way.
* An optional **content-addressed evaluation cache**
  (:mod:`repro.experiments.evalcache`) attached to the context, so
  ``repro fig`` / ``repro suite`` regeneration is incremental.

Everything here preserves the engine's core contract: results are
**bit-identical** to sequential execution for every pool size, chunk
size and transport (the realization batch is sampled once in the
parent; workers only partition prebuilt work).
"""

from __future__ import annotations

import os
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigError, ParallelError

try:  # pragma: no cover - import succeeds on every supported platform
    from multiprocessing import shared_memory as _shared_memory
    _SHM_AVAILABLE = True
except ImportError:  # pragma: no cover - e.g. stripped-down interpreters
    _shared_memory = None
    _SHM_AVAILABLE = False


def resolve_jobs(n_jobs: Optional[int], n_items: Optional[int] = None) -> int:
    """Normalize an ``n_jobs`` request.

    ``None``/``0`` → all cores; negative → :class:`ConfigError`.  When
    ``n_items`` is given, the answer is additionally clamped to the
    amount of available work (never below 1), so a 32-core request for
    a 3-point sweep starts 3 workers, not 32 mostly-idle ones.
    """
    if n_jobs is None or n_jobs == 0:
        jobs = os.cpu_count() or 1
    elif n_jobs < 0:
        raise ConfigError(f"n_jobs must be positive, got {n_jobs}")
    else:
        jobs = n_jobs
    if n_items is not None:
        jobs = max(1, min(jobs, n_items))
    return jobs


# ---------------------------------------------------------------------------
# shared-memory realization transport
# ---------------------------------------------------------------------------

class ShmChunk:
    """Picklable descriptor of one run-range of a shared realization matrix.

    The parent ships ``(segment name, full matrix shape, dtype, row
    range)`` plus the small per-OR choice slices; the worker attaches
    the segment once (cached across chunks and evaluations) and builds
    a :class:`~repro.sim.realization.RealizationBatch` over a zero-copy
    NumPy view of the rows.
    """

    __slots__ = ("shm_name", "shape", "dtype", "start", "stop", "names",
                 "choices")

    def __init__(self, shm_name: str, shape: Tuple[int, int], dtype: str,
                 start: int, stop: int, names: List[str],
                 choices: Dict[str, np.ndarray]):
        self.shm_name = shm_name
        self.shape = shape
        self.dtype = dtype
        self.start = start
        self.stop = stop
        self.names = names
        self.choices = choices

    def __len__(self) -> int:
        return self.stop - self.start

    def resolve(self):
        """Materialize the chunk as a batch over the shared matrix view."""
        from ..sim.realization import RealizationBatch
        seg = _attach_segment(self.shm_name)
        matrix = np.ndarray(self.shape, dtype=np.dtype(self.dtype),
                            buffer=seg.buf)
        return RealizationBatch(self.names, matrix[self.start:self.stop],
                                self.choices)


#: worker-side attached segments, keyed by name.  Bounded: a worker
#: only ever needs the segment of the evaluation it is running plus at
#: most one predecessor that is still being torn down.
_ATTACHED: "OrderedDict[str, object]" = OrderedDict()
_ATTACHED_MAX = 2


def _attach_segment(name: str):
    seg = _ATTACHED.get(name)
    if seg is not None:
        _ATTACHED.move_to_end(name)
        return seg
    try:  # Python >= 3.13: opt out of resource tracking directly
        seg = _shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        # Pre-3.13 the resource tracker registers attached segments as
        # if the attaching process owned them (bpo-39959): forked
        # workers share the parent's tracker, so the registration —
        # and a later unregister — would fight the parent's own
        # create/unlink bookkeeping of the same segment.  Suppress the
        # attach-side registration entirely: the parent owns the
        # segment's lifetime.
        from multiprocessing import resource_tracker
        original_register = resource_tracker.register

        def _register_skipping_shm(rname, rtype):
            if rtype != "shared_memory":  # pragma: no cover
                original_register(rname, rtype)

        resource_tracker.register = _register_skipping_shm
        try:
            seg = _shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original_register
    _ATTACHED[name] = seg
    while len(_ATTACHED) > _ATTACHED_MAX:
        _, old = _ATTACHED.popitem(last=False)
        try:
            old.close()
        except OSError:  # pragma: no cover - best-effort teardown
            pass
    return seg


class SharedBatch:
    """Parent-side owner of one realization matrix in shared memory.

    Copies the batch's actual-time matrix into a fresh segment once;
    :meth:`chunk` hands out :class:`ShmChunk` descriptors for row
    ranges.  :meth:`close` releases and unlinks the segment (POSIX
    semantics: workers still holding a mapping keep reading safely
    until they drop it).
    """

    def __init__(self, batch):
        actuals = np.ascontiguousarray(batch.actuals)
        self._shm = _shared_memory.SharedMemory(create=True,
                                                size=actuals.nbytes)
        self.shape = actuals.shape
        self.dtype = actuals.dtype.str
        view = np.ndarray(self.shape, dtype=actuals.dtype,
                          buffer=self._shm.buf)
        view[:] = actuals
        self.names = list(batch.names)
        self.choices = batch.choices

    def chunk(self, start: int, stop: int) -> ShmChunk:
        return ShmChunk(self._shm.name, self.shape, self.dtype, start, stop,
                        self.names,
                        {k: v[start:stop] for k, v in self.choices.items()})

    def close(self) -> None:
        try:
            self._shm.close()
            self._shm.unlink()
        except (OSError, FileNotFoundError):  # pragma: no cover
            pass


def share_batch(batch) -> Optional[SharedBatch]:
    """Publish a realization batch in shared memory, or ``None``.

    Returns ``None`` — meaning "fall back to pickled chunks" — when the
    platform has no shared memory, the matrix is empty, or segment
    creation fails at runtime (e.g. ``/dev/shm`` exhausted).
    """
    if not _SHM_AVAILABLE or batch.actuals.nbytes == 0:
        return None
    try:
        return SharedBatch(batch)
    except OSError:  # pragma: no cover - depends on host state
        return None


# ---------------------------------------------------------------------------
# worker-side evaluation setup cache (run-level chunk tasks)
# ---------------------------------------------------------------------------

#: per-worker prepared evaluation contexts, keyed by setup fingerprint:
#: ``(plan_dyn, plan_static, scheme_names, power, overhead, engine)``.
#: Long-lived workers keep the plans and their compiled section
#: programs across every chunk — and, thanks to the fingerprint key,
#: across repeated evaluations of the same point.
_SETUP_CACHE: "OrderedDict[str, tuple]" = OrderedDict()
_SETUP_CACHE_MAX = 8


def _prepared_setup(setup_key: str, app, config):
    setup = _SETUP_CACHE.get(setup_key)
    if setup is not None:
        _SETUP_CACHE.move_to_end(setup_key)
        return setup
    from ..core.registry import get_policy
    from ..sim.compiled import compile_plan
    from .runner import build_plans
    power = config.make_power()
    plan_dyn, plan_static = build_plans(app, config, power)
    scheme_names = tuple(get_policy(name).name for name in config.schemes)
    if config.engine == "compiled":
        compile_plan(plan_static)
        if plan_dyn is not None:
            compile_plan(plan_dyn)
    setup = (plan_dyn, plan_static, scheme_names, power, config.overhead,
             config.engine)
    _SETUP_CACHE[setup_key] = setup
    while len(_SETUP_CACHE) > _SETUP_CACHE_MAX:
        _SETUP_CACHE.popitem(last=False)
    return setup


def _eval_chunk_task(setup_key: str, app, config, start: int, chunk):
    """Worker task: simulate one run-range, tagged with its offset.

    ``chunk`` is either a :class:`ShmChunk` descriptor (zero-copy
    transport) or a pickled realization-batch slice (fallback); the
    plans are rebuilt deterministically from ``(app, config)`` on the
    first chunk of an evaluation and served from the worker's setup
    cache afterwards.
    """
    from .runner import _simulate_runs, _simulate_runs_compiled
    plan_dyn, plan_static, scheme_names, power, overhead, engine = \
        _prepared_setup(setup_key, app, config)
    if isinstance(chunk, ShmChunk):
        chunk = chunk.resolve()
    if engine == "compiled":
        npm, absolute, changes, keys = _simulate_runs_compiled(
            plan_dyn, plan_static, scheme_names, power, overhead, chunk)
    else:
        npm, absolute, changes, keys = _simulate_runs(
            plan_dyn, plan_static, scheme_names, power, overhead, chunk)
    return start, npm, absolute, changes, keys


# ---------------------------------------------------------------------------
# the execution context
# ---------------------------------------------------------------------------

class ExecutionContext:
    """One pool, one cache, many sweep points.

    Create one per sweep/figure/suite (or pass your own across several)
    and hand it to ``sweep_*``/``figure*``/``run_suite``/
    ``evaluate_application``.  The worker pool is created lazily on
    first parallel use and reused until :meth:`close`; a context whose
    resolved job count is 1 never spawns a process at all, so it is
    free to create unconditionally.

    Parameters
    ----------
    n_jobs:
        Worker processes (``None``/``0`` = all cores, ``1`` = inline).
    cache:
        Optional :class:`~repro.experiments.evalcache.EvaluationCache`;
        evaluation points are looked up before computing and stored
        after.
    shared_memory:
        Whether run-level chunk tasks ship realization rows through
        shared memory (default) or pickled slices.  Purely transport —
        results are bit-identical.

    Not thread-safe, and not picklable (workers never see the context;
    they see plain task tuples).
    """

    def __init__(self, n_jobs: Optional[int] = None, cache=None,
                 shared_memory: bool = True):
        if n_jobs is not None and n_jobs < 0:
            raise ConfigError(f"n_jobs must be >= 0, got {n_jobs}")
        self._n_jobs = n_jobs
        self.cache = cache
        self.shared_memory = bool(shared_memory) and _SHM_AVAILABLE
        self._pool: Optional[ProcessPoolExecutor] = None
        self._closed = False
        #: pools created over the context's lifetime (normally 0 or 1;
        #: a failed sweep resets the pool and the next use re-creates
        #: it).  Exposed for tests and the sweep benchmark.
        self.pools_created = 0

    # -- lifecycle ----------------------------------------------------------
    def __enter__(self) -> "ExecutionContext":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def jobs(self, n_items: Optional[int] = None) -> int:
        """The resolved worker count, optionally clamped to the work."""
        return resolve_jobs(self._n_jobs, n_items=n_items)

    def pool(self) -> ProcessPoolExecutor:
        """The persistent worker pool, created on first use."""
        if self._closed:
            raise ParallelError("closed execution context",
                                RuntimeError("context already closed"))
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.jobs())
            self.pools_created += 1
        return self._pool

    def reset(self) -> None:
        """Tear the pool down (it is re-created lazily on next use)."""
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def close(self) -> None:
        """Shut the pool down for good; further parallel use fails."""
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
        self._closed = True

    # -- execution ----------------------------------------------------------
    def map(self, fn: Callable, args_list: Sequence[Tuple],
            labels: Optional[Sequence[str]] = None) -> List:
        """Run ``fn(*args)`` for every args tuple on the pool, in order.

        Fail-fast: the first worker exception cancels the outstanding
        futures, resets the pool (so the context stays usable) and
        re-raises as :class:`ParallelError` naming the failing item.
        """
        if labels is None:
            labels = [f"args={args!r}" for args in args_list]
        pool = self.pool()
        futures = [pool.submit(fn, *args) for args in args_list]
        results = []
        for future, label in zip(futures, labels):
            try:
                results.append(future.result())
            except Exception as exc:
                self.reset()
                raise ParallelError(label, exc) from exc
        return results

    # -- cache --------------------------------------------------------------
    def cache_stats(self) -> Optional[Dict[str, int]]:
        """The attached cache's hit/miss counters, or ``None``."""
        return self.cache.stats() if self.cache is not None else None
