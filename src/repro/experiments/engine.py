"""Sweep-scale execution engine: one pool per sweep, not per point.

PR 2/3 made a *single* evaluation point fast; the figure/suite layer
still paid full setup cost at every one of its dozens of points — a
fresh ``ProcessPoolExecutor`` (fork + import + initializer pickling)
per point for run-level parallelism, re-pickled realization chunks, and
full recomputation on every regeneration.  This module amortizes all
three, one level up the stack:

* :class:`ExecutionContext` — a **persistent, reusable process pool**
  created lazily once per sweep/figure/suite and shared by the
  point-level fan-out (:mod:`repro.experiments.parallel`) and the
  run-level chunking inside :func:`~repro.experiments.runner.
  evaluate_application`.  Workers are long-lived, so their per-process
  caches (the offline round-1 plan cache, the compiled section-program
  cache keyed by plan fingerprint) persist across sweep points: each
  program ships/compiles once per worker, not once per point.
* **Zero-copy realization transport** — the parent samples the
  ``(runs × tasks)`` realization matrix once and publishes it in a
  :mod:`multiprocessing.shared_memory` segment; workers receive
  ``(name, shape, dtype, row range)`` descriptors and map the matrix
  as a NumPy view instead of unpickling per-chunk array copies.  When
  shared memory is unavailable (or the matrix is empty) the transport
  degrades to plain pickled chunks — values are identical either way.
* An optional **content-addressed evaluation cache**
  (:mod:`repro.experiments.evalcache`) attached to the context, so
  ``repro fig`` / ``repro suite`` regeneration is incremental.

Everything here preserves the engine's core contract: results are
**bit-identical** to sequential execution for every pool size, chunk
size and transport (the realization batch is sampled once in the
parent; workers only partition prebuilt work).
"""

from __future__ import annotations

import os
import time
import warnings
from collections import OrderedDict
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigError, FaultInjected, ParallelError, TransportError
from . import faults

try:  # pragma: no cover - import succeeds on every supported platform
    from multiprocessing import shared_memory as _shared_memory
    _SHM_AVAILABLE = True
except ImportError:  # pragma: no cover - e.g. stripped-down interpreters
    _shared_memory = None
    _SHM_AVAILABLE = False


#: execution backends an :class:`ExecutionContext` can route sweep
#: points through: ``"local"`` (fused array program or the persistent
#: pool, in-process driver) or ``"dispatch"`` (the work-stealing
#: executor fleet in :mod:`repro.experiments.dispatch`)
BACKENDS = ("local", "dispatch")

#: session-default backend, seeded from ``REPRO_BACKEND`` (tests
#: monkeypatch the module attribute; read it via :func:`default_backend`
#: so patches are honored at call time)
DEFAULT_BACKEND = os.environ.get("REPRO_BACKEND", "local")

#: session-default executor-count request for the dispatch backend,
#: seeded from ``REPRO_EXECUTORS`` (``None`` = fall back to the
#: sweep's ``n_jobs`` request)
DEFAULT_EXECUTORS: Optional[int] = (
    int(os.environ["REPRO_EXECUTORS"])
    if os.environ.get("REPRO_EXECUTORS") else None)


def default_backend() -> str:
    """The session-default backend (module attr, monkeypatch-friendly)."""
    return DEFAULT_BACKEND


def default_executors() -> Optional[int]:
    """The session-default executor request (module attr at call time)."""
    return DEFAULT_EXECUTORS


def resolve_backend(backend: Optional[str]) -> str:
    """Normalize a backend request: ``None`` → the session default."""
    resolved = backend if backend is not None else default_backend()
    if resolved not in BACKENDS:
        raise ConfigError(
            f"unknown backend {resolved!r}; one of {BACKENDS}")
    return resolved


def effective_cores() -> int:
    """CPU cores actually available to this process.

    Under a CPU affinity mask (taskset, cgroup-limited CI runners) the
    schedulable set is smaller than the machine's core count;
    ``os.cpu_count()`` reports the machine and would overstate it — and
    on runners where it degrades to 1 it *understates* a wider mask.
    Benchmarks record this so committed numbers name the parallelism
    that actually produced them.
    """
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # platforms without affinity (macOS, Windows)
        return os.cpu_count() or 1


def resolve_jobs(n_jobs: Optional[int], n_items: Optional[int] = None) -> int:
    """Normalize an ``n_jobs`` request.

    ``None``/``0`` → all cores; negative → :class:`ConfigError`.  When
    ``n_items`` is given, the answer is additionally clamped to the
    amount of available work (never below 1), so a 32-core request for
    a 3-point sweep starts 3 workers, not 32 mostly-idle ones.
    """
    if n_jobs is None or n_jobs == 0:
        jobs = os.cpu_count() or 1
    elif n_jobs < 0:
        raise ConfigError(f"n_jobs must be positive, got {n_jobs}")
    else:
        jobs = n_jobs
    if n_items is not None:
        jobs = max(1, min(jobs, n_items))
    return jobs


@dataclass(frozen=True)
class RetryPolicy:
    """How the resilient executor answers partial failure.

    Retryable failures — a worker crash (``BrokenProcessPool``), a
    chunk that exceeds ``chunk_timeout``, a shared-memory attach
    failure, an injected fault — are re-dispatched up to
    ``max_retries`` times per work item with bounded exponential
    backoff (``backoff_base * 2**attempt``, capped at ``backoff_max``).
    A broken pool is rebuilt at most ``max_pool_rebuilds`` times per
    map call; past that — or past ``max_retries`` for a single item —
    execution degrades to computing the remaining work serially in the
    parent, with a warning (``degrade=True``), or raises
    :class:`~repro.errors.ParallelError` (``degrade=False``).

    Deterministic worker exceptions (a ``ConfigError``, a bug) are
    never retried: they would fail identically again, so they fail
    fast exactly as before.  None of this changes results — every
    recovery path re-executes prebuilt work whose outputs are
    bit-identical by the engine's core contract.
    """

    max_retries: int = 2
    chunk_timeout: float = 0.0  # seconds per attempt; 0 = no timeout
    backoff_base: float = 0.05
    backoff_max: float = 2.0
    degrade: bool = True
    max_pool_rebuilds: int = 1

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigError("max_retries must be >= 0")
        if self.chunk_timeout < 0:
            raise ConfigError("chunk_timeout must be >= 0 (0 = disabled)")
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ConfigError("backoff must be >= 0")
        if self.max_pool_rebuilds < 0:
            raise ConfigError("max_pool_rebuilds must be >= 0")

    def backoff(self, attempt: int) -> float:
        """Delay before re-dispatching a work item's Nth retry."""
        return min(self.backoff_base * (2 ** max(attempt - 1, 0)),
                   self.backoff_max)


#: counters the resilient executor maintains per context — these are
#: what sweeps surface as ``series.meta["resilience"]``
RESILIENCE_COUNTERS = ("retries", "rebuilds", "degradations", "timeouts",
                       "shm_fallbacks")

#: counters the distributed dispatcher maintains per context — sweeps
#: surface their per-sweep delta (plus per-executor point counts) as
#: ``series.meta["dispatch"]`` when the dispatch backend did any work
DISPATCH_COUNTERS = ("dispatched", "completed", "stolen", "duplicates",
                     "worker_deaths", "respawns", "degraded_points")


# ---------------------------------------------------------------------------
# shared-memory realization transport
# ---------------------------------------------------------------------------

class ShmChunk:
    """Picklable descriptor of one run-range of a shared realization matrix.

    The parent ships ``(segment name, full matrix shape, dtype, row
    range)`` plus the small per-OR choice slices; the worker attaches
    the segment once (cached across chunks and evaluations) and builds
    a :class:`~repro.sim.realization.RealizationBatch` over a zero-copy
    NumPy view of the rows.
    """

    __slots__ = ("shm_name", "shape", "dtype", "start", "stop", "names",
                 "choices")

    def __init__(self, shm_name: str, shape: Tuple[int, int], dtype: str,
                 start: int, stop: int, names: List[str],
                 choices: Dict[str, np.ndarray]):
        self.shm_name = shm_name
        self.shape = shape
        self.dtype = dtype
        self.start = start
        self.stop = stop
        self.names = names
        self.choices = choices

    def __len__(self) -> int:
        return self.stop - self.start

    def resolve(self):
        """Materialize the chunk as a batch over the shared matrix view.

        Attach problems (segment gone, ``/dev/shm`` trouble, injected
        fault) surface as :class:`~repro.errors.TransportError`; the
        parent answers by re-dispatching *this chunk* over the pickling
        fallback transport instead of abandoning the sweep.
        """
        from ..sim.realization import RealizationBatch
        if faults.fire("shm-attach", key=self.start) == "raise":
            raise TransportError(
                f"injected shm attach failure for "
                f"runs[{self.start}:{self.stop}]")
        try:
            seg = _attach_segment(self.shm_name)
        except (OSError, ValueError) as exc:
            raise TransportError(
                f"could not attach shared segment {self.shm_name!r} for "
                f"runs[{self.start}:{self.stop}]: {exc!r}") from exc
        matrix = np.ndarray(self.shape, dtype=np.dtype(self.dtype),
                            buffer=seg.buf)
        return RealizationBatch(self.names, matrix[self.start:self.stop],
                                self.choices)


#: worker-side attached segments, keyed by name.  Bounded: a worker
#: only ever needs the segment of the evaluation it is running plus at
#: most one predecessor that is still being torn down.
_ATTACHED: "OrderedDict[str, object]" = OrderedDict()
_ATTACHED_MAX = 2


def _open_segment(name: str):
    """Attach an existing segment without registering ownership."""
    try:  # Python >= 3.13: opt out of resource tracking directly
        return _shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        # Pre-3.13 the resource tracker registers attached segments as
        # if the attaching process owned them (bpo-39959): forked
        # workers share the parent's tracker, so the registration —
        # and a later unregister — would fight the parent's own
        # create/unlink bookkeeping of the same segment.  Suppress the
        # attach-side registration entirely: the parent owns the
        # segment's lifetime.
        from multiprocessing import resource_tracker
        original_register = resource_tracker.register

        def _register_skipping_shm(rname, rtype):
            if rtype != "shared_memory":  # pragma: no cover
                original_register(rname, rtype)

        resource_tracker.register = _register_skipping_shm
        try:
            return _shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original_register


def _attach_segment(name: str):
    seg = _ATTACHED.get(name)
    if seg is not None:
        _ATTACHED.move_to_end(name)
        return seg
    seg = _open_segment(name)
    _ATTACHED[name] = seg
    while len(_ATTACHED) > _ATTACHED_MAX:
        _, old = _ATTACHED.popitem(last=False)
        try:
            old.close()
        except OSError:  # pragma: no cover - best-effort teardown
            pass
    return seg


class SharedBatch:
    """Parent-side owner of one realization matrix in shared memory.

    Copies the batch's actual-time matrix into a fresh segment once;
    :meth:`chunk` hands out :class:`ShmChunk` descriptors for row
    ranges.  :meth:`close` releases and unlinks the segment (POSIX
    semantics: workers still holding a mapping keep reading safely
    until they drop it).
    """

    def __init__(self, batch):
        actuals = np.ascontiguousarray(batch.actuals)
        self._shm = _shared_memory.SharedMemory(create=True,
                                                size=actuals.nbytes)
        self.shape = actuals.shape
        self.dtype = actuals.dtype.str
        view = np.ndarray(self.shape, dtype=actuals.dtype,
                          buffer=self._shm.buf)
        view[:] = actuals
        self.names = list(batch.names)
        self.choices = batch.choices

    def chunk(self, start: int, stop: int) -> ShmChunk:
        return ShmChunk(self._shm.name, self.shape, self.dtype, start, stop,
                        self.names,
                        {k: v[start:stop] for k, v in self.choices.items()})

    def close(self) -> None:
        try:
            self._shm.close()
            self._shm.unlink()
        except (OSError, FileNotFoundError):  # pragma: no cover
            pass


def share_batch(batch) -> Optional[SharedBatch]:
    """Publish a realization batch in shared memory, or ``None``.

    Returns ``None`` — meaning "fall back to pickled chunks" — when the
    platform has no shared memory, the matrix is empty, or segment
    creation fails at runtime (e.g. ``/dev/shm`` exhausted).
    """
    if not _SHM_AVAILABLE or batch.actuals.nbytes == 0:
        return None
    try:
        return SharedBatch(batch)
    except OSError:  # pragma: no cover - depends on host state
        return None


# ---------------------------------------------------------------------------
# shard result transport (worker-published segments)
# ---------------------------------------------------------------------------

#: shard result matrices at least this large travel back from local
#: pool workers through a shared-memory segment instead of the result
#: pickle; below it the pickling cost is already negligible.  Module
#: attribute so tests can force either transport.
SHARD_SHM_MIN_BYTES = 1 << 20


class ShardBlock:
    """Picklable descriptor of one shard's packed result matrix.

    The inverse direction of :class:`ShmChunk`: the *worker* creates
    the segment and ships ``(name, shape, dtype)``; the parent attaches
    exactly once, copies the matrix out, and closes **and unlinks** the
    segment (:meth:`take`).  A block whose result the resilient
    executor discards (a straggler beaten by its own re-dispatch) can
    leak its segment until process teardown — acceptable because blocks
    only exist above :data:`SHARD_SHM_MIN_BYTES` and stragglers are
    rare; the pickled fallback has no such window.
    """

    __slots__ = ("name", "shape", "dtype")

    def __init__(self, name: str, shape: Tuple[int, int], dtype: str):
        self.name = name
        self.shape = shape
        self.dtype = dtype

    def __getstate__(self):
        return (self.name, self.shape, self.dtype)

    def __setstate__(self, state):
        self.name, self.shape, self.dtype = state

    def take(self) -> np.ndarray:
        """Copy the matrix out and release the segment (parent, once).

        Attach problems surface as :class:`~repro.errors.TransportError`
        — the caller recomputes that shard inline rather than failing
        the sweep.
        """
        if not _SHM_AVAILABLE:  # pragma: no cover - publisher had shm
            raise TransportError(
                f"no shared memory to attach shard block {self.name!r}")
        try:
            seg = _open_segment(self.name)
        except (OSError, ValueError) as exc:
            raise TransportError(
                f"could not attach shard result block {self.name!r}: "
                f"{exc!r}") from exc
        try:
            view = np.ndarray(self.shape, dtype=np.dtype(self.dtype),
                              buffer=seg.buf)
            return np.array(view, copy=True)
        finally:
            try:
                seg.close()
                seg.unlink()
            except (OSError, FileNotFoundError):  # pragma: no cover
                pass


def _create_segment(size: int):
    """Create a fresh segment without registering ownership here.

    The attaching *parent* unlinks shard-block segments, so the
    creating worker must not leave a tracker registration behind
    (Python >= 3.13 tracks per-instance; earlier interpreters share one
    forked tracker whose registration the parent's unlink clears)."""
    try:
        return _shared_memory.SharedMemory(create=True, size=size,
                                           track=False)
    except TypeError:  # pre-3.13: tracker shared across fork
        return _shared_memory.SharedMemory(create=True, size=size)


def publish_shard_block(matrix: np.ndarray) -> Optional[ShardBlock]:
    """Publish a packed shard result in shared memory, or ``None``.

    ``None`` means "ship the matrix pickled instead": the platform has
    no shared memory, the matrix is empty, or segment creation failed
    (e.g. ``/dev/shm`` exhausted).  Values are identical either way.
    """
    if not _SHM_AVAILABLE or matrix.nbytes == 0:
        return None
    m = np.ascontiguousarray(matrix)
    try:
        seg = _create_segment(m.nbytes)
    except OSError:  # pragma: no cover - depends on host state
        return None
    view = np.ndarray(m.shape, dtype=m.dtype, buffer=seg.buf)
    view[:] = m
    block = ShardBlock(seg.name, m.shape, m.dtype.str)
    seg.close()  # drop this mapping; the segment lives until take()
    return block


# ---------------------------------------------------------------------------
# worker-side evaluation setup cache (run-level chunk tasks)
# ---------------------------------------------------------------------------

#: per-worker prepared evaluation contexts, keyed by setup fingerprint:
#: ``(plan_dyn, plan_static, scheme_names, power, overhead, engine)``.
#: Long-lived workers keep the plans and their compiled section
#: programs across every chunk — and, thanks to the fingerprint key,
#: across repeated evaluations of the same point.
_SETUP_CACHE: "OrderedDict[str, tuple]" = OrderedDict()
_SETUP_CACHE_MAX = 8


def _prepared_setup(setup_key: str, app, config):
    setup = _SETUP_CACHE.get(setup_key)
    if setup is not None:
        _SETUP_CACHE.move_to_end(setup_key)
        return setup
    from ..core.registry import get_policy
    from ..sim.compiled import compile_plan
    from .runner import build_plans
    power = config.make_power()
    plan_dyn, plan_static = build_plans(app, config, power)
    scheme_names = tuple(get_policy(name).name for name in config.schemes)
    if config.engine == "compiled":
        compile_plan(plan_static)
        if plan_dyn is not None:
            compile_plan(plan_dyn)
    setup = (plan_dyn, plan_static, scheme_names, power, config.overhead,
             config.engine)
    _SETUP_CACHE[setup_key] = setup
    while len(_SETUP_CACHE) > _SETUP_CACHE_MAX:
        _SETUP_CACHE.popitem(last=False)
    return setup


def _eval_chunk_task(setup_key: str, app, config, start: int, chunk):
    """Worker task: simulate one run-range, tagged with its offset.

    ``chunk`` is either a :class:`ShmChunk` descriptor (zero-copy
    transport) or a pickled realization-batch slice (fallback); the
    plans are rebuilt deterministically from ``(app, config)`` on the
    first chunk of an evaluation and served from the worker's setup
    cache afterwards.
    """
    from .runner import _simulate_runs, _simulate_runs_compiled
    if faults.fire("worker-chunk", key=start) == "raise":
        raise FaultInjected(f"injected worker fault at runs[{start}:...]")
    plan_dyn, plan_static, scheme_names, power, overhead, engine = \
        _prepared_setup(setup_key, app, config)
    if isinstance(chunk, ShmChunk):
        chunk = chunk.resolve()
    if engine == "compiled":
        npm, absolute, changes, keys = _simulate_runs_compiled(
            plan_dyn, plan_static, scheme_names, power, overhead, chunk,
            kernel_tier=config.kernel_tier)
    else:
        npm, absolute, changes, keys = _simulate_runs(
            plan_dyn, plan_static, scheme_names, power, overhead, chunk)
    return start, npm, absolute, changes, keys


def _kernel_probe_task(scratch: str, want: int, deadline_s: float):
    """Worker task: report this process's kernel-cache counters.

    Rendezvous probe: each worker drops a pid marker in ``scratch`` and
    waits (bounded by ``deadline_s``) until ``want`` markers exist, so
    submitting ``want`` probes reaches every pool worker exactly once
    instead of letting one idle worker answer them all.
    """
    pid = os.getpid()
    with open(os.path.join(scratch, str(pid)), "w"):
        pass
    deadline = time.monotonic() + deadline_s
    while len(os.listdir(scratch)) < want and time.monotonic() < deadline:
        time.sleep(0.005)
    from ..sim.compiled import program_cache_stats
    from ..sim.kernels import tape_cache_stats
    from ..sim.sweepc import stacked_cache_stats
    return pid, {"program_cache": program_cache_stats(),
                 "tape_cache": tape_cache_stats(),
                 "stacked_cache": stacked_cache_stats()}


# ---------------------------------------------------------------------------
# the execution context
# ---------------------------------------------------------------------------

class ExecutionContext:
    """One pool, one cache, many sweep points.

    Create one per sweep/figure/suite (or pass your own across several)
    and hand it to ``sweep_*``/``figure*``/``run_suite``/
    ``evaluate_application``.  The worker pool is created lazily on
    first parallel use and reused until :meth:`close`; a context whose
    resolved job count is 1 never spawns a process at all, so it is
    free to create unconditionally.

    Parameters
    ----------
    n_jobs:
        Worker processes (``None``/``0`` = all cores, ``1`` = inline).
    cache:
        Optional :class:`~repro.experiments.evalcache.EvaluationCache`;
        evaluation points are looked up before computing and stored
        after.
    shared_memory:
        Whether run-level chunk tasks ship realization rows through
        shared memory (default) or pickled slices.  Purely transport —
        results are bit-identical.
    policy:
        Default :class:`RetryPolicy` for :meth:`map` calls that do not
        pass their own (``evaluate_application`` derives a per-call
        policy from its :class:`~repro.experiments.runner.RunConfig`).
    backend:
        Where sweep points execute: ``"local"`` (fused/pooled,
        in-process) or ``"dispatch"`` (the executor fleet of
        :mod:`repro.experiments.dispatch`).  ``None`` — the default —
        resolves to the session default (:data:`DEFAULT_BACKEND`).
        Purely an execution knob: results are bit-identical.
    executors:
        Executor-count request for the dispatch backend (clamped like
        ``n_jobs`` via :func:`resolve_jobs`); ``None`` falls back to
        this context's ``n_jobs`` request.
    connect:
        Rendezvous endpoint ``"host:port"`` the dispatch driver binds;
        ``None`` binds loopback on an ephemeral port.  Remote
        ``repro worker --connect`` processes join the fleet there.
    fault_plan:
        Optional :class:`~repro.experiments.faults.FaultPlan` for chaos
        testing: shipped to every pool worker through the pool
        initializer, and installed (restricted to parent-side sites)
        in the parent until :meth:`close`.  ``None`` — the default —
        keeps every fault site a single predicate.

    Not thread-safe, and not picklable (workers never see the context;
    they see plain task tuples).
    """

    def __init__(self, n_jobs: Optional[int] = None, cache=None,
                 shared_memory: bool = True,
                 policy: Optional[RetryPolicy] = None,
                 backend: Optional[str] = None,
                 executors: Optional[int] = None,
                 connect: Optional[str] = None,
                 fault_plan=None):
        if n_jobs is not None and n_jobs < 0:
            raise ConfigError(f"n_jobs must be >= 0, got {n_jobs}")
        if executors is not None and executors < 0:
            raise ConfigError(f"executors must be >= 0, got {executors}")
        self._n_jobs = n_jobs
        self.cache = cache
        self.shared_memory = bool(shared_memory) and _SHM_AVAILABLE
        self.policy = policy if policy is not None else RetryPolicy()
        self._backend = resolve_backend(backend)
        self._executors = executors
        self.connect = connect
        self.fault_plan = fault_plan
        self._pool: Optional[ProcessPoolExecutor] = None
        self._fleet = None  # lazy DispatchServer, like the pool
        self._dispatch_failed = False
        self._closed = False
        #: pools created over the context's lifetime (normally 0 or 1;
        #: a failed sweep resets the pool and the next use re-creates
        #: it).  Exposed for tests and the sweep benchmark.
        self.pools_created = 0
        #: recovery counters (see :data:`RESILIENCE_COUNTERS`); sweeps
        #: record their per-sweep delta in ``series.meta["resilience"]``
        self.resilience: Dict[str, int] = {
            name: 0 for name in RESILIENCE_COUNTERS}
        #: dispatch counters (see :data:`DISPATCH_COUNTERS`) and
        #: per-executor completed-point counts, mutated in place by
        #: :meth:`DispatchServer.map_points`
        self.dispatch: Dict[str, int] = {
            name: 0 for name in DISPATCH_COUNTERS}
        self.dispatch_per_executor: Dict[str, int] = {}
        if fault_plan is not None:
            # parent-side sites only: the parent must never crash/hang
            # itself while recovering (workers get the full plan);
            # online-admit runs in the driver and is retryable there
            faults.install(fault_plan.only(
                "cache-read", "dispatch-send", "dispatch-recv",
                "online-admit"))

    # -- lifecycle ----------------------------------------------------------
    def __enter__(self) -> "ExecutionContext":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def jobs(self, n_items: Optional[int] = None) -> int:
        """The resolved worker count, optionally clamped to the work."""
        return resolve_jobs(self._n_jobs, n_items=n_items)

    @property
    def backend(self) -> str:
        """The resolved execution backend (``"local"``/``"dispatch"``)."""
        return self._backend

    def dispatch_jobs(self, n_items: Optional[int] = None) -> int:
        """The resolved executor count for the dispatch backend.

        An explicit ``executors`` request wins; otherwise the context's
        ``n_jobs`` request is reused, so ``ExecutionContext(n_jobs=1,
        backend="dispatch")`` stays effectively local (a 1-executor
        fleet is never engaged by ``map_evaluations``).
        """
        request = self._executors if self._executors is not None \
            else self._n_jobs
        return resolve_jobs(request, n_items=n_items)

    def dispatch_fleet(self, n_items: Optional[int] = None):
        """The persistent executor fleet, started on first use.

        Returns ``None`` — permanently, with one warning — when no
        executor connects within the timeout; callers then fall back to
        the local execution path (graceful degradation).
        """
        from ..errors import DispatchError
        if self._closed:
            raise ParallelError("closed execution context",
                                RuntimeError("context already closed"))
        if self._dispatch_failed:
            return None
        want = self.dispatch_jobs(n_items=n_items)
        from .dispatch import DispatchServer
        if self._fleet is None:
            # executors probe/populate the same content-addressed cache
            # the driver uses, so rejoining fleets skip finished work
            cache_dir = (str(self.cache.root)
                         if self.cache is not None else None)
            self._fleet = DispatchServer(connect=self.connect,
                                         fault_plan=self.fault_plan,
                                         cache_dir=cache_dir)
        try:
            self._fleet.start(executors=want)
        except DispatchError as exc:
            self._fleet.close()
            self._fleet = None
            self._dispatch_failed = True
            warnings.warn(
                f"dispatch backend unreachable ({exc}); falling back to "
                "the local execution path", RuntimeWarning, stacklevel=2)
            return None
        return self._fleet

    def has_live_pool(self) -> bool:
        """Whether a worker pool already exists and the context is open.

        ``evaluate_application`` consults this to decide whether the
        ``parallel_min_runs`` cold-start threshold applies: a live pool
        has already paid its startup cost, so even a small opted-in
        batch may as well use it.
        """
        return self._pool is not None and not self._closed

    def pool(self) -> ProcessPoolExecutor:
        """The persistent worker pool, created on first use."""
        if self._closed:
            raise ParallelError("closed execution context",
                                RuntimeError("context already closed"))
        if self._pool is None:
            init, initargs = None, ()
            if self.fault_plan is not None:
                init, initargs = faults.install, (self.fault_plan,)
            self._pool = ProcessPoolExecutor(max_workers=self.jobs(),
                                             initializer=init,
                                             initargs=initargs)
            self.pools_created += 1
        return self._pool

    def reset(self) -> None:
        """Tear the pool down (it is re-created lazily on next use)."""
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def close(self) -> None:
        """Shut the pool and fleet down for good; further use fails."""
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
        if self._fleet is not None:
            self._fleet.close()
            self._fleet = None
        if self.fault_plan is not None:
            faults.uninstall()
        self._closed = True

    # -- execution ----------------------------------------------------------
    def map(self, fn: Callable, args_list: Sequence[Tuple],
            labels: Optional[Sequence[str]] = None,
            policy: Optional[RetryPolicy] = None,
            fallback_args: Optional[Sequence[Tuple]] = None) -> List:
        """Run ``fn(*args)`` for every args tuple on the pool, in order.

        Resilient under partial failure (see :class:`RetryPolicy`, or
        the context's default policy when none is passed):

        * a **worker crash** breaks the pool; completed results are
          harvested, the pool is rebuilt (at most
          ``policy.max_pool_rebuilds`` times per call) and the lost
          items re-dispatched;
        * a **hung item** — one exceeding ``policy.chunk_timeout``
          seconds per attempt — is re-dispatched to another worker
          (the straggler's eventual result is discarded);
        * a worker-side :class:`~repro.errors.TransportError` switches
          *that item* to its entry in ``fallback_args`` (the pickled
          chunk) without burning a retry;
        * retry budgets exhausted → the item (or, after the rebuild
          budget, the whole remainder) is computed serially in the
          parent with a warning, or raises :class:`ParallelError` when
          ``policy.degrade`` is false.

        Deterministic worker exceptions still fail fast: the pool is
        reset and :class:`ParallelError` names the failing item.
        Results keep submission order and are bit-identical to a serial
        loop under every recovery path.
        """
        if labels is None:
            labels = [f"args={args!r}" for args in args_list]
        policy = policy if policy is not None else self.policy
        n = len(args_list)
        current: List[Tuple] = list(args_list)
        futures: List = [None] * n
        results: List = [None] * n
        done = [False] * n
        attempts = [0] * n
        on_fallback = [False] * n
        timeout = policy.chunk_timeout if policy.chunk_timeout > 0 else None
        rebuilds_left = policy.max_pool_rebuilds
        serial = False

        def _inline(j: int, cause: BaseException):
            """Last resort: compute item ``j`` in the parent."""
            if not policy.degrade:
                self.reset()
                raise ParallelError(labels[j], cause) from cause
            self.resilience["degradations"] += 1
            warnings.warn(
                f"giving up on parallel execution of {labels[j]} after "
                f"{attempts[j]} failed dispatch(es) "
                f"({type(cause).__name__}: {cause}); computing it "
                f"serially in the parent", RuntimeWarning, stacklevel=3)
            try:
                return fn(*current[j])
            except Exception as exc:
                raise ParallelError(labels[j], exc) from exc

        def _retry(j: int, cause: BaseException) -> None:
            """Consume one retry for item ``j`` (or degrade it)."""
            attempts[j] += 1
            self.resilience["retries"] += 1
            if attempts[j] > policy.max_retries:
                results[j] = _inline(j, cause)
                done[j] = True
                return
            delay = policy.backoff(attempts[j])
            if delay > 0:
                time.sleep(delay)
            futures[j] = None  # re-dispatched by _submit_pending

        def _submit_pending() -> None:
            pool = self.pool()
            for j in range(n):
                if not done[j] and futures[j] is None:
                    futures[j] = pool.submit(fn, *current[j])

        i = 0
        while i < n:
            if done[i]:
                i += 1
                continue
            if serial:
                try:
                    results[i] = fn(*current[i])
                except Exception as exc:
                    raise ParallelError(labels[i], exc) from exc
                done[i] = True
                i += 1
                continue
            try:
                _submit_pending()
                results[i] = futures[i].result(timeout=timeout)
                done[i] = True
                i += 1
            except TransportError as exc:
                if fallback_args is not None and not on_fallback[i]:
                    # shared memory failed this worker: pickle this one
                    # chunk; the rest of the sweep stays zero-copy
                    self.resilience["shm_fallbacks"] += 1
                    on_fallback[i] = True
                    current[i] = fallback_args[i]
                    futures[i] = None
                else:
                    _retry(i, exc)
            except FuturesTimeoutError as exc:
                self.resilience["timeouts"] += 1
                _retry(i, exc)
            except FaultInjected as exc:
                _retry(i, exc)
            except BrokenExecutor as exc:
                # the whole pool died: keep what finished, drop the rest
                self.reset()
                for j in range(n):
                    f = futures[j]
                    if done[j] or f is None:
                        continue
                    if f.done() and not f.cancelled() \
                            and f.exception() is None:
                        results[j] = f.result()
                        done[j] = True
                    else:
                        futures[j] = None
                attempts[i] += 1
                self.resilience["retries"] += 1
                if rebuilds_left <= 0 or attempts[i] > policy.max_retries:
                    if not policy.degrade:
                        raise ParallelError(labels[i], exc) from exc
                    self.resilience["degradations"] += 1
                    warnings.warn(
                        "worker pool broke beyond the rebuild budget; "
                        "degrading the remaining "
                        f"{sum(1 for d in done if not d)} item(s) to "
                        "serial execution in the parent",
                        RuntimeWarning, stacklevel=2)
                    serial = True
                    continue
                rebuilds_left -= 1
                self.resilience["rebuilds"] += 1
                warnings.warn(
                    f"worker pool broke while running {labels[i]} "
                    f"({type(exc).__name__}); rebuilding the pool and "
                    "re-dispatching the unfinished items",
                    RuntimeWarning, stacklevel=2)
                delay = policy.backoff(attempts[i])
                if delay > 0:
                    time.sleep(delay)
            except Exception as exc:
                self.reset()
                raise ParallelError(labels[i], exc) from exc
        return results

    # -- bookkeeping --------------------------------------------------------
    def worker_kernel_stats(self) -> List[Dict[str, Dict[str, int]]]:
        """Per-worker kernel-cache counters from the live pool.

        Best effort and read-only: returns ``[]`` when no pool is live
        (nothing pooled ran, or the backend is dispatch — remote
        executors are not probed), and skips workers whose probe fails.
        ``repro ... --cache-stats`` sums these with the parent's own
        counters so pooled runs stop under-counting.
        """
        if not self.has_live_pool():
            return []
        import shutil
        import tempfile
        want = self.jobs()
        scratch = tempfile.mkdtemp(prefix="repro-kprobe-")
        try:
            pool = self.pool()
            futures = [pool.submit(_kernel_probe_task, scratch, want, 1.0)
                       for _ in range(want)]
            per_pid: Dict[int, Dict[str, Dict[str, int]]] = {}
            for future in futures:
                try:
                    pid, stats = future.result(timeout=10.0)
                except Exception:  # pragma: no cover - best effort
                    continue
                per_pid[pid] = stats
            return list(per_pid.values())
        finally:
            shutil.rmtree(scratch, ignore_errors=True)

    def cache_stats(self) -> Optional[Dict[str, int]]:
        """The attached cache's hit/miss counters, or ``None``."""
        return self.cache.stats() if self.cache is not None else None

    def resilience_stats(self) -> Dict[str, int]:
        """Recovery counters accumulated over the context's lifetime."""
        return dict(self.resilience)

    def dispatch_stats(self) -> Dict[str, object]:
        """Dispatch counters plus per-executor completed-point counts."""
        return {**self.dispatch,
                "per_executor": dict(self.dispatch_per_executor)}
