"""Regeneration of the paper's tables.

Tables 1 and 2 *are* the voltage/speed settings of the two processor
models; regenerating them means printing the level tables our power
models actually use — which is exactly what the figures' staircase
behaviour depends on, so the bench asserts the structural properties the
paper states (level counts, ranges, non-linearity).
"""

from __future__ import annotations

from ..power.tables import INTEL_XSCALE, TRANSMETA_TM5400, format_table


def table1() -> str:
    """Table 1: Speed & Voltages of Transmeta TM5400 (16 levels)."""
    return ("Table 1. Speed & Voltages of Transmeta 5400\n"
            + format_table(TRANSMETA_TM5400, columns=4))


def table2() -> str:
    """Table 2: Speed & Voltages of Intel XScale (5 levels)."""
    return ("Table 2. Speed & Voltages of Intel XScale\n"
            + format_table(INTEL_XSCALE, columns=5))


def all_tables() -> str:
    return table1() + "\n\n" + table2()
