"""Deterministic fault injection for the execution engine.

The resilience layer (per-chunk retry, pool rebuild, transport
fallback, cache quarantine) is only trustworthy if every recovery path
can be *driven* on demand and proven bit-identical to the fault-free
run.  This module provides that driver: a :class:`FaultPlan` of
:class:`FaultSpec` entries, installed into pool workers through the
pool initializer (and, filtered, into the parent for parent-side
sites), that crashes, hangs, raises or corrupts at named **fault
sites**:

``worker-chunk``
    Start of every worker task (a run-chunk simulation or a whole
    sweep-point evaluation).  Actions: ``crash`` (``os._exit`` — the
    pool breaks with :class:`~concurrent.futures.process.
    BrokenProcessPool`), ``hang`` (sleep ``hang_seconds``, then
    continue), ``raise`` (:class:`~repro.errors.FaultInjected`).
``shm-attach``
    Shared-memory segment attach inside
    :meth:`~repro.experiments.engine.ShmChunk.resolve`.  Action:
    ``raise`` (surfaces as :class:`~repro.errors.TransportError`, which
    the parent answers with a per-chunk pickling fallback).
``cache-read``
    Evaluation-cache lookup in the parent.  Action: ``corrupt``
    (truncates the on-disk entry before it is read, simulating a torn
    write; the cache must quarantine and recompute).
``dispatch-send``
    Driver-side task-frame send in the distributed dispatcher
    (:mod:`repro.experiments.dispatch`).  Action: ``raise`` (the
    connection counts as lost: the executor is dropped and its
    in-flight points re-dispatched).
``dispatch-recv``
    Driver-side result-frame receipt.  Action: ``raise`` (the frame is
    treated as torn on the wire: the result is discarded and the point
    re-dispatched, burning one retry).
``worker-dead``
    Start of a task inside a :class:`~repro.experiments.dispatch.
    DispatchWorker` process.  Action: ``crash`` (``os._exit`` — the
    driver sees EOF and must re-dispatch the worker's points).
``shard-exec``
    Start of one fused-sweep shard in
    :func:`~repro.experiments.fused.run_shard`, keyed by the shard
    index — fires identically on pool workers and dispatch executors.
    Actions: ``crash``, ``hang``, ``raise`` (the owning backend's
    retry/steal/degrade semantics must recover the shard
    bit-identically).
``online-admit``
    The admission probe of the online sporadic-arrival simulator
    (:func:`~repro.experiments.online.simulate_online`), fired in the
    driver process for every arrival, keyed by the arrival index.
    Actions: ``raise`` (the admission decision is retried under the
    config's retry policy and must land bit-identically), ``hang``
    (the decision is merely delayed).

Determinism and replay: a spec fires on the Nth occurrence of its site
in a process (``occurrence``), or whenever the call site's ``key``
matches (``key``), and at most ``times`` times *globally* — global
one-shot bookkeeping uses ``O_CREAT | O_EXCL`` marker files in the
plan's ``scratch`` directory, so a chunk whose worker crashed is not
crashed again on re-dispatch.  :meth:`FaultPlan.random` derives a whole
plan from one integer seed; a chaos test that fails prints that seed,
and rebuilding the plan from it replays the exact fault schedule.

The hot path stays free: with no plan installed, :func:`fire` is a
module-global ``None`` check and an immediate return — no allocation,
no locking — so production sweeps pay one predicate per chunk.
"""

from __future__ import annotations

import hashlib
import os
import random
import time
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from ..errors import ConfigError

#: the original (PR 5) fault sites — every execution backend must fire
#: these.  :meth:`FaultPlan.random` draws from this set by default so
#: existing chaos seeds replay byte-identical fault schedules.
CORE_SITES = ("worker-chunk", "shm-attach", "cache-read")

#: the full fault-site registry, including the distributed-dispatch
#: sites added with :mod:`repro.experiments.dispatch`
SITES = CORE_SITES + ("dispatch-send", "dispatch-recv", "worker-dead",
                      "shard-exec", "online-admit")

#: actions a spec may request (interpreted by the firing site)
ACTIONS = ("crash", "hang", "raise", "corrupt")

#: which actions each site supports (used by :meth:`FaultPlan.random`
#: and documented in docs/testing.md's site registry)
SITE_ACTIONS = {
    "worker-chunk": ("crash", "hang", "raise"),
    "shm-attach": ("raise",),
    "cache-read": ("corrupt",),
    "dispatch-send": ("raise",),
    "dispatch-recv": ("raise",),
    "worker-dead": ("crash", "hang"),
    "shard-exec": ("crash", "hang", "raise"),
    "online-admit": ("raise", "hang"),
}

#: exit code of an injected worker crash (recognizable in pool logs)
CRASH_EXIT_CODE = 73


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault: *where*, *when* and *what*.

    ``occurrence`` counts calls at ``site`` within one process (1-based)
    and is ignored when ``key`` is given; ``key`` matches the identity
    the call site passes to :func:`fire` (a chunk's run offset, a sweep
    point's index, a cache key prefix).  ``times`` caps total firings
    across every process sharing the plan's scratch directory.
    """

    site: str
    action: str
    occurrence: int = 1
    key: Optional[object] = None
    times: int = 1

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise ConfigError(
                f"unknown fault site {self.site!r}; registry: {SITES}")
        if self.action not in ACTIONS:
            raise ConfigError(
                f"unknown fault action {self.action!r}; one of {ACTIONS}")
        if self.occurrence < 1:
            raise ConfigError("occurrence is 1-based, must be >= 1")
        if self.times < 1:
            raise ConfigError("times must be >= 1")


@dataclass(frozen=True)
class FaultPlan:
    """A replayable schedule of injected faults.

    ``scratch`` (a directory path) enables cross-process one-shot
    accounting; without it each process enforces ``times`` on its own,
    which is only safe for parent-side sites (``cache-read``).
    ``seed`` is carried for provenance: plans built by :meth:`random`
    print it via :meth:`describe` so failures are reproducible.
    """

    specs: Tuple[FaultSpec, ...] = ()
    scratch: Optional[str] = None
    hang_seconds: float = 2.0
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.hang_seconds < 0:
            raise ConfigError("hang_seconds must be >= 0")

    # -- construction -------------------------------------------------------
    @classmethod
    def random(cls, seed: int, scratch: Optional[str] = None,
               n_faults: int = 2, hang_seconds: float = 1.5,
               sites: Sequence[str] = CORE_SITES) -> "FaultPlan":
        """A seed-derived plan: same seed + same scratch state = same faults.

        Actions are drawn per site from what that site supports
        (:data:`SITE_ACTIONS`), and occurrences from 1..4 so small
        sweeps still reach them.  ``sites`` defaults to
        :data:`CORE_SITES` — not the full registry — so plans built
        from historical seeds replay identically after new sites are
        registered; pass ``sites=SITES`` (or an explicit subset) to
        draw dispatch-layer faults too.
        """
        rng = random.Random(seed)
        specs = []
        for _ in range(n_faults):
            site = rng.choice(list(sites))
            specs.append(FaultSpec(site=site,
                                   action=rng.choice(SITE_ACTIONS[site]),
                                   occurrence=rng.randint(1, 4)))
        return cls(specs=tuple(specs), scratch=scratch,
                   hang_seconds=hang_seconds, seed=seed)

    def only(self, *sites: str) -> "FaultPlan":
        """The plan restricted to ``sites`` (parent-side installation)."""
        return FaultPlan(specs=tuple(s for s in self.specs
                                     if s.site in sites),
                         scratch=self.scratch,
                         hang_seconds=self.hang_seconds, seed=self.seed)

    def describe(self) -> str:
        """One line per spec, headed by the seed — paste into a report."""
        head = f"FaultPlan(seed={self.seed!r}, hang={self.hang_seconds}s)"
        lines = [head] + [
            f"  [{i}] {s.site}: {s.action} "
            + (f"key={s.key!r}" if s.key is not None
               else f"occurrence={s.occurrence}")
            + (f" x{s.times}" if s.times != 1 else "")
            for i, s in enumerate(self.specs)
        ]
        return "\n".join(lines)

    # -- firing -------------------------------------------------------------
    def _claim(self, spec: FaultSpec, local_fires: Dict[str, int]) -> bool:
        """Reserve one global firing slot for a matched spec, atomically.

        Slots are named after the spec's *content*, not its position,
        so the same spec claims the same markers whether it sits in the
        full plan (a worker's copy) or a :meth:`only`-filtered one (the
        parent's copy).  Two byte-identical specs in one plan share a
        slot pool — use ``times`` to express multiplicity instead.
        """
        stem = _spec_stem(spec)
        if self.scratch is None:
            fired = local_fires.get(stem, 0)
            if fired >= spec.times:
                return False
            local_fires[stem] = fired + 1
            return True
        for slot in range(spec.times):
            marker = os.path.join(self.scratch, f"{stem}-{slot}")
            try:
                fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                continue
            except OSError:
                return False  # scratch unwritable: never fire
            os.close(fd)
            return True
        return False

    def check(self, site: str, key: object,
              counts: Dict[str, int],
              local_fires: Dict[str, int]) -> Optional[str]:
        """The action to perform at this call, or ``None``."""
        count = counts.get(site, 0) + 1
        counts[site] = count
        for spec in self.specs:
            if spec.site != site:
                continue
            if spec.key is not None:
                if spec.key != key:
                    continue
            elif count != spec.occurrence:
                continue
            if self._claim(spec, local_fires):
                return spec.action
        return None


def _spec_stem(spec: FaultSpec) -> str:
    """Position-independent marker-file stem of one spec."""
    blob = f"{spec.site}|{spec.action}|{spec.occurrence}|{spec.key!r}"
    return "fault-" + hashlib.sha1(blob.encode("utf-8")).hexdigest()[:12]


# ---------------------------------------------------------------------------
# per-process installation
# ---------------------------------------------------------------------------

_PLAN: Optional[FaultPlan] = None
_COUNTS: Dict[str, int] = {}
_LOCAL_FIRES: Dict[str, int] = {}


def install(plan: Optional[FaultPlan]) -> None:
    """Activate ``plan`` in this process (pool-initializer compatible).

    Resets the per-process occurrence counters, so a fresh worker
    starts counting from its own first chunk.
    """
    global _PLAN
    _PLAN = plan
    _COUNTS.clear()
    _LOCAL_FIRES.clear()


def uninstall() -> None:
    """Deactivate fault injection in this process."""
    install(None)


def active() -> Optional[FaultPlan]:
    """The currently installed plan, or ``None``."""
    return _PLAN


def fire(site: str, key: object = None) -> Optional[str]:
    """Evaluate the installed plan at a fault site.

    With no plan installed this is a single ``None`` check.  ``crash``
    and ``hang`` are performed here (they mean the same thing at every
    site); any other matched action is returned for the call site to
    interpret (``raise``, ``corrupt``).
    """
    plan = _PLAN
    if plan is None:
        return None
    action = plan.check(site, key, _COUNTS, _LOCAL_FIRES)
    if action == "crash":
        os._exit(CRASH_EXIT_CODE)
    if action == "hang":
        time.sleep(plan.hang_seconds)
        return None
    return action
