"""Work-stealing distributed sweep backend (``backend="dispatch"``).

The paper's evaluation is embarrassingly parallel across sweep points,
and PR 5's fault sites were designed as the contract every execution
backend must honor.  This module is the first remote backend built
against that contract: it shards sweep points across **executors** —
worker processes spawned on this machine by default, or
:class:`DispatchWorker` processes joining from other hosts over TCP —
and inherits the engine's :class:`~repro.experiments.engine.RetryPolicy`
semantics end to end, so the chaos tier passes unchanged with the
dispatcher underneath.

Wire protocol (stdlib only, documented in docs/internals.md):

* **Framing** — every message is a big-endian ``uint32`` length prefix
  followed by that many bytes of pickle.  Frames above
  :data:`MAX_FRAME` are rejected as protocol violations.
* **Messages** — plain tuples tagged by their first element:
  ``("hello", name, pid)`` (worker → driver, once after connecting),
  ``("heartbeat",)`` (worker → driver, every
  :data:`HEARTBEAT_INTERVAL` seconds from a background thread),
  ``("task", task_id, index, app, config)`` (driver → worker),
  ``("result", task_id, index, result)`` /
  ``("error", task_id, index, exc)`` (worker → driver), and
  ``("shutdown",)`` (driver → worker).  ``task_id`` is
  ``(generation, index)`` — the generation increments per
  :meth:`DispatchServer.map_points` call so a straggler's result from
  an earlier sweep can never bind to the current one.
* **Security** — frames are pickles: run the rendezvous endpoint on a
  trusted network only (the default is loopback).

Scheduling is **pull-based work stealing**: the driver never
pre-partitions the sweep.  Idle executors are handed the next pending
point, so a fast executor naturally takes more points than a slow one;
a point whose attempt exceeds ``policy.chunk_timeout`` is *stolen* —
re-dispatched to another executor while the straggler keeps running —
and the duplicate delivery is deduplicated by the point's evaluation
cache key (first result wins; results are bit-identical by the
engine's core contract, so either copy is correct).

Failure semantics mirror :meth:`ExecutionContext.map
<repro.experiments.engine.ExecutionContext.map>`:

* a retryable worker error (:class:`~repro.errors.FaultInjected`,
  :class:`~repro.errors.TransportError`,
  :class:`~repro.errors.DispatchError`) re-dispatches the point with
  bounded exponential backoff, up to ``policy.max_retries`` times;
* an executor death (socket EOF, lost heartbeat, injected
  ``worker-dead`` crash) re-dispatches its in-flight point to a
  surviving executor;
* a whole-fleet death respawns local executors at most
  ``policy.max_pool_rebuilds`` times per map call;
* past any budget, the remainder degrades to serial evaluation in the
  driver (``degrade=True``, with a warning) or raises
  :class:`~repro.errors.ParallelError`;
* deterministic worker exceptions (a bug, a ``ConfigError``) fail
  fast, exactly as on the local backend;
* **no executors reachable at all** → :func:`dispatch_points` returns
  ``None`` and the caller falls back to the local fused/pooled path.

Fault sites fired here: the existing ``worker-chunk`` (inside
:func:`~repro.experiments.parallel._evaluate_app_point`, same key —
the point index — as the pool backend) plus the dispatch-specific
``dispatch-send`` / ``dispatch-recv`` (driver side) and ``worker-dead``
(executor side); see :mod:`repro.experiments.faults`.

The driver records per-executor point counts, steal counts and
recovery tallies into the owning context's ``dispatch`` counters,
which sweeps surface as ``series.meta["dispatch"]``.
"""

from __future__ import annotations

import os
import pickle
import selectors
import socket
import struct
import threading
import time
import warnings
from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import (ConfigError, DispatchError, FaultInjected,
                      ParallelError, TransportError)
from . import faults

__all__ = [
    "DispatchServer", "DispatchWorker", "PointLedger", "FrameBuffer",
    "dispatch_points", "worker_main", "parse_endpoint", "send_frame",
    "recv_frame", "CONNECT_TIMEOUT", "HEARTBEAT_INTERVAL",
    "HEARTBEAT_TIMEOUT", "MAX_FRAME",
]

#: hard ceiling on one frame's payload (a sweep point's app + config or
#: result is kilobytes; anything near this is a protocol violation)
MAX_FRAME = 1 << 30

#: seconds the driver waits for the first executor to say hello before
#: declaring the dispatch backend unreachable (tests shrink this)
CONNECT_TIMEOUT = 5.0

#: seconds between worker heartbeat frames (sent from a background
#: thread, so a worker busy evaluating still proves liveness)
HEARTBEAT_INTERVAL = 0.5

#: seconds of driver-side silence after which an executor counts as
#: dead even without EOF (half-open TCP); local executor death is
#: normally detected much earlier via EOF
HEARTBEAT_TIMEOUT = 30.0

#: driver select loop granularity in seconds
_TICK = 0.02

#: exceptions a worker may report that the driver treats as retryable —
#: the same classification as the local resilient executor
_RETRYABLE = (FaultInjected, TransportError, DispatchError)


def parse_endpoint(endpoint: str) -> Tuple[str, int]:
    """Split ``"host:port"`` into a validated ``(host, port)`` pair."""
    host, sep, port_s = str(endpoint).rpartition(":")
    if not sep or not host:
        raise ConfigError(
            f"dispatch endpoint must be 'host:port', got {endpoint!r}")
    try:
        port = int(port_s)
    except ValueError:
        raise ConfigError(
            f"dispatch endpoint port must be an integer, got {port_s!r}")
    if not 0 <= port <= 65535:
        raise ConfigError(f"dispatch endpoint port out of range: {port}")
    return host, port


# ---------------------------------------------------------------------------
# framing: uint32 big-endian length prefix + pickle payload
# ---------------------------------------------------------------------------

def send_frame(sock: socket.socket, obj, lock: Optional[threading.Lock] = None) -> None:
    """Pickle ``obj`` and write it as one length-prefixed frame.

    ``lock`` serializes writers sharing one socket (the worker's main
    loop vs its heartbeat thread); the driver's sockets have exactly
    one writer and pass no lock.
    """
    blob = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    if len(blob) > MAX_FRAME:
        raise DispatchError(
            f"refusing to send a {len(blob)}-byte frame (max {MAX_FRAME})")
    frame = struct.pack(">I", len(blob)) + blob
    if lock is not None:
        with lock:
            sock.sendall(frame)
    else:
        sock.sendall(frame)


def _recv_exact(sock: socket.socket, n: int) -> Optional[bytes]:
    buf = bytearray()
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            return None
        buf += chunk
    return bytes(buf)


def recv_frame(sock: socket.socket):
    """Read one frame from a blocking socket; ``None`` on EOF.

    A connection that closes mid-frame (torn write) also reads as EOF —
    the driver treats both as executor death.
    """
    head = _recv_exact(sock, 4)
    if head is None:
        return None
    (length,) = struct.unpack(">I", head)
    if length > MAX_FRAME:
        raise DispatchError(f"oversized frame announced: {length} bytes")
    body = _recv_exact(sock, length)
    if body is None:
        return None
    return pickle.loads(body)


class FrameBuffer:
    """Incremental frame decoder for one non-blocking driver connection."""

    def __init__(self):
        self._buf = bytearray()

    def feed(self, data: bytes) -> List:
        """Append raw bytes; return every now-complete message."""
        self._buf += data
        messages = []
        while True:
            if len(self._buf) < 4:
                return messages
            (length,) = struct.unpack_from(">I", self._buf)
            if length > MAX_FRAME:
                raise DispatchError(
                    f"oversized frame announced: {length} bytes")
            if len(self._buf) < 4 + length:
                return messages
            body = bytes(self._buf[4:4 + length])
            del self._buf[:4 + length]
            messages.append(pickle.loads(body))


# ---------------------------------------------------------------------------
# the executor side
# ---------------------------------------------------------------------------

def _is_shard(app) -> bool:
    """Whether a task payload is a fused-sweep shard, not an app."""
    from .fused import ShardTask
    return isinstance(app, ShardTask)


class DispatchWorker:
    """One executor process: connect, say hello, evaluate tasks forever.

    Spawned locally by :class:`DispatchServer`, or started on another
    machine via ``repro worker --connect host:port`` to join a remote
    driver's fleet.  Each task is evaluated through the same
    ``_evaluate_app_point`` the pool backend uses, so the
    ``worker-chunk`` fault site fires with identical keys; the
    ``worker-dead`` site fires before evaluation begins (its ``crash``
    action kills this process, which the driver sees as EOF).

    With a ``cache_dir``, the executor probes the shared
    content-addressed cache (``.repro-cache/``) **before** computing a
    point and stores fresh results back, so a (re)joining worker —
    and stolen or duplicated points in long-running fleets — skip work
    the fleet already did.  Purely an optimization: cache hits are
    bit-identical to recomputation by the cache's contract.  Fused-sweep
    shards (:class:`~repro.experiments.fused.ShardTask`) bypass the
    probe — a shard is an execution slice, not an addressable
    evaluation point.
    """

    def __init__(self, host: str, port: int, name: Optional[str] = None,
                 fault_plan=None,
                 heartbeat_interval: Optional[float] = None,
                 cache_dir: Optional[str] = None):
        self.host = host
        self.port = int(port)
        self.name = name or f"worker-{os.getpid()}"
        self.fault_plan = fault_plan
        self.heartbeat_interval = (HEARTBEAT_INTERVAL
                                   if heartbeat_interval is None
                                   else heartbeat_interval)
        self.cache_dir = cache_dir
        self._cache = None

    def run(self) -> int:
        """Serve tasks until shutdown/EOF; returns a process exit code."""
        faults.install(self.fault_plan)
        try:
            sock = socket.create_connection((self.host, self.port),
                                            timeout=CONNECT_TIMEOUT)
        except OSError:
            return 1
        sock.settimeout(None)
        lock = threading.Lock()
        stop = threading.Event()
        try:
            send_frame(sock, ("hello", self.name, os.getpid()), lock)
            beat = threading.Thread(
                target=self._heartbeat, args=(sock, lock, stop), daemon=True)
            beat.start()
            while True:
                msg = recv_frame(sock)
                if msg is None or msg[0] == "shutdown":
                    break
                if msg[0] == "task":
                    self._run_task(sock, lock, msg)
        except (OSError, DispatchError, pickle.UnpicklingError, EOFError):
            pass  # driver gone or stream torn: nothing left to serve
        finally:
            stop.set()
            try:
                sock.close()
            except OSError:
                pass
            faults.uninstall()
        return 0

    def _heartbeat(self, sock, lock, stop) -> None:
        while not stop.wait(self.heartbeat_interval):
            try:
                send_frame(sock, ("heartbeat",), lock)
            except OSError:
                return

    def _open_cache(self):
        if self.cache_dir is None:
            return None
        if self._cache is None:
            from .evalcache import EvaluationCache
            self._cache = EvaluationCache(self.cache_dir)
        return self._cache

    def _evaluate(self, index: int, app, config):
        """One task, probing the shared result cache around the compute."""
        from .parallel import _evaluate_app_point
        cache = self._open_cache()
        if cache is not None and not _is_shard(app):
            from .evalcache import evaluation_key
            key = evaluation_key(app, config)
            hit = cache.get(key, app.name, config)
            if hit is not None:
                return hit
            result = _evaluate_app_point(index, app, config)
            cache.put(key, result)
            return result
        return _evaluate_app_point(index, app, config)

    def _run_task(self, sock, lock, msg) -> None:
        _, task_id, index, app, config = msg
        # worker-dead's crash/hang actions are performed inside fire()
        faults.fire("worker-dead", key=index)
        try:
            result = self._evaluate(index, app, config)
        except BaseException as exc:
            try:
                send_frame(sock, ("error", task_id, index, exc), lock)
            except (TypeError, AttributeError, pickle.PicklingError):
                # the exception itself does not pickle: ship its text
                send_frame(sock, ("error", task_id, index,
                                  RuntimeError(f"{type(exc).__name__}: "
                                               f"{exc}")), lock)
            return
        send_frame(sock, ("result", task_id, index, result), lock)


def worker_main(host: str, port: int, name: Optional[str] = None,
                fault_plan=None, cache_dir: Optional[str] = None) -> int:
    """Process entry point for locally spawned executors."""
    return DispatchWorker(host, port, name=name,
                          fault_plan=fault_plan,
                          cache_dir=cache_dir).run()


# ---------------------------------------------------------------------------
# driver-side bookkeeping
# ---------------------------------------------------------------------------

class PointLedger:
    """Which sweep points are done, delivered and retried.

    Deduplication is by the point's evaluation **cache key**: after a
    steal, both the thief's and the straggler's results arrive for the
    same key, and only the first is accepted (results are bit-identical
    by contract, so first-wins is exact, not approximate).  Without a
    cache the keys default to the point indices, which are unique per
    map call.
    """

    def __init__(self, n: int, keys: Optional[Sequence[str]] = None):
        if keys is not None and len(keys) != n:
            raise ConfigError(f"{len(keys)} keys for {n} points")
        self.keys = list(keys) if keys is not None \
            else [f"point-{i}" for i in range(n)]
        self.done = [False] * n
        self.results: List = [None] * n
        self.attempts = [0] * n
        self.delivered: set = set()
        self.duplicates = 0

    def accept(self, index: int, result) -> bool:
        """Record a delivery; ``False`` (and counted) for a duplicate."""
        if self.done[index] or self.keys[index] in self.delivered:
            self.duplicates += 1
            return False
        self.done[index] = True
        self.results[index] = result
        self.delivered.add(self.keys[index])
        return True

    def all_done(self) -> bool:
        return all(self.done)

    def pending(self) -> List[int]:
        return [i for i, d in enumerate(self.done) if not d]


class _Executor:
    """Driver-side state of one connected executor."""

    __slots__ = ("conn", "buf", "name", "task", "last_seen")

    def __init__(self, conn: socket.socket, name: str):
        self.conn = conn
        self.buf = FrameBuffer()
        self.name = name
        self.task: Optional[Tuple[int, int]] = None  # (generation, index)
        self.last_seen = time.monotonic()


# ---------------------------------------------------------------------------
# the driver
# ---------------------------------------------------------------------------

class DispatchServer:
    """The driver: rendezvous listener + executor fleet + serve loop.

    Owned lazily by an :class:`~repro.experiments.engine.
    ExecutionContext` (one fleet per context, reused across map calls
    like the persistent pool) and plugged in behind
    :func:`~repro.experiments.parallel.map_evaluations` via
    :func:`dispatch_points`.

    ``connect`` is the listen endpoint (``"host:port"``); ``None``
    binds loopback on an ephemeral port, which only locally spawned
    executors can reach.  Remote :class:`DispatchWorker`\\ s join the
    fleet at any time — even mid-sweep — by connecting to the same
    endpoint.
    """

    def __init__(self, connect: Optional[str] = None, fault_plan=None,
                 cache_dir: Optional[str] = None):
        self.connect = connect
        self.fault_plan = fault_plan
        self.cache_dir = cache_dir
        self._sel: Optional[selectors.BaseSelector] = None
        self._listener: Optional[socket.socket] = None
        self._executors: Dict[socket.socket, _Executor] = {}
        self._procs: List = []
        self._generation = 0
        self._spawn_seq = 0
        self._accept_seq = 0
        self._local_target = 0
        self._spawn_deadline = 0.0
        self._hellos = 0

    # -- lifecycle ----------------------------------------------------------
    def __enter__(self) -> "DispatchServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` executors connect to."""
        if self._listener is None:
            raise DispatchError("dispatch server not started")
        return self._listener.getsockname()[:2]

    def live_executors(self) -> int:
        return len(self._executors)

    def start(self, executors: int = 1,
              timeout: Optional[float] = None) -> "DispatchServer":
        """Bind, spawn local executors, wait for the first hello.

        Raises :class:`~repro.errors.DispatchError` when no executor
        connects within ``timeout`` (module default
        :data:`CONNECT_TIMEOUT`) — the caller degrades to the local
        execution path.
        """
        if self._listener is not None:
            self.ensure_local(executors)
            return self
        timeout = CONNECT_TIMEOUT if timeout is None else timeout
        host, port = (("127.0.0.1", 0) if self.connect is None
                      else parse_endpoint(self.connect))
        self._sel = selectors.DefaultSelector()
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            listener.bind((host, port))
        except OSError as exc:
            listener.close()
            self._sel.close()
            self._sel = None
            raise DispatchError(
                f"cannot bind dispatch endpoint {host}:{port}: "
                f"{exc}") from exc
        listener.listen(128)
        listener.setblocking(False)
        self._listener = listener
        self._sel.register(listener, selectors.EVENT_READ)
        self.ensure_local(executors)
        deadline = time.monotonic() + timeout
        while self._hellos == 0:
            if time.monotonic() > deadline:
                raise DispatchError(
                    f"no dispatch executors connected within {timeout:.1f}s")
            self._pump(0.05)
        return self

    def ensure_local(self, executors: int) -> None:
        """Top the local fleet up to ``executors`` processes.

        Called per map call with the executor request clamped to the
        number of points, so a 1-point sweep spawns 1 executor and a
        later 10-point sweep on the same fleet grows it.
        """
        want = max(int(executors), 1)
        self._local_target = max(self._local_target, want)
        self._procs = [p for p in self._procs if p.is_alive()]
        have = max(len(self._executors), len(self._procs))
        if want > have:
            self._spawn_local(want - have)

    def _spawn_local(self, k: int) -> None:
        import multiprocessing as mp
        host, port = self.address
        if host in ("", "0.0.0.0"):
            host = "127.0.0.1"
        for _ in range(k):
            name = f"exec-{os.getpid()}-{self._spawn_seq}"
            self._spawn_seq += 1
            proc = mp.Process(target=worker_main, args=(host, port),
                              kwargs={"name": name,
                                      "fault_plan": self.fault_plan,
                                      "cache_dir": self.cache_dir},
                              daemon=True, name=name)
            proc.start()
            self._procs.append(proc)
        self._spawn_deadline = time.monotonic() + CONNECT_TIMEOUT

    def close(self) -> None:
        """Shut the fleet down: polite shutdown frames, then terminate."""
        for executor in list(self._executors.values()):
            try:
                send_frame(executor.conn, ("shutdown",))
            except OSError:
                pass
            self._drop(executor)
        if self._listener is not None:
            try:
                self._sel.unregister(self._listener)
            except (KeyError, ValueError):
                pass
            self._listener.close()
            self._listener = None
        if self._sel is not None:
            self._sel.close()
            self._sel = None
        for proc in self._procs:
            proc.join(timeout=1.0)
            if proc.is_alive():
                proc.terminate()
        self._procs = []

    # -- connection handling ------------------------------------------------
    def _accept(self) -> None:
        try:
            conn, _addr = self._listener.accept()
        except OSError:
            return
        conn.setblocking(False)
        executor = _Executor(conn, name=f"executor-{self._accept_seq}")
        self._accept_seq += 1
        self._executors[conn] = executor
        self._sel.register(conn, selectors.EVENT_READ)

    def _drop(self, executor: _Executor) -> None:
        self._executors.pop(executor.conn, None)
        try:
            self._sel.unregister(executor.conn)
        except (KeyError, ValueError):
            pass
        try:
            executor.conn.close()
        except OSError:
            pass

    def _pump(self, timeout: float):
        """One IO round: accept joiners, read frames, detect deaths.

        Returns ``(deliveries, deaths)`` — result/error messages paired
        with their executor, and executors that disappeared (EOF, torn
        frames, lost heartbeat) paired with the cause.
        """
        deliveries: List[Tuple[_Executor, tuple]] = []
        deaths: List[Tuple[_Executor, BaseException]] = []
        if self._sel is None:
            return deliveries, deaths
        for key, _mask in self._sel.select(timeout):
            sock = key.fileobj
            if sock is self._listener:
                self._accept()
                continue
            executor = self._executors.get(sock)
            if executor is None:
                continue
            try:
                data = sock.recv(1 << 16)
            except (BlockingIOError, InterruptedError):
                continue
            except OSError:
                data = b""
            if not data:
                self._drop(executor)
                deaths.append((executor, DispatchError(
                    f"executor {executor.name} disconnected")))
                continue
            executor.last_seen = time.monotonic()
            try:
                messages = executor.buf.feed(data)
            except (DispatchError, pickle.UnpicklingError, EOFError,
                    AttributeError, ValueError) as exc:
                self._drop(executor)
                deaths.append((executor, DispatchError(
                    f"undecodable frame from {executor.name}: {exc!r}")))
                continue
            for msg in messages:
                kind = msg[0]
                if kind == "hello":
                    executor.name = str(msg[1]) or executor.name
                    self._hellos += 1
                elif kind == "heartbeat":
                    pass
                else:
                    deliveries.append((executor, msg))
        now = time.monotonic()
        for executor in list(self._executors.values()):
            if now - executor.last_seen > HEARTBEAT_TIMEOUT:
                self._drop(executor)
                deaths.append((executor, DispatchError(
                    f"executor {executor.name} heartbeat lost")))
        return deliveries, deaths

    # -- the serve loop -----------------------------------------------------
    def map_points(self, apps: Sequence, configs: Sequence,
                   labels: Sequence[str], policy,
                   resilience: Dict[str, int], stats: Dict[str, int],
                   per_executor: Dict[str, int],
                   keys: Optional[Sequence[str]] = None) -> List:
        """Evaluate every ``(app, config)`` point on the fleet, in order.

        ``resilience``/``stats``/``per_executor`` are the owning
        context's counter dicts, mutated in place (sweeps record their
        deltas into ``series.meta``).  Results keep submission order
        and are bit-identical to a serial loop under every recovery
        path.
        """
        n = len(apps)
        if n == 0:
            return []
        ledger = PointLedger(n, keys=keys)
        queue = deque(range(n))
        ready_at = [0.0] * n
        self._generation += 1
        gen = self._generation
        in_flight: Dict[int, Tuple[_Executor, Optional[float]]] = {}
        rebuilds_left = policy.max_pool_rebuilds
        has_timeout = policy.chunk_timeout > 0

        def _evaluate_locally(idx: int):
            # the same entry point executors use, so a fused-sweep
            # shard degrades to an in-driver run_shard exactly like an
            # app point degrades to evaluate_application
            from .parallel import _evaluate_app_point
            try:
                return _evaluate_app_point(idx, apps[idx], configs[idx])
            except Exception as exc:
                raise ParallelError(labels[idx], exc) from exc

        def _fail(idx: int, cause: BaseException):
            raise ParallelError(labels[idx], cause) from cause

        def _degrade_item(idx: int, cause: BaseException) -> None:
            """Retry budget exhausted for one point: compute it here."""
            if not policy.degrade:
                _fail(idx, cause)
            resilience["degradations"] += 1
            stats["degraded_points"] += 1
            warnings.warn(
                f"giving up on dispatching {labels[idx]} after "
                f"{ledger.attempts[idx]} failed attempt(s) "
                f"({type(cause).__name__}: {cause}); evaluating it "
                "locally in the driver", RuntimeWarning, stacklevel=4)
            in_flight.pop(idx, None)
            ledger.accept(idx, _evaluate_locally(idx))

        def _bump(idx: int, cause: BaseException) -> None:
            """One retryable failure: back off and re-queue, or degrade."""
            if ledger.done[idx]:
                return
            ledger.attempts[idx] += 1
            resilience["retries"] += 1
            in_flight.pop(idx, None)
            if ledger.attempts[idx] > policy.max_retries:
                _degrade_item(idx, cause)
                return
            ready_at[idx] = time.monotonic() \
                + policy.backoff(ledger.attempts[idx])
            queue.appendleft(idx)

        def _on_death(executor: _Executor, cause: BaseException) -> None:
            stats["worker_deaths"] += 1
            task = executor.task
            if task is None or task[0] != gen:
                return
            idx = task[1]
            ent = in_flight.get(idx)
            if ent is not None and ent[0] is executor \
                    and not ledger.done[idx]:
                _bump(idx, cause)

        def _handle(executor: _Executor, msg: tuple) -> None:
            kind, task_id, idx = msg[0], msg[1], msg[2]
            if task_id == executor.task:
                executor.task = None  # delivered: executor is idle again
            if kind == "result":
                if task_id[0] != gen or ledger.done[idx]:
                    # post-steal straggler or a previous sweep's
                    # leftover: the cache key was already served
                    stats["duplicates"] += 1
                    return
                if faults.fire("dispatch-recv", key=idx) == "raise":
                    # torn on the wire: drop the frame, re-dispatch
                    _bump(idx, FaultInjected(
                        f"injected recv fault at point {idx}"))
                    return
                if ledger.accept(idx, msg[3]):
                    stats["completed"] += 1
                    per_executor[executor.name] = \
                        per_executor.get(executor.name, 0) + 1
                    in_flight.pop(idx, None)
                else:
                    stats["duplicates"] += 1
            elif kind == "error":
                if task_id[0] != gen or ledger.done[idx]:
                    return
                exc = msg[3]
                if isinstance(exc, _RETRYABLE):
                    _bump(idx, exc)
                else:
                    _fail(idx, exc)  # deterministic: fail fast

        def _send_task(executor: _Executor, idx: int) -> bool:
            try:
                if faults.fire("dispatch-send", key=idx) == "raise":
                    raise DispatchError(
                        f"injected send fault at point {idx}")
                send_frame(executor.conn,
                           ("task", (gen, idx), idx, apps[idx],
                            configs[idx]))
                return True
            except (DispatchError, OSError):
                # the connection is no good: drop the executor; the
                # point goes back on the queue without burning a retry
                self._drop(executor)
                return False

        def _dispatch_ready() -> None:
            idle = [e for e in self._executors.values() if e.task is None]
            if not idle:
                return
            now = time.monotonic()
            for _ in range(len(queue)):
                if not idle:
                    return
                idx = queue.popleft()
                if ledger.done[idx]:
                    continue
                if ready_at[idx] > now:
                    queue.append(idx)  # still backing off
                    continue
                executor = idle.pop()
                if not _send_task(executor, idx):
                    queue.appendleft(idx)
                    continue
                executor.task = (gen, idx)
                deadline = (now + policy.chunk_timeout) if has_timeout \
                    else None
                in_flight[idx] = (executor, deadline)
                stats["dispatched"] += 1

        def _steal_overdue() -> None:
            if not has_timeout:
                return
            now = time.monotonic()
            for idx, (executor, deadline) in list(in_flight.items()):
                if ledger.done[idx] or deadline is None or now < deadline:
                    continue
                # hung past its budget: steal it — re-dispatch to
                # another executor, dedup the straggler's result later
                resilience["timeouts"] += 1
                stats["stolen"] += 1
                _bump(idx, DispatchError(
                    f"point {idx} exceeded its {policy.chunk_timeout}s "
                    f"attempt budget on executor {executor.name}"))

        def _revive_or_degrade() -> None:
            nonlocal rebuilds_left
            if self._executors:
                return
            if any(p.is_alive() for p in self._procs) \
                    and time.monotonic() < self._spawn_deadline:
                return  # spawned executors are still connecting
            remaining = ledger.pending()
            if not remaining:
                return
            cause = DispatchError("no live dispatch executors")
            if rebuilds_left > 0:
                rebuilds_left -= 1
                resilience["rebuilds"] += 1
                stats["respawns"] += 1
                warnings.warn(
                    "every dispatch executor died; respawning the local "
                    "fleet and re-dispatching the unfinished points",
                    RuntimeWarning, stacklevel=3)
                self._spawn_local(
                    max(1, min(self._local_target, len(remaining))))
                return
            if not policy.degrade:
                _fail(remaining[0], cause)
            resilience["degradations"] += 1
            warnings.warn(
                "dispatch fleet died beyond the respawn budget; "
                f"degrading the remaining {len(remaining)} point(s) to "
                "serial evaluation in the driver",
                RuntimeWarning, stacklevel=3)
            for idx in remaining:
                stats["degraded_points"] += 1
                in_flight.pop(idx, None)
                ledger.accept(idx, _evaluate_locally(idx))

        while not ledger.all_done():
            _revive_or_degrade()
            if ledger.all_done():
                break
            _dispatch_ready()
            deliveries, deaths = self._pump(_TICK)
            for executor, cause in deaths:
                _on_death(executor, cause)
            for executor, msg in deliveries:
                _handle(executor, msg)
            _steal_overdue()
        return list(ledger.results)


# ---------------------------------------------------------------------------
# the integration point behind map_evaluations
# ---------------------------------------------------------------------------

def dispatch_points(context, apps: Sequence, configs: Sequence,
                    labels: Optional[Sequence[str]] = None,
                    policy=None,
                    keys: Optional[Sequence[str]] = None) -> Optional[List]:
    """Evaluate sweep points on ``context``'s executor fleet.

    Returns the results in submission order, or ``None`` when the
    dispatch backend is unreachable (no executor connected within the
    timeout) — the caller then falls back to the local fused/pooled
    path, which is the graceful-degradation contract.

    Point configs are forced to ``n_jobs=1`` before shipping, exactly
    like the pool backend: executors never nest pools.
    """
    if not apps:
        return []
    if labels is None:
        labels = [f"app={app.name!r}" for app in apps]
    policy = policy if policy is not None else context.policy
    server = context.dispatch_fleet(n_items=len(apps))
    if server is None:
        return None
    shipped = [cfg.with_(n_jobs=1) if cfg.n_jobs != 1 else cfg
               for cfg in configs]
    return server.map_points(apps, shipped, list(labels), policy,
                             resilience=context.resilience,
                             stats=context.dispatch,
                             per_executor=context.dispatch_per_executor,
                             keys=keys)
