"""Parameter sweeps: load, α, processor count, overhead, speed levels.

Each sweep returns a :class:`~repro.types.SeriesResult` — the exact
rows/series a paper figure plots — plus, where useful, the per-point
speed-change counts that back the paper's *explanations*.

Every sweep accepts an optional
:class:`~repro.experiments.engine.ExecutionContext`; pass one to share
a persistent worker pool (and optionally an on-disk evaluation cache)
across several sweeps instead of paying pool spin-up per sweep.  When a
cache is attached, the sweep's hit/miss counts land in
``series.meta["cache"]``.

Every sweep also records the resolved kernel tier and the compile-side
cache counters (program / tape / stacked caches) in
``series.meta["kernel"]`` so a regenerated figure states how it was
computed.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from ..graph.andor import AndOrGraph
from ..sim.kernels import kernel_meta
from ..types import SeriesResult
from ..workloads.scaling import application_with_load
from .engine import ExecutionContext
from .parallel import map_applications, map_evaluations, map_load_points
from .runner import EvaluationResult, RunConfig
from .stats import summarize

#: the paper's sweep grid (figures plot 0.1 … 1.0)
DEFAULT_LOADS = tuple(round(0.1 * i, 1) for i in range(1, 11))
DEFAULT_ALPHAS = tuple(round(0.1 * i, 1) for i in range(1, 11))


def _series_from(name: str, x_label: str, xs: Sequence[float],
                 results: Sequence[EvaluationResult],
                 meta: Optional[Dict[str, object]] = None) -> SeriesResult:
    series = SeriesResult(name=name, x_label=x_label, meta=dict(meta or {}))
    for x, res in zip(xs, results):
        for scheme, arr in res.normalized.items():
            series.points.append(summarize(x, scheme, arr))
        # aligned [x, per-scheme-mean] pairs: duplicate x values stay
        # distinct and the floats round-trip JSON (read both formats
        # back with repro.types.speed_change_items)
        series.meta.setdefault("speed_changes", [])
        series.meta["speed_changes"].append(  # type: ignore[union-attr]
            [float(x), res.mean_speed_changes()])
    return series


def _cache_before(context: Optional[ExecutionContext]):
    """Snapshot of the context's cache/resilience/dispatch counters."""
    if context is None:
        return None
    return (context.cache_stats(), context.resilience_stats(),
            context.dispatch_stats())


def _cache_meta(context: Optional[ExecutionContext], before,
                meta: Dict[str, object]) -> Dict[str, object]:
    """Add this sweep's cache hit/miss and recovery deltas to the meta.

    ``meta["cache"]`` carries the hit/miss/error/quarantine delta of
    the attached evaluation cache; ``meta["resilience"]`` the
    retry/rebuild/degradation/timeout/fallback delta of the execution
    context; ``meta["dispatch"]`` — present only when the dispatch
    backend did any work during this sweep — its
    dispatched/completed/stolen/… delta plus per-executor completed
    point counts.  A regenerated figure thus records every recovery
    that happened while computing it.
    """
    if context is None or before is None:
        return meta
    cache_b, res_b, disp_b = before
    cache_a = context.cache_stats()
    if cache_b is not None and cache_a is not None:
        meta["cache"] = {k: cache_a[k] - cache_b[k] for k in cache_a}
    res_a = context.resilience_stats()
    meta["resilience"] = {k: res_a[k] - res_b[k] for k in res_a}
    disp_a = context.dispatch_stats()
    disp_delta = {k: disp_a[k] - disp_b[k] for k in disp_a
                  if k != "per_executor"}
    if any(disp_delta.values()):
        per_b = disp_b.get("per_executor", {})
        per_delta = {name: count - per_b.get(name, 0)
                     for name, count in disp_a["per_executor"].items()
                     if count != per_b.get(name, 0)}
        disp_delta["per_executor"] = per_delta
        meta["dispatch"] = disp_delta
    return meta


def _fused_meta(meta: Dict[str, object]) -> Dict[str, object]:
    """Record how the sweep's fused pass executed, if one ran.

    ``meta["fused"]`` carries the shard count, per-shard run counts and
    the transport (``inline``/``pool``/``dispatch``) of the most recent
    fused pass — popped, so one pass is never attributed to two sweeps.
    """
    from .fused import take_fused_meta
    fused = take_fused_meta()
    if fused is not None:
        meta["fused"] = fused
    return meta


def sweep_load(graph: AndOrGraph, config: RunConfig,
               loads: Sequence[float] = DEFAULT_LOADS,
               n_jobs: int = 1,
               name: str = "load-sweep",
               context: Optional[ExecutionContext] = None,
               fused: bool = True) -> SeriesResult:
    """Normalized energy vs load (the Figure 4/5 x-axis).

    Load points share the graph shape, so by default the whole sweep
    compiles into one fused array program and runs in the parent with
    no pool at all (``fused=True``; see
    :mod:`repro.experiments.fused`).  ``n_jobs`` fans the sweep
    *points* out over processes when fusion does not apply (or is
    turned off); ``config.n_jobs`` parallelizes the Monte-Carlo *runs*
    inside each point only when ``config.run_level_pool`` opts into the
    legacy chunked path.  The point-level pool forces run-level
    ``n_jobs=1`` in its workers, so the two levels never nest.
    """
    before = _cache_before(context)
    results = map_load_points(graph, list(loads), config, n_jobs=n_jobs,
                              context=context, fused=fused)
    return _series_from(name, "load", loads, results,
                        meta=_cache_meta(context, before, _fused_meta(
                                         {"app": graph.name,
                                          "power_model": config.power_model,
                                          "n_processors": config.n_processors,
                                          "n_runs": config.n_runs,
                                          "kernel": kernel_meta(
                                              config.kernel_tier)})))


def sweep_alpha(graph_factory: Callable[[float], AndOrGraph],
                config: RunConfig, load: float,
                alphas: Sequence[float] = DEFAULT_ALPHAS,
                n_jobs: int = 1,
                name: str = "alpha-sweep",
                context: Optional[ExecutionContext] = None,
                fused: bool = True) -> SeriesResult:
    """Normalized energy vs α at fixed load (the Figure 6 x-axis).

    ``graph_factory(alpha)`` must rebuild the application with every
    task's ACET set to ``α · WCET`` (WCETs unchanged, so the deadline —
    hence the load — is identical at every α).  α only rescales ACETs,
    so the points share section-program structure and the sweep fuses
    end-to-end by default.
    """
    apps = [application_with_load(graph_factory(a), load,
                                  config.n_processors)
            for a in alphas]
    before = _cache_before(context)
    results = map_applications(apps, config, n_jobs=n_jobs, context=context,
                               fused=fused)
    return _series_from(name, "alpha", alphas, results,
                        meta=_cache_meta(context, before, _fused_meta(
                                         {"app": apps[0].name if apps else "?",
                                          "load": load,
                                          "power_model": config.power_model,
                                          "n_processors": config.n_processors,
                                          "n_runs": config.n_runs,
                                          "kernel": kernel_meta(
                                              config.kernel_tier)})))


def sweep_processors(graph_builder: Callable[[], AndOrGraph],
                     config: RunConfig, load: float,
                     processor_counts: Sequence[int] = (2, 4, 6),
                     n_jobs: int = 1,
                     name: str = "processor-sweep",
                     context: Optional[ExecutionContext] = None,
                     fused: bool = True) -> SeriesResult:
    """Normalized energy vs processor count at fixed load.

    Backs the paper's observation that "when the number of processors
    increases, the performance of the dynamic schemes decreases".
    Points differ in ``n_processors`` so they cannot fuse; ``n_jobs``
    fans the per-count evaluations out over processes.
    """
    apps = []
    configs: List[RunConfig] = []
    for m in processor_counts:
        apps.append(application_with_load(graph_builder(), load, m))
        configs.append(config.with_(n_processors=m))
    before = _cache_before(context)
    results = map_evaluations(apps, configs, n_jobs=n_jobs, context=context,
                              labels=[f"n_processors={m}"
                                      for m in processor_counts],
                              fused=fused)
    return _series_from(name, "processors",
                        [float(m) for m in processor_counts], results,
                        meta=_cache_meta(context, before,
                                         {"load": load,
                                          "power_model": config.power_model,
                                          "n_runs": config.n_runs,
                                          "kernel": kernel_meta(
                                              config.kernel_tier)}))


def sweep_overhead(graph: AndOrGraph, config: RunConfig, load: float,
                   adjust_times: Sequence[float],
                   n_jobs: int = 1,
                   name: str = "overhead-sweep",
                   context: Optional[ExecutionContext] = None,
                   fused: bool = True) -> SeriesResult:
    """Normalized energy vs voltage-switch overhead (ablation).

    The paper's future-work question: how sensitive are the schemes to
    the speed-adjustment cost?  Points differ in their overhead model so
    they cannot fuse; ``n_jobs`` fans the per-overhead evaluations out
    over processes.
    """
    apps = []
    configs = []
    for t_adj in adjust_times:
        configs.append(config.with_(
            overhead=config.overhead.with_(adjust_time=t_adj)))
        apps.append(application_with_load(graph, load, config.n_processors))
    before = _cache_before(context)
    results = map_evaluations(apps, configs, n_jobs=n_jobs, context=context,
                              labels=[f"adjust_time={t!r}"
                                      for t in adjust_times],
                              fused=fused)
    return _series_from(name, "adjust_time",
                        [float(t) for t in adjust_times], results,
                        meta=_cache_meta(context, before,
                                         {"load": load, "app": graph.name,
                                          "power_model": config.power_model,
                                          "n_runs": config.n_runs,
                                          "kernel": kernel_meta(
                                              config.kernel_tier)}))
