"""Parameter sweeps: load, α, processor count, overhead, speed levels.

Each sweep returns a :class:`~repro.types.SeriesResult` — the exact
rows/series a paper figure plots — plus, where useful, the per-point
speed-change counts that back the paper's *explanations*.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from ..graph.andor import AndOrGraph
from ..types import SeriesResult
from ..workloads.scaling import application_with_load
from .parallel import map_applications, map_custom, map_load_points
from .runner import EvaluationResult, RunConfig, evaluate_application
from .stats import summarize

#: the paper's sweep grid (figures plot 0.1 … 1.0)
DEFAULT_LOADS = tuple(round(0.1 * i, 1) for i in range(1, 11))
DEFAULT_ALPHAS = tuple(round(0.1 * i, 1) for i in range(1, 11))


def _series_from(name: str, x_label: str, xs: Sequence[float],
                 results: Sequence[EvaluationResult],
                 meta: Optional[Dict[str, object]] = None) -> SeriesResult:
    series = SeriesResult(name=name, x_label=x_label, meta=dict(meta or {}))
    for x, res in zip(xs, results):
        for scheme, arr in res.normalized.items():
            series.points.append(summarize(x, scheme, arr))
        series.meta.setdefault("speed_changes", {})
        series.meta["speed_changes"][x] = res.mean_speed_changes()  # type: ignore[index]
    return series


def sweep_load(graph: AndOrGraph, config: RunConfig,
               loads: Sequence[float] = DEFAULT_LOADS,
               n_jobs: int = 1,
               name: str = "load-sweep") -> SeriesResult:
    """Normalized energy vs load (the Figure 4/5 x-axis).

    ``n_jobs`` fans the sweep *points* out over processes; set
    ``config.n_jobs`` instead to parallelize the Monte-Carlo *runs*
    inside each point (useful when points are few but expensive).  The
    point-level pool forces run-level ``n_jobs=1`` in its workers, so
    the two levels never nest.
    """
    results = map_load_points(graph, list(loads), config, n_jobs=n_jobs)
    return _series_from(name, "load", loads, results,
                        meta={"app": graph.name,
                              "power_model": config.power_model,
                              "n_processors": config.n_processors,
                              "n_runs": config.n_runs})


def sweep_alpha(graph_factory: Callable[[float], AndOrGraph],
                config: RunConfig, load: float,
                alphas: Sequence[float] = DEFAULT_ALPHAS,
                n_jobs: int = 1,
                name: str = "alpha-sweep") -> SeriesResult:
    """Normalized energy vs α at fixed load (the Figure 6 x-axis).

    ``graph_factory(alpha)`` must rebuild the application with every
    task's ACET set to ``α · WCET`` (WCETs unchanged, so the deadline —
    hence the load — is identical at every α).
    """
    apps = [application_with_load(graph_factory(a), load,
                                  config.n_processors)
            for a in alphas]
    results = map_applications(apps, config, n_jobs=n_jobs)
    return _series_from(name, "alpha", alphas, results,
                        meta={"app": apps[0].name if apps else "?",
                              "load": load,
                              "power_model": config.power_model,
                              "n_processors": config.n_processors,
                              "n_runs": config.n_runs})


def sweep_processors(graph_builder: Callable[[], AndOrGraph],
                     config: RunConfig, load: float,
                     processor_counts: Sequence[int] = (2, 4, 6),
                     n_jobs: int = 1,
                     name: str = "processor-sweep") -> SeriesResult:
    """Normalized energy vs processor count at fixed load.

    Backs the paper's observation that "when the number of processors
    increases, the performance of the dynamic schemes decreases".
    ``n_jobs`` fans the per-count evaluations out over processes.
    """
    apps = []
    configs: List[RunConfig] = []
    for m in processor_counts:
        cfg = config.with_(n_processors=m)
        apps.append(application_with_load(graph_builder(), load, m))
        configs.append(cfg)
    if n_jobs != 1:  # point-level pool active: workers must not nest pools
        configs = [c.with_(n_jobs=1) for c in configs]
    results = map_custom(evaluate_application,
                         list(zip(apps, configs)), n_jobs=n_jobs)
    return _series_from(name, "processors",
                        [float(m) for m in processor_counts], results,
                        meta={"load": load,
                              "power_model": config.power_model,
                              "n_runs": config.n_runs})


def sweep_overhead(graph: AndOrGraph, config: RunConfig, load: float,
                   adjust_times: Sequence[float],
                   n_jobs: int = 1,
                   name: str = "overhead-sweep") -> SeriesResult:
    """Normalized energy vs voltage-switch overhead (ablation).

    The paper's future-work question: how sensitive are the schemes to
    the speed-adjustment cost?  ``n_jobs`` fans the per-overhead
    evaluations out over processes.
    """
    points = []
    for t_adj in adjust_times:
        cfg = config.with_(overhead=config.overhead.__class__(
            comp_cycles=config.overhead.comp_cycles,
            adjust_time=t_adj,
            time_unit_us=config.overhead.time_unit_us))
        if n_jobs != 1:  # point-level pool active: no nested pools
            cfg = cfg.with_(n_jobs=1)
        app = application_with_load(graph, load, cfg.n_processors)
        points.append((app, cfg))
    results = map_custom(evaluate_application, points, n_jobs=n_jobs)
    return _series_from(name, "adjust_time",
                        [float(t) for t in adjust_times], results,
                        meta={"load": load, "app": graph.name,
                              "power_model": config.power_model,
                              "n_runs": config.n_runs})
