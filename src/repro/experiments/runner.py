"""Monte-Carlo evaluation of scheduling schemes on one application.

The unit of work is :func:`evaluate_application`: build the offline
plans once, then simulate ``n_runs`` paired realizations under every
requested scheme, returning per-run *normalized* (to NPM on the same
realization) energies plus bookkeeping counters.  Sweeps
(:mod:`repro.experiments.sweeps`) call it per x-value, optionally
fanning points out over a process pool (:mod:`repro.experiments.parallel`).

Determinism: one ``seed`` fixes the whole evaluation — realizations are
drawn from ``numpy.random.default_rng(seed)`` in run order, and the
schemes see identical realizations.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.base import SpeedPolicy
from ..core.registry import PAPER_SCHEMES, get_policy
from ..errors import ConfigError, InfeasibleError
from ..graph.andor import Application
from ..offline.plan import OfflinePlan, build_plan
from ..power.model import PowerModel, make_power_model
from ..power.overhead import NO_OVERHEAD, PAPER_OVERHEAD, OverheadModel
from ..sim.engine import simulate
from ..sim.realization import sample_realization_batch


@dataclass(frozen=True)
class RunConfig:
    """Configuration of one Monte-Carlo evaluation."""

    schemes: Tuple[str, ...] = PAPER_SCHEMES
    power_model: str = "transmeta"
    n_processors: int = 2
    n_runs: int = 1000
    seed: int = 2002  # the paper's year; any fixed value works
    overhead: OverheadModel = PAPER_OVERHEAD
    sigma_fraction: float = 1.0 / 3.0
    idle_fraction: float = 0.05
    heuristic: str = "ltf"  # list-scheduling priority (paper: LTF)

    def __post_init__(self) -> None:
        if self.n_runs < 1:
            raise ConfigError("n_runs must be >= 1")
        if self.n_processors < 1:
            raise ConfigError("n_processors must be >= 1")
        if not self.schemes:
            raise ConfigError("need at least one scheme")

    def with_(self, **kwargs) -> "RunConfig":
        return replace(self, **kwargs)

    def make_power(self) -> PowerModel:
        return make_power_model(self.power_model,
                                idle_fraction=self.idle_fraction)


@dataclass
class EvaluationResult:
    """Raw per-run outputs of one evaluation (one application, one config)."""

    app_name: str
    config: RunConfig
    #: scheme -> per-run energy normalized to NPM on the same realization
    normalized: Dict[str, np.ndarray] = field(default_factory=dict)
    #: scheme -> per-run absolute energy
    absolute: Dict[str, np.ndarray] = field(default_factory=dict)
    #: scheme -> per-run number of voltage/speed switches
    speed_changes: Dict[str, np.ndarray] = field(default_factory=dict)
    #: per-run NPM energy (the denominator)
    npm_energy: np.ndarray = field(default_factory=lambda: np.empty(0))
    #: per-run executed path key (e.g. "0>2>5"); schemes share the
    #: realization, so one key per run describes every scheme's run
    path_keys: List[str] = field(default_factory=list)

    def mean_normalized(self) -> Dict[str, float]:
        return {k: float(v.mean()) for k, v in self.normalized.items()}

    def mean_speed_changes(self) -> Dict[str, float]:
        return {k: float(v.mean()) for k, v in self.speed_changes.items()}

    def conditional_normalized(self, scheme: str) -> Dict[str, np.ndarray]:
        """Per-run normalized energies grouped by executed path."""
        if scheme not in self.normalized:
            raise ConfigError(f"scheme {scheme!r} not in result")
        if len(self.path_keys) != self.normalized[scheme].size:
            raise ConfigError("path keys were not recorded for this run")
        groups: Dict[str, list] = {}
        for key, value in zip(self.path_keys, self.normalized[scheme]):
            groups.setdefault(key, []).append(float(value))
        return {k: np.asarray(v) for k, v in groups.items()}

    def path_frequencies(self) -> Dict[str, float]:
        """Observed fraction of runs per executed path."""
        n = len(self.path_keys)
        if n == 0:
            raise ConfigError("path keys were not recorded for this run")
        freq: Dict[str, float] = {}
        for key in self.path_keys:
            freq[key] = freq.get(key, 0.0) + 1.0 / n
        return freq


def _path_key(structure, sim_result) -> str:
    """The executed path of a simulated run, as ExecutionPath.key()."""
    sids = [structure.root_id]
    sid = structure.root_id
    while True:
        exit_or = structure.section(sid).exit_or
        if exit_or is None:
            break
        branches = structure.branches(exit_or)
        if not branches:
            break
        if len(branches) == 1:
            sid = branches[0][0]
        else:
            sid = int(sim_result.path_choices[exit_or])
        sids.append(sid)
    return ">".join(str(s) for s in sids)


def build_plans(app: Application, config: RunConfig,
                power: Optional[PowerModel] = None
                ) -> Tuple[Optional[OfflinePlan], OfflinePlan]:
    """The (dynamic, static) offline plans an evaluation needs.

    The dynamic plan reserves per-task overhead room; the static plan is
    the plain canonical schedule used by NPM/SPM and the load metric.

    At loads so high that even the per-task overhead reserve does not
    fit (e.g. load = 1.0 exactly), a real scheduler cannot afford to
    visit power-management points at all: the dynamic plan is ``None``
    and the dynamic schemes degrade to running at ``S_max`` with DVS
    disabled (zero switches, zero overhead) — still meeting the
    deadline, still normalized against NPM.
    """
    power = power or config.make_power()
    reserve = config.overhead.per_task_reserve(power)
    plan_static = build_plan(app, config.n_processors, reserve=0.0,
                             heuristic=config.heuristic)
    try:
        plan_dyn: Optional[OfflinePlan] = build_plan(
            app, config.n_processors, reserve=reserve,
            structure=plan_static.structure,
            heuristic=config.heuristic)
    except InfeasibleError:
        plan_dyn = None
    return plan_dyn, plan_static


def evaluate_application(app: Application,
                         config: RunConfig) -> EvaluationResult:
    """Simulate ``config.n_runs`` paired runs of every scheme on ``app``."""
    power = config.make_power()
    plan_dyn, plan_static = build_plans(app, config, power)
    structure = plan_static.structure

    policies: Dict[str, SpeedPolicy] = {}
    for name in config.schemes:
        policy = get_policy(name)
        policies[policy.name] = policy

    n = config.n_runs
    npm_policy = get_policy("NPM")
    npm_energy = np.empty(n)
    absolute = {name: np.empty(n) for name in policies}
    changes = {name: np.empty(n, dtype=float) for name in policies}

    result_path_keys: List[str] = []
    rng = np.random.default_rng(config.seed)
    realizations = sample_realization_batch(
        structure, rng, n, sigma_fraction=config.sigma_fraction)
    for i in range(n):
        rl = realizations[i]
        npm_run = npm_policy.start_run(plan_static, power, NO_OVERHEAD,
                                       realization=rl)
        base = simulate(plan_static, npm_run, power, NO_OVERHEAD, rl)
        npm_energy[i] = base.total_energy
        result_path_keys.append(_path_key(structure, base))
        for name, policy in policies.items():
            if name == "NPM":
                absolute[name][i] = base.total_energy
                changes[name][i] = base.n_speed_changes
                continue
            if policy.requires_reserve and plan_dyn is None:
                # DVS disabled at this load: the scheme runs like NPM
                absolute[name][i] = base.total_energy
                changes[name][i] = 0.0
                continue
            plan = plan_dyn if policy.requires_reserve else plan_static
            run = policy.start_run(plan, power, config.overhead,
                                   realization=rl)
            res = simulate(plan, run, power, config.overhead, rl)
            absolute[name][i] = res.total_energy
            changes[name][i] = res.n_speed_changes

    result = EvaluationResult(app_name=app.name, config=config,
                              npm_energy=npm_energy,
                              path_keys=result_path_keys)
    for name in policies:
        result.absolute[name] = absolute[name]
        result.normalized[name] = absolute[name] / npm_energy
        result.speed_changes[name] = changes[name]
    return result
