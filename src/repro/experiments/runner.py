"""Monte-Carlo evaluation of scheduling schemes on one application.

The unit of work is :func:`evaluate_application`: build the offline
plans once, then simulate ``n_runs`` paired realizations under every
requested scheme, returning per-run *normalized* (to NPM on the same
realization) energies plus bookkeeping counters.  Sweeps
(:mod:`repro.experiments.sweeps`) call it per x-value, optionally
fanning points out over a process pool (:mod:`repro.experiments.parallel`).

Determinism: one ``seed`` fixes the whole evaluation — realizations are
drawn from ``numpy.random.default_rng(seed)`` in run order, and the
schemes see identical realizations.

Run-level parallelism (``n_jobs``) is **opt-in** since the sweep
compiler (:mod:`repro.experiments.fused`) landed: compiled runs cost
tens of microseconds, so pool-chunking the runs inside one point is a
measured net loss, and an ``n_jobs > 1`` request is demoted to
sequential execution unless ``RunConfig.run_level_pool`` is set.  When
opted in, the full realization batch is sampled once in the parent
process (so the fixed-seed random streams are untouched), split into
contiguous chunks, and farmed to the worker pool of an
:class:`~repro.experiments.engine.ExecutionContext` — a caller-supplied
persistent one (shared across a whole sweep), or an ephemeral
per-evaluation context when none is given.  Chunks travel as zero-copy
shared-memory row ranges where available (pickled slices otherwise),
and per-chunk arrays are merged back at their run offsets, so
``n_jobs=1`` and ``n_jobs=N`` produce bit-identical
:class:`EvaluationResult`\\ s for every transport.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.base import SpeedPolicy
from ..core.registry import PAPER_SCHEMES, get_policy
from ..errors import ConfigError, InfeasibleError
from ..graph.andor import Application
from ..offline.plan import OfflinePlan, build_plan
from ..power.model import PowerModel, make_power_model
from ..power.overhead import NO_OVERHEAD, PAPER_OVERHEAD, OverheadModel
from ..sim.compiled import (
    CompiledKernel,
    compile_plan,
    run_dynamic_batch,
    run_fixed_batch,
    supports_dynamic_batch,
)
from ..sim.engine import simulate
from ..sim.realization import (
    Realization,
    RealizationBatch,
    batch_in_chunks,
    sample_realization_batch,
)


#: engines selectable via :attr:`RunConfig.engine`
ENGINES = ("compiled", "dict")

#: default :attr:`RunConfig.parallel_min_runs`: with the compiled kernel
#: a run costs tens of microseconds while spawning a worker pool costs
#: tens of milliseconds per process, so batches below roughly this size
#: finish faster sequentially (measured on the BENCH_engine.json
#: operating point; see benchmarks/engine_speedup.py)
DEFAULT_PARALLEL_MIN_RUNS = 2000


@dataclass(frozen=True)
class RunConfig:
    """Configuration of one Monte-Carlo evaluation."""

    schemes: Tuple[str, ...] = PAPER_SCHEMES
    power_model: str = "transmeta"
    n_processors: int = 2
    n_runs: int = 1000
    seed: int = 2002  # the paper's year; any fixed value works
    overhead: OverheadModel = PAPER_OVERHEAD
    sigma_fraction: float = 1.0 / 3.0
    idle_fraction: float = 0.05
    heuristic: str = "ltf"  # list-scheduling priority (paper: LTF)
    #: worker processes for the runs *inside* one evaluation
    #: (1 = sequential, 0 = all cores; clamped to the number of chunks).
    #: Ignored unless ``run_level_pool`` is set — run-level chunking is
    #: a demoted, opt-in path since the sweep compiler landed
    n_jobs: int = 1
    #: Monte-Carlo runs per worker task (0 = auto: ~4 chunks per worker)
    runs_per_chunk: int = 0
    #: simulation kernel: "compiled" (integer-indexed section program,
    #: the default) or "dict" (the reference string-keyed engine);
    #: results are bit-identical either way
    engine: str = "compiled"
    #: below this many runs a multi-worker request falls back to
    #: sequential execution — pool *startup* would cost more than it
    #: buys (0 disables the fallback; see docs/usage.md for the
    #: calibration).  A persistent context whose pool is already live
    #: skips this threshold: startup is paid, so small batches use it
    parallel_min_runs: int = DEFAULT_PARALLEL_MIN_RUNS
    #: re-dispatches per chunk/point after a retryable failure (worker
    #: crash, hung chunk, transport failure) before degrading that item
    #: to serial execution in the parent
    max_retries: int = 2
    #: seconds one dispatched chunk/point may run per attempt before it
    #: is considered hung and re-dispatched (0 = no timeout)
    chunk_timeout: float = 0.0
    #: whether exhausted retry budgets degrade to serial execution in
    #: the parent (with a warning) instead of raising ParallelError
    degrade: bool = True
    #: opt-in for run-level pool chunking.  With the compiled kernels a
    #: run costs tens of microseconds, so chunking runs over a process
    #: pool is a net *loss* (the BENCH_engine.json ``speedup_large``
    #: regression measured it ~9× slower); since the sweep compiler
    #: landed, whole sweeps fuse into one array program instead and the
    #: pool is reserved for the point level.  When ``False`` (the
    #: default) an ``n_jobs > 1`` request for the runs inside one point
    #: is demoted to sequential execution; set ``True`` to re-enable
    #: the legacy chunked path (results are bit-identical either way).
    #: Execution knob — never part of the evaluation cache key.
    run_level_pool: bool = False
    #: execution backend for the *sweep-point* fan-out: ``"local"``
    #: (fused/pooled, the default) or ``"dispatch"`` (the work-stealing
    #: executor fleet of :mod:`repro.experiments.dispatch`).  ``None``
    #: resolves to the session default (``REPRO_BACKEND``).  Execution
    #: knob — never part of the evaluation cache key.
    backend: Optional[str] = None
    #: executor-count request for the dispatch backend (clamped to the
    #: number of sweep points like ``n_jobs``); ``None`` falls back to
    #: the sweep's job request.  Execution knob — never cached on.
    executors: Optional[int] = None
    #: dispatch rendezvous endpoint ``"host:port"`` the driver binds
    #: (``None`` = loopback, ephemeral port).  Execution knob — never
    #: part of the evaluation cache key.
    connect: Optional[str] = None
    #: kernel tier for the compiled batch kernels: ``"legacy"`` (entry-
    #: tuple loop), ``"numpy"`` (tape interpreter), ``"jit"`` (numba
    #: tape cores) or ``"auto"`` (jit when numba is importable, else
    #: numpy with a one-time warning).  ``None`` resolves to the session
    #: default (``REPRO_KERNEL_TIER``, default numpy).  All tiers are
    #: bit-identical — execution knob, never part of the evaluation
    #: cache key.
    kernel_tier: Optional[str] = None
    #: shard request for the fused sweep path: ``None`` (resolve the
    #: ``REPRO_SHARDS`` session default; unset everywhere = monolithic),
    #: ``0`` (auto: effective cores, raised to fit ``shard_mem_mb``) or
    #: ``N >= 1`` explicit shards of the fused run axis, executed on the
    #: sweep's backend (pool workers or dispatch executors).  Sharded
    #: output is bit-identical to unsharded — execution knob, never part
    #: of the evaluation cache key.
    shards: Optional[int] = None
    #: peak-memory budget in MiB for one fused shard (0 = unbudgeted);
    #: only consulted by automatic shard selection (``shards=0``), which
    #: raises the shard count until the estimated per-shard footprint
    #: fits.  Execution knob — never part of the evaluation cache key.
    shard_mem_mb: int = 0

    def __post_init__(self) -> None:
        if self.n_runs < 1:
            raise ConfigError("n_runs must be >= 1")
        if self.n_processors < 1:
            raise ConfigError("n_processors must be >= 1")
        if not self.schemes:
            raise ConfigError("need at least one scheme")
        if self.n_jobs < 0:
            raise ConfigError(
                f"n_jobs must be >= 0 (0 = all cores), got {self.n_jobs}")
        if self.runs_per_chunk < 0:
            raise ConfigError(
                f"runs_per_chunk must be >= 0 (0 = auto), "
                f"got {self.runs_per_chunk}")
        if self.runs_per_chunk > self.n_runs:
            raise ConfigError(
                f"runs_per_chunk ({self.runs_per_chunk}) exceeds n_runs "
                f"({self.n_runs}); use 0 to size chunks automatically")
        if self.engine not in ENGINES:
            raise ConfigError(
                f"engine must be one of {ENGINES}, got {self.engine!r}")
        if self.parallel_min_runs < 0:
            raise ConfigError(
                f"parallel_min_runs must be >= 0 (0 = never fall back), "
                f"got {self.parallel_min_runs}")
        if self.max_retries < 0:
            raise ConfigError(
                f"max_retries must be >= 0, got {self.max_retries}")
        if self.chunk_timeout < 0:
            raise ConfigError(
                f"chunk_timeout must be >= 0 (0 = no timeout), "
                f"got {self.chunk_timeout}")
        # hardcoded (not engine.BACKENDS) to keep runner import-light;
        # the registry test pins the two in sync
        if self.backend is not None and self.backend not in ("local",
                                                             "dispatch"):
            raise ConfigError(
                f"backend must be 'local' or 'dispatch', "
                f"got {self.backend!r}")
        if self.executors is not None and self.executors < 0:
            raise ConfigError(
                f"executors must be >= 0 (0 = all cores), "
                f"got {self.executors}")
        if self.connect is not None:
            from .dispatch import parse_endpoint
            parse_endpoint(self.connect)  # raises ConfigError when bad
        # hardcoded (not kernels.TIERS) to keep runner import-light;
        # the registry test pins the two in sync
        if self.kernel_tier is not None and self.kernel_tier not in (
                "auto", "legacy", "numpy", "jit"):
            raise ConfigError(
                f"kernel_tier must be 'auto', 'legacy', 'numpy' or "
                f"'jit', got {self.kernel_tier!r}")
        if self.shards is not None and self.shards < 0:
            raise ConfigError(
                f"shards must be >= 0 (0 = auto), got {self.shards}")
        if self.shard_mem_mb < 0:
            raise ConfigError(
                f"shard_mem_mb must be >= 0 (0 = unbudgeted), "
                f"got {self.shard_mem_mb}")

    def retry_policy(self):
        """The :class:`~repro.experiments.engine.RetryPolicy` this
        config asks dispatchers to apply (execution knob — never part
        of the evaluation cache key)."""
        from .engine import RetryPolicy
        return RetryPolicy(max_retries=self.max_retries,
                           chunk_timeout=self.chunk_timeout,
                           degrade=self.degrade)

    def with_(self, **kwargs) -> "RunConfig":
        return replace(self, **kwargs)

    def make_power(self) -> PowerModel:
        return make_power_model(self.power_model,
                                idle_fraction=self.idle_fraction)


@dataclass
class EvaluationResult:
    """Raw per-run outputs of one evaluation (one application, one config)."""

    app_name: str
    config: RunConfig
    #: scheme -> per-run energy normalized to NPM on the same realization
    normalized: Dict[str, np.ndarray] = field(default_factory=dict)
    #: scheme -> per-run absolute energy
    absolute: Dict[str, np.ndarray] = field(default_factory=dict)
    #: scheme -> per-run number of voltage/speed switches
    speed_changes: Dict[str, np.ndarray] = field(default_factory=dict)
    #: per-run NPM energy (the denominator)
    npm_energy: np.ndarray = field(default_factory=lambda: np.empty(0))
    #: per-run executed path key (e.g. "0>2>5"); schemes share the
    #: realization, so one key per run describes every scheme's run
    path_keys: List[str] = field(default_factory=list)

    def mean_normalized(self) -> Dict[str, float]:
        return {k: float(v.mean()) for k, v in self.normalized.items()}

    def mean_speed_changes(self) -> Dict[str, float]:
        return {k: float(v.mean()) for k, v in self.speed_changes.items()}

    def conditional_normalized(self, scheme: str) -> Dict[str, np.ndarray]:
        """Per-run normalized energies grouped by executed path."""
        if scheme not in self.normalized:
            raise ConfigError(f"scheme {scheme!r} not in result")
        if len(self.path_keys) != self.normalized[scheme].size:
            raise ConfigError("path keys were not recorded for this run")
        groups: Dict[str, list] = {}
        for key, value in zip(self.path_keys, self.normalized[scheme]):
            groups.setdefault(key, []).append(float(value))
        return {k: np.asarray(v) for k, v in groups.items()}

    def path_frequencies(self) -> Dict[str, float]:
        """Observed fraction of runs per executed path.

        Occurrences are counted as integers and divided once, so each
        frequency is exactly ``count/n`` (no float accumulation drift)
        and the values sum to 1.0 up to at most one rounding error per
        path.
        """
        n = len(self.path_keys)
        if n == 0:
            raise ConfigError("path keys were not recorded for this run")
        counts: Dict[str, int] = {}
        for key in self.path_keys:
            counts[key] = counts.get(key, 0) + 1
        return {key: count / n for key, count in counts.items()}


def _path_key(structure, sim_result) -> str:
    """The executed path of a simulated run, as ExecutionPath.key()."""
    sids = [structure.root_id]
    sid = structure.root_id
    while True:
        exit_or = structure.section(sid).exit_or
        if exit_or is None:
            break
        branches = structure.branches(exit_or)
        if not branches:
            break
        if len(branches) == 1:
            sid = branches[0][0]
        else:
            sid = int(sim_result.path_choices[exit_or])
        sids.append(sid)
    return ">".join(str(s) for s in sids)


def build_plans(app: Application, config: RunConfig,
                power: Optional[PowerModel] = None
                ) -> Tuple[Optional[OfflinePlan], OfflinePlan]:
    """The (dynamic, static) offline plans an evaluation needs.

    The dynamic plan reserves per-task overhead room; the static plan is
    the plain canonical schedule used by NPM/SPM and the load metric.

    At loads so high that even the per-task overhead reserve does not
    fit (e.g. load = 1.0 exactly), a real scheduler cannot afford to
    visit power-management points at all: the dynamic plan is ``None``
    and the dynamic schemes degrade to running at ``S_max`` with DVS
    disabled (zero switches, zero overhead) — still meeting the
    deadline, still normalized against NPM.
    """
    power = power or config.make_power()
    reserve = config.overhead.per_task_reserve(power)
    plan_static = build_plan(app, config.n_processors, reserve=0.0,
                             heuristic=config.heuristic)
    try:
        plan_dyn: Optional[OfflinePlan] = build_plan(
            app, config.n_processors, reserve=reserve,
            structure=plan_static.structure,
            heuristic=config.heuristic)
    except InfeasibleError:
        plan_dyn = None
    return plan_dyn, plan_static


def _simulate_runs(plan_dyn: Optional[OfflinePlan],
                   plan_static: OfflinePlan,
                   scheme_names: Sequence[str],
                   power: PowerModel,
                   overhead: OverheadModel,
                   realizations: Sequence[Realization]
                   ) -> Tuple[np.ndarray, Dict[str, np.ndarray],
                              Dict[str, np.ndarray], List[str]]:
    """Simulate a block of prebuilt realizations under every scheme.

    The shared core of the sequential path and the per-chunk worker
    task: runs are simulated strictly in the order of ``realizations``
    and each run's computation is independent of the block's
    boundaries, which is what makes chunked execution bit-identical to
    sequential execution.
    """
    structure = plan_static.structure
    policies: Dict[str, SpeedPolicy] = {}
    for name in scheme_names:
        policy = get_policy(name)
        policies[policy.name] = policy

    n = len(realizations)
    npm_policy = get_policy("NPM")
    npm_energy = np.empty(n)
    absolute = {name: np.empty(n) for name in policies}
    changes = {name: np.empty(n, dtype=float) for name in policies}
    path_keys: List[str] = []

    for i, rl in enumerate(realizations):
        npm_run = npm_policy.start_run(plan_static, power, NO_OVERHEAD,
                                       realization=rl)
        base = simulate(plan_static, npm_run, power, NO_OVERHEAD, rl)
        npm_energy[i] = base.total_energy
        path_keys.append(_path_key(structure, base))
        for name, policy in policies.items():
            if name == "NPM":
                absolute[name][i] = base.total_energy
                changes[name][i] = base.n_speed_changes
                continue
            if policy.requires_reserve and plan_dyn is None:
                # DVS disabled at this load: the scheme runs like NPM
                absolute[name][i] = base.total_energy
                changes[name][i] = 0.0
                continue
            plan = plan_dyn if policy.requires_reserve else plan_static
            run = policy.start_run(plan, power, overhead,
                                   realization=rl)
            res = simulate(plan, run, power, overhead, rl)
            absolute[name][i] = res.total_energy
            changes[name][i] = res.n_speed_changes
    return npm_energy, absolute, changes, path_keys


def _simulate_runs_compiled(plan_dyn: Optional[OfflinePlan],
                            plan_static: OfflinePlan,
                            scheme_names: Sequence[str],
                            power: PowerModel,
                            overhead: OverheadModel,
                            batch: RealizationBatch,
                            kernel_tier: Optional[str] = None
                            ) -> Tuple[np.ndarray, Dict[str, np.ndarray],
                                       Dict[str, np.ndarray], List[str]]:
    """The compiled-engine counterpart of :func:`_simulate_runs`.

    Bit-identical outputs, different execution strategy: the realization
    batch stays in the matrix form it was sampled as, NPM/SPM (and any
    other batch-constant fixed speed) go through the vectorized
    fixed-speed path, the protocol-declared dynamic schemes (GSS, SS1,
    SS2, AS, PS on a discrete power model) go through the vectorized
    dynamic path, and anything else runs the scalar compiled kernel per
    run — no per-run dict materialization anywhere except for schemes
    that declare ``needs_realization`` (the oracle).

    ``kernel_tier`` selects the batch-kernel tier (resolved once here so
    every batch call of the evaluation uses the same tier and any
    jit-fallback warning fires at most once per evaluation).
    """
    from ..sim.kernels import resolve_kernel_tier
    tier = resolve_kernel_tier(kernel_tier)

    policies: Dict[str, SpeedPolicy] = {}
    for name in scheme_names:
        policy = get_policy(name)
        policies[policy.name] = policy

    n = len(batch)
    prog_static = compile_plan(plan_static)
    prog_dyn = compile_plan(plan_dyn) if plan_dyn is not None else None
    matrix = prog_static.realization_matrix(batch)
    groups, path_keys = prog_static.executed_paths(batch.choices, n)

    base = run_fixed_batch(prog_static, power, NO_OVERHEAD, matrix,
                           groups, path_keys, power.s_max, "NPM",
                           kernel_tier=tier)
    npm_energy = base.total_energy
    absolute: Dict[str, np.ndarray] = {}
    changes: Dict[str, np.ndarray] = {}
    rows = None
    choice_rows = None
    for name, policy in policies.items():
        if name == "NPM":
            absolute[name] = npm_energy.copy()
            changes[name] = np.full(n, float(base.n_speed_changes))
            continue
        if policy.requires_reserve and plan_dyn is None:
            # DVS disabled at this load: the scheme runs like NPM
            absolute[name] = npm_energy.copy()
            changes[name] = np.zeros(n)
            continue
        plan = plan_dyn if policy.requires_reserve else plan_static
        prog = prog_dyn if policy.requires_reserve else prog_static
        speed = policy.batch_fixed_speed(plan, power, overhead)
        if speed is not None:
            res = run_fixed_batch(prog, power, overhead, matrix, groups,
                                  path_keys, speed, name, kernel_tier=tier)
            absolute[name] = res.total_energy
            changes[name] = np.full(n, float(res.n_speed_changes))
            continue
        needs_rl = policy.needs_realization
        probe = None
        if not needs_rl:
            probe = policy.start_run(plan, power, overhead)
            if supports_dynamic_batch(probe, power):
                res = run_dynamic_batch(prog, power, overhead, matrix,
                                        groups, path_keys, probe, name,
                                        kernel_tier=tier)
                absolute[name] = res.total_energy
                changes[name] = res.n_speed_changes.astype(float)
                continue
        if rows is None:  # lazily, only if a per-run scheme is present
            rows = matrix.tolist()
            choice_rows = batch.choice_rows()
        kernel = CompiledKernel(prog, power, overhead)
        abs_arr = np.empty(n)
        chg_arr = np.empty(n, dtype=float)
        shared_run = None
        if probe is not None and probe.stateless:
            # the run *declares* it mutates nothing during a simulation,
            # so one object serves every run.  (This used to be inferred
            # from "does not override on_or_fired", which silently
            # shared runs whose state is touched by any other hook.)
            shared_run = probe
        for i in range(n):
            if shared_run is not None:
                run = shared_run
            else:
                rl = batch.realization(i) if needs_rl else None
                run = policy.start_run(plan, power, overhead,
                                       realization=rl)
            res = kernel.run(run, rows[i], choice_rows[i])
            abs_arr[i] = res.total_energy
            chg_arr[i] = res.n_speed_changes
        absolute[name] = abs_arr
        changes[name] = chg_arr
    return npm_energy, absolute, changes, path_keys


def _auto_chunk_size(n_runs: int, jobs: int) -> int:
    """Default chunk size: ~4 chunks per worker for load balancing.

    Small enough that a straggler chunk costs ~1/(4·jobs) of the work,
    large enough that per-task pickling of realizations stays noise.
    Any chunk size yields identical results; this only shapes timing.
    """
    return max(1, -(-n_runs // (4 * jobs)))


def evaluate_application(app: Application,
                         config: RunConfig,
                         n_jobs: Optional[int] = None,
                         runs_per_chunk: Optional[int] = None,
                         context=None) -> EvaluationResult:
    """Simulate ``config.n_runs`` paired runs of every scheme on ``app``.

    ``n_jobs``/``runs_per_chunk`` override the corresponding
    :class:`RunConfig` fields when given (``None`` defers to the
    config); multi-worker requests take effect only when
    ``config.run_level_pool`` opts into the (demoted) run-level chunked
    path.  Results are bit-identical for every worker count: the
    realization batch is sampled once here, in the parent, from the
    config's seed, and chunk boundaries only partition prebuilt work.

    ``context`` is an optional
    :class:`~repro.experiments.engine.ExecutionContext`.  When given,
    run-level chunks execute on its persistent worker pool (instead of
    an ephemeral per-evaluation pool), its ``shared_memory`` flag picks
    the chunk transport, and its attached evaluation cache is consulted
    before computing and filled after.  None of this changes results —
    only where and how fast they are computed.
    """
    from .engine import (ExecutionContext, _eval_chunk_task, resolve_jobs,
                         share_batch)

    cache = context.cache if context is not None else None
    if cache is not None:
        from .evalcache import evaluation_key
        cache_key = evaluation_key(app, config)
        cached = cache.get(cache_key, app.name, config)
        if cached is not None:
            return cached

    power = config.make_power()
    plan_dyn, plan_static = build_plans(app, config, power)
    structure = plan_static.structure

    # canonical scheme labels, preserving request order (aliases resolved)
    scheme_names = tuple(get_policy(name).name for name in config.schemes)

    n = config.n_runs
    rng = np.random.default_rng(config.seed)
    realizations = sample_realization_batch(
        structure, rng, n, sigma_fraction=config.sigma_fraction)

    eff_jobs = config.n_jobs if n_jobs is None else n_jobs
    eff_chunk = (config.runs_per_chunk if runs_per_chunk is None
                 else runs_per_chunk)
    if eff_chunk < 0:
        raise ConfigError(
            f"runs_per_chunk must be >= 0 (0 = auto), got {eff_chunk}")
    jobs = resolve_jobs(eff_jobs, n_items=n)
    if jobs > 1 and not config.run_level_pool:
        # run-level chunking is opt-in since the sweep compiler landed:
        # at ~tens of µs per compiled run the chunk round-trip costs
        # more than it buys, so an un-opted n_jobs request runs
        # sequentially (results are bit-identical either way)
        jobs = 1
    if jobs > 1 and 0 < n < config.parallel_min_runs:
        # too little work to amortize pool *startup* — unless a warm
        # pool is already attached, in which case startup is paid and
        # the threshold would just idle it (results identical either way)
        if context is None or not context.has_live_pool():
            jobs = 1
    chunk_size = min(eff_chunk, n) if eff_chunk else _auto_chunk_size(n, jobs)
    chunks = list(batch_in_chunks(realizations, chunk_size))
    jobs = min(jobs, len(chunks))

    if jobs == 1:
        if config.engine == "compiled":
            npm_energy, absolute, changes, path_keys = \
                _simulate_runs_compiled(
                    plan_dyn, plan_static, scheme_names, power,
                    config.overhead, realizations,
                    kernel_tier=config.kernel_tier)
        else:
            npm_energy, absolute, changes, path_keys = _simulate_runs(
                plan_dyn, plan_static, scheme_names, power,
                config.overhead, realizations)
    else:
        from .evalcache import plan_setup_key
        setup_key = plan_setup_key(app, config)
        owned = context is None
        ctx = ExecutionContext(n_jobs=jobs) if owned else context
        shared = share_batch(realizations) if ctx.shared_memory else None
        try:
            # the pickled chunks double as the per-chunk fallback when a
            # worker cannot attach the shared segment (TransportError)
            pickled = [(setup_key, app, config, start, block)
                       for start, block in chunks]
            if shared is not None:
                args = [(setup_key, app, config, start,
                         shared.chunk(start, start + len(block)))
                        for start, block in chunks]
                fallback = pickled
            else:
                args = pickled
                fallback = None
            labels = [f"runs[{start}:{start + len(block)}]"
                      for start, block in chunks]
            npm_energy = np.empty(n)
            absolute = {name: np.empty(n) for name in scheme_names}
            changes = {name: np.empty(n, dtype=float)
                       for name in scheme_names}
            path_keys = [""] * n
            for start, npm, c_abs, c_chg, keys in \
                    ctx.map(_eval_chunk_task, args, labels,
                            policy=config.retry_policy(),
                            fallback_args=fallback):
                stop = start + len(keys)
                npm_energy[start:stop] = npm
                path_keys[start:stop] = keys
                for name in scheme_names:
                    absolute[name][start:stop] = c_abs[name]
                    changes[name][start:stop] = c_chg[name]
        finally:
            if shared is not None:
                shared.close()
            if owned:
                ctx.close()

    result = EvaluationResult(app_name=app.name, config=config,
                              npm_energy=npm_energy,
                              path_keys=list(path_keys))
    for name in scheme_names:
        result.absolute[name] = absolute[name]
        result.normalized[name] = absolute[name] / npm_energy
        result.speed_changes[name] = changes[name]

    if cache is not None:
        cache.put(cache_key, result)
    return result
