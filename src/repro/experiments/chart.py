"""ASCII line charts for sweep series.

Terminal-only rendering of the paper's figures: one glyph per scheme,
shared canvas, y = normalized energy, x = the sweep variable.  Exact
values live in the tables (:mod:`repro.experiments.report`); the chart
is for reading shapes — dips, staircases, crossovers — at a glance.
"""

from __future__ import annotations

import io
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigError
from ..types import SeriesResult

#: plotting glyphs, assigned to schemes in series order
GLYPHS = "ox+*#@%&$"


def render_chart(series: SeriesResult, width: int = 64, height: int = 18,
                 y_range: Optional[Tuple[float, float]] = None,
                 schemes: Optional[Sequence[str]] = None) -> str:
    """Render one sweep as an ASCII chart with a legend."""
    if width < 16 or height < 6:
        raise ConfigError("chart needs width >= 16 and height >= 6")
    cols = list(schemes) if schemes else series.schemes()
    if not cols:
        raise ConfigError("series has no schemes to plot")
    xs = series.xs()
    if len(xs) < 2:
        raise ConfigError("need at least two x values to plot")

    values: Dict[str, List[Optional[float]]] = {}
    all_vals: List[float] = []
    for scheme in cols:
        row: List[Optional[float]] = []
        for x in xs:
            p = series.get(x, scheme)
            row.append(p.mean if p else None)
            if p:
                all_vals.append(p.mean)
        values[scheme] = row
    if not all_vals:
        raise ConfigError("series has no data points")

    if y_range is None:
        lo, hi = min(all_vals), max(all_vals)
        pad = max((hi - lo) * 0.05, 1e-6)
        lo, hi = lo - pad, hi + pad
    else:
        lo, hi = y_range
        if hi <= lo:
            raise ConfigError(f"empty y range [{lo}, {hi}]")

    x_lo, x_hi = min(xs), max(xs)

    def col_of(x: float) -> int:
        return round((x - x_lo) / (x_hi - x_lo) * (width - 1))

    def row_of(v: float) -> int:
        frac = (v - lo) / (hi - lo)
        return (height - 1) - round(frac * (height - 1))

    canvas = [[" "] * width for _ in range(height)]
    for gi, scheme in enumerate(cols):
        glyph = GLYPHS[gi % len(GLYPHS)]
        pts = [(col_of(x), row_of(v))
               for x, v in zip(xs, values[scheme]) if v is not None]
        # connect consecutive points with interpolated glyphs
        for (c1, r1), (c2, r2) in zip(pts, pts[1:]):
            steps = max(abs(c2 - c1), 1)
            for s in range(steps + 1):
                c = c1 + (c2 - c1) * s // steps
                r = r1 + (r2 - r1) * s // steps if steps else r1
                if canvas[r][c] == " ":
                    canvas[r][c] = "."
        for c, r in pts:
            canvas[r][c] = glyph

    out = io.StringIO()
    out.write(f"# {series.name}  (y: normalized energy, "
              f"x: {series.x_label})\n")
    for i, row in enumerate(canvas):
        if i == 0:
            label = f"{hi:7.3f} "
        elif i == height - 1:
            label = f"{lo:7.3f} "
        else:
            label = " " * 8
        out.write(label + "|" + "".join(row) + "|\n")
    out.write(" " * 8 + "+" + "-" * width + "+\n")
    out.write(" " * 9 + f"{x_lo:<10g}{'':{max(width - 20, 0)}}{x_hi:>10g}\n")
    legend = "   ".join(f"{GLYPHS[i % len(GLYPHS)]} {s}"
                        for i, s in enumerate(cols))
    out.write(" " * 9 + legend + "\n")
    return out.getvalue()


def render_charts(series_list: Sequence[SeriesResult],
                  **kwargs) -> str:
    return "\n".join(render_chart(s, **kwargs) for s in series_list)
