"""The comprehensive evaluation suite.

One entry point that runs *every* workload (the paper's two plus the
library families) under every scheme on both processor models, with
paired statistics — the "does the conclusion generalize?" experiment
the paper's conclusion invites.  Powers ``python -m repro suite``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.registry import PAPER_SCHEMES
from ..errors import ConfigError
from ..graph.andor import AndOrGraph
from ..workloads.atr import atr_graph
from ..workloads.library import LIBRARY
from ..workloads.scaling import application_with_load
from ..workloads.synthetic import figure3_graph
from .compare import compare_all, win_matrix
from .parallel import map_evaluations
from .runner import EvaluationResult, RunConfig

#: default workload set: the paper's two + the library zoo
def default_workloads() -> Dict[str, Callable[[], AndOrGraph]]:
    zoo: Dict[str, Callable[[], AndOrGraph]] = {
        "atr": atr_graph,
        "fig3": figure3_graph,
    }
    zoo.update(LIBRARY)
    return zoo


@dataclass(frozen=True)
class SuiteConfig:
    """Configuration of one suite run."""

    schemes: Tuple[str, ...] = PAPER_SCHEMES
    models: Tuple[str, ...] = ("transmeta", "xscale")
    loads: Tuple[float, ...] = (0.4, 0.7)
    n_processors: int = 2
    n_runs: int = 300
    seed: int = 2002
    #: resilience knobs forwarded into every cell's RunConfig (see
    #: :class:`~repro.experiments.engine.RetryPolicy`)
    max_retries: int = 2
    chunk_timeout: float = 0.0
    degrade: bool = True

    def __post_init__(self) -> None:
        if not self.schemes or not self.models or not self.loads:
            raise ConfigError("schemes, models and loads must be non-empty")


@dataclass
class SuiteResult:
    """All evaluations of one suite run, keyed (workload, model, load)."""

    config: SuiteConfig
    cells: Dict[Tuple[str, str, float], EvaluationResult] = \
        field(default_factory=dict)

    def mean(self, workload: str, model: str, load: float,
             scheme: str) -> float:
        return float(
            self.cells[(workload, model, load)].normalized[scheme].mean())

    def overall_wins(self) -> Dict[str, int]:
        """Significant pairwise wins per scheme, summed over all cells."""
        total: Dict[str, int] = {}
        for res in self.cells.values():
            for scheme, wins in win_matrix(compare_all(res)).items():
                total[scheme] = total.get(scheme, 0) + wins
        return total


def run_suite(config: Optional[SuiteConfig] = None,
              workloads: Optional[Dict[str, Callable[[], AndOrGraph]]]
              = None, n_jobs: int = 1, context=None) -> SuiteResult:
    """Evaluate every (workload, model, load) cell.

    ``n_jobs`` fans the cells out over worker processes; ``context``
    (an :class:`~repro.experiments.engine.ExecutionContext`) shares one
    persistent pool — and, when one is attached, the on-disk evaluation
    cache — across all cells.  Cell values are bit-identical for every
    worker count and cache state.
    """
    cfg = config or SuiteConfig()
    zoo = workloads if workloads is not None else default_workloads()
    if not zoo:
        raise ConfigError("no workloads to evaluate")
    out = SuiteResult(config=cfg)
    keys = []
    apps = []
    configs = []
    for name, graph_fn in zoo.items():
        graph = graph_fn()
        for model in cfg.models:
            for load in cfg.loads:
                keys.append((name, model, load))
                apps.append(application_with_load(graph, load,
                                                  cfg.n_processors))
                configs.append(RunConfig(schemes=cfg.schemes,
                                         power_model=model,
                                         n_processors=cfg.n_processors,
                                         n_runs=cfg.n_runs, seed=cfg.seed,
                                         max_retries=cfg.max_retries,
                                         chunk_timeout=cfg.chunk_timeout,
                                         degrade=cfg.degrade))
    labels = [f"workload={wl!r} model={model} load={load!r}"
              for wl, model, load in keys]
    results = map_evaluations(apps, configs, n_jobs=n_jobs,
                              context=context, labels=labels)
    out.cells.update(zip(keys, results))
    return out


def render_suite(result: SuiteResult) -> str:
    """One row per (workload, model, load); one column per scheme."""
    cfg = result.config
    schemes = list(cfg.schemes)
    lines: List[str] = []
    header = (f"{'workload':>9} {'model':>10} {'load':>5} | "
              + " ".join(f"{s:>6}" for s in schemes))
    lines.append(header)
    lines.append("-" * len(header))
    for (wl, model, load), res in sorted(result.cells.items()):
        means = res.mean_normalized()
        row = " ".join(f"{means[s]:6.3f}" for s in schemes)
        lines.append(f"{wl:>9} {model:>10} {load:>5.2f} | {row}")
    wins = result.overall_wins()
    ranked = sorted(wins.items(), key=lambda kv: -kv[1])
    lines.append("")
    lines.append("significant pairwise wins (paired t-test, p<0.05): "
                 + ", ".join(f"{s}={w}" for s, w in ranked))
    return "\n".join(lines) + "\n"
