"""Online scenario mode: sporadic job arrivals with admission control.

The paper evaluates one AND/OR application per deadline window.  This
module opens the streaming axis the related sporadic-DAG work studies
(Dong & Liu; Nélis et al. / MORA): applications *arrive over time*
from a pluggable arrival process (:mod:`repro.sim.arrivals`), each
arrival passes an **admission test** built on the canonical-schedule
feasibility check, and admitted jobs execute through the compiled/tape
kernel path so every registered scheme is comparable online.

The platform model is the paper's: one application owns all ``m``
processors, so jobs are served FIFO, one at a time.  Every arrival
``j`` at instant ``a_j`` carries the same relative deadline
``D = T_worst / load``.

Admission rule (canonical, scheme-independent)
----------------------------------------------
The admission ledger keeps ``committed`` — the instant through which
the platform is booked, advanced by the canonical *average-case*
length ``T_avg`` per admitted job (the optimistic reservation the
paper's profile makes natural).  An arrival is admitted iff the
canonical *worst-case* schedule still fits its remaining budget::

    start_hat = max(a_j, committed)
    admit  <=>  T_worst <= (a_j + D) - start_hat

which is exactly the feasibility predicate of
:func:`~repro.offline.plan.build_plan` applied to the remaining
window — an admitted job's window can never make ``build_plan`` raise
:class:`~repro.errors.InfeasibleError`.  Rejected jobs consume
nothing.  Because reservations are average-case while realized
service is not, admitted jobs can still *start* late when the stream
clumps; a job that finishes past ``a_j + D`` is counted separately as
**admitted-then-late** (per scheme — the DVS schemes stretch their
plan toward ``D`` and congest earlier than NPM).

Execution (shared realizations, per-scheme clocks)
--------------------------------------------------
All admitted jobs share one graph and one relative deadline, so the
stream compiles like a single evaluation point: one realization batch
of ``n_admitted`` runs drawn from ``default_rng(seed)`` — *exactly*
the batch :func:`~repro.experiments.runner.evaluate_application` draws
for ``n_runs = n_admitted`` — executed per scheme through the batch
kernels (:func:`~repro.sim.compiled.run_fixed_batch` /
:func:`~repro.sim.compiled.run_dynamic_batch`, which also expose
per-run finish times), with the scalar compiled kernel and the dict
engine as fallbacks, mirroring the offline evaluator's dispatch
exactly.  Each scheme then replays the FIFO ledger with its own
realized durations: ``start_j = max(a_j, finish_{j-1})``.

The degenerate single-arrival stream (one job at t=0) is therefore
bit-identical to ``evaluate_application(app, config.with_(n_runs=1))``
— pinned by ``tests/property/test_online_invariants.py``.

Fault site: ``online-admit`` fires at each admission probe (keyed by
the arrival index); a ``raise`` is retried under the config's
:class:`~repro.experiments.engine.RetryPolicy` and counted in
``OnlineResult.admit_retries``, leaving the ledger bit-identical to
the fault-free stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.base import SpeedPolicy
from ..core.registry import get_policy
from ..errors import ConfigError, FaultInjected
from ..graph.andor import AndOrGraph
from ..power.model import PowerModel
from ..power.overhead import NO_OVERHEAD, OverheadModel
from ..offline.plan import OfflinePlan
from ..sim.arrivals import (
    ARRIVAL_KINDS,
    arrival_rng,
    load_arrival_trace,
    make_arrival_process,
)
from ..sim.compiled import (
    CompiledKernel,
    compile_plan,
    run_dynamic_batch,
    run_fixed_batch,
    supports_dynamic_batch,
)
from ..sim.engine import simulate
from ..sim.kernels import kernel_meta
from ..sim.realization import RealizationBatch, sample_realization_batch
from ..types import SeriesResult
from ..workloads.scaling import (
    application_with_load,
    average_case_length,
    worst_case_length,
)
from . import faults
from .engine import ExecutionContext
from .parallel import map_custom
from .runner import RunConfig, build_plans
from .stats import summarize
from .sweeps import _cache_before, _cache_meta

#: default arrival-rate grid for ``sweep_arrival_rate`` / ``fig_online``
#: (mean arrivals per canonical worst-case length; the DVS schemes
#: congest near ``load``, NPM near 1.0, admission saturates above)
DEFAULT_RATES = (0.25, 0.5, 0.75, 1.0, 1.5, 2.0)

#: default per-job load for the online figure family: enough static
#: slack for DVS to matter, tight enough that bursts produce misses
ONLINE_LOAD = 0.7

#: relative feasibility tolerance — the same slack build_plan grants
_FEAS_TOL = 1e-12

#: relative+absolute deadline-miss tolerance — the same slack
#: :meth:`repro.types.SimResult.met_deadline` grants
_MISS_RTOL = 1e-9
_MISS_ATOL = 1e-9


@dataclass(frozen=True)
class OnlineConfig:
    """Shape of one online stream (time unit: the graph's ``T_worst``).

    ``rate`` is the mean number of arrivals per canonical worst-case
    length — a dimensionless congestion knob (``1.0`` ≈ one job per
    worst-case service time).  ``horizon`` is the stream length in the
    same unit; when ``target_arrivals`` is set the horizon is derived
    as ``target_arrivals / rate`` instead, so every point of a rate
    sweep sees the same expected job count.  ``load`` fixes each job's
    relative deadline ``D = T_worst / load``.  Trace times are in
    ``T_worst`` units too.
    """

    arrival: str = "poisson"
    rate: float = 0.5
    horizon: float = 50.0
    load: float = ONLINE_LOAD
    burstiness: float = 1.8
    burst_dwell: float = 5.0
    trace: Optional[Tuple[float, ...]] = None
    trace_path: Optional[str] = None
    target_arrivals: Optional[int] = None

    def __post_init__(self) -> None:
        if self.arrival not in ARRIVAL_KINDS:
            raise ConfigError(
                f"arrival must be one of {ARRIVAL_KINDS}, "
                f"got {self.arrival!r}")
        if self.rate < 0:
            raise ConfigError(f"rate must be >= 0, got {self.rate}")
        if self.horizon <= 0:
            raise ConfigError(f"horizon must be > 0, got {self.horizon}")
        if not (0 < self.load <= 1.0):
            raise ConfigError(f"load must be in (0, 1], got {self.load}")
        if self.target_arrivals is not None and self.target_arrivals < 1:
            raise ConfigError(
                f"target_arrivals must be >= 1, got {self.target_arrivals}")
        if self.arrival == "trace" and self.trace is None \
                and self.trace_path is None:
            raise ConfigError(
                "arrival 'trace' needs trace=... times or trace_path=...")
        if self.trace is not None:
            object.__setattr__(self, "trace",
                               tuple(float(t) for t in self.trace))

    def with_(self, **kwargs) -> "OnlineConfig":
        return replace(self, **kwargs)

    def resolved_horizon(self) -> float:
        """Horizon in ``T_worst`` units, after ``target_arrivals``."""
        if self.target_arrivals is not None and self.rate > 0:
            return self.target_arrivals / self.rate
        return self.horizon

    def arrival_times(self, t_worst: float, seed: int) -> np.ndarray:
        """Sample the absolute-time arrival instants of this stream."""
        trace = self.trace
        if self.arrival == "trace" and trace is None:
            trace = tuple(load_arrival_trace(self.trace_path))
        process = make_arrival_process(
            self.arrival, self.rate / t_worst,
            burstiness=self.burstiness,
            dwell=self.burst_dwell * t_worst,
            trace=None if trace is None
            else tuple(t * t_worst for t in trace))
        horizon_abs = self.resolved_horizon() * t_worst
        return process.sample(horizon_abs, arrival_rng(seed))


@dataclass
class StreamStats:
    """One scheme's realized stream: per-admitted-job arrays + totals."""

    scheme: str
    #: per-admitted-job absolute energy
    job_energy: np.ndarray
    #: per-admitted-job energy normalized to NPM on the same realization
    job_normalized: np.ndarray
    #: per-admitted-job absolute finish instant (FIFO ledger replay)
    job_finish: np.ndarray
    #: per-admitted-job admitted-then-late flag
    job_miss: np.ndarray
    #: per-admitted-job voltage/speed switch count
    job_changes: np.ndarray

    @property
    def n_missed(self) -> int:
        return int(self.job_miss.sum())

    @property
    def energy(self) -> float:
        return float(self.job_energy.sum())

    def miss_ratio(self) -> float:
        """Admitted-then-late jobs over admitted jobs (0 when empty)."""
        n = self.job_miss.size
        return (self.n_missed / n) if n else 0.0

    def mean_normalized(self) -> float:
        return float(self.job_normalized.mean()) \
            if self.job_normalized.size else 0.0


@dataclass
class OnlineResult:
    """One simulated stream: the ledger plus per-scheme realized stats."""

    app_name: str
    config: RunConfig
    online: OnlineConfig
    t_worst: float
    t_avg: float
    #: every job's relative deadline (absolute deadline = arrival + D)
    deadline: float
    #: absolute stream length (``online.resolved_horizon() * t_worst``)
    horizon: float
    #: every arrival instant, admitted or not
    arrivals: np.ndarray
    #: admission decision per arrival
    admitted: np.ndarray
    #: remaining window ``(a_j + D) - start_hat`` per arrival — what the
    #: feasibility check was asked to fit ``T_worst`` into
    windows: np.ndarray
    #: per-admitted-job NPM energy (the normalization denominator)
    npm_energy: np.ndarray
    #: per-admitted-job executed path key
    path_keys: List[str] = field(default_factory=list)
    per_scheme: Dict[str, StreamStats] = field(default_factory=dict)
    #: admission probes retried after an injected ``online-admit`` fault
    admit_retries: int = 0

    @property
    def n_arrivals(self) -> int:
        return int(self.arrivals.size)

    @property
    def n_admitted(self) -> int:
        return int(self.admitted.sum())

    @property
    def n_rejected(self) -> int:
        return self.n_arrivals - self.n_admitted


def _admit_stream(times: np.ndarray, t_worst: float, t_avg: float,
                  deadline: float, policy) -> Tuple[np.ndarray, np.ndarray,
                                                    int]:
    """The admission ledger: decisions, windows, fault-probe retries.

    Pure given its inputs — the ``online-admit`` fault probe can only
    delay a decision (``hang``) or force a retried attempt (``raise``),
    never change it, which is what the chaos tier pins.
    """
    n = times.size
    admitted = np.zeros(n, dtype=bool)
    windows = np.empty(n)
    committed = 0.0
    retries = 0
    for j in range(n):
        attempts = 0
        while True:
            try:
                if faults.fire("online-admit", key=j) == "raise":
                    raise FaultInjected(
                        f"injected admission fault at arrival {j}")
                break
            except FaultInjected:
                attempts += 1
                retries += 1
                if attempts > policy.max_retries:
                    if policy.degrade:
                        break  # the decision below is probe-free
                    raise
        a = float(times[j])
        start_hat = a if a > committed else committed
        window = (a + deadline) - start_hat
        windows[j] = window
        if t_worst <= window * (1.0 + _FEAS_TOL):
            admitted[j] = True
            committed = start_hat + t_avg
    return admitted, windows, retries


def _run_jobs(plan_dyn: Optional[OfflinePlan], plan_static: OfflinePlan,
              scheme_names: Sequence[str], power: PowerModel,
              overhead: OverheadModel, batch: RealizationBatch,
              engine: str, kernel_tier: Optional[str]
              ) -> Tuple[np.ndarray, np.ndarray, Dict[str, np.ndarray],
                         Dict[str, np.ndarray], Dict[str, np.ndarray],
                         List[str]]:
    """Per-job energies, durations and switch counts for every scheme.

    The finish-aware mirror of the offline evaluator's kernels: the
    same dispatch order and the same kernel calls as
    ``runner._simulate_runs_compiled`` / ``runner._simulate_runs`` (so
    energies and switch counts are bit-identical to
    :func:`~repro.experiments.runner.evaluate_application` on the same
    batch), additionally returning each run's realized makespan — the
    service time the FIFO ledger advances by.
    """
    if engine == "dict":
        return _run_jobs_dict(plan_dyn, plan_static, scheme_names, power,
                              overhead, batch)
    from ..sim.kernels import resolve_kernel_tier
    tier = resolve_kernel_tier(kernel_tier)

    policies: Dict[str, SpeedPolicy] = {}
    for name in scheme_names:
        policy = get_policy(name)
        policies[policy.name] = policy

    n = len(batch)
    prog_static = compile_plan(plan_static)
    prog_dyn = compile_plan(plan_dyn) if plan_dyn is not None else None
    matrix = prog_static.realization_matrix(batch)
    groups, path_keys = prog_static.executed_paths(batch.choices, n)

    base = run_fixed_batch(prog_static, power, NO_OVERHEAD, matrix,
                           groups, path_keys, power.s_max, "NPM",
                           kernel_tier=tier)
    npm_energy = base.total_energy
    npm_finish = base.finish_time
    absolute: Dict[str, np.ndarray] = {}
    finish: Dict[str, np.ndarray] = {}
    changes: Dict[str, np.ndarray] = {}
    rows = None
    choice_rows = None
    for name, policy in policies.items():
        if name == "NPM":
            absolute[name] = npm_energy.copy()
            finish[name] = npm_finish.copy()
            changes[name] = np.full(n, float(base.n_speed_changes))
            continue
        if policy.requires_reserve and plan_dyn is None:
            # DVS disabled at this load: the scheme runs like NPM
            absolute[name] = npm_energy.copy()
            finish[name] = npm_finish.copy()
            changes[name] = np.zeros(n)
            continue
        plan = plan_dyn if policy.requires_reserve else plan_static
        prog = prog_dyn if policy.requires_reserve else prog_static
        speed = policy.batch_fixed_speed(plan, power, overhead)
        if speed is not None:
            res = run_fixed_batch(prog, power, overhead, matrix, groups,
                                  path_keys, speed, name, kernel_tier=tier)
            absolute[name] = res.total_energy
            finish[name] = res.finish_time
            changes[name] = np.full(n, float(res.n_speed_changes))
            continue
        needs_rl = policy.needs_realization
        probe = None
        if not needs_rl:
            probe = policy.start_run(plan, power, overhead)
            if supports_dynamic_batch(probe, power):
                res = run_dynamic_batch(prog, power, overhead, matrix,
                                        groups, path_keys, probe, name,
                                        kernel_tier=tier)
                absolute[name] = res.total_energy
                finish[name] = res.finish_time
                changes[name] = res.n_speed_changes.astype(float)
                continue
        if rows is None:  # lazily, only if a per-run scheme is present
            rows = matrix.tolist()
            choice_rows = batch.choice_rows()
        kernel = CompiledKernel(prog, power, overhead)
        abs_arr = np.empty(n)
        fin_arr = np.empty(n)
        chg_arr = np.empty(n, dtype=float)
        shared_run = probe if (probe is not None and probe.stateless) \
            else None
        for i in range(n):
            if shared_run is not None:
                run = shared_run
            else:
                rl = batch.realization(i) if needs_rl else None
                run = policy.start_run(plan, power, overhead,
                                       realization=rl)
            res = kernel.run(run, rows[i], choice_rows[i])
            abs_arr[i] = res.total_energy
            fin_arr[i] = res.finish_time
            chg_arr[i] = res.n_speed_changes
        absolute[name] = abs_arr
        finish[name] = fin_arr
        changes[name] = chg_arr
    return npm_energy, npm_finish, absolute, finish, changes, path_keys


def _run_jobs_dict(plan_dyn: Optional[OfflinePlan],
                   plan_static: OfflinePlan,
                   scheme_names: Sequence[str], power: PowerModel,
                   overhead: OverheadModel, batch: RealizationBatch
                   ) -> Tuple[np.ndarray, np.ndarray, Dict[str, np.ndarray],
                              Dict[str, np.ndarray], Dict[str, np.ndarray],
                              List[str]]:
    """The reference dict-engine counterpart of :func:`_run_jobs`."""
    from .runner import _path_key
    structure = plan_static.structure
    policies: Dict[str, SpeedPolicy] = {}
    for name in scheme_names:
        policy = get_policy(name)
        policies[policy.name] = policy

    n = len(batch)
    npm_policy = get_policy("NPM")
    npm_energy = np.empty(n)
    npm_finish = np.empty(n)
    absolute = {name: np.empty(n) for name in policies}
    finish = {name: np.empty(n) for name in policies}
    changes = {name: np.empty(n, dtype=float) for name in policies}
    path_keys: List[str] = []
    for i, rl in enumerate(batch):
        npm_run = npm_policy.start_run(plan_static, power, NO_OVERHEAD,
                                       realization=rl)
        base = simulate(plan_static, npm_run, power, NO_OVERHEAD, rl)
        npm_energy[i] = base.total_energy
        npm_finish[i] = base.finish_time
        path_keys.append(_path_key(structure, base))
        for name, policy in policies.items():
            if name == "NPM":
                absolute[name][i] = base.total_energy
                finish[name][i] = base.finish_time
                changes[name][i] = base.n_speed_changes
                continue
            if policy.requires_reserve and plan_dyn is None:
                absolute[name][i] = base.total_energy
                finish[name][i] = base.finish_time
                changes[name][i] = 0.0
                continue
            plan = plan_dyn if policy.requires_reserve else plan_static
            run = policy.start_run(plan, power, overhead, realization=rl)
            res = simulate(plan, run, power, overhead, rl)
            absolute[name][i] = res.total_energy
            finish[name][i] = res.finish_time
            changes[name][i] = res.n_speed_changes
    return npm_energy, npm_finish, absolute, finish, changes, path_keys


def _replay_fifo(arrivals: np.ndarray, durations: np.ndarray,
                 deadline: float) -> Tuple[np.ndarray, np.ndarray]:
    """FIFO ledger replay: realized finish instants and late flags."""
    n = arrivals.size
    fin = np.empty(n)
    free = 0.0
    for i in range(n):
        start = arrivals[i] if arrivals[i] > free else free
        free = start + durations[i]
        fin[i] = free
    miss = fin > (arrivals + deadline) * (1.0 + _MISS_RTOL) + _MISS_ATOL
    return fin, miss


def simulate_online(graph: AndOrGraph, config: RunConfig,
                    online: OnlineConfig) -> OnlineResult:
    """Simulate one sporadic-arrival stream under every scheme.

    Deterministic in ``(graph, config, online)``: one ``config.seed``
    fixes the arrival instants (via the derived arrival stream) and
    the realizations (via ``default_rng(seed)``, the offline
    evaluator's stream) — repeated calls are bit-identical on every
    backend and kernel tier.
    """
    m = config.n_processors
    t_worst = worst_case_length(graph, m)
    t_avg = average_case_length(graph, m)
    deadline = t_worst / online.load
    horizon_abs = online.resolved_horizon() * t_worst
    times = online.arrival_times(t_worst, config.seed)

    admitted, windows, retries = _admit_stream(
        times, t_worst, t_avg, deadline, config.retry_policy())
    scheme_names = tuple(get_policy(n).name for n in config.schemes)

    result = OnlineResult(app_name=graph.name, config=config, online=online,
                          t_worst=t_worst, t_avg=t_avg, deadline=deadline,
                          horizon=horizon_abs, arrivals=times,
                          admitted=admitted, windows=windows,
                          npm_energy=np.empty(0), admit_retries=retries)
    n_adm = int(admitted.sum())
    if n_adm == 0:
        empty = np.empty(0)
        for name in scheme_names:
            result.per_scheme[name] = StreamStats(
                scheme=name, job_energy=empty.copy(),
                job_normalized=empty.copy(), job_finish=empty.copy(),
                job_miss=np.empty(0, dtype=bool),
                job_changes=empty.copy())
        return result

    # the same application the offline evaluator would build for this
    # load, so plans — and hence energies — match it exactly
    app = application_with_load(graph, online.load, m)
    power = config.make_power()
    plan_dyn, plan_static = build_plans(app, config, power)
    rng = np.random.default_rng(config.seed)
    batch = sample_realization_batch(plan_static.structure, rng, n_adm,
                                     sigma_fraction=config.sigma_fraction)
    npm_energy, _npm_finish, absolute, finish, changes, path_keys = \
        _run_jobs(plan_dyn, plan_static, scheme_names, power,
                  config.overhead, batch, config.engine, config.kernel_tier)

    result.npm_energy = npm_energy
    result.path_keys = path_keys
    a_adm = times[admitted]
    for name in scheme_names:
        fin, miss = _replay_fifo(a_adm, finish[name], deadline)
        result.per_scheme[name] = StreamStats(
            scheme=name, job_energy=absolute[name],
            job_normalized=absolute[name] / npm_energy,
            job_finish=fin, job_miss=miss, job_changes=changes[name])
    return result


def _rate_point(graph: AndOrGraph, config: RunConfig,
                online: OnlineConfig) -> OnlineResult:
    """One picklable sweep point (also the pool-worker task)."""
    return simulate_online(graph, config, online)


def sweep_arrival_rate(graph: AndOrGraph, config: RunConfig,
                       online: OnlineConfig,
                       rates: Sequence[float] = DEFAULT_RATES,
                       n_jobs: int = 1,
                       name: str = "online-sweep",
                       context: Optional[ExecutionContext] = None
                       ) -> SeriesResult:
    """Normalized energy (and miss ratio) vs arrival rate.

    Each rate point is an independent stream built from ``online``
    with that rate; points fan out through the
    :class:`~repro.experiments.engine.ExecutionContext` like any other
    sweep (``map_custom``), and are bit-identical for every fan-out.
    The figure rows are the per-job normalized energies summarized per
    scheme; the stream-level ledger — arrival/admit/reject/miss counts
    and the per-scheme deadline-miss ratio per rate — lands in
    ``series.meta["online"]`` (aligned ``[rate, value]`` pairs, like
    the ``speed_changes`` meta).
    """
    before = _cache_before(context)
    args = [(graph, config, online.with_(rate=float(r))) for r in rates]
    results: List[OnlineResult] = map_custom(
        _rate_point, args, n_jobs=n_jobs, context=context)

    online_meta: Dict[str, object] = {
        "arrival": online.arrival,
        "load": online.load,
        "horizon": online.resolved_horizon(),
        "target_arrivals": online.target_arrivals,
        "seed": config.seed,
        "arrivals": [], "admitted": [], "rejected": [],
        "missed": [], "miss_ratio": [],
        "admit_retries": 0,
    }
    series = SeriesResult(name=name, x_label="rate",
                          meta={"app": graph.name,
                                "power_model": config.power_model,
                                "n_processors": config.n_processors,
                                "kernel": kernel_meta(config.kernel_tier)})
    series.meta["speed_changes"] = []
    for r, res in zip(rates, results):
        x = float(r)
        for scheme, st in res.per_scheme.items():
            if st.job_normalized.size:
                series.points.append(summarize(x, scheme,
                                               st.job_normalized))
        online_meta["arrivals"].append([x, res.n_arrivals])
        online_meta["admitted"].append([x, res.n_admitted])
        online_meta["rejected"].append([x, res.n_rejected])
        online_meta["missed"].append(
            [x, {s: st.n_missed for s, st in res.per_scheme.items()}])
        online_meta["miss_ratio"].append(
            [x, {s: st.miss_ratio() for s, st in res.per_scheme.items()}])
        online_meta["admit_retries"] += res.admit_retries
        series.meta["speed_changes"].append(
            [x, {s: (float(st.job_changes.mean())
                     if st.job_changes.size else 0.0)
                 for s, st in res.per_scheme.items()}])
    series.meta["online"] = online_meta
    _cache_meta(context, before, series.meta)
    return series


def render_online_report(result: OnlineResult) -> str:
    """Aligned per-scheme text report of one stream."""
    lines = [
        f"# online stream: {result.app_name}  "
        f"[arrival={result.online.arrival}, rate={result.online.rate:g}, "
        f"horizon={result.online.resolved_horizon():g}, "
        f"load={result.online.load:g}]",
        f"arrivals={result.n_arrivals}  admitted={result.n_admitted}  "
        f"rejected={result.n_rejected}  "
        f"T_worst={result.t_worst:.2f}  D={result.deadline:.2f}"
        + (f"  admit_retries={result.admit_retries}"
           if result.admit_retries else ""),
        f"{'scheme':>8} {'late':>6} {'miss%':>7} {'energy':>12} "
        f"{'E/E_NPM':>9} {'switches':>9}",
    ]
    for name, st in result.per_scheme.items():
        mean_chg = (float(st.job_changes.mean())
                    if st.job_changes.size else 0.0)
        lines.append(
            f"{name:>8} {st.n_missed:>6} {100 * st.miss_ratio():>6.1f}% "
            f"{st.energy:>12.2f} {st.mean_normalized():>9.4f} "
            f"{mean_chg:>9.1f}")
    return "\n".join(lines) + "\n"
