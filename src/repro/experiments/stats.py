"""Statistics helpers for the Monte-Carlo experiments.

Every figure point in the paper is "an average of 1000 runs"; we keep the
per-run normalized energies as numpy arrays so mean, spread and 95 %
confidence intervals come out of one vectorized pass (no per-run Python
arithmetic in the aggregation path, per the numpy idioms in the
hpc-parallel guides).
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from ..types import ExperimentPoint

#: two-sided 95 % normal quantile (n >= ~100 runs makes the CLT fine here)
_Z95 = 1.959963984540054


def summarize(x: float, scheme: str,
              normalized: np.ndarray) -> ExperimentPoint:
    """Collapse one scheme's per-run normalized energies into a point."""
    arr = np.asarray(normalized, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty sample")
    mean = float(arr.mean())
    std = float(arr.std(ddof=1)) if arr.size > 1 else 0.0
    ci95 = _Z95 * std / np.sqrt(arr.size) if arr.size > 1 else 0.0
    return ExperimentPoint(x=x, scheme=scheme, mean=mean, std=std,
                           n_runs=int(arr.size), ci95=float(ci95))


def summarize_all(x: float,
                  samples: Dict[str, np.ndarray]) -> Sequence[ExperimentPoint]:
    """Summarize every scheme's sample at one sweep position."""
    return [summarize(x, scheme, arr) for scheme, arr in samples.items()]


def paired_ratio(numerator: np.ndarray,
                 denominator: np.ndarray) -> np.ndarray:
    """Per-run energy ratio (paired normalization to NPM)."""
    num = np.asarray(numerator, dtype=float)
    den = np.asarray(denominator, dtype=float)
    if num.shape != den.shape:
        raise ValueError(
            f"paired samples differ in shape: {num.shape} vs {den.shape}")
    if np.any(den <= 0):
        raise ValueError("non-positive baseline energy in paired ratio")
    return num / den
