"""Content-addressed on-disk cache of Monte-Carlo evaluation points.

A sweep point is fully determined by *what* is evaluated — the
application (graph + deadline) and the result-relevant
:class:`~repro.experiments.runner.RunConfig` fields — never by *how*
(worker counts, chunk sizes, transports are all bit-identical by
contract).  That makes evaluation results safely content-addressable:

``key = sha256(graph fingerprint, deadline, app name,
canonical config payload, code-version salt)``

so ``repro fig`` / ``repro suite`` regeneration is incremental —
unchanged points load from ``.repro-cache/``, changed points (any edit
to the graph, seed, run count, σ, schemes, engine, power or overhead
model) recompute.  Entries are single ``.npz`` files holding the raw
per-run arrays (exact float64 bits; ``normalized`` is re-derived by the
same division the runner performs, so a cache hit is bit-identical to a
recompute), written atomically (tmp + rename) so concurrent writers
can share one cache directory.  A corrupted, truncated or
wrong-schema entry is treated as a miss and **quarantined**: moved
aside into ``<root>/quarantine/`` (for post-mortem inspection) with a
single warning, after which the point is recomputed and re-written —
the cache can never poison results, and the broken bytes are kept as
evidence rather than destroyed.

``CACHE_SALT`` is the code-version component of the key: bump it
whenever a change alters simulation outputs, and every stale entry
silently becomes a miss.
"""

from __future__ import annotations

import hashlib
import json
import os
import warnings
import zipfile
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from ..core.registry import get_policy
from ..graph.andor import Application
from ..offline.plan import graph_fingerprint
from . import faults

#: bump when a code change alters simulation outputs (invalidates every
#: existing cache entry without touching the on-disk format)
CACHE_SALT = "eval-v1"

#: on-disk payload layout version (validated on load)
CACHE_FORMAT = 1

#: default cache directory, relative to the working directory
DEFAULT_CACHE_DIR = ".repro-cache"

#: RunConfig fields that determine evaluation *results*.  Execution
#: knobs (n_jobs, runs_per_chunk, parallel_min_runs) are excluded by
#: design: they are bit-identical by contract and must share entries.
#: ``engine`` is included although engines are bit-identical too —
#: being conservative there keeps the cache trustworthy while engines
#: evolve.
_RESULT_FIELDS = ("power_model", "n_processors", "n_runs", "seed",
                  "sigma_fraction", "idle_fraction", "heuristic", "engine")


def config_payload(config) -> Dict[str, object]:
    """The canonical, JSON-stable view of a config's result-relevant part."""
    payload: Dict[str, object] = {
        field: getattr(config, field) for field in _RESULT_FIELDS
    }
    # aliases resolve to canonical labels: ("gss",) and ("GSS",) are the
    # same evaluation and must share a cache entry
    payload["schemes"] = [get_policy(name).name for name in config.schemes]
    payload["overhead"] = {
        "comp_cycles": config.overhead.comp_cycles,
        "adjust_time": config.overhead.adjust_time,
        "time_unit_us": config.overhead.time_unit_us,
    }
    return payload


def _digest(payload: Dict[str, object]) -> str:
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def evaluation_key(app: Application, config) -> str:
    """The content address of one ``evaluate_application(app, config)``."""
    return _digest({
        "salt": CACHE_SALT,
        "graph": graph_fingerprint(app.graph),
        "deadline": repr(float(app.deadline)),
        "app": app.name,
        "config": config_payload(config),
    })


def plan_setup_key(app: Application, config) -> str:
    """Fingerprint of the prepared per-evaluation worker state.

    Everything a worker builds once per evaluation — plans, compiled
    programs, policies, power/overhead models — depends on the graph,
    the deadline and the config *except* the Monte-Carlo draw
    (``n_runs``/``seed``/``sigma_fraction``), so repeated evaluations
    of one point reuse the worker's prepared setup across calls.
    """
    payload = config_payload(config)
    for draw_field in ("n_runs", "seed", "sigma_fraction"):
        payload.pop(draw_field, None)
    return _digest({
        "salt": CACHE_SALT,
        "graph": graph_fingerprint(app.graph),
        "deadline": repr(float(app.deadline)),
        "config": payload,
    })


class EvaluationCache:
    """A directory of content-addressed evaluation results.

    ``get``/``put`` never raise on storage problems: a broken entry or
    an unwritable directory degrades to recomputation with a warning,
    because caching is an optimization, not a correctness dependency.
    """

    def __init__(self, root: Union[str, Path] = DEFAULT_CACHE_DIR):
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.errors = 0
        self.quarantined = 0

    def path_for(self, key: str) -> Path:
        # two-level fan-out keeps directory listings small at scale
        return self.root / key[:2] / f"{key}.npz"

    def quarantine_dir(self) -> Path:
        """Where corrupt entries are moved for post-mortem inspection."""
        return self.root / "quarantine"

    def _quarantine(self, path: Path) -> Optional[Path]:
        """Move a corrupt entry aside (best-effort; unlink as fallback)."""
        qpath = self.quarantine_dir() / path.name
        try:
            qpath.parent.mkdir(parents=True, exist_ok=True)
            os.replace(path, qpath)
            self.quarantined += 1
            return qpath
        except OSError:
            try:
                path.unlink()
            except OSError:
                pass
            return None

    # -- read ---------------------------------------------------------------
    def get(self, key: str, app_name: str, config):
        """The cached :class:`EvaluationResult`, or ``None`` on a miss.

        ``config`` is re-attached to the reconstructed result (it is
        part of the key, so it describes the stored arrays exactly).
        """
        path = self.path_for(key)
        if not path.is_file():
            self.misses += 1
            return None
        if faults.fire("cache-read", key=key[:8]) == "corrupt":
            _truncate_entry(path)
        try:
            # open the handle ourselves: np.load leaks it when the
            # archive is truncated, and the quarantine move below wants
            # the file closed
            with open(path, "rb") as fh, \
                    np.load(fh, allow_pickle=False) as data:
                result = _payload_to_result(dict(data), app_name, config)
        except (OSError, ValueError, KeyError, zipfile.BadZipFile,
                EOFError) as exc:
            self.errors += 1
            self.misses += 1
            qpath = self._quarantine(path)
            where = (f"quarantined to {qpath}" if qpath is not None
                     else "deleted (quarantine unavailable)")
            warnings.warn(
                f"corrupted evaluation-cache entry {path}: {exc!r} — "
                f"{where}; the point will be recomputed",
                RuntimeWarning, stacklevel=2)
            return None
        self.hits += 1
        return result

    # -- write --------------------------------------------------------------
    def put(self, key: str, result) -> None:
        """Store one result (best-effort, atomic within the directory)."""
        path = self.path_for(key)
        tmp = path.with_name(
            f".{path.name}.{os.getpid()}.{os.urandom(4).hex()}.tmp")
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            with open(tmp, "wb") as fh:
                np.savez(fh, **_result_to_payload(result))
            os.replace(tmp, path)
        except OSError as exc:
            warnings.warn(
                f"could not write evaluation-cache entry {path}: {exc!r}",
                RuntimeWarning, stacklevel=2)
            try:
                tmp.unlink()
            except OSError:
                pass

    # -- bookkeeping --------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """Hit/miss/error/quarantine counters since construction."""
        return {"hits": self.hits, "misses": self.misses,
                "errors": self.errors, "quarantined": self.quarantined}


def _truncate_entry(path: Path) -> None:
    """Injected 'torn write': chop the entry to half its bytes."""
    try:
        size = path.stat().st_size
        with open(path, "r+b") as fh:
            fh.truncate(size // 2)
    except OSError:  # pragma: no cover - injected path, best effort
        pass


def _result_to_payload(result) -> Dict[str, np.ndarray]:
    """EvaluationResult → flat array mapping for ``np.savez``.

    Only the independent arrays are stored: ``normalized`` is exactly
    ``absolute / npm_energy`` and is re-derived on load by the same
    division, so a round-trip is bit-identical.
    """
    schemes = list(result.absolute)
    payload: Dict[str, np.ndarray] = {
        "format": np.asarray(CACHE_FORMAT),
        "schemes": np.asarray(schemes),
        "npm_energy": result.npm_energy,
        "path_keys": np.asarray(result.path_keys),
    }
    for name in schemes:
        payload[f"abs::{name}"] = result.absolute[name]
        payload[f"chg::{name}"] = result.speed_changes[name]
    return payload


def _payload_to_result(data: Dict[str, np.ndarray], app_name: str, config):
    """Inverse of :func:`_result_to_payload` (validating)."""
    from .runner import EvaluationResult  # runner does not import us
    if int(data["format"]) != CACHE_FORMAT:
        raise ValueError(f"unsupported cache entry format {data['format']}")
    schemes = [str(s) for s in data["schemes"]]
    expected = [get_policy(name).name for name in config.schemes]
    if schemes != expected:
        raise ValueError(
            f"cache entry schemes {schemes} do not match config {expected}")
    npm = data["npm_energy"]
    if npm.shape != (config.n_runs,):
        raise ValueError(
            f"cache entry holds {npm.shape} runs, config asks "
            f"{config.n_runs}")
    result = EvaluationResult(
        app_name=app_name, config=config, npm_energy=npm,
        path_keys=[str(k) for k in data["path_keys"]])
    for name in schemes:
        absolute = data[f"abs::{name}"]
        changes = data[f"chg::{name}"]
        if absolute.shape != npm.shape or changes.shape != npm.shape:
            raise ValueError(f"cache entry arrays for {name!r} are ragged")
        result.absolute[name] = absolute
        result.normalized[name] = absolute / npm
        result.speed_changes[name] = changes
    return result
