"""The Monte-Carlo experiment harness (Section 5 of the paper).

* :class:`RunConfig` / :func:`evaluate_application` — one evaluation,
* :mod:`~repro.experiments.sweeps` — load/α/processor/overhead sweeps,
* :mod:`~repro.experiments.figures` — Figure 4/5/6 regeneration,
* :mod:`~repro.experiments.tables` — Table 1/2 regeneration,
* :mod:`~repro.experiments.report` — text/CSV rendering,
* :mod:`~repro.experiments.parallel` — process-pool fan-out,
* :mod:`~repro.experiments.engine` — persistent sweep-scale execution
  (one worker pool + shared-memory transport + evaluation cache),
* :mod:`~repro.experiments.evalcache` — content-addressed on-disk
  cache of evaluation points (with corrupt-entry quarantine),
* :mod:`~repro.experiments.faults` — deterministic fault injection
  for the chaos test suite (:class:`FaultPlan`/:class:`FaultSpec`),
* :mod:`~repro.experiments.dispatch` — the work-stealing distributed
  sweep backend (:class:`DispatchServer`/:class:`DispatchWorker`),
  selected per sweep via ``backend="dispatch"``,
* :mod:`~repro.experiments.online` — the sporadic-arrival streaming
  simulator with admission control (:func:`simulate_online`,
  :func:`sweep_arrival_rate`, the ``fig_online`` figure family).

Resilience: :class:`RetryPolicy` (surfaced as the ``max_retries`` /
``chunk_timeout`` / ``degrade`` fields of :class:`RunConfig`) governs
how the execution engine retries crashed, hung or transport-starved
work before degrading to serial execution in the parent; every
recovery is counted in ``series.meta["resilience"]``.
"""

from .chart import render_chart, render_charts
from .compare import (
    PairedComparison,
    compare_all,
    paired_comparison,
    render_comparison,
    win_matrix,
)
from .distribution import (
    DistributionSummary,
    render_distributions,
    render_histogram,
    result_distributions,
    summarize_distribution,
)
from .dispatch import DispatchServer, DispatchWorker, dispatch_points
from .engine import BACKENDS, ExecutionContext, RetryPolicy, resolve_backend
from .evalcache import EvaluationCache, evaluation_key
from .faults import FaultPlan, FaultSpec
from .exact import ExactResult, exact_evaluation, render_exact
from .figures import (
    ALL_FIGURES,
    ATR_ALPHA,
    FIG6_LOAD,
    PAPER_POWER_MODELS,
    fig_online,
    figure4,
    figure5,
    figure6,
)
from .online import (
    DEFAULT_RATES,
    ONLINE_LOAD,
    OnlineConfig,
    OnlineResult,
    StreamStats,
    render_online_report,
    simulate_online,
    sweep_arrival_rate,
)
from .persist import (
    load_evaluation,
    load_series,
    merge_series,
    save_evaluation,
    save_series,
)
from .misprofile import (
    MisprofileResult,
    misprofile_evaluation,
    render_misprofile,
)
from .parallel import (
    collect_in_order,
    map_applications,
    map_custom,
    map_evaluations,
    map_load_points,
    resolve_jobs,
)
from .report import (
    render_online_meta,
    render_series,
    render_speed_changes,
    series_to_csv,
)
from .runner import EvaluationResult, RunConfig, build_plans, evaluate_application
from .stats import paired_ratio, summarize, summarize_all
from .suite import SuiteConfig, SuiteResult, default_workloads, render_suite, run_suite
from .sweeps import (
    DEFAULT_ALPHAS,
    DEFAULT_LOADS,
    sweep_alpha,
    sweep_load,
    sweep_overhead,
    sweep_processors,
)
from .tables import all_tables, table1, table2

__all__ = [
    "RunConfig",
    "EvaluationResult",
    "evaluate_application",
    "build_plans",
    "sweep_load",
    "sweep_alpha",
    "sweep_processors",
    "sweep_overhead",
    "DEFAULT_LOADS",
    "DEFAULT_ALPHAS",
    "figure4",
    "figure5",
    "figure6",
    "fig_online",
    "ALL_FIGURES",
    "OnlineConfig",
    "OnlineResult",
    "StreamStats",
    "simulate_online",
    "sweep_arrival_rate",
    "render_online_report",
    "render_online_meta",
    "DEFAULT_RATES",
    "ONLINE_LOAD",
    "PAPER_POWER_MODELS",
    "ATR_ALPHA",
    "FIG6_LOAD",
    "table1",
    "table2",
    "all_tables",
    "render_series",
    "render_chart",
    "render_charts",
    "render_speed_changes",
    "series_to_csv",
    "summarize",
    "summarize_all",
    "paired_ratio",
    "PairedComparison",
    "paired_comparison",
    "compare_all",
    "render_comparison",
    "win_matrix",
    "SuiteConfig",
    "SuiteResult",
    "run_suite",
    "render_suite",
    "default_workloads",
    "DistributionSummary",
    "summarize_distribution",
    "result_distributions",
    "render_distributions",
    "render_histogram",
    "ExactResult",
    "exact_evaluation",
    "render_exact",
    "MisprofileResult",
    "misprofile_evaluation",
    "render_misprofile",
    "map_load_points",
    "map_applications",
    "map_custom",
    "map_evaluations",
    "collect_in_order",
    "resolve_jobs",
    "ExecutionContext",
    "RetryPolicy",
    "BACKENDS",
    "resolve_backend",
    "DispatchServer",
    "DispatchWorker",
    "dispatch_points",
    "FaultPlan",
    "FaultSpec",
    "EvaluationCache",
    "evaluation_key",
    "save_series",
    "load_series",
    "merge_series",
    "save_evaluation",
    "load_evaluation",
]
