"""Persistence of experiment results.

Full-size figure runs are cheap here but not free; persisting a
:class:`~repro.types.SeriesResult` as JSON lets EXPERIMENTS.md numbers
be re-rendered, diffed across code changes, and plotted without
re-simulating.  The format is versioned and validated on load.

Raw per-run arrays have their own binary persistence:
:func:`save_evaluation` / :func:`load_evaluation` round-trip one
:class:`~repro.experiments.runner.EvaluationResult` through the same
validated ``.npz`` payload the evaluation cache
(:mod:`repro.experiments.evalcache`) stores, so a saved evaluation is
bit-identical on reload — useful for archiving the exact arrays behind
a published figure, not just its summary statistics.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

import numpy as np

from ..errors import ConfigError
from ..types import ExperimentPoint, SeriesResult, speed_change_items

FORMAT_VERSION = 1


def series_to_jsonable(series: SeriesResult) -> Dict:
    """SeriesResult → JSON-compatible dict."""
    meta = {}
    for k, v in series.meta.items():
        if k == "speed_changes" and isinstance(v, dict):
            # legacy in-memory dict keyed by raw float x: float keys are
            # not valid JSON, so persist in the aligned-list format
            meta[k] = [[x, per_x] for x, per_x in speed_change_items(v)]
        else:
            meta[k] = v
    return {
        "format_version": FORMAT_VERSION,
        "name": series.name,
        "x_label": series.x_label,
        "meta": meta,
        "points": [
            {"x": p.x, "scheme": p.scheme, "mean": p.mean,
             "std": p.std, "n_runs": p.n_runs, "ci95": p.ci95}
            for p in series.points
        ],
    }


def series_from_jsonable(data: Dict) -> SeriesResult:
    """JSON dict → SeriesResult (validating)."""
    try:
        version = data["format_version"]
        if version != FORMAT_VERSION:
            raise ConfigError(
                f"unsupported series format version {version} "
                f"(expected {FORMAT_VERSION})")
        meta = dict(data.get("meta", {}))
        if "speed_changes" in meta:
            # old files stored a dict with stringified float keys;
            # normalize everything to the aligned-list format on read
            meta["speed_changes"] = [
                [x, per_x]
                for x, per_x in speed_change_items(meta["speed_changes"])]
        series = SeriesResult(name=str(data["name"]),
                              x_label=str(data["x_label"]), meta=meta)
        for p in data["points"]:
            series.points.append(ExperimentPoint(
                x=float(p["x"]), scheme=str(p["scheme"]),
                mean=float(p["mean"]), std=float(p["std"]),
                n_runs=int(p["n_runs"]), ci95=float(p.get("ci95", 0.0))))
        return series
    except ConfigError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise ConfigError(f"malformed series JSON: {exc}") from exc


def save_series(series_by_key: Dict[str, SeriesResult],
                path: Union[str, Path]) -> None:
    """Write a bundle of named series (e.g. one per power model)."""
    payload = {
        "format_version": FORMAT_VERSION,
        "series": {k: series_to_jsonable(s)
                   for k, s in series_by_key.items()},
    }
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True),
                          encoding="utf-8")


def load_series(path: Union[str, Path]) -> Dict[str, SeriesResult]:
    """Read a bundle written by :func:`save_series`."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise ConfigError(f"no such series file: {path}") from None
    except json.JSONDecodeError as exc:
        raise ConfigError(f"invalid JSON in {path}: {exc}") from exc
    if not isinstance(payload, dict) or "series" not in payload:
        raise ConfigError(f"{path} is not a series bundle")
    return {k: series_from_jsonable(v)
            for k, v in payload["series"].items()}


def save_evaluation(result, path: Union[str, Path]) -> None:
    """Write one evaluation's raw per-run arrays as an ``.npz`` file.

    The payload is the evaluation cache's on-disk format (schemes,
    per-run NPM energies, per-scheme absolute energies and switch
    counts, executed-path keys); ``normalized`` is re-derived exactly
    on load.
    """
    from .evalcache import _result_to_payload
    with open(path, "wb") as fh:
        np.savez(fh, **_result_to_payload(result))


def load_evaluation(path: Union[str, Path], app_name: str, config):
    """Read an evaluation saved by :func:`save_evaluation` (validating).

    ``app_name``/``config`` re-attach the context the arrays were
    computed under; the config must describe the stored arrays (same
    schemes, same ``n_runs``) or a :class:`ConfigError` is raised.
    """
    from .evalcache import _payload_to_result
    try:
        with np.load(path, allow_pickle=False) as data:
            return _payload_to_result(dict(data), app_name, config)
    except FileNotFoundError:
        raise ConfigError(f"no such evaluation file: {path}") from None
    except (OSError, ValueError, KeyError) as exc:
        raise ConfigError(
            f"malformed evaluation file {path}: {exc}") from exc


def merge_series(a: SeriesResult, b: SeriesResult) -> SeriesResult:
    """Concatenate two sweeps of the same experiment (disjoint x)."""
    if a.x_label != b.x_label:
        raise ConfigError(
            f"cannot merge series over different axes: {a.x_label} vs "
            f"{b.x_label}")
    overlap = set(a.xs()) & set(b.xs())
    if overlap:
        raise ConfigError(f"series overlap at x = {sorted(overlap)}")
    merged = SeriesResult(name=a.name, x_label=a.x_label,
                          meta={**a.meta, **b.meta})
    sc = (speed_change_items(a.meta.get("speed_changes"))
          + speed_change_items(b.meta.get("speed_changes")))
    if sc:
        merged.meta["speed_changes"] = [
            [x, per_x] for x, per_x in sorted(sc, key=lambda it: it[0])]
    merged.points = sorted(a.points + b.points, key=lambda p: p.x)
    return merged
