"""Process-pool fan-out of independent sweep points.

Each sweep point (one x-value of one figure) is an independent
Monte-Carlo evaluation, so the natural parallel decomposition is one
point per worker process — the same owner-computes pattern as an MPI
scatter/gather, implemented with the standard library so the package
stays dependency-light.  Results come back in submission order, keeping
sweeps deterministic regardless of worker scheduling.

``n_jobs=1`` (the default) bypasses the pool entirely — on single-core
boxes the pickling round-trip costs more than it buys.

Failure semantics: the pools fail fast.  If any worker raises, the
outstanding futures are cancelled (``cancel_futures=True``) and the
error is re-raised as :class:`~repro.errors.ParallelError` carrying the
failing point's arguments, with the worker's exception chained as
``__cause__``.

There are two layers of parallelism: this module fans out across sweep
*points*, while :func:`~repro.experiments.runner.evaluate_application`
can additionally fan out the Monte-Carlo *runs* inside one point
(``RunConfig.n_jobs``).  When the point-level pool is active, the
per-point config is forced to ``n_jobs=1`` so workers never nest pools.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, List, Optional, Sequence, Tuple

from ..errors import ConfigError, ParallelError
from ..graph.andor import AndOrGraph, Application
from ..workloads.scaling import application_with_load
from .runner import EvaluationResult, RunConfig, evaluate_application


def resolve_jobs(n_jobs: Optional[int], n_items: Optional[int] = None) -> int:
    """Normalize an ``n_jobs`` request.

    ``None``/``0`` → all cores; negative → :class:`ConfigError`.  When
    ``n_items`` is given, the answer is additionally clamped to the
    amount of available work (never below 1), so a 32-core request for
    a 3-point sweep starts 3 workers, not 32 mostly-idle ones.
    """
    if n_jobs is None or n_jobs == 0:
        jobs = os.cpu_count() or 1
    elif n_jobs < 0:
        raise ConfigError(f"n_jobs must be positive, got {n_jobs}")
    else:
        jobs = n_jobs
    if n_items is not None:
        jobs = max(1, min(jobs, n_items))
    return jobs


def collect_in_order(pool: ProcessPoolExecutor, futures: Sequence,
                     labels: Sequence[str]) -> List:
    """Gather futures in submission order, failing fast with context.

    On the first worker exception the remaining futures are cancelled
    and the pool is shut down without waiting, then the error is
    re-raised as :class:`ParallelError` naming the failing work item.
    """
    results = []
    for future, label in zip(futures, labels):
        try:
            results.append(future.result())
        except Exception as exc:
            pool.shutdown(wait=False, cancel_futures=True)
            raise ParallelError(label, exc) from exc
    return results


def _evaluate_load_point(graph: AndOrGraph, load: float,
                         config: RunConfig) -> EvaluationResult:
    app = application_with_load(graph, load, config.n_processors)
    return evaluate_application(app, config)


def map_load_points(graph: AndOrGraph, loads: Sequence[float],
                    config: RunConfig,
                    n_jobs: int = 1) -> List[EvaluationResult]:
    """Evaluate one application at several loads, optionally in parallel."""
    jobs = resolve_jobs(n_jobs, n_items=len(loads))
    if jobs == 1:
        return [_evaluate_load_point(graph, ld, config) for ld in loads]
    point_config = config.with_(n_jobs=1)  # workers must not nest pools
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        futures = [pool.submit(_evaluate_load_point, graph, ld, point_config)
                   for ld in loads]
        return collect_in_order(pool, futures,
                                [f"load={ld!r}" for ld in loads])


def _evaluate_app_point(app: Application,
                        config: RunConfig) -> EvaluationResult:
    return evaluate_application(app, config)


def map_applications(apps: Sequence[Application], config: RunConfig,
                     n_jobs: int = 1) -> List[EvaluationResult]:
    """Evaluate several pre-built applications (e.g. an α sweep)."""
    jobs = resolve_jobs(n_jobs, n_items=len(apps))
    if jobs == 1:
        return [_evaluate_app_point(a, config) for a in apps]
    point_config = config.with_(n_jobs=1)  # workers must not nest pools
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        futures = [pool.submit(_evaluate_app_point, a, point_config)
                   for a in apps]
        return collect_in_order(pool, futures,
                                [f"app={a.name!r}" for a in apps])


def map_custom(fn: Callable, args_list: Sequence[Tuple],
               n_jobs: int = 1) -> List:
    """Generic fan-out for ablation sweeps (fn must be picklable)."""
    jobs = resolve_jobs(n_jobs, n_items=len(args_list))
    if jobs == 1:
        return [fn(*args) for args in args_list]
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        futures = [pool.submit(fn, *args) for args in args_list]
        return collect_in_order(pool, futures,
                                [f"args={args!r}" for args in args_list])
