"""Process-pool fan-out of independent sweep points.

Each sweep point (one x-value of one figure) is an independent
Monte-Carlo evaluation, so the natural parallel decomposition is one
point per worker process — the same owner-computes pattern as an MPI
scatter/gather, implemented with the standard library so the package
stays dependency-light.  Results come back in submission order, keeping
sweeps deterministic regardless of worker scheduling.

``n_jobs=1`` (the default, with no context supplied) bypasses the pool
entirely — on single-core boxes the pickling round-trip costs more than
it buys.

Since PR 4 the pool itself lives in an
:class:`~repro.experiments.engine.ExecutionContext`: pass one
``context`` to share a single persistent pool (and optionally an
evaluation cache) across every map call of a sweep, figure or suite,
instead of paying pool spin-up per call.  Without a context, each call
creates and disposes its own — the pre-PR-4 behaviour.

Failure semantics: deterministic worker exceptions fail fast — the
outstanding futures are cancelled and the error is re-raised as
:class:`~repro.errors.ParallelError` carrying the failing point's
arguments, with the original exception chained as ``__cause__``.
*Partial* failures (a crashed worker, a hung point, a transport
problem) are instead retried/re-dispatched by the execution context
according to the configs'
:class:`~repro.experiments.engine.RetryPolicy` knobs
(``max_retries``/``chunk_timeout``/``degrade``), degrading to serial
execution in the parent as the last resort — results are bit-identical
under every recovery path.

There are two layers of parallelism: this module fans out across sweep
*points*, while :func:`~repro.experiments.runner.evaluate_application`
can additionally fan out the Monte-Carlo *runs* inside one point
(``RunConfig.n_jobs``).  When the point-level pool is active, the
per-point config is forced to ``n_jobs=1`` so workers never nest pools.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Callable, List, Optional, Sequence, Tuple

from ..errors import ParallelError
from ..graph.andor import AndOrGraph, Application
from ..workloads.scaling import application_with_load
from .engine import ExecutionContext, resolve_jobs
from .runner import EvaluationResult, RunConfig, evaluate_application

__all__ = [
    "resolve_jobs", "collect_in_order", "map_evaluations",
    "map_load_points", "map_applications", "map_custom",
]


def collect_in_order(pool: ProcessPoolExecutor, futures: Sequence,
                     labels: Sequence[str]) -> List:
    """Gather futures in submission order, failing fast with context.

    On the first worker exception the remaining futures are cancelled
    and the pool is shut down without waiting, then the error is
    re-raised as :class:`ParallelError` naming the failing work item.
    """
    results = []
    for future, label in zip(futures, labels):
        try:
            results.append(future.result())
        except Exception as exc:
            pool.shutdown(wait=False, cancel_futures=True)
            raise ParallelError(label, exc) from exc
    return results


def _evaluate_app_point(index: int, app: Application,
                        config: RunConfig) -> EvaluationResult:
    from ..errors import FaultInjected
    from . import faults
    from .fused import ShardTask, run_shard
    if isinstance(app, ShardTask):
        # a fused-sweep shard traveling through the point protocol
        # (both backends route their tasks here, so shards inherit
        # retry/steal/degrade without a wire-protocol change); its own
        # shard-exec fault site fires inside run_shard
        return run_shard(app)
    if faults.fire("worker-chunk", key=index) == "raise":
        raise FaultInjected(f"injected worker fault at point {index}")
    return evaluate_application(app, config)


def map_evaluations(apps: Sequence[Application],
                    config, n_jobs: int = 1,
                    context: Optional[ExecutionContext] = None,
                    labels: Optional[Sequence[str]] = None,
                    fused: bool = True) -> List[EvaluationResult]:
    """Evaluate several applications on one shared execution context.

    The engine-aware core of every point mapper: consults the context's
    evaluation cache point by point (only misses are computed), then
    evaluates the misses by the cheapest applicable strategy —

    0. **dispatch**: when the context's backend is ``"dispatch"`` (and
       at least two executors resolve), misses ship to the
       work-stealing executor fleet
       (:func:`~repro.experiments.dispatch.dispatch_points`); an
       unreachable fleet falls through to the local strategies below;
    1. **fused** (the default): structurally homogeneous points are
       stacked into one array program and executed in a single batch-
       kernel pass in the parent, no pool at all
       (:func:`~repro.experiments.fused.evaluate_points_fused`);
    2. **point-level pool**: heterogeneous points (or ``fused=False``)
       fan out one point per worker over the persistent pool, with
       per-point configs forced to ``n_jobs=1`` (pools never nest);
    3. **serial loop**: when the resolved worker count is 1.

    Fresh results are stored back into the cache per point regardless
    of strategy, results keep submission order, and every strategy is
    bit-identical to a serial loop.

    ``config`` is one :class:`RunConfig` shared by every point, or a
    sequence of per-point configs (same length as ``apps``) for sweeps
    whose x-axis is a config field (processor count, overhead, …).
    """
    if isinstance(config, RunConfig):
        configs: List[RunConfig] = [config] * len(apps)
    else:
        configs = list(config)
        if len(configs) != len(apps):
            raise ParallelError(
                f"{len(configs)} configs for {len(apps)} applications",
                ValueError("apps/configs length mismatch"))
    if labels is None:
        labels = [f"app={app.name!r}" for app in apps]
    owned = context is None
    if context is not None:
        ctx = context
    else:
        # an owned context honors the configs' execution knobs (the CLI
        # ships backend/executors/connect through the RunConfig) and the
        # session defaults (REPRO_BACKEND / REPRO_EXECUTORS)
        from .engine import default_executors
        cfg0 = configs[0]
        ctx = ExecutionContext(
            n_jobs=resolve_jobs(n_jobs, n_items=len(apps)),
            backend=cfg0.backend,
            executors=(cfg0.executors if cfg0.executors is not None
                       else default_executors()),
            connect=cfg0.connect)
    try:
        results: List[Optional[EvaluationResult]] = [None] * len(apps)
        pending = list(range(len(apps)))
        keys: List[str] = []
        if ctx.cache is not None:
            # cache lookups happen here in the parent — workers stay
            # cache-blind, so concurrent sweeps never race on entries
            from .evalcache import evaluation_key
            keys = [evaluation_key(app, cfg)
                    for app, cfg in zip(apps, configs)]
            pending = []
            for i, app in enumerate(apps):
                hit = ctx.cache.get(keys[i], app.name, configs[i])
                if hit is not None:
                    results[i] = hit
                else:
                    pending.append(i)
        if not pending:
            return results

        def _fused_attempt():
            from .fused import evaluate_points_fused
            try:
                computed = evaluate_points_fused(
                    [apps[i] for i in pending],
                    [configs[i] for i in pending],
                    context=ctx)
            except Exception as exc:
                raise ParallelError(
                    f"fused sweep over {len(pending)} point(s)",
                    exc) from exc
            if computed is not None:
                for i, res in zip(pending, computed):
                    results[i] = res
                    if ctx.cache is not None:
                        ctx.cache.put(keys[i], res)
            return computed

        shard_requested = False
        if fused and len(pending) > 1:
            from .fused import default_shards
            shard_requested = (configs[0].shards is not None
                               or default_shards() is not None)

        if shard_requested:
            # a sharded fused sweep fans out over this context's own
            # backend (pool workers or the dispatch fleet), so it
            # outranks per-point dispatch of the demoted path
            if _fused_attempt() is not None:
                return results
            # not fusable: the per-point strategies below still apply

        if ctx.backend == "dispatch" and ctx.dispatch_jobs() >= 2:
            # distributed fan-out: pending points go to the executor
            # fleet; cache misses only, exactly like the local paths
            from .dispatch import dispatch_points
            computed = dispatch_points(
                ctx, [apps[i] for i in pending],
                [configs[i] for i in pending],
                labels=[labels[i] for i in pending],
                policy=configs[0].retry_policy(),
                keys=[keys[i] for i in pending] if keys else None)
            if computed is not None:
                for i, res in zip(pending, computed):
                    results[i] = res
                    if ctx.cache is not None:
                        ctx.cache.put(keys[i], res)
                return results
            # no executors reachable: degrade to the local paths below

        if fused and len(pending) > 1 and not shard_requested:
            if _fused_attempt() is not None:
                return results
            # not fusable: fall through to per-point evaluation

        if ctx.jobs(n_items=len(pending)) == 1:
            # serial point loop; a caller-supplied context provides the
            # cache (each point stores itself) and the opt-in run-level
            # pool — an owned one carries neither, so points keep
            # managing their own pools as before
            point_ctx = None if owned else ctx
            for i in pending:
                results[i] = evaluate_application(apps[i], configs[i],
                                                  context=point_ctx)
            return results
        # workers must not nest pools: point configs go out serial
        computed = ctx.map(
            _evaluate_app_point,
            [(i, apps[i], configs[i].with_(n_jobs=1))
             for i in pending],
            [labels[i] for i in pending],
            policy=configs[0].retry_policy())
        for i, res in zip(pending, computed):
            results[i] = res
            if ctx.cache is not None:
                ctx.cache.put(keys[i], res)
        return results
    finally:
        if owned:
            ctx.close()


def map_load_points(graph: AndOrGraph, loads: Sequence[float],
                    config: RunConfig, n_jobs: int = 1,
                    context: Optional[ExecutionContext] = None,
                    fused: bool = True) -> List[EvaluationResult]:
    """Evaluate one application at several loads.

    Load points share the graph shape, so by default the whole sweep
    fuses into one array program — even the plain serial call with no
    context goes through the fused path now, which is what makes
    ``sweep_load`` fast without any pool at all.
    """
    apps = []
    for ld in loads:
        try:
            apps.append(application_with_load(graph, ld, config.n_processors))
        except Exception as exc:
            raise ParallelError(f"load={ld!r}", exc) from exc
    return map_evaluations(apps, config, n_jobs=n_jobs, context=context,
                           labels=[f"load={ld!r}" for ld in loads],
                           fused=fused)


def map_applications(apps: Sequence[Application], config: RunConfig,
                     n_jobs: int = 1,
                     context: Optional[ExecutionContext] = None,
                     fused: bool = True) -> List[EvaluationResult]:
    """Evaluate several pre-built applications (e.g. an α sweep)."""
    return map_evaluations(apps, config, n_jobs=n_jobs, context=context,
                           fused=fused)


def map_custom(fn: Callable, args_list: Sequence[Tuple],
               n_jobs: int = 1,
               context: Optional[ExecutionContext] = None) -> List:
    """Generic fan-out for ablation sweeps (fn must be picklable)."""
    if context is None:
        jobs = resolve_jobs(n_jobs, n_items=len(args_list))
        if jobs == 1:
            return [fn(*args) for args in args_list]
        with ExecutionContext(n_jobs=jobs) as ctx:
            return ctx.map(fn, args_list)
    if context.jobs(n_items=len(args_list)) == 1:
        return [fn(*args) for args in args_list]
    return context.map(fn, args_list)
