"""Process-pool fan-out of independent sweep points.

Each sweep point (one x-value of one figure) is an independent
Monte-Carlo evaluation, so the natural parallel decomposition is one
point per worker process — the same owner-computes pattern as an MPI
scatter/gather, implemented with the standard library so the package
stays dependency-light.  Results come back in submission order, keeping
sweeps deterministic regardless of worker scheduling.

``n_jobs=1`` (the default) bypasses the pool entirely — on single-core
boxes the pickling round-trip costs more than it buys.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, List, Optional, Sequence, Tuple

from ..errors import ConfigError
from ..graph.andor import AndOrGraph, Application
from ..workloads.scaling import application_with_load
from .runner import EvaluationResult, RunConfig, evaluate_application


def resolve_jobs(n_jobs: Optional[int]) -> int:
    """Normalize an ``n_jobs`` request (None/0 → all cores, negative → error)."""
    if n_jobs is None or n_jobs == 0:
        return os.cpu_count() or 1
    if n_jobs < 0:
        raise ConfigError(f"n_jobs must be positive, got {n_jobs}")
    return n_jobs


def _evaluate_load_point(graph: AndOrGraph, load: float,
                         config: RunConfig) -> EvaluationResult:
    app = application_with_load(graph, load, config.n_processors)
    return evaluate_application(app, config)


def map_load_points(graph: AndOrGraph, loads: Sequence[float],
                    config: RunConfig,
                    n_jobs: int = 1) -> List[EvaluationResult]:
    """Evaluate one application at several loads, optionally in parallel."""
    jobs = resolve_jobs(n_jobs)
    if jobs == 1 or len(loads) <= 1:
        return [_evaluate_load_point(graph, ld, config) for ld in loads]
    with ProcessPoolExecutor(max_workers=min(jobs, len(loads))) as pool:
        futures = [pool.submit(_evaluate_load_point, graph, ld, config)
                   for ld in loads]
        return [f.result() for f in futures]


def _evaluate_app_point(app: Application,
                        config: RunConfig) -> EvaluationResult:
    return evaluate_application(app, config)


def map_applications(apps: Sequence[Application], config: RunConfig,
                     n_jobs: int = 1) -> List[EvaluationResult]:
    """Evaluate several pre-built applications (e.g. an α sweep)."""
    jobs = resolve_jobs(n_jobs)
    if jobs == 1 or len(apps) <= 1:
        return [_evaluate_app_point(a, config) for a in apps]
    with ProcessPoolExecutor(max_workers=min(jobs, len(apps))) as pool:
        futures = [pool.submit(_evaluate_app_point, a, config)
                   for a in apps]
        return [f.result() for f in futures]


def map_custom(fn: Callable, args_list: Sequence[Tuple],
               n_jobs: int = 1) -> List:
    """Generic fan-out for ablation sweeps (fn must be picklable)."""
    jobs = resolve_jobs(n_jobs)
    if jobs == 1 or len(args_list) <= 1:
        return [fn(*args) for args in args_list]
    with ProcessPoolExecutor(max_workers=min(jobs, len(args_list))) as pool:
        futures = [pool.submit(fn, *args) for args in args_list]
        return [f.result() for f in futures]
