"""Independent verification of simulated schedules.

The engine is the system under test, so the test suite needs an oracle
that does *not* share its code paths.  :func:`verify_trace` re-checks a
traced :class:`~repro.types.SimResult` against the application graph and
the power model from first principles:

* **precedence** — no task starts before every predecessor on its
  executed path has finished (AND/OR semantics resolved from the
  recorded path choices);
* **mutual exclusion** — no two tasks overlap on one processor;
* **legality** — every speed is an available level (discrete models),
  no actual execution time exceeds the WCET;
* **section synchronization** — no task of a later program section
  starts before the previous section drained (the paper's "all
  processors synchronize at an OR node");
* **timeliness** — the application finishes by its deadline;
* **energy** — the busy energy equals the per-record sum.

Violations are returned as a list of human-readable strings (empty =
verified); :func:`assert_valid_trace` raises instead, for use in tests.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..graph.andor import Application
from ..graph.sections import SectionStructure
from ..power.model import DiscretePowerModel, PowerModel
from ..types import SimResult, TaskRecord

_EPS = 1e-6


def executed_sections(structure: SectionStructure,
                      result: SimResult) -> List[int]:
    """The section ids visited by a traced run, in execution order."""
    order = [structure.root_id]
    sid = structure.root_id
    while True:
        exit_or = structure.section(sid).exit_or
        if exit_or is None:
            break
        branches = structure.branches(exit_or)
        if not branches:
            break
        if len(branches) == 1:
            sid = branches[0][0]
        else:
            choice = result.path_choices.get(exit_or)
            if choice is None:
                break  # application ended before this OR fired? defensive
            sid = int(choice)
        order.append(sid)
    return order


def verify_trace(app: Application, structure: SectionStructure,
                 result: SimResult,
                 power: Optional[PowerModel] = None) -> List[str]:
    """Check a traced run; returns a list of violations (empty = OK)."""
    problems: List[str] = []
    if not result.trace:
        return ["trace is empty (simulate with collect_trace=True)"]
    graph = app.graph
    records: Dict[str, TaskRecord] = {}
    for rec in result.trace:
        if rec.name in records:
            problems.append(f"task {rec.name!r} appears twice in trace")
        records[rec.name] = rec

    # legality of each record
    for rec in result.trace:
        node = graph.node(rec.name)
        if not node.is_computation:
            problems.append(f"{rec.name!r} is not a computation node")
            continue
        if rec.actual_cycles > node.wcet * (1 + _EPS):
            problems.append(
                f"{rec.name!r}: actual {rec.actual_cycles} > WCET "
                f"{node.wcet}")
        if rec.finish < rec.start - _EPS:
            problems.append(f"{rec.name!r}: finish before start")
        expected_wall = rec.actual_cycles / rec.speed
        if abs(rec.duration - expected_wall) > _EPS * max(expected_wall, 1):
            problems.append(
                f"{rec.name!r}: duration {rec.duration:.6g} != actual/"
                f"speed {expected_wall:.6g}")
        if isinstance(power, DiscretePowerModel):
            if not any(abs(rec.speed - lv) < 1e-9
                       for lv in power.levels()):
                problems.append(
                    f"{rec.name!r}: speed {rec.speed} is not a level of "
                    f"{power.name}")

    # mutual exclusion per processor
    by_proc: Dict[int, List[TaskRecord]] = {}
    for rec in result.trace:
        by_proc.setdefault(rec.processor, []).append(rec)
    for pid, recs in by_proc.items():
        recs = sorted(recs, key=lambda r: r.start)
        for a, b in zip(recs, recs[1:]):
            if b.start < a.finish - _EPS:
                problems.append(
                    f"processor {pid}: {a.name!r} and {b.name!r} overlap "
                    f"([{a.start:.4g},{a.finish:.4g}] vs start "
                    f"{b.start:.4g})")

    # executed path and coverage
    sections = executed_sections(structure, result)
    expected_tasks = set()
    for sid in sections:
        for n in structure.section(sid).nodes:
            if graph.node(n).is_computation:
                expected_tasks.add(n)
    traced = set(records)
    if traced != expected_tasks:
        missing = sorted(expected_tasks - traced)
        extra = sorted(traced - expected_tasks)
        if missing:
            problems.append(f"tasks on executed path not run: {missing}")
        if extra:
            problems.append(f"tasks run off the executed path: {extra}")

    # finish times per node (AND nodes inherit max of predecessors)
    finish: Dict[str, float] = {}

    def resolve_finish(name: str, section_nodes: set) -> float:
        if name in finish:
            return finish[name]
        node = graph.node(name)
        if node.is_computation:
            f = records[name].finish if name in records else 0.0
        else:  # AND node
            f = max((resolve_finish(p, section_nodes)
                     for p in graph.predecessors(name)
                     if p in section_nodes), default=0.0)
        finish[name] = f
        return f

    # precedence within sections + section synchronization
    prev_drain = 0.0
    for sid in sections:
        nodes = set(structure.section(sid).nodes)
        drain = prev_drain
        for name in structure.section(sid).nodes:
            node = graph.node(name)
            if not node.is_computation or name not in records:
                continue
            rec = records[name]
            if rec.start < prev_drain - _EPS:
                problems.append(
                    f"{name!r} started at {rec.start:.6g} before its "
                    f"section's OR fired at {prev_drain:.6g}")
            for p in graph.predecessors(name):
                if p not in nodes:
                    continue  # the entry OR: covered by prev_drain
                pf = resolve_finish(p, nodes)
                if rec.start < pf - _EPS:
                    problems.append(
                        f"{name!r} started at {rec.start:.6g} before "
                        f"predecessor {p!r} finished at {pf:.6g}")
            drain = max(drain, rec.finish)
        prev_drain = drain

    # timeliness and totals
    if result.finish_time > app.deadline * (1 + _EPS):
        problems.append(
            f"finished at {result.finish_time:.6g} past deadline "
            f"{app.deadline:.6g}")
    busy_from_trace = sum(r.energy for r in result.trace)
    if abs(busy_from_trace - result.energy.busy) > \
            _EPS * max(busy_from_trace, 1.0):
        problems.append(
            f"busy energy {result.energy.busy:.6g} != trace sum "
            f"{busy_from_trace:.6g}")
    return problems


def assert_valid_trace(app: Application, structure: SectionStructure,
                       result: SimResult,
                       power: Optional[PowerModel] = None) -> None:
    """Raise ``AssertionError`` listing every violation found."""
    problems = verify_trace(app, structure, result, power)
    assert not problems, "; ".join(problems)
