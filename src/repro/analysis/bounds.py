"""Energy bounds for calibrating the schemes.

The paper motivates speculation with the clairvoyant single-speed
optimum; these helpers compute concrete bounds for a plan (and
optionally a realization):

* :func:`continuous_uniform_bound` — the idealized lower bound: run the
  realized workload at one *continuous* speed that stretches its
  max-speed makespan exactly to the deadline, no level quantization, no
  switches.  No on-line scheme beats this on the same realization under
  the convex power model.
* :func:`static_bound` — the best *static* (realization-independent)
  energy: the continuous uniform speed for the canonical worst case —
  what SPM would achieve with infinite levels.
* :func:`npm_energy` — the normalization baseline in closed form
  (useful to sanity-check the simulator's NPM runs).
"""

from __future__ import annotations

from typing import Optional

from ..core.base import _FixedRun
from ..offline.plan import OfflinePlan
from ..power.model import ContinuousPowerModel, PowerModel
from ..power.overhead import NO_OVERHEAD
from ..sim.engine import simulate
from ..sim.realization import Realization


def _continuous_like(power: PowerModel) -> ContinuousPowerModel:
    """A continuous model matching ``power``'s idle fraction (s_min 0)."""
    return ContinuousPowerModel(s_min=0.0, f_max_mhz=power.f_max_mhz,
                                idle_fraction=power.idle_fraction)


def npm_energy(plan: OfflinePlan, power: PowerModel,
               realization: Realization) -> float:
    """Energy of the NPM baseline on one realization."""
    run = _FixedRun("NPM-bound", power.s_max)
    res = simulate(plan, run, power, NO_OVERHEAD, realization)
    return res.total_energy


def continuous_uniform_bound(plan: OfflinePlan, power: PowerModel,
                             realization: Realization) -> float:
    """Clairvoyant continuous single-speed lower bound (one realization).

    Runs the realized workload at maximum speed to measure its makespan
    ``F``, then evaluates the same schedule uniformly stretched to the
    deadline at speed ``F / D`` under the continuous (cubic) power
    model.  Quantization, S_min and switch overheads can only add to
    this, so every scheme's measured energy should sit above it.
    """
    cont = _continuous_like(power)
    probe = simulate(plan, _FixedRun("bound-probe", 1.0), cont,
                     NO_OVERHEAD, realization, check_deadline=False)
    speed = min(max(probe.finish_time / plan.deadline, 1e-9), 1.0)
    run = _FixedRun("bound", speed)
    res = simulate(plan, run, cont, NO_OVERHEAD, realization)
    return res.total_energy


def static_bound(plan: OfflinePlan, power: PowerModel,
                 realization: Optional[Realization] = None) -> float:
    """Best static uniform speed (infinite levels): ``T_worst / D``.

    With a realization, evaluates that speed on it; without one,
    returns the worst-case energy of the stretched canonical schedule.
    """
    cont = _continuous_like(power)
    speed = min(max(plan.t_worst / plan.deadline, 1e-9), 1.0)
    if realization is None:
        # all-WCET workload: busy time = t_worst/speed per definition
        busy_work = sum(n.wcet for n in plan.app.graph.computation_nodes())
        busy = cont.task_energy(speed, busy_work)
        window = plan.n_processors * plan.deadline
        idle = cont.idle_energy(window - busy_work / speed)
        return busy + idle
    run = _FixedRun("static-bound", speed)
    res = simulate(plan, run, cont, NO_OVERHEAD, realization)
    return res.total_energy
