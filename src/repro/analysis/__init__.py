"""Analysis tools: trace verification, critical paths, slack, bounds.

* :func:`verify_trace` / :func:`assert_valid_trace` — an independent
  oracle for simulated schedules (used heavily by the test suite);
* :func:`graph_metrics` / :func:`all_path_metrics` — work, span and
  parallelism per execution path;
* :func:`slack_profile` / :func:`realized_runtime_slack` — static vs
  dynamic slack decomposition;
* :func:`continuous_uniform_bound` / :func:`static_bound` — idealized
  energy bounds the schemes can be calibrated against.
"""

from .bounds import continuous_uniform_bound, npm_energy, static_bound
from .critical import (
    GraphMetrics,
    PathMetrics,
    all_path_metrics,
    graph_metrics,
    path_metrics,
    section_span,
    section_work,
)
from .slack import (
    SlackProfile,
    lst_headroom,
    realized_runtime_slack,
    slack_profile,
)
from .verify import assert_valid_trace, executed_sections, verify_trace

__all__ = [
    "verify_trace",
    "assert_valid_trace",
    "executed_sections",
    "GraphMetrics",
    "PathMetrics",
    "graph_metrics",
    "path_metrics",
    "all_path_metrics",
    "section_span",
    "section_work",
    "SlackProfile",
    "slack_profile",
    "realized_runtime_slack",
    "lst_headroom",
    "continuous_uniform_bound",
    "static_bound",
    "npm_energy",
]
