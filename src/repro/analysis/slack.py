"""Slack accounting: where does the energy saving come from?

The paper distinguishes *static* slack (deadline minus canonical worst
case) from *dynamic* slack (tasks finishing under their WCET, and short
OR paths).  These helpers quantify both for a plan / a set of
realizations, which the analysis examples use to explain the figures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

import numpy as np

from ..graph.paths import iter_paths, path_acet_sum, path_wcet_sum
from ..offline.plan import OfflinePlan
from ..sim.realization import Realization


@dataclass(frozen=True)
class SlackProfile:
    """Static and expected dynamic slack of a planned application."""

    deadline: float
    static_slack: float          # D - T_worst
    expected_path_slack: float   # E[T_worst - worst(chosen path)]
    expected_runtime_slack: float  # E[sum(wcet - acet)] on chosen path

    @property
    def static_fraction(self) -> float:
        return self.static_slack / self.deadline

    @property
    def total_expected(self) -> float:
        return (self.static_slack + self.expected_path_slack
                + self.expected_runtime_slack)


def slack_profile(plan: OfflinePlan) -> SlackProfile:
    """Decompose the slack sources of a planned application."""
    structure = plan.structure
    e_path = 0.0
    e_runtime = 0.0
    for p in iter_paths(structure):
        wc = path_wcet_sum(structure, p)
        ac = path_acet_sum(structure, p)
        # serial-work proxies: schedule-level numbers depend on m, but
        # ratios are what the figures' explanations rely on
        e_path += p.probability * (plan.t_worst - min(plan.t_worst, wc))
        e_runtime += p.probability * (wc - ac)
    return SlackProfile(
        deadline=plan.deadline,
        static_slack=plan.static_slack,
        expected_path_slack=e_path,
        expected_runtime_slack=e_runtime,
    )


def realized_runtime_slack(plan: OfflinePlan,
                           realizations: Iterable[Realization]
                           ) -> np.ndarray:
    """Per-realization dynamic slack (WCET minus actual, executed path).

    Measures the raw material the dynamic schemes reclaim: for each
    realization, the summed gap between worst case and actual execution
    time over the tasks on the chosen path.
    """
    structure = plan.structure
    graph = plan.app.graph
    out: List[float] = []
    for rl in realizations:
        sid = structure.root_id
        total = 0.0
        while True:
            for name in structure.section(sid).nodes:
                node = graph.node(name)
                if node.is_computation:
                    total += node.wcet - rl.actual(name)
            exit_or = structure.section(sid).exit_or
            if exit_or is None:
                break
            branches = structure.branches(exit_or)
            if not branches:
                break
            sid = branches[0][0] if len(branches) == 1 \
                else rl.choices[exit_or]
        out.append(total)
    return np.asarray(out)


def lst_headroom(plan: OfflinePlan) -> np.ndarray:
    """Per-task gap between the latest start time and the canonical start.

    Zero headroom everywhere means a fully taut schedule (load 1.0);
    large headroom is static slack the greedy scheme will claim.
    """
    gaps: List[float] = []
    for sp in plan.sections.values():
        for name, lst in sp.lst.items():
            canonical_start = sp.schedule.tasks[name].start
            gaps.append(lst - canonical_start)
    return np.asarray(sorted(gaps))
