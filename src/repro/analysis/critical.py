"""Critical-path and parallelism analysis of AND/OR applications.

Quantifies *why* a workload behaves the way it does in the figures:

* **work** — total computation on a path (sum of WCETs);
* **span** — the critical path (longest chain of dependent tasks,
  OR-synchronization included: sections serialize);
* **parallelism** — work / span; with parallelism below the processor
  count, synchronization forces idleness — the effect the paper blames
  for the dynamic schemes' decline on 6 processors.

All quantities are per execution path; expectation over paths uses the
branch probabilities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..graph.andor import AndOrGraph
from ..graph.paths import ExecutionPath, iter_paths
from ..graph.sections import SectionStructure


@dataclass(frozen=True)
class PathMetrics:
    """Work/span/parallelism of one execution path."""

    key: str
    probability: float
    work: float
    span: float

    @property
    def parallelism(self) -> float:
        return self.work / self.span if self.span > 0 else 0.0


def section_span(structure: SectionStructure, sid: int,
                 use_acet: bool = False) -> float:
    """Longest dependency chain inside one section (WCET by default)."""
    graph = structure.graph
    nodes = structure.section(sid).nodes
    members = set(nodes)
    longest: Dict[str, float] = {}
    # nodes are stored in graph insertion order; process topologically
    order = [n for n in graph.topological_order() if n in members]
    for name in order:
        node = graph.node(name)
        dur = node.acet if use_acet else node.wcet
        best_pred = max((longest[p] for p in graph.predecessors(name)
                         if p in members), default=0.0)
        longest[name] = best_pred + dur
    return max(longest.values(), default=0.0)


def section_work(structure: SectionStructure, sid: int,
                 use_acet: bool = False) -> float:
    graph = structure.graph
    total = 0.0
    for n in structure.section(sid).nodes:
        node = graph.node(n)
        total += node.acet if use_acet else node.wcet
    return total


def path_metrics(structure: SectionStructure, path: ExecutionPath,
                 use_acet: bool = False) -> PathMetrics:
    """Work and span of one execution path (sections serialize at ORs)."""
    work = 0.0
    span = 0.0
    for sid in path.sections:
        work += section_work(structure, sid, use_acet)
        span += section_span(structure, sid, use_acet)
    return PathMetrics(key=path.key(), probability=path.probability,
                       work=work, span=span)


def all_path_metrics(structure: SectionStructure,
                     use_acet: bool = False) -> List[PathMetrics]:
    return [path_metrics(structure, p, use_acet)
            for p in iter_paths(structure)]


@dataclass(frozen=True)
class GraphMetrics:
    """Application-level summary over all execution paths."""

    expected_work: float
    expected_span: float
    max_work: float
    max_span: float
    expected_parallelism: float

    def effective_processors(self, m: int) -> float:
        """Processors the application can actually keep busy."""
        return min(float(m), self.expected_parallelism)


def graph_metrics(graph_or_structure, use_acet: bool = False
                  ) -> GraphMetrics:
    """Summarize work/span/parallelism of an application graph."""
    if isinstance(graph_or_structure, AndOrGraph):
        structure = SectionStructure(graph_or_structure)
    else:
        structure = graph_or_structure
    metrics = all_path_metrics(structure, use_acet)
    e_work = sum(m.probability * m.work for m in metrics)
    e_span = sum(m.probability * m.span for m in metrics)
    return GraphMetrics(
        expected_work=e_work,
        expected_span=e_span,
        max_work=max(m.work for m in metrics),
        max_span=max(m.span for m in metrics),
        expected_parallelism=e_work / e_span if e_span > 0 else 0.0,
    )
