"""Exception hierarchy for the ``repro`` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing the common cases (malformed graphs, infeasible
deadlines, bad power-model parameters).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class GraphError(ReproError):
    """A structural problem with an AND/OR graph.

    Raised for cycles, dangling edges, duplicate node names, OR branch
    probabilities that do not sum to one, and violations of the
    section-structured OR semantics the paper assumes (all processors
    synchronize at an OR node).
    """


class ValidationError(GraphError):
    """A graph failed explicit validation (:func:`repro.graph.validate`)."""


class InfeasibleError(ReproError):
    """The offline phase proved the application cannot meet its deadline.

    Mirrors the paper's off-line failure case: if the canonical schedule of
    the longest path exceeds the deadline the algorithm "fails to guarantee
    the deadline" and no online phase is attempted.
    """

    def __init__(self, worst_case: float, deadline: float, detail: str = ""):
        self.worst_case = worst_case
        self.deadline = deadline
        msg = (
            f"canonical worst-case finish time {worst_case:.6g} exceeds "
            f"deadline {deadline:.6g}"
        )
        if detail:
            msg += f" ({detail})"
        super().__init__(msg)


class PowerModelError(ReproError):
    """Invalid power-model configuration (empty level table, bad voltage...)."""


class SimulationError(ReproError):
    """An internal inconsistency detected while simulating.

    These indicate bugs (e.g. a deadline miss under a scheme that is proven
    to meet deadlines) and are therefore *raised*, never swallowed.
    """


class DeadlineMissError(SimulationError):
    """A simulated run finished after its deadline.

    For the paper's schemes this must never happen when the offline phase
    succeeded (Theorem 1); the simulator raises it eagerly so property tests
    can falsify the implementation rather than silently producing bad energy
    numbers.
    """

    def __init__(self, finish_time: float, deadline: float, scheme: str = "?"):
        self.finish_time = finish_time
        self.deadline = deadline
        self.scheme = scheme
        super().__init__(
            f"scheme {scheme!r} finished at {finish_time:.6g} past deadline "
            f"{deadline:.6g}"
        )


class ConfigError(ReproError):
    """Invalid experiment or workload configuration."""


class ParallelError(ReproError):
    """A worker process failed during a parallel fan-out.

    Wraps the original exception together with the failing work item's
    context (the sweep point or run-chunk arguments), so a crash inside
    a process pool is attributable without digging through subprocess
    tracebacks.  The original exception is chained as ``__cause__``.
    """

    def __init__(self, label: str, cause: BaseException):
        self.label = label
        super().__init__(
            f"parallel worker failed for {label}: "
            f"{type(cause).__name__}: {cause}"
        )


class TransportError(ReproError):
    """A worker could not receive its chunk over the fast transport.

    Raised worker-side when attaching the shared-memory realization
    segment fails (segment gone, ``/dev/shm`` trouble, or an injected
    fault).  The parent treats it as a *transport* problem, not a data
    problem: the affected chunk is re-dispatched over the pickling
    fallback transport while the rest of the sweep stays on shared
    memory.  Deliberately a plain single-message exception so it
    pickles cleanly across the process boundary.
    """


class DispatchError(ReproError):
    """A distributed-dispatch transport or fleet problem.

    Raised driver-side for wire-protocol violations (oversized or
    undecodable frames), lost executor connections, hung points past
    their ``chunk_timeout``, and a fleet with no reachable executors.
    Classified as *retryable* by the dispatcher — the point is
    re-dispatched to another executor — with the whole-fleet case
    degrading to the local execution path instead.  Like
    :class:`TransportError` it describes *how* the work travelled, not
    the work itself, so recovery never changes results.
    """


class FaultInjected(ReproError):
    """An error raised on purpose by the fault-injection layer.

    Only ever raised when a :class:`repro.experiments.faults.FaultPlan`
    is installed (chaos tests); production code never constructs it.
    Classified as *retryable* by the resilient executor, which is
    exactly what makes it useful: it exercises the per-chunk retry path
    without killing a worker process.
    """
