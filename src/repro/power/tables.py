"""Voltage/frequency tables for the two processor models in the paper.

Table 1 (Transmeta TM5400 / Crusoe "LongRun"): 16 settings between
200 MHz at 1.10 V and 700 MHz at 1.65 V.  The OCR of the paper destroys the
individual entries; we rebuild the table with equally spaced frequencies
and voltages over the documented range, matching the level count and
endpoints the paper states ("There are 16 voltage/speed settings between
[700]MHz (1.65V) and 200MHz (1.10V)").  The behavioural property the
evaluation relies on — *many finely spaced levels* — is preserved exactly.

Table 2 (Intel XScale 80200): the standard table used throughout the
authors' follow-on papers: five widely spaced levels with a non-linear
voltage/frequency relationship.  This matches the paper's commentary
("fewer speed levels but wider speed range between levels", "SPM runs at
400MHz" at moderate load, "runs at S_max rather than 900MHz" at load 0.9).
"""

from __future__ import annotations

from typing import List, Tuple

#: (frequency in MHz, voltage in V) pairs, ascending by frequency.
FreqVolt = Tuple[float, float]


def _transmeta_levels() -> List[FreqVolt]:
    n = 16
    f_lo, f_hi = 200.0, 700.0
    v_lo, v_hi = 1.10, 1.65
    levels = []
    for i in range(n):
        frac = i / (n - 1)
        levels.append((round(f_lo + frac * (f_hi - f_lo), 2),
                       round(v_lo + frac * (v_hi - v_lo), 4)))
    return levels


#: Table 1 of the paper (reconstructed; see module docstring).
TRANSMETA_TM5400: List[FreqVolt] = _transmeta_levels()

#: Table 2 of the paper: Intel XScale 80200.
INTEL_XSCALE: List[FreqVolt] = [
    (150.0, 0.75),
    (400.0, 1.00),
    (600.0, 1.30),
    (800.0, 1.60),
    (1000.0, 1.80),
]


def normalized_levels(table: List[FreqVolt]) -> List[Tuple[float, float]]:
    """Return ``(speed, voltage_ratio)`` pairs normalized to the top level.

    Speeds are fractions of the maximum frequency; voltage ratios are
    fractions of the maximum voltage, so dynamic power at a level is
    ``v_ratio**2 * speed`` in units of the maximum dynamic power.
    """
    if not table:
        raise ValueError("empty frequency/voltage table")
    f_max = max(f for f, _ in table)
    v_max = max(v for _, v in table)
    return [(f / f_max, v / v_max) for f, v in sorted(table)]


def format_table(table: List[FreqVolt], columns: int = 4) -> str:
    """Render a voltage/speed table in the paper's row-major layout."""
    entries = sorted(table, reverse=True)
    header = ("f(MHz)", "V(V)")
    cells = [f"{f:7.0f} {v:5.2f}" for f, v in entries]
    rows: List[str] = []
    head = "  ".join(f"{header[0]:>7} {header[1]:>5}" for _ in range(columns))
    rows.append(head)
    for i in range(0, len(cells), columns):
        rows.append("  ".join(cells[i:i + columns]))
    return "\n".join(rows)
