"""Power and processor models (Section 2.3 of the paper).

Public surface:

* :class:`PowerModel`, :class:`ContinuousPowerModel`,
  :class:`DiscretePowerModel` — speed levels, voltages, power and energy.
* :func:`transmeta_model` / :func:`xscale_model` — the paper's Table 1
  and Table 2 processors.
* :class:`OverheadModel` — speed-computation and speed-adjustment costs.
"""

from .model import (
    DEFAULT_IDLE_FRACTION,
    ContinuousPowerModel,
    DiscretePowerModel,
    PowerModel,
    make_power_model,
    transmeta_model,
    xscale_model,
)
from .overhead import NO_OVERHEAD, PAPER_OVERHEAD, OverheadModel
from .tables import INTEL_XSCALE, TRANSMETA_TM5400, format_table, normalized_levels

__all__ = [
    "DEFAULT_IDLE_FRACTION",
    "ContinuousPowerModel",
    "DiscretePowerModel",
    "PowerModel",
    "make_power_model",
    "transmeta_model",
    "xscale_model",
    "OverheadModel",
    "NO_OVERHEAD",
    "PAPER_OVERHEAD",
    "INTEL_XSCALE",
    "TRANSMETA_TM5400",
    "format_table",
    "normalized_levels",
]
