"""Processor power/speed models.

The paper assumes dynamic power dominates:

.. math:: P_d = C_{ef} \\, V_{dd}^2 \\, f

with speed (clock frequency) almost linear in supply voltage.  We
normalize: speed ``1.0`` is the maximum frequency, power ``1.0`` is the
dynamic power at the top voltage/frequency level.  A task that needs
``c`` time units at maximum speed takes ``c / s`` wall-clock units at
speed ``s`` and consumes ``v(s)^2 * c`` energy units — quadratic energy
savings for a linear slowdown, exactly the relation in Section 2.3.

Two families:

* :class:`ContinuousPowerModel` — idealized infinite levels with
  ``V ∝ f`` (used for sanity baselines and ablations).
* :class:`DiscretePowerModel` — a finite voltage/frequency table
  (Transmeta TM5400 or Intel XScale); speeds snap **up** to the next
  level so deadlines are never endangered by quantization.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..errors import PowerModelError
from .tables import INTEL_XSCALE, TRANSMETA_TM5400, FreqVolt, normalized_levels

#: Idle power as a fraction of maximum power (the paper assumes "an idle
#: processor consumes 5% of the maximal power level").
DEFAULT_IDLE_FRACTION = 0.05


class PowerModel:
    """Common interface of continuous and discrete power models."""

    #: human-readable name used in reports
    name: str = "abstract"
    #: maximum frequency in MHz (to convert cycle counts to time units)
    f_max_mhz: float = 1.0
    #: idle power as fraction of max power
    idle_fraction: float = DEFAULT_IDLE_FRACTION

    # -- speed quantization -------------------------------------------------
    @property
    def s_min(self) -> float:
        raise NotImplementedError

    @property
    def s_max(self) -> float:
        return 1.0

    def snap_up(self, speed: float) -> float:
        """Lowest available speed >= ``speed`` (clamped to [s_min, s_max])."""
        raise NotImplementedError

    def bracket(self, speed: float) -> Tuple[float, float]:
        """Adjacent available speeds ``(f_lo, f_hi)`` with f_lo <= speed <= f_hi."""
        raise NotImplementedError

    def levels(self) -> Tuple[float, ...]:
        """All available speeds, ascending (continuous models return ())."""
        raise NotImplementedError

    # -- power --------------------------------------------------------------
    def voltage_ratio(self, speed: float) -> float:
        """Supply voltage at ``speed`` as a fraction of the top voltage."""
        raise NotImplementedError

    def power(self, speed: float) -> float:
        """Dynamic power at ``speed`` as a fraction of maximum power."""
        v = self.voltage_ratio(speed)
        return v * v * speed

    @property
    def idle_power(self) -> float:
        return self.idle_fraction

    # -- energy helpers -----------------------------------------------------
    def busy_energy(self, speed: float, wall_time: float) -> float:
        """Energy of executing for ``wall_time`` at ``speed``."""
        if wall_time < 0:
            raise PowerModelError(f"negative wall time {wall_time}")
        return self.power(speed) * wall_time

    def task_energy(self, speed: float, work_at_max: float) -> float:
        """Energy of ``work_at_max`` time-units-at-S_max of work run at ``speed``."""
        if speed <= 0:
            raise PowerModelError(f"non-positive speed {speed}")
        return self.busy_energy(speed, work_at_max / speed)

    def idle_energy(self, wall_time: float) -> float:
        if wall_time < -1e-9:
            raise PowerModelError(f"negative idle time {wall_time}")
        return self.idle_power * max(wall_time, 0.0)

    def cycles_to_time(self, cycles: float, speed: float = 1.0) -> float:
        """Convert a cycle count to wall-clock time units at ``speed``.

        One time unit is 1 µs when frequencies are in MHz, so ``cycles``
        at the maximum frequency take ``cycles / f_max_mhz`` time units.
        """
        if speed <= 0:
            raise PowerModelError(f"non-positive speed {speed}")
        return cycles / self.f_max_mhz / speed

    # -- vectorized tables --------------------------------------------------
    def power_table(self, speeds) -> np.ndarray:
        """Power at each of ``speeds`` as a read-only float array.

        The batch kernels used to rebuild this with a per-call list
        comprehension; it is now cached on the model instance, keyed by
        the speed vector's bytes (a sweep reuses a handful of distinct
        vectors, so the cache stays small).  Entries go through the
        scalar :meth:`power`, so every value is the exact float the
        scalar engine uses.
        """
        cache = self.__dict__.setdefault("_power_tables", {})
        arr_speeds = np.asarray(speeds, dtype=np.float64)
        key = arr_speeds.tobytes()
        table = cache.get(key)
        if table is None:
            table = np.array([self.power(float(s)) for s in arr_speeds])
            table.setflags(write=False)
            cache[key] = table
        return table


class ContinuousPowerModel(PowerModel):
    """Idealized model: any speed in ``[s_min, 1]``, voltage ∝ frequency.

    With ``V ∝ f``, power is cubic in speed and the energy of a fixed
    amount of work is quadratic in speed — the textbook DVS model.
    """

    name = "continuous"

    def __init__(self, s_min: float = 0.0, f_max_mhz: float = 1000.0,
                 idle_fraction: float = DEFAULT_IDLE_FRACTION):
        if not (0.0 <= s_min < 1.0):
            raise PowerModelError(f"s_min must be in [0, 1), got {s_min}")
        if f_max_mhz <= 0:
            raise PowerModelError(f"f_max_mhz must be positive, got {f_max_mhz}")
        if not (0.0 <= idle_fraction <= 1.0):
            raise PowerModelError(
                f"idle_fraction must be in [0, 1], got {idle_fraction}")
        self._s_min = s_min
        self.f_max_mhz = f_max_mhz
        self.idle_fraction = idle_fraction

    @property
    def s_min(self) -> float:
        return self._s_min

    def snap_up(self, speed: float) -> float:
        return min(max(speed, self._s_min if self._s_min > 0 else 1e-9), 1.0)

    def bracket(self, speed: float) -> Tuple[float, float]:
        s = self.snap_up(speed)
        return (s, s)

    def levels(self) -> Tuple[float, ...]:
        return ()

    def voltage_ratio(self, speed: float) -> float:
        if speed < 0 or speed > 1 + 1e-12:
            raise PowerModelError(f"speed {speed} outside [0, 1]")
        return speed


class DiscretePowerModel(PowerModel):
    """A processor with a finite voltage/frequency table.

    Speeds requested between levels snap up to the next level; the
    voltage of each level comes from the table, so power/energy reflect
    the *real* (non-linear) voltage/frequency relation the paper uses.
    """

    def __init__(self, table: Sequence[FreqVolt], name: str = "discrete",
                 idle_fraction: float = DEFAULT_IDLE_FRACTION):
        table = list(table)
        if len(table) < 2:
            raise PowerModelError("need at least two voltage/frequency levels")
        freqs = [f for f, _ in table]
        if len(set(freqs)) != len(freqs):
            raise PowerModelError("duplicate frequencies in level table")
        if any(f <= 0 for f, _ in table) or any(v <= 0 for _, v in table):
            raise PowerModelError("frequencies and voltages must be positive")
        pairs = sorted(table)
        volts = [v for _, v in pairs]
        if any(v2 < v1 for v1, v2 in zip(volts, volts[1:])):
            raise PowerModelError("voltage must be non-decreasing in frequency")
        if not (0.0 <= idle_fraction <= 1.0):
            raise PowerModelError(
                f"idle_fraction must be in [0, 1], got {idle_fraction}")
        self.name = name
        self.table = pairs
        self.f_max_mhz = pairs[-1][0]
        self.idle_fraction = idle_fraction
        norm = normalized_levels(pairs)
        self._speeds: List[float] = [s for s, _ in norm]
        self._vratio: List[float] = [v for _, v in norm]
        # power lookup is the simulator's hottest call (profiled: the
        # bisect in level_index dominated); exact level speeds hit the
        # dict, anything else falls back to snap-up + dict
        self._power_by_speed: Dict[float, float] = {
            s: v * v * s for s, v in zip(self._speeds, self._vratio)}

    @property
    def s_min(self) -> float:
        return self._speeds[0]

    def levels(self) -> Tuple[float, ...]:
        return tuple(self._speeds)

    def level_index(self, speed: float) -> int:
        """Index of the level whose speed equals ``speed`` (within fp noise)."""
        i = bisect.bisect_left(self._speeds, speed - 1e-12)
        if i >= len(self._speeds) or abs(self._speeds[i] - speed) > 1e-9:
            raise PowerModelError(f"{speed} is not an available level")
        return i

    def snap_up(self, speed: float) -> float:
        if speed <= self._speeds[0]:
            return self._speeds[0]
        if speed >= self._speeds[-1] - 1e-12:
            return self._speeds[-1]
        i = bisect.bisect_left(self._speeds, speed - 1e-12)
        return self._speeds[i]

    def bracket(self, speed: float) -> Tuple[float, float]:
        hi = self.snap_up(speed)
        i = self.level_index(hi)
        lo = self._speeds[max(i - 1, 0)]
        if lo > speed:  # speed below s_min: both ends clamp to s_min
            lo = hi
        return (lo, hi)

    def voltage_ratio(self, speed: float) -> float:
        i = self.level_index(speed)
        return self._vratio[i]

    def power(self, speed: float) -> float:
        # snapping here keeps callers honest: only level speeds draw power
        p = self._power_by_speed.get(speed)
        if p is not None:
            return p
        return self._power_by_speed[self.snap_up(speed)]

    def level_speed_table(self) -> np.ndarray:
        """The level speeds as a read-only ascending float array (the
        vector counterpart of :meth:`levels`, cached on the instance)."""
        table = self.__dict__.get("_level_speed_table")
        if table is None:
            table = np.asarray(self._speeds, dtype=np.float64)
            table.setflags(write=False)
            self._level_speed_table = table
        return table

    def level_power_table(self) -> np.ndarray:
        """Power draw at each level, cached (see :meth:`power_table`)."""
        return self.power_table(self._speeds)


def transmeta_model(idle_fraction: float = DEFAULT_IDLE_FRACTION) -> DiscretePowerModel:
    """The paper's Table 1 processor (Transmeta TM5400, 16 levels)."""
    return DiscretePowerModel(TRANSMETA_TM5400, name="transmeta",
                              idle_fraction=idle_fraction)


def xscale_model(idle_fraction: float = DEFAULT_IDLE_FRACTION) -> DiscretePowerModel:
    """The paper's Table 2 processor (Intel XScale, 5 levels)."""
    return DiscretePowerModel(INTEL_XSCALE, name="xscale",
                              idle_fraction=idle_fraction)


_NAMED = {
    "transmeta": transmeta_model,
    "xscale": xscale_model,
}


def make_power_model(name: str, **kwargs) -> PowerModel:
    """Build a power model by name (``transmeta``, ``xscale``, ``continuous``)."""
    key = name.lower()
    if key == "continuous":
        return ContinuousPowerModel(**kwargs)
    try:
        return _NAMED[key](**kwargs)
    except KeyError:
        raise PowerModelError(
            f"unknown power model {name!r}; choose from "
            f"{sorted(_NAMED) + ['continuous']}") from None
