"""Overhead model for dynamic speed management.

The paper accounts for two overheads (Section 5):

* **speed-computation overhead** — the cycles spent running the speed
  computation at each power-management point (measured with SimpleScalar;
  the companion TPDS paper reports ≈300 cycles, which we use as default);
* **speed-adjustment overhead** — the time needed to actually change the
  voltage/frequency once (the paper's figures use 5 µs).

Both are charged on the dispatching processor *before* the task runs and
are subtracted from the task's slack window before its speed is computed;
the offline phase additionally reserves the worst-case per-task overhead
in the canonical schedule, so the deadline guarantee is preserved.
Adjustment energy is modeled at maximum power for the duration of the
switch (conservative: the DC-DC converter and PLL are busy and the
pipeline is stalled).

Units: ``adjust_time`` is in workload time units.  The paper's workloads
use milliseconds ("the time unit for c and a is in the order of
msecond"), while processor frequencies are in MHz, so converting the
cycle count of the speed computation to time units needs the
``time_unit_us`` scale (1000 µs per unit for millisecond workloads).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import PowerModelError
from .model import PowerModel


@dataclass(frozen=True)
class OverheadModel:
    """Timing overheads of dynamic power management.

    Parameters
    ----------
    comp_cycles:
        Cycles needed to compute a new speed at a PMP (0 disables).
    adjust_time:
        Workload time units needed to change the voltage/speed once
        (0 disables).
    time_unit_us:
        Microseconds per workload time unit (1000 for ms workloads).
    """

    comp_cycles: float = 300.0
    adjust_time: float = 0.005
    time_unit_us: float = 1000.0

    def __post_init__(self) -> None:
        if self.comp_cycles < 0:
            raise PowerModelError(
                f"comp_cycles must be >= 0, got {self.comp_cycles}")
        if self.adjust_time < 0:
            raise PowerModelError(
                f"adjust_time must be >= 0, got {self.adjust_time}")
        if self.time_unit_us <= 0:
            raise PowerModelError(
                f"time_unit_us must be > 0, got {self.time_unit_us}")

    def with_(self, **kwargs) -> "OverheadModel":
        """A copy with the named fields replaced (validation re-runs).

        Prefer this over re-constructing through ``__class__(...)``:
        callers stay correct when the model grows a field.
        """
        return replace(self, **kwargs)

    def computation_time(self, model: PowerModel, speed: float) -> float:
        """Time units spent computing the new speed while at ``speed``."""
        if self.comp_cycles == 0:
            return 0.0
        return model.cycles_to_time(self.comp_cycles, speed) / self.time_unit_us

    def computation_energy(self, model: PowerModel, speed: float) -> float:
        return model.busy_energy(speed, self.computation_time(model, speed))

    def computation_time_table(self, model: PowerModel) -> "np.ndarray":
        """Speed-computation time at each of a discrete model's levels,
        as a read-only float array.

        The batch kernels used to rebuild this per call; it is cached on
        the *model* instance (this dataclass is frozen), keyed by the
        overhead parameters that enter the formula.  Values go through
        the scalar :meth:`computation_time`, so they are the exact
        floats the scalar engine uses.
        """
        import numpy as np

        speeds = getattr(model, "_speeds", None)
        if speeds is None:
            raise PowerModelError(
                "computation_time_table needs a discrete power model "
                f"with voltage/frequency levels, got {model.name!r}")
        cache = model.__dict__.setdefault("_tc_tables", {})
        key = (self.comp_cycles, self.time_unit_us)
        table = cache.get(key)
        if table is None:
            table = np.array([self.computation_time(model, s)
                              for s in speeds])
            table.setflags(write=False)
            cache[key] = table
        return table

    def adjustment_energy(self, model: PowerModel) -> float:
        """Energy of one voltage/speed switch (at max power, conservative)."""
        return model.power(model.s_max) * self.adjust_time

    def per_task_reserve(self, model: PowerModel) -> float:
        """Worst-case per-task overhead the offline phase must reserve.

        The speed computation is slowest when the processor sits at its
        minimum speed; one voltage switch may follow.
        """
        return self.computation_time(model, model.s_min) + self.adjust_time

    @property
    def is_free(self) -> bool:
        return self.comp_cycles == 0 and self.adjust_time == 0


#: Overheads switched off — used by NPM and by idealized ablations.
NO_OVERHEAD = OverheadModel(comp_cycles=0.0, adjust_time=0.0)

#: The paper's default configuration: ≈300 cycles to compute a speed and
#: 5 µs to switch, for millisecond-unit workloads.
PAPER_OVERHEAD = OverheadModel(comp_cycles=300.0, adjust_time=0.005,
                               time_unit_us=1000.0)
