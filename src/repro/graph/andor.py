"""The AND/OR graph container and the Application wrapper.

:class:`AndOrGraph` is a mutable DAG of :class:`~repro.graph.nodes.Node`
vertices with adjacency kept in insertion order (deterministic iteration
matters: list scheduling breaks ties by queue insertion).  Branch
probabilities are attached to the out-edges of OR nodes that have more
than one successor.

:class:`Application` pairs a validated graph with its deadline — the unit
the offline phase and the simulator operate on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from ..errors import GraphError
from .nodes import Node, NodeKind, and_node, computation, or_node

_PROB_TOL = 1e-6


class AndOrGraph:
    """A directed acyclic AND/OR task graph."""

    def __init__(self, name: str = "app"):
        self.name = name
        self._nodes: Dict[str, Node] = {}
        self._succs: Dict[str, List[str]] = {}
        self._preds: Dict[str, List[str]] = {}
        self._branch_probs: Dict[str, Dict[str, float]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> Node:
        if node.name in self._nodes:
            raise GraphError(f"duplicate node name {node.name!r}")
        self._nodes[node.name] = node
        self._succs[node.name] = []
        self._preds[node.name] = []
        return node

    def add_computation(self, name: str, wcet: float, acet: float) -> Node:
        return self.add_node(computation(name, wcet, acet))

    def add_and(self, name: str) -> Node:
        return self.add_node(and_node(name))

    def add_or(self, name: str) -> Node:
        return self.add_node(or_node(name))

    def add_edge(self, src: str, dst: str) -> None:
        if src not in self._nodes:
            raise GraphError(f"edge source {src!r} not in graph")
        if dst not in self._nodes:
            raise GraphError(f"edge target {dst!r} not in graph")
        if src == dst:
            raise GraphError(f"self-loop on {src!r}")
        if dst in self._succs[src]:
            raise GraphError(f"duplicate edge {src!r} -> {dst!r}")
        self._succs[src].append(dst)
        self._preds[dst].append(src)

    def set_branch_probability(self, or_name: str, succ: str,
                               probability: float) -> None:
        """Attach the probability of taking ``succ`` after OR node ``or_name``."""
        node = self.node(or_name)
        if not node.is_or:
            raise GraphError(
                f"branch probabilities only apply to OR nodes, {or_name!r} "
                f"is {node.kind}")
        if succ not in self._succs[or_name]:
            raise GraphError(
                f"{succ!r} is not a successor of OR node {or_name!r}")
        if not (0.0 < probability <= 1.0 + _PROB_TOL):
            raise GraphError(
                f"branch probability must be in (0, 1], got {probability}")
        self._branch_probs.setdefault(or_name, {})[succ] = min(probability, 1.0)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    def node(self, name: str) -> Node:
        try:
            return self._nodes[name]
        except KeyError:
            raise GraphError(f"unknown node {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._nodes.values())

    @property
    def node_names(self) -> List[str]:
        return list(self._nodes)

    def nodes(self, kind: Optional[NodeKind] = None) -> List[Node]:
        if kind is None:
            return list(self._nodes.values())
        return [n for n in self._nodes.values() if n.kind is kind]

    def computation_nodes(self) -> List[Node]:
        return self.nodes(NodeKind.COMPUTATION)

    def or_nodes(self) -> List[Node]:
        return self.nodes(NodeKind.OR)

    def and_nodes(self) -> List[Node]:
        return self.nodes(NodeKind.AND)

    def successors(self, name: str) -> List[str]:
        self.node(name)
        return list(self._succs[name])

    def predecessors(self, name: str) -> List[str]:
        self.node(name)
        return list(self._preds[name])

    def out_degree(self, name: str) -> int:
        return len(self._succs[name])

    def in_degree(self, name: str) -> int:
        return len(self._preds[name])

    def roots(self) -> List[str]:
        return [n for n in self._nodes if not self._preds[n]]

    def sinks(self) -> List[str]:
        return [n for n in self._nodes if not self._succs[n]]

    def edges(self) -> List[Tuple[str, str]]:
        return [(u, v) for u, vs in self._succs.items() for v in vs]

    def branch_probabilities(self, or_name: str) -> Dict[str, float]:
        """Probability per successor of an OR node.

        Single-successor OR nodes (pure merges/continuations) implicitly
        take their only path with probability 1.
        """
        node = self.node(or_name)
        if not node.is_or:
            raise GraphError(f"{or_name!r} is not an OR node")
        succs = self._succs[or_name]
        if len(succs) == 1 and or_name not in self._branch_probs:
            return {succs[0]: 1.0}
        probs = dict(self._branch_probs.get(or_name, {}))
        return probs

    def is_branching_or(self, name: str) -> bool:
        node = self.node(name)
        return node.is_or and len(self._succs[name]) > 1

    # ------------------------------------------------------------------
    # algorithms
    # ------------------------------------------------------------------
    def topological_order(self) -> List[str]:
        """Kahn topological sort; raises :class:`GraphError` on cycles.

        Ties are broken by insertion order so results are deterministic.
        """
        indeg = {n: len(ps) for n, ps in self._preds.items()}
        frontier = [n for n in self._nodes if indeg[n] == 0]
        out: List[str] = []
        while frontier:
            n = frontier.pop(0)
            out.append(n)
            for s in self._succs[n]:
                indeg[s] -= 1
                if indeg[s] == 0:
                    frontier.append(s)
        if len(out) != len(self._nodes):
            cyclic = sorted(n for n, d in indeg.items() if d > 0)
            raise GraphError(f"graph contains a cycle through {cyclic[:5]}")
        return out

    def is_dag(self) -> bool:
        try:
            self.topological_order()
            return True
        except GraphError:
            return False

    def descendants(self, name: str) -> List[str]:
        """All nodes reachable from ``name`` (excluding itself)."""
        seen: Dict[str, None] = {}
        stack = list(self._succs[name])
        while stack:
            n = stack.pop()
            if n in seen:
                continue
            seen[n] = None
            stack.extend(self._succs[n])
        return list(seen)

    def total_wcet(self) -> float:
        """Sum of worst-case execution times over all computation nodes."""
        return sum(n.wcet for n in self.computation_nodes())

    def total_acet(self) -> float:
        return sum(n.acet for n in self.computation_nodes())

    def copy(self, name: Optional[str] = None) -> "AndOrGraph":
        g = AndOrGraph(name or self.name)
        for node in self:
            g.add_node(node)
        for u, v in self.edges():
            g.add_edge(u, v)
        for o, probs in self._branch_probs.items():
            for s, p in probs.items():
                g.set_branch_probability(o, s, p)
        return g

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"AndOrGraph({self.name!r}, nodes={len(self._nodes)}, "
                f"edges={len(self.edges())}, or={len(self.or_nodes())})")


@dataclass
class Application:
    """A validated AND/OR graph together with its timing constraint.

    ``deadline`` is the paper's ``D``; the offline phase fails if the
    canonical worst-case finish time exceeds it.
    """

    graph: AndOrGraph
    deadline: float
    name: str = ""
    meta: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.deadline <= 0:
            raise GraphError(f"deadline must be positive, got {self.deadline}")
        if not self.name:
            self.name = self.graph.name

    def with_deadline(self, deadline: float) -> "Application":
        """A copy of this application with a different deadline."""
        return Application(graph=self.graph, deadline=deadline,
                           name=self.name, meta=dict(self.meta))


def iter_computation_names(graph: AndOrGraph) -> Iterable[str]:
    for node in graph.computation_nodes():
        yield node.name
