"""Whole-graph validation.

:func:`validate_graph` is the single entry point; it checks everything the
rest of the library assumes so that downstream code (offline phase,
simulator) can operate without re-checking:

* the graph is non-empty and acyclic;
* computation nodes carry timing statistics, sync nodes do not (enforced
  at construction, re-checked here for graphs built by deserialization);
* AND nodes have at least one predecessor and one successor *or* are
  explicitly allowed as pass-throughs at graph boundaries;
* the OR structure obeys the section rules (delegated to
  :class:`~repro.graph.sections.SectionStructure`);
* branch probabilities of every branching OR node sum to one.
"""

from __future__ import annotations

from typing import List

from ..errors import ValidationError, GraphError
from .andor import AndOrGraph, Application
from .sections import SectionStructure


def validate_graph(graph: AndOrGraph) -> SectionStructure:
    """Validate ``graph``; returns its section structure on success.

    Raises :class:`ValidationError` with an explanatory message on the
    first violated rule.
    """
    problems = basic_problems(graph)
    if problems:
        raise ValidationError("; ".join(problems))
    try:
        graph.topological_order()
    except GraphError as exc:
        raise ValidationError(str(exc)) from exc
    try:
        structure = SectionStructure(graph)
    except GraphError as exc:
        raise ValidationError(str(exc)) from exc
    return structure


def basic_problems(graph: AndOrGraph) -> List[str]:
    """Cheap structural checks; returns a list of problems (empty = OK)."""
    problems: List[str] = []
    if len(graph) == 0:
        problems.append("graph is empty")
        return problems
    if not graph.computation_nodes():
        problems.append("graph has no computation nodes")
    for node in graph:
        if node.is_computation and node.stats is None:  # pragma: no cover
            problems.append(f"computation node {node.name!r} lacks stats")
        if node.is_and and not graph.predecessors(node.name) \
                and not graph.successors(node.name):
            problems.append(f"AND node {node.name!r} is isolated")
    return problems


def validate_application(app: Application) -> SectionStructure:
    """Validate an application's graph and its deadline."""
    if app.deadline <= 0:
        raise ValidationError(f"deadline must be positive, got {app.deadline}")
    return validate_graph(app.graph)
