"""JSON (de)serialization of AND/OR graphs and applications.

The wire format is a plain dict so graphs can be stored next to
experiment configurations, diffed, and rebuilt deterministically::

    {
      "name": "demo",
      "nodes": [
        {"name": "A", "kind": "computation", "wcet": 8, "acet": 5},
        {"name": "O1", "kind": "or"},
        ...
      ],
      "edges": [["A", "O1"], ...],
      "branch_probabilities": {"O1": {"B": 0.3, "C": 0.7}}
    }

Deserialized graphs are re-validated, so a hand-edited file cannot smuggle
a malformed structure into the library.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from ..errors import GraphError
from .andor import AndOrGraph, Application
from .nodes import NodeKind
from .validate import validate_graph


def graph_to_dict(graph: AndOrGraph) -> Dict[str, Any]:
    """Serialize a graph to a JSON-compatible dict."""
    nodes = []
    for node in graph:
        entry: Dict[str, Any] = {"name": node.name, "kind": node.kind.value}
        if node.is_computation:
            assert node.stats is not None
            entry["wcet"] = node.stats.wcet
            entry["acet"] = node.stats.acet
        nodes.append(entry)
    probs = {
        o.name: graph.branch_probabilities(o.name)
        for o in graph.or_nodes()
        if graph.is_branching_or(o.name)
    }
    return {
        "name": graph.name,
        "nodes": nodes,
        "edges": [list(e) for e in graph.edges()],
        "branch_probabilities": probs,
    }


def graph_from_dict(data: Dict[str, Any], validate: bool = True) -> AndOrGraph:
    """Rebuild a graph from :func:`graph_to_dict` output."""
    try:
        graph = AndOrGraph(str(data.get("name", "app")))
        for entry in data["nodes"]:
            kind = NodeKind(entry["kind"])
            if kind is NodeKind.COMPUTATION:
                graph.add_computation(entry["name"], float(entry["wcet"]),
                                      float(entry["acet"]))
            elif kind is NodeKind.AND:
                graph.add_and(entry["name"])
            else:
                graph.add_or(entry["name"])
        for src, dst in data.get("edges", []):
            graph.add_edge(src, dst)
        for o, probs in data.get("branch_probabilities", {}).items():
            for succ, p in probs.items():
                graph.set_branch_probability(o, succ, float(p))
    except (KeyError, TypeError, ValueError) as exc:
        raise GraphError(f"malformed graph dict: {exc}") from exc
    if validate:
        validate_graph(graph)
    return graph


def application_to_dict(app: Application) -> Dict[str, Any]:
    return {
        "graph": graph_to_dict(app.graph),
        "deadline": app.deadline,
        "name": app.name,
        "meta": dict(app.meta),
    }


def application_from_dict(data: Dict[str, Any]) -> Application:
    try:
        return Application(
            graph=graph_from_dict(data["graph"]),
            deadline=float(data["deadline"]),
            name=str(data.get("name", "")),
            meta=dict(data.get("meta", {})),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise GraphError(f"malformed application dict: {exc}") from exc


def dumps(app: Application, indent: int = 2) -> str:
    """Application → JSON text."""
    return json.dumps(application_to_dict(app), indent=indent, sort_keys=True)


def loads(text: str) -> Application:
    """JSON text → validated application."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise GraphError(f"invalid JSON: {exc}") from exc
    return application_from_dict(data)
