"""Fluent builder for AND/OR graphs.

Constructing graphs node-by-node is verbose; :class:`GraphBuilder` gives
the common shapes one-liners::

    b = GraphBuilder("demo")
    b.task("A", 8, 5)
    b.and_split("A1", after="A", branches=[("B", 5, 3), ("C", 4, 2)])
    b.and_join("A2", ["B", "C"])
    b.or_branch("O3", after="A2", paths={"F": ((8, 6), 0.3), "G": ((5, 3), 0.7)})
    b.or_merge("O4", ["F", "G"])
    app = b.build(deadline=40)

``build()`` validates the graph (see :mod:`repro.graph.validate`) so a
builder cannot hand out a malformed application.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..errors import GraphError
from .andor import AndOrGraph, Application
from .validate import validate_graph

TaskSpec = Tuple[float, float]  # (wcet, acet)


class GraphBuilder:
    """Incrementally assemble and validate an AND/OR application graph."""

    def __init__(self, name: str = "app"):
        self.graph = AndOrGraph(name)
        self._last: Optional[str] = None

    # ------------------------------------------------------------------
    # nodes
    # ------------------------------------------------------------------
    def task(self, name: str, wcet: float, acet: float,
             after: Optional[Iterable[str]] = None) -> "GraphBuilder":
        """Add a computation node, optionally linked after existing nodes."""
        self.graph.add_computation(name, wcet, acet)
        for p in self._as_list(after):
            self.graph.add_edge(p, name)
        self._last = name
        return self

    def chain(self, specs: Sequence[Tuple[str, float, float]],
              after: Optional[Iterable[str]] = None) -> "GraphBuilder":
        """Add a linear chain of computation nodes."""
        prev = self._as_list(after)
        for name, wcet, acet in specs:
            self.task(name, wcet, acet, after=prev)
            prev = [name]
        return self

    def and_node(self, name: str,
                 after: Optional[Iterable[str]] = None) -> "GraphBuilder":
        self.graph.add_and(name)
        for p in self._as_list(after):
            self.graph.add_edge(p, name)
        self._last = name
        return self

    def or_node(self, name: str,
                after: Optional[Iterable[str]] = None) -> "GraphBuilder":
        self.graph.add_or(name)
        for p in self._as_list(after):
            self.graph.add_edge(p, name)
        self._last = name
        return self

    def edge(self, src: str, dst: str) -> "GraphBuilder":
        self.graph.add_edge(src, dst)
        return self

    def edges(self, pairs: Iterable[Tuple[str, str]]) -> "GraphBuilder":
        for src, dst in pairs:
            self.graph.add_edge(src, dst)
        return self

    # ------------------------------------------------------------------
    # structured helpers
    # ------------------------------------------------------------------
    def and_split(self, name: str, after: str,
                  branches: Sequence[Tuple[str, float, float]]
                  ) -> "GraphBuilder":
        """AND node after ``after`` fanning out to new parallel tasks."""
        self.and_node(name, after=[after])
        for task_name, wcet, acet in branches:
            self.task(task_name, wcet, acet, after=[name])
        return self

    def and_join(self, name: str, preds: Iterable[str]) -> "GraphBuilder":
        """AND node joining several finished branches."""
        preds = self._as_list(preds)
        if not preds:
            raise GraphError("and_join requires at least one predecessor")
        self.and_node(name, after=preds)
        return self

    def or_branch(self, name: str, after: Iterable[str],
                  paths: Mapping[str, Tuple[TaskSpec, float]]
                  ) -> "GraphBuilder":
        """OR node after ``after``; each entry of ``paths`` opens a branch.

        ``paths`` maps a new task name to ``((wcet, acet), probability)``.
        """
        self.or_node(name, after=self._as_list(after))
        for task_name, ((wcet, acet), prob) in paths.items():
            self.task(task_name, wcet, acet, after=[name])
            self.graph.set_branch_probability(name, task_name, prob)
        return self

    def or_merge(self, name: str, preds: Iterable[str]) -> "GraphBuilder":
        """OR node merging alternative paths (fires when one arrives)."""
        preds = self._as_list(preds)
        if not preds:
            raise GraphError("or_merge requires at least one predecessor")
        self.or_node(name, after=preds)
        return self

    def probability(self, or_name: str, succ: str,
                    prob: float) -> "GraphBuilder":
        self.graph.set_branch_probability(or_name, succ, prob)
        return self

    def probabilities(self, or_name: str,
                      probs: Mapping[str, float]) -> "GraphBuilder":
        for succ, p in probs.items():
            self.graph.set_branch_probability(or_name, succ, p)
        return self

    # ------------------------------------------------------------------
    def build(self, deadline: float, name: Optional[str] = None,
              meta: Optional[Dict[str, object]] = None) -> Application:
        """Validate and wrap into an :class:`Application`."""
        validate_graph(self.graph)
        return Application(graph=self.graph, deadline=deadline,
                           name=name or self.graph.name, meta=meta or {})

    def build_graph(self) -> AndOrGraph:
        """Validate and return the bare graph (no deadline attached)."""
        validate_graph(self.graph)
        return self.graph

    # ------------------------------------------------------------------
    @staticmethod
    def _as_list(value: Optional[Iterable[str]]) -> List[str]:
        if value is None:
            return []
        if isinstance(value, str):
            return [value]
        return list(value)
