"""Random section-structured AND/OR application generator.

Used by property-based tests (Theorem 1 must hold on *any* valid graph,
not just the paper's two applications) and by scaling experiments.

Generated shape: a root section, then recursively — with probability
``p_branch`` — an OR node fanning out to 2..``max_branches`` alternative
branches (each its own recursively generated segment) that merge at an OR
node, optionally followed by more work.  Sections are parallel *fans*: an
entry node, ``width`` chains of tasks, optionally an AND join.  This is
exactly the structure class the paper's model admits (Section 2.1) and
what :class:`~repro.graph.sections.SectionStructure` validates.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..errors import ConfigError
from .andor import AndOrGraph
from .builder import GraphBuilder


@dataclass(frozen=True)
class GraphGenConfig:
    """Knobs of the random application generator.

    ``alpha`` is the target average/worst-case execution-time ratio; each
    task's ACET is drawn around ``alpha * wcet`` (clipped into (0, wcet]),
    mirroring how the paper varies α for the synthetic application.
    """

    or_depth: int = 2
    p_branch: float = 0.7
    p_continue: float = 0.6
    max_branches: int = 3
    min_tasks: int = 2
    max_tasks: int = 6
    max_width: int = 3
    wcet_lo: float = 2.0
    wcet_hi: float = 10.0
    alpha: float = 0.5
    alpha_jitter: float = 0.1

    def __post_init__(self) -> None:
        if self.or_depth < 0:
            raise ConfigError("or_depth must be >= 0")
        if not (0 <= self.p_branch <= 1 and 0 <= self.p_continue <= 1):
            raise ConfigError("probabilities must be in [0, 1]")
        if self.max_branches < 2:
            raise ConfigError("max_branches must be >= 2")
        if not (1 <= self.min_tasks <= self.max_tasks):
            raise ConfigError("need 1 <= min_tasks <= max_tasks")
        if self.max_width < 1:
            raise ConfigError("max_width must be >= 1")
        if not (0 < self.wcet_lo <= self.wcet_hi):
            raise ConfigError("need 0 < wcet_lo <= wcet_hi")
        if not (0 < self.alpha <= 1):
            raise ConfigError("alpha must be in (0, 1]")


def random_graph(rng: random.Random,
                 config: Optional[GraphGenConfig] = None,
                 name: str = "random-app") -> AndOrGraph:
    """Generate a random, valid AND/OR graph (validated before return)."""
    cfg = config or GraphGenConfig()
    b = GraphBuilder(name)
    gen = _Generator(b, rng, cfg)
    gen.segment(depth=cfg.or_depth, after=None, prefix="g")
    return b.build_graph()


class _Generator:
    def __init__(self, builder: GraphBuilder, rng: random.Random,
                 cfg: GraphGenConfig):
        self.b = builder
        self.rng = rng
        self.cfg = cfg
        self._uid = 0

    # ------------------------------------------------------------------
    def segment(self, depth: int, after: Optional[str],
                prefix: str) -> List[str]:
        """Add a section, maybe followed by an OR branch/merge + more work.

        Returns the open sink names of the segment ([] if the segment ends
        at an OR merge with no continuation).
        """
        sinks = self.section(after, prefix)
        if depth <= 0 or self.rng.random() >= self.cfg.p_branch:
            return sinks
        branch_or = f"{prefix}.O"
        self.b.or_node(branch_or, after=sinks)
        n_branches = self.rng.randint(2, self.cfg.max_branches)
        probs = self._probabilities(n_branches)
        merge_or = f"{prefix}.Om"
        self.b.or_node(merge_or)
        for i in range(n_branches):
            branch_sinks = self.segment(depth - 1, branch_or,
                                        f"{prefix}.b{i}")
            entry = self._entry_of(branch_or, i)
            self.b.probability(branch_or, entry, probs[i])
            for s in branch_sinks:
                self.b.edge(s, merge_or)
        if self.rng.random() < self.cfg.p_continue:
            return self.segment(depth - 1, merge_or, f"{prefix}.c")
        # close the merge with a small tail task so this segment exposes
        # real sinks (an OR node must never be left with no successors
        # *and* feed an outer merge directly — rule 1 bans OR->OR edges)
        tail = self._task(f"{prefix}.tail", after=[merge_or])
        return [tail]

    def _entry_of(self, or_name: str, index: int) -> str:
        return self.b.graph.successors(or_name)[index]

    # ------------------------------------------------------------------
    def section(self, after: Optional[str], prefix: str) -> List[str]:
        """One parallel-fan section; returns its sink node names."""
        cfg, rng = self.cfg, self.rng
        n_tasks = rng.randint(cfg.min_tasks, cfg.max_tasks)
        width = rng.randint(1, min(cfg.max_width, n_tasks))

        if after is None:
            entry = self._task(f"{prefix}.e")
        else:
            # entry of a non-root section must be a single node whose only
            # predecessor is the OR node (section rule 2/3)
            if width > 1 or rng.random() < 0.3:
                entry = f"{prefix}.fan"
                self.b.and_node(entry, after=[after])
            else:
                entry = self._task(f"{prefix}.e", after=[after])
                n_tasks -= 1

        remaining = n_tasks if after is None or entry.endswith(".fan") \
            else n_tasks
        chains: List[List[str]] = [[] for _ in range(width)]
        for i in range(max(remaining, 0)):
            chains[i % width].append(self._task(f"{prefix}.t{i}"))
        sinks: List[str] = []
        for chain in chains:
            prev = entry
            for t in chain:
                self.b.edge(prev, t)
                prev = t
            if prev is not entry or not chain:
                pass
            sinks.append(prev)
        sinks = list(dict.fromkeys(sinks))  # dedupe empty chains -> entry
        if len(sinks) > 1 and rng.random() < 0.5:
            join = f"{prefix}.join"
            self.b.and_join(join, sinks)
            return [join]
        return sinks

    def _task(self, name: str, after: Optional[Sequence[str]] = None) -> str:
        cfg, rng = self.cfg, self.rng
        wcet = rng.uniform(cfg.wcet_lo, cfg.wcet_hi)
        alpha = cfg.alpha + cfg.alpha_jitter * rng.gauss(0.0, 1.0)
        alpha = min(max(alpha, 0.05), 1.0)
        self.b.task(name, wcet, alpha * wcet, after=after)
        return name

    def _probabilities(self, n: int) -> List[float]:
        raw = [self.rng.uniform(0.1, 1.0) for _ in range(n)]
        total = sum(raw)
        probs = [r / total for r in raw]
        probs[-1] = 1.0 - sum(probs[:-1])  # exact sum despite rounding
        return probs
