"""Structure-preserving graph transformations.

The sweeps need *families* of applications that differ in one knob but
share structure: the Figure 6 α sweep, WCET scaling for unit changes,
and composition of applications into larger missions.  These transforms
rebuild a graph with modified timing attributes and re-validate, so a
transformed graph is exactly as trustworthy as a built one.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..errors import ConfigError
from ..types import TaskStats
from .andor import AndOrGraph
from .nodes import Node, NodeKind


def map_task_stats(graph: AndOrGraph,
                   fn: Callable[[str, TaskStats], TaskStats],
                   name: Optional[str] = None) -> AndOrGraph:
    """Rebuild ``graph`` with each computation node's stats mapped by ``fn``."""
    out = AndOrGraph(name or graph.name)
    for node in graph:
        if node.is_computation:
            assert node.stats is not None
            out.add_node(Node(node.name, NodeKind.COMPUTATION,
                              fn(node.name, node.stats)))
        else:
            out.add_node(node)
    for u, v in graph.edges():
        out.add_edge(u, v)
    for o in graph.or_nodes():
        if graph.is_branching_or(o.name):
            for succ, p in graph.branch_probabilities(o.name).items():
                out.set_branch_probability(o.name, succ, p)
    return out


def with_alpha(graph: AndOrGraph, alpha: float,
               name: Optional[str] = None) -> AndOrGraph:
    """Set every task's ACET to ``alpha * WCET`` (the Figure 6 knob).

    Works on *any* graph — random applications included — whereas the
    workload constructors only parameterize their own α.
    """
    if not (0 < alpha <= 1):
        raise ConfigError(f"alpha must be in (0, 1], got {alpha}")
    return map_task_stats(
        graph,
        lambda _n, s: TaskStats(wcet=s.wcet, acet=alpha * s.wcet),
        name=name or f"{graph.name}@a{alpha:g}")


def scale_times(graph: AndOrGraph, factor: float,
                name: Optional[str] = None) -> AndOrGraph:
    """Multiply every WCET and ACET by ``factor`` (unit changes)."""
    if factor <= 0:
        raise ConfigError(f"scale factor must be positive, got {factor}")
    return map_task_stats(
        graph,
        lambda _n, s: TaskStats(wcet=s.wcet * factor,
                                acet=s.acet * factor),
        name=name or f"{graph.name}*{factor:g}")


def with_branch_probabilities(graph: AndOrGraph,
                              overrides: dict,
                              name: Optional[str] = None) -> AndOrGraph:
    """Rebuild the graph with some OR nodes' probabilities replaced.

    ``overrides`` maps OR-node name → {successor name: probability}.
    Structure and task timings are untouched, so the rebuilt graph has
    the *same* section decomposition — which is what lets misprofiling
    studies sample from one probability assignment while scheduling
    with another.
    """
    out = AndOrGraph(name or graph.name)
    for node in graph:
        out.add_node(node)
    for u, v in graph.edges():
        out.add_edge(u, v)
    for o in graph.or_nodes():
        probs = overrides.get(o.name)
        if probs is None:
            if graph.is_branching_or(o.name):
                probs = graph.branch_probabilities(o.name)
            else:
                continue
        for succ, p in probs.items():
            out.set_branch_probability(o.name, succ, p)
    return out


def skew_probabilities(graph: AndOrGraph, gamma: float,
                       name: Optional[str] = None) -> AndOrGraph:
    """Sharpen (γ > 1) or flatten (γ < 1) every OR's branch distribution.

    Each branching OR's probabilities become ``p_i^γ / Σ p_j^γ``:
    γ → ∞ makes the most likely branch certain, γ → 0⁺ makes branches
    uniform, γ = 1 is the identity, and γ < 0 *inverts* the likelihood
    ordering (the profiled-rare branch becomes common) — the worst kind
    of profiling error.  Used by the misprofiling study.
    """
    if gamma == 0:
        raise ConfigError("gamma must be non-zero (0 is undefined; "
                          "negative values invert the branch ordering)")
    overrides = {}
    for o in graph.or_nodes():
        if not graph.is_branching_or(o.name):
            continue
        probs = graph.branch_probabilities(o.name)
        powered = {s: p ** gamma for s, p in probs.items()}
        total = sum(powered.values())
        succs = list(powered)
        new = {s: powered[s] / total for s in succs}
        # force an exact sum despite float rounding
        new[succs[-1]] = 1.0 - sum(new[s] for s in succs[:-1])
        overrides[o.name] = new
    return with_branch_probabilities(
        graph, overrides, name=name or f"{graph.name}^g{gamma:g}")


def relabel(graph: AndOrGraph, prefix: str,
            name: Optional[str] = None) -> AndOrGraph:
    """Prefix every node name (for composing graphs without clashes)."""
    if not prefix:
        raise ConfigError("prefix must be non-empty")
    out = AndOrGraph(name or graph.name)
    for node in graph:
        new = Node(prefix + node.name, node.kind, node.stats)
        out.add_node(new)
    for u, v in graph.edges():
        out.add_edge(prefix + u, prefix + v)
    for o in graph.or_nodes():
        if graph.is_branching_or(o.name):
            for succ, p in graph.branch_probabilities(o.name).items():
                out.set_branch_probability(prefix + o.name,
                                           prefix + succ, p)
    return out


def concatenate(first: AndOrGraph, second: AndOrGraph,
                name: Optional[str] = None) -> AndOrGraph:
    """Serial composition: ``second`` starts after ``first`` completes.

    The graphs are relabelled (``a.``/``b.`` prefixes), the sinks of
    ``first`` feed an AND join which feeds the roots of ``second``.
    If ``first`` ends at a terminal OR node the composition is invalid
    (an OR may not feed an AND across section rules) — raise instead of
    silently producing a graph the validator rejects later.
    """
    a = relabel(first, "a.")
    b = relabel(second, "b.")
    out = AndOrGraph(name or f"{first.name}+{second.name}")
    for node in list(a) + list(b):
        out.add_node(node)
    for u, v in a.edges() + b.edges():
        out.add_edge(u, v)
    for g in (a, b):
        for o in g.or_nodes():
            if g.is_branching_or(o.name):
                for succ, p in g.branch_probabilities(o.name).items():
                    out.set_branch_probability(o.name, succ, p)

    sinks = a.sinks()
    if any(a.node(s).is_or for s in sinks):
        raise ConfigError(
            "cannot concatenate after an application that ends at an OR "
            "node; add a tail task first")
    joint = "a.__handoff"
    out.add_and(joint)
    for s in sinks:
        out.add_edge(s, joint)
    roots_b = b.roots()
    for r in roots_b:
        out.add_edge(joint, r)
    return out
