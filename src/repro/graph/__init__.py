"""The extended AND/OR application model (Section 2.1 of the paper).

Public surface:

* node kinds and constructors (:mod:`repro.graph.nodes`),
* :class:`AndOrGraph` / :class:`Application` containers,
* :class:`GraphBuilder` fluent construction,
* :func:`validate_graph` structural validation,
* :class:`SectionStructure` — program sections between OR nodes,
* execution-path enumeration (:mod:`repro.graph.paths`),
* loop collapse/expansion (:mod:`repro.graph.loops`),
* JSON serialization and Graphviz export,
* a random valid-graph generator for property tests.
"""

from .andor import AndOrGraph, Application
from .builder import GraphBuilder
from .dot import to_dot
from .loops import (
    average_iterations,
    chain_body,
    expand_loop,
    loop_as_task_stats,
    simple_body,
)
from .nodes import Node, NodeKind, and_node, computation, or_node
from .paths import (
    ExecutionPath,
    enumerate_paths,
    expected_total_work,
    iter_paths,
    path_acet_sum,
    path_wcet_sum,
    total_probability,
)
from .random_gen import GraphGenConfig, random_graph
from .sections import Section, SectionStructure
from .serialize import (
    application_from_dict,
    application_to_dict,
    dumps,
    graph_from_dict,
    graph_to_dict,
    loads,
)
from .transform import (
    concatenate,
    map_task_stats,
    relabel,
    scale_times,
    skew_probabilities,
    with_alpha,
    with_branch_probabilities,
)
from .validate import validate_application, validate_graph

__all__ = [
    "AndOrGraph",
    "Application",
    "GraphBuilder",
    "Node",
    "NodeKind",
    "and_node",
    "computation",
    "or_node",
    "Section",
    "SectionStructure",
    "ExecutionPath",
    "enumerate_paths",
    "iter_paths",
    "total_probability",
    "path_wcet_sum",
    "path_acet_sum",
    "expected_total_work",
    "expand_loop",
    "loop_as_task_stats",
    "average_iterations",
    "simple_body",
    "chain_body",
    "GraphGenConfig",
    "random_graph",
    "validate_graph",
    "with_alpha",
    "scale_times",
    "relabel",
    "concatenate",
    "map_task_stats",
    "skew_probabilities",
    "with_branch_probabilities",
    "validate_application",
    "graph_to_dict",
    "graph_from_dict",
    "application_to_dict",
    "application_from_dict",
    "dumps",
    "loads",
    "to_dot",
]
