"""Execution-path enumeration over the section structure.

An *execution path* fixes one branch choice at every OR node actually
reached; its probability is the product of the chosen branch
probabilities.  Path enumeration backs:

* the offline profile (worst/average remaining time per PMP),
* exhaustive tests (simulated frequencies vs analytic probabilities),
* the clairvoyant baseline (per-path optimal single speed).

Enumeration is exponential in the number of *chained* OR nodes, which is
fine for the paper's applications (a handful of OR nodes); the random
generator caps OR depth accordingly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple

from .sections import SectionStructure


@dataclass(frozen=True)
class ExecutionPath:
    """One resolved run of the application.

    ``sections`` is the ordered list of section ids executed; ``choices``
    maps each OR node fired along the way to the section id it selected
    (terminal OR nodes map to ``-1``).
    """

    sections: Tuple[int, ...]
    choices: Tuple[Tuple[str, int], ...]
    probability: float

    @property
    def choice_map(self) -> Dict[str, int]:
        return dict(self.choices)

    def key(self) -> str:
        """Stable readable identifier, e.g. ``"0>2>5"``."""
        return ">".join(str(s) for s in self.sections)


def iter_paths(structure: SectionStructure) -> Iterator[ExecutionPath]:
    """Yield every execution path with its probability (depth-first)."""

    def walk(sid: int, sections: List[int],
             choices: List[Tuple[str, int]], prob: float
             ) -> Iterator[ExecutionPath]:
        sections = sections + [sid]
        exit_or = structure.section(sid).exit_or
        if exit_or is None:
            yield ExecutionPath(tuple(sections), tuple(choices), prob)
            return
        branches = structure.branches(exit_or)
        if not branches:  # terminal OR: application ends at the merge
            yield ExecutionPath(tuple(sections),
                                tuple(choices + [(exit_or, -1)]), prob)
            return
        for target, p in branches:
            yield from walk(target, sections,
                            choices + [(exit_or, target)], prob * p)

    yield from walk(structure.root_id, [], [], 1.0)


def enumerate_paths(structure: SectionStructure,
                    max_paths: int = 100_000) -> List[ExecutionPath]:
    """All execution paths as a list (bounded to catch runaway graphs)."""
    paths: List[ExecutionPath] = []
    for p in iter_paths(structure):
        paths.append(p)
        if len(paths) > max_paths:
            raise ValueError(
                f"more than {max_paths} execution paths; graph has too many "
                "chained OR nodes for exhaustive enumeration")
    return paths


def total_probability(structure: SectionStructure) -> float:
    """Sum of path probabilities — must be 1 for a valid graph."""
    return sum(p.probability for p in iter_paths(structure))


def path_wcet_sum(structure: SectionStructure, path: ExecutionPath) -> float:
    """Total computation (sum of WCETs) along one execution path."""
    total = 0.0
    for sid in path.sections:
        sub = structure.section(sid)
        total += sum(structure.graph.node(n).wcet for n in sub.nodes)
    return total


def path_acet_sum(structure: SectionStructure, path: ExecutionPath) -> float:
    """Total average-case computation along one execution path."""
    total = 0.0
    for sid in path.sections:
        sub = structure.section(sid)
        total += sum(structure.graph.node(n).acet for n in sub.nodes)
    return total


def expected_total_work(structure: SectionStructure,
                        use_acet: bool = True) -> float:
    """Probability-weighted total work over all execution paths."""
    f = path_acet_sum if use_acet else path_wcet_sum
    return sum(p.probability * f(structure, p) for p in iter_paths(structure))
