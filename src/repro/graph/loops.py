"""Loop handling for the AND/OR model (Section 2.1).

The model has no back edges, so the paper offers two treatments for a
loop whose body runs a variable number of iterations:

1. **collapse** — treat the whole loop as one task whose WCET is the
   body WCET times the maximal iteration count and whose ACET is the
   body ACET times the average iteration count
   (:func:`loop_as_task_stats`);
2. **expand** — unroll the loop into body copies separated by OR nodes
   whose exit probabilities are the *conditional* probabilities of
   stopping after each iteration (:func:`expand_loop`).  This is how the
   synthetic application's "4: 50%:20%:5%:25%" loops become pure AND/OR
   structure.

Expansion layout for iteration probabilities ``{1: p1, 2: p2, ...}``::

    [body 1] --O1--(exit, p1')--> [skip AND] ----\\
                \\--(continue)--> [body 2] --O2...--> [exit merge OR]

where ``p_i' = P(K = i | K >= i)`` and the final body copy connects to
the exit merge directly.  Each skip path is a pass-through AND node so
that no OR->OR edge is created (section rule 1).
"""

from __future__ import annotations

from typing import Callable, List, Mapping, Optional, Sequence, Tuple

from ..errors import GraphError
from ..types import TaskStats
from .builder import GraphBuilder

#: A body factory adds one body copy to the builder and returns the names
#: of its (entry, exit) nodes.  ``iteration`` is 1-based.
BodyFactory = Callable[[GraphBuilder, int], Tuple[str, str]]

_PROB_TOL = 1e-9


def loop_as_task_stats(body_wcet: float, body_acet: float,
                       max_iterations: int,
                       avg_iterations: float) -> TaskStats:
    """Collapse a loop into a single task's timing statistics."""
    if max_iterations < 1:
        raise GraphError(
            f"max_iterations must be >= 1, got {max_iterations}")
    if not (0 < avg_iterations <= max_iterations):
        raise GraphError(
            f"avg_iterations must be in (0, {max_iterations}], got "
            f"{avg_iterations}")
    return TaskStats(wcet=body_wcet * max_iterations,
                     acet=body_acet * avg_iterations)


def average_iterations(iter_probs: Mapping[int, float]) -> float:
    """Expected iteration count of a probability table."""
    _check_probs(iter_probs)
    return sum(k * p for k, p in iter_probs.items())


def simple_body(name: str, wcet: float, acet: float) -> BodyFactory:
    """Body factory for a single-task loop body (``name#i<k>`` copies)."""

    def factory(builder: GraphBuilder, iteration: int) -> Tuple[str, str]:
        task = f"{name}#i{iteration}"
        builder.task(task, wcet, acet)
        return task, task

    return factory


def chain_body(name: str,
               specs: Sequence[Tuple[str, float, float]]) -> BodyFactory:
    """Body factory for a linear multi-task loop body."""
    if not specs:
        raise GraphError("chain_body requires at least one task spec")

    def factory(builder: GraphBuilder, iteration: int) -> Tuple[str, str]:
        prev: Optional[str] = None
        first: Optional[str] = None
        for sub, wcet, acet in specs:
            task = f"{name}#{sub}#i{iteration}"
            builder.task(task, wcet, acet,
                         after=[prev] if prev else None)
            if first is None:
                first = task
            prev = task
        assert first is not None and prev is not None
        return first, prev

    return factory


def expand_loop(builder: GraphBuilder, name: str,
                iter_probs: Mapping[int, float],
                body: BodyFactory,
                after: Optional[Sequence[str]] = None) -> str:
    """Unroll a probabilistic loop into the builder's graph.

    Parameters
    ----------
    builder:
        Target builder; nodes are added in place.
    name:
        Prefix for generated node names (must be unique in the graph).
    iter_probs:
        Map iteration-count -> probability; keys >= 1, values > 0,
        summing to 1.  (Zero-iteration loops: branch around the loop with
        an explicit OR in the caller.)
    body:
        Factory adding one body copy; see :data:`BodyFactory`.
    after:
        Existing nodes the first body copy depends on.

    Returns the name of the node after which post-loop work should be
    attached: the exit-merge OR node, or the last body exit when the
    iteration count is deterministic.
    """
    _check_probs(iter_probs)
    if min(iter_probs) < 1:
        raise GraphError(
            "expand_loop requires iteration counts >= 1; model a possible "
            "zero-iteration loop with an explicit OR branch around it")
    counts = sorted(iter_probs)
    max_iter = counts[-1]

    # Deterministic iteration count: plain unrolled chain, no OR nodes.
    if len(counts) == 1:
        prev_exit: Optional[str] = None
        first_entry: Optional[str] = None
        for i in range(1, max_iter + 1):
            entry, exit_ = body(builder, i)
            if prev_exit is not None:
                builder.edge(prev_exit, entry)
            if first_entry is None:
                first_entry = entry
            prev_exit = exit_
        assert first_entry is not None and prev_exit is not None
        for p in (after or []):
            builder.edge(p, first_entry)
        return prev_exit

    exit_merge = f"{name}#exit"
    builder.or_node(exit_merge)

    remaining = 1.0  # P(K >= i) as we walk iterations
    prev_exit = None
    pending_or: Optional[str] = None  # OR whose "continue" branch we owe
    pending_continue_prob = 0.0
    first_entry = None
    for i in range(1, max_iter + 1):
        entry, exit_ = body(builder, i)
        if first_entry is None:
            first_entry = entry
            for p in (after or []):
                builder.edge(p, entry)
        if pending_or is not None:
            builder.edge(pending_or, entry)
            builder.probability(pending_or, entry, pending_continue_prob)
            pending_or = None
        elif prev_exit is not None:
            builder.edge(prev_exit, entry)
        prev_exit = exit_

        p_stop = iter_probs.get(i, 0.0) / remaining
        remaining -= iter_probs.get(i, 0.0)
        if i == max_iter or p_stop >= 1.0 - _PROB_TOL:
            builder.edge(exit_, exit_merge)
            break
        if p_stop <= _PROB_TOL:
            continue  # loop never stops here: chain directly to next body
        # probabilistic exit: OR node choosing skip-out vs next iteration
        or_name = f"{name}#or{i}"
        skip = f"{name}#skip{i}"
        builder.or_node(or_name, after=[exit_])
        builder.and_node(skip, after=[or_name])
        builder.edge(skip, exit_merge)
        builder.probability(or_name, skip, p_stop)
        pending_or = or_name
        pending_continue_prob = 1.0 - p_stop
    return exit_merge


def _check_probs(iter_probs: Mapping[int, float]) -> None:
    if not iter_probs:
        raise GraphError("iteration probability table is empty")
    for k, p in iter_probs.items():
        if k < 0 or int(k) != k:
            raise GraphError(f"iteration count must be a natural number, "
                             f"got {k}")
        if p <= 0:
            raise GraphError(
                f"iteration probability for count {k} must be > 0, got {p}")
    total = sum(iter_probs.values())
    if abs(total - 1.0) > 1e-6:
        raise GraphError(
            f"iteration probabilities sum to {total:.6g}, expected 1")
