"""Graphviz DOT export for AND/OR graphs.

Matches the paper's drawing conventions (Figure 1/3): computation nodes
are circles labelled ``name c/a``, AND nodes diamonds, OR nodes double
circles; OR branch edges are labelled with their probability.
"""

from __future__ import annotations

from typing import List

from .andor import AndOrGraph


def to_dot(graph: AndOrGraph, rankdir: str = "TB") -> str:
    """Render a graph as Graphviz DOT text."""
    lines: List[str] = [f'digraph "{graph.name}" {{',
                        f"  rankdir={rankdir};",
                        "  node [fontsize=10];"]
    for node in graph:
        if node.is_computation:
            assert node.stats is not None
            label = f"{node.name}\\n{node.stats.wcet:g}/{node.stats.acet:g}"
            attrs = f'shape=circle, label="{label}"'
        elif node.is_and:
            attrs = f'shape=diamond, label="{node.name}"'
        else:
            attrs = f'shape=doublecircle, label="{node.name}"'
        lines.append(f'  "{node.name}" [{attrs}];')
    for src, dst in graph.edges():
        attrs = ""
        if graph.node(src).is_or and graph.is_branching_or(src):
            prob = graph.branch_probabilities(src).get(dst)
            if prob is not None:
                attrs = f' [label="{prob * 100:g}%"]'
        lines.append(f'  "{src}" -> "{dst}"{attrs};')
    lines.append("}")
    return "\n".join(lines)
