"""Node kinds of the extended AND/OR model (Section 2.1).

Three kinds of vertices:

* **computation** nodes — real tasks with a worst-case (``c_i``) and
  average-case (``a_i``) execution time at maximum speed;
* **AND** synchronization nodes — dummy tasks that depend on *all* their
  predecessors; they expose parallelism (Figure 1a);
* **OR** synchronization nodes — dummy tasks that depend on *one* of
  their predecessors and enable *one* of their successors; they express
  alternative execution paths (Figure 1b) with a known probability per
  successor path.

Synchronization nodes have zero execution time (``c = a = 0``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from ..types import TaskStats


class NodeKind(enum.Enum):
    """The three vertex kinds of the extended AND/OR graph."""

    COMPUTATION = "computation"
    AND = "and"
    OR = "or"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Node:
    """One vertex of an AND/OR graph.

    ``stats`` is mandatory for computation nodes and must be ``None`` for
    synchronization nodes (they are dummy tasks with zero execution time).
    """

    name: str
    kind: NodeKind
    stats: Optional[TaskStats] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("node name must be non-empty")
        if self.kind is NodeKind.COMPUTATION:
            if self.stats is None:
                raise ValueError(
                    f"computation node {self.name!r} requires TaskStats")
        elif self.stats is not None:
            raise ValueError(
                f"synchronization node {self.name!r} must not carry TaskStats")

    @property
    def is_computation(self) -> bool:
        return self.kind is NodeKind.COMPUTATION

    @property
    def is_and(self) -> bool:
        return self.kind is NodeKind.AND

    @property
    def is_or(self) -> bool:
        return self.kind is NodeKind.OR

    @property
    def wcet(self) -> float:
        """Worst-case execution time at maximum speed (0 for sync nodes)."""
        return self.stats.wcet if self.stats is not None else 0.0

    @property
    def acet(self) -> float:
        """Average-case execution time at maximum speed (0 for sync nodes)."""
        return self.stats.acet if self.stats is not None else 0.0

    def label(self) -> str:
        """The paper's node label, e.g. ``B 5/3`` for computation nodes."""
        if self.is_computation:
            assert self.stats is not None
            return f"{self.name} {self.stats.wcet:g}/{self.stats.acet:g}"
        return f"{self.name} [{self.kind.value.upper()}]"


def computation(name: str, wcet: float, acet: float) -> Node:
    """Convenience constructor for a computation node."""
    return Node(name, NodeKind.COMPUTATION, TaskStats(wcet=wcet, acet=acet))


def and_node(name: str) -> Node:
    """Convenience constructor for an AND synchronization node."""
    return Node(name, NodeKind.AND)


def or_node(name: str) -> Node:
    """Convenience constructor for an OR synchronization node."""
    return Node(name, NodeKind.OR)
