"""Program-section decomposition at OR nodes.

The paper assumes that "an OR node cannot be processed concurrently with
other paths — all the processors will synchronize at an OR node".  The
application is therefore a DAG of *program sections* (AND-only subgraphs
of computation and AND nodes) separated by OR synchronization nodes:

* the **root section** starts at the graph roots;
* when a section drains, its **exit OR** fires, selects one successor
  path (by the attached probabilities) and the chosen section begins;
* a section with no exit OR ends the application.

This module computes that decomposition and enforces its structural
rules.  It is pure graph structure — no scheduling — so it lives in
``repro.graph``; the offline phase builds canonical schedules per section
on top of it.

Structural rules enforced (each yields a :class:`GraphError` otherwise):

1. no direct OR → OR edges (insert a pass-through AND node for an empty
   path; sections may consist solely of AND nodes and have zero length);
2. a successor of an OR node has that OR as its *only* predecessor (it is
   the entry of a fresh section);
3. every non-root section has exactly one entry node; the root section's
   entries are the graph roots;
4. all edges leaving a section target the same OR node (its exit OR);
5. two successors of a branching OR lie in *different* sections
   (alternative paths, not parallel work);
6. every OR node has at least one predecessor and at least one successor
   unless it terminates the application (no successors is allowed: the
   application may end right after a merge).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import GraphError
from .andor import AndOrGraph

_PROB_TOL = 1e-6


@dataclass
class Section:
    """One AND-only program section between OR synchronization points."""

    id: int
    nodes: List[str]
    entry_or: Optional[str] = None
    exit_or: Optional[str] = None
    entry_nodes: List[str] = field(default_factory=list)
    sink_nodes: List[str] = field(default_factory=list)

    @property
    def is_root(self) -> bool:
        return self.entry_or is None

    @property
    def is_terminal(self) -> bool:
        return self.exit_or is None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Section(id={self.id}, n={len(self.nodes)}, "
                f"entry={self.entry_or!r}, exit={self.exit_or!r})")


class SectionStructure:
    """The section-level view of an AND/OR application graph."""

    def __init__(self, graph: AndOrGraph):
        self.graph = graph
        self.sections: List[Section] = []
        self.section_of: Dict[str, int] = {}
        self._branches: Dict[str, List[Tuple[int, float]]] = {}
        self._decompose()
        self._wire_or_nodes()
        self._validate_reachability()

    # ------------------------------------------------------------------
    def _decompose(self) -> None:
        g = self.graph
        non_or = [n.name for n in g if not n.is_or]
        # undirected components of the graph restricted to non-OR nodes
        comp_id: Dict[str, int] = {}
        next_id = 0
        for start in non_or:
            if start in comp_id:
                continue
            stack = [start]
            comp_id[start] = next_id
            while stack:
                u = stack.pop()
                for v in g.successors(u) + g.predecessors(u):
                    if v in comp_id or g.node(v).is_or:
                        continue
                    comp_id[v] = next_id
                    stack.append(v)
            next_id += 1

        buckets: Dict[int, List[str]] = {i: [] for i in range(next_id)}
        for name in non_or:  # preserves graph insertion order
            buckets[comp_id[name]].append(name)

        for sid in range(next_id):
            nodes = buckets[sid]
            section = Section(id=sid, nodes=nodes)
            in_section = set(nodes)
            for name in nodes:
                preds = g.predecessors(name)
                or_preds = [p for p in preds if g.node(p).is_or]
                if or_preds:
                    if len(preds) != 1:
                        raise GraphError(
                            f"node {name!r} is an OR successor but has other "
                            f"predecessors {sorted(set(preds) - set(or_preds))}"
                            " (rule 2)")
                    entry = or_preds[0]
                    if section.entry_or not in (None, entry):
                        raise GraphError(
                            f"section of {name!r} is fed by two OR nodes "
                            f"{section.entry_or!r} and {entry!r} (rule 3)")
                    section.entry_or = entry
                    section.entry_nodes.append(name)
                elif not preds:
                    section.entry_nodes.append(name)

                or_succs = [s for s in g.successors(name)
                            if g.node(s).is_or]
                non_section_succs = [s for s in g.successors(name)
                                     if s not in in_section]
                if set(non_section_succs) - set(or_succs):
                    raise GraphError(  # pragma: no cover - defensive
                        f"node {name!r} has an edge leaving its section to a "
                        f"non-OR node")
                for s in or_succs:
                    if section.exit_or not in (None, s):
                        raise GraphError(
                            f"section containing {name!r} feeds two OR nodes "
                            f"{section.exit_or!r} and {s!r} (rule 4)")
                    section.exit_or = s
                if not g.successors(name):
                    section.sink_nodes.append(name)

            if section.entry_or is not None and len(section.entry_nodes) != 1:
                raise GraphError(
                    f"non-root section {sid} has entry nodes "
                    f"{section.entry_nodes}; expected exactly one (rule 3)")
            self.sections.append(section)
            for name in nodes:
                self.section_of[name] = sid

        roots = [s for s in self.sections if s.is_root]
        if len(self.sections) == 0:
            raise GraphError("application has no computation sections")
        if len(roots) != 1:
            raise GraphError(
                f"expected exactly one root section, found {len(roots)}")
        self.root_id = roots[0].id

    # ------------------------------------------------------------------
    def _wire_or_nodes(self) -> None:
        g = self.graph
        for node in g.or_nodes():
            name = node.name
            if not g.predecessors(name):
                raise GraphError(f"OR node {name!r} has no predecessor")
            for p in g.predecessors(name):
                if g.node(p).is_or:
                    raise GraphError(
                        f"direct OR->OR edge {p!r} -> {name!r}; insert a "
                        "pass-through AND node (rule 1)")
            succs = g.successors(name)
            probs = g.branch_probabilities(name)
            if succs:
                missing = [s for s in succs if s not in probs]
                if len(succs) > 1 and missing:
                    raise GraphError(
                        f"OR node {name!r} lacks probabilities for successors "
                        f"{missing}")
                total = sum(probs.values())
                if abs(total - 1.0) > _PROB_TOL:
                    raise GraphError(
                        f"branch probabilities of OR node {name!r} sum to "
                        f"{total:.6g}, expected 1")
            targets: List[Tuple[int, float]] = []
            seen_sections = set()
            for s in succs:
                if g.node(s).is_or:
                    raise GraphError(
                        f"direct OR->OR edge {name!r} -> {s!r}; insert a "
                        "pass-through AND node (rule 1)")
                sid = self.section_of[s]
                if sid in seen_sections:
                    raise GraphError(
                        f"OR node {name!r} has two successors in section "
                        f"{sid} (rule 5)")
                seen_sections.add(sid)
                targets.append((sid, probs.get(s, 1.0)))
            self._branches[name] = targets

    # ------------------------------------------------------------------
    def _validate_reachability(self) -> None:
        """Every section must be reachable from the root via OR choices."""
        seen = set()
        stack = [self.root_id]
        while stack:
            sid = stack.pop()
            if sid in seen:
                continue
            seen.add(sid)
            exit_or = self.sections[sid].exit_or
            if exit_or is not None:
                for tid, _p in self._branches[exit_or]:
                    stack.append(tid)
        unreachable = sorted(set(range(len(self.sections))) - seen)
        if unreachable:
            names = [self.sections[i].nodes[:3] for i in unreachable]
            raise GraphError(
                f"sections {unreachable} (nodes {names}) are unreachable "
                "from the root section")

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def root(self) -> Section:
        return self.sections[self.root_id]

    def section(self, sid: int) -> Section:
        return self.sections[sid]

    def section_of_node(self, name: str) -> Section:
        try:
            return self.sections[self.section_of[name]]
        except KeyError:
            raise GraphError(
                f"{name!r} is not a section node (OR nodes belong to no "
                "section)") from None

    def branches(self, or_name: str) -> List[Tuple[int, float]]:
        """``(section_id, probability)`` per successor path of an OR node.

        Empty for a terminal OR node (application ends at the merge).
        """
        try:
            return list(self._branches[or_name])
        except KeyError:
            raise GraphError(f"{or_name!r} is not an OR node") from None

    def subgraph(self, sid: int) -> AndOrGraph:
        """The AND-only subgraph of one section (internal edges only)."""
        section = self.sections[sid]
        sub = AndOrGraph(f"{self.graph.name}/s{sid}")
        members = set(section.nodes)
        for name in section.nodes:
            sub.add_node(self.graph.node(name))
        for name in section.nodes:
            for s in self.graph.successors(name):
                if s in members:
                    sub.add_edge(name, s)
        return sub

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"SectionStructure(sections={len(self.sections)}, "
                f"or_nodes={len(self._branches)})")
