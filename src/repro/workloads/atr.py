"""Automated target recognition (ATR) workload.

The paper's primary benchmark: per frame, regions of interest (ROIs) are
detected and each ROI is compared against all templates; the number of
ROIs "varies substantially" between frames, so the application has one
OR branch per possible ROI count — most frames skip a large part of the
work.  The paper omits the dependence graph ("not shown due to space
limitation"), so we rebuild it from the prose (see DESIGN.md):

* ``detect`` — ROI detection over the frame;
* ``O_roi`` — OR node branching on the detected ROI count
  ``k ∈ {0..max_rois}`` with a measured-like probability distribution
  (mid counts common, extremes rare);
* branch ``k`` — an AND fork into ``k`` parallel matching pipelines
  (each ROI is compared with all templates; the per-ROI template loop is
  collapsed into one task per Section 2.1), joined by an AND node;
* ``O_merge`` then ``classify`` — final classification.

Time units are milliseconds; the defaults give per-frame worst cases of
a few tens of ms.  The paper measured α ≈ high for ATR ("little slack
from task's run-time behaviour"); default 0.9.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..errors import ConfigError
from ..graph.andor import AndOrGraph
from ..graph.builder import GraphBuilder

#: default probability of detecting k = 0, 1, ... ROIs in a frame
DEFAULT_ROI_PROBS: Tuple[float, ...] = (0.10, 0.30, 0.30, 0.20, 0.10)


@dataclass(frozen=True)
class AtrConfig:
    """Parameters of the ATR application generator."""

    max_rois: int = 4
    roi_probs: Tuple[float, ...] = DEFAULT_ROI_PROBS
    n_templates: int = 8
    detect_wcet: float = 10.0       # ms: ROI detection over the frame
    match_wcet: float = 2.0         # ms: one ROI against one template
    classify_wcet: float = 5.0      # ms: final classification
    bookkeeping_wcet: float = 1.0   # ms: the k=0 path still logs the frame
    alpha: float = 0.9              # measured ACET/WCET ratio

    def __post_init__(self) -> None:
        if self.max_rois < 1:
            raise ConfigError("max_rois must be >= 1")
        if len(self.roi_probs) != self.max_rois + 1:
            raise ConfigError(
                f"roi_probs needs {self.max_rois + 1} entries "
                f"(k = 0..{self.max_rois}), got {len(self.roi_probs)}")
        if any(p <= 0 for p in self.roi_probs):
            raise ConfigError("every ROI-count probability must be > 0")
        if abs(sum(self.roi_probs) - 1.0) > 1e-6:
            raise ConfigError(
                f"roi_probs sum to {sum(self.roi_probs):.6g}, expected 1")
        if not (0 < self.alpha <= 1):
            raise ConfigError(f"alpha must be in (0, 1], got {self.alpha}")
        for field_name in ("n_templates",):
            if self.n_templates < 1:
                raise ConfigError("n_templates must be >= 1")
        for value, label in ((self.detect_wcet, "detect_wcet"),
                             (self.match_wcet, "match_wcet"),
                             (self.classify_wcet, "classify_wcet"),
                             (self.bookkeeping_wcet, "bookkeeping_wcet")):
            if value <= 0:
                raise ConfigError(f"{label} must be > 0, got {value}")

    @property
    def roi_task_wcet(self) -> float:
        """WCET of processing one ROI (all templates, loop collapsed)."""
        return self.match_wcet * self.n_templates


def atr_graph(config: Optional[AtrConfig] = None) -> AndOrGraph:
    """Build the ATR application graph."""
    cfg = config or AtrConfig()
    a = cfg.alpha
    b = GraphBuilder("atr")
    b.task("detect", cfg.detect_wcet, a * cfg.detect_wcet)
    b.or_node("O_roi", after=["detect"])
    b.or_node("O_merge")

    exits: List[str] = []
    for k in range(cfg.max_rois + 1):
        prob = cfg.roi_probs[k]
        if k == 0:
            name = "k0_bookkeep"
            b.task(name, cfg.bookkeeping_wcet, a * cfg.bookkeeping_wcet,
                   after=["O_roi"])
            b.probability("O_roi", name, prob)
            exits.append(name)
            continue
        fork = f"k{k}_fork"
        b.and_node(fork, after=["O_roi"])
        b.probability("O_roi", fork, prob)
        roi_tasks = []
        for i in range(k):
            t = f"k{k}_roi{i}"
            b.task(t, cfg.roi_task_wcet, a * cfg.roi_task_wcet,
                   after=[fork])
            roi_tasks.append(t)
        join = f"k{k}_join"
        b.and_join(join, roi_tasks)
        exits.append(join)

    for e in exits:
        b.edge(e, "O_merge")
    b.task("classify", cfg.classify_wcet, a * cfg.classify_wcet,
           after=["O_merge"])
    return b.build_graph()
