"""Frame-stream (periodic mission) simulation.

The paper evaluates one application *instance* per run; real deployments
of its motivating workload run the same application once per frame
period for the length of a mission (ATR: one frame every deadline).
This module aggregates per-frame simulations into mission-level
statistics — total energy, switch counts, response-time jitter — which
is the view a systems adopter actually cares about.

Because every scheme meets its per-frame deadline (Theorem 1), frames
never overlap: a mission of N frames is N independent instances whose
energy windows tile ``[0, N · period]`` exactly.  The value added here
is the aggregation, pairing across schemes, and response-time
statistics; the per-frame semantics are the validated engine's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.registry import get_policy
from ..errors import ConfigError
from ..graph.andor import AndOrGraph, Application
from ..offline.plan import build_plan
from ..power.model import PowerModel, make_power_model
from ..power.overhead import NO_OVERHEAD, PAPER_OVERHEAD, OverheadModel
from ..sim.engine import simulate
from ..sim.realization import sample_realization


@dataclass
class StreamResult:
    """Mission-level aggregation of one scheme over a frame stream."""

    scheme: str
    n_frames: int
    period: float
    total_energy: float = 0.0
    total_switches: int = 0
    #: per-frame response times (finish relative to frame start)
    response_times: np.ndarray = field(
        default_factory=lambda: np.empty(0))
    #: per-frame energies
    frame_energies: np.ndarray = field(
        default_factory=lambda: np.empty(0))

    @property
    def mission_length(self) -> float:
        return self.n_frames * self.period

    @property
    def avg_power(self) -> float:
        """Mean power draw over the mission (energy per time unit)."""
        return self.total_energy / self.mission_length

    @property
    def response_jitter(self) -> float:
        """Std-dev of the per-frame response time."""
        if self.response_times.size < 2:
            return 0.0
        return float(self.response_times.std(ddof=1))

    @property
    def worst_response(self) -> float:
        return float(self.response_times.max(initial=0.0))


def simulate_stream(graph: AndOrGraph, period: float, scheme: str,
                    n_frames: int,
                    power_model: str = "transmeta",
                    n_processors: int = 2,
                    overhead: Optional[OverheadModel] = None,
                    seed: int = 2002) -> StreamResult:
    """Run ``n_frames`` consecutive frames under one scheme."""
    if n_frames < 1:
        raise ConfigError(f"n_frames must be >= 1, got {n_frames}")
    if period <= 0:
        raise ConfigError(f"period must be positive, got {period}")
    app = Application(graph=graph, deadline=period,
                      name=f"{graph.name}@{period:g}")
    power = make_power_model(power_model)
    policy = get_policy(scheme)
    if policy.name == "NPM":
        ov: OverheadModel = NO_OVERHEAD
    else:
        ov = overhead if overhead is not None else PAPER_OVERHEAD
    reserve = ov.per_task_reserve(power) if policy.requires_reserve else 0.0
    plan = build_plan(app, n_processors, reserve=reserve)

    rng = np.random.default_rng(seed)
    responses = np.empty(n_frames)
    energies = np.empty(n_frames)
    switches = 0
    for i in range(n_frames):
        rl = sample_realization(plan.structure, rng)
        run = policy.start_run(plan, power, ov, realization=rl)
        res = simulate(plan, run, power, ov, rl)
        responses[i] = res.finish_time
        energies[i] = res.total_energy
        switches += res.n_speed_changes
    return StreamResult(scheme=policy.name, n_frames=n_frames,
                        period=period,
                        total_energy=float(energies.sum()),
                        total_switches=switches,
                        response_times=responses,
                        frame_energies=energies)


def compare_streams(graph: AndOrGraph, period: float,
                    schemes: Sequence[str], n_frames: int,
                    power_model: str = "transmeta",
                    n_processors: int = 2,
                    overhead: Optional[OverheadModel] = None,
                    seed: int = 2002) -> Dict[str, StreamResult]:
    """Run the same frame stream under several schemes (shared seed).

    Each scheme sees identical frame realizations (paired comparison),
    so mission-energy ratios are directly meaningful.
    """
    return {
        scheme: simulate_stream(graph, period, scheme, n_frames,
                                power_model=power_model,
                                n_processors=n_processors,
                                overhead=overhead, seed=seed)
        for scheme in schemes
    }


def render_stream_report(results: Dict[str, StreamResult],
                         baseline: str = "NPM") -> str:
    """Mission summary table, normalized to a baseline scheme."""
    if baseline not in results:
        raise ConfigError(
            f"baseline {baseline!r} missing from results "
            f"({sorted(results)})")
    base = results[baseline].total_energy
    lines = [f"{'scheme':>8} {'energy':>12} {'E/E_' + baseline:>10} "
             f"{'avg power':>10} {'switches':>9} {'worst resp':>11} "
             f"{'jitter':>9}"]
    for scheme, r in results.items():
        lines.append(
            f"{scheme:>8} {r.total_energy:>12.2f} "
            f"{r.total_energy / base:>10.3f} {r.avg_power:>10.4f} "
            f"{r.total_switches:>9d} {r.worst_response:>11.2f} "
            f"{r.response_jitter:>9.3f}")
    return "\n".join(lines) + "\n"
