"""The paper's Figure 3 synthetic application (reconstructed).

The OCR of the figure preserves the node labels (A…L, AND nodes A1…A4,
OR nodes O1…O4), most WCET/ACET pairs (8/5, 5/3, 4/2, 8/6, 10/6, 10/8,
5/4, 4/2, 5/3), the branch probabilities 35 %/65 % and 30 %/70 %, and two
loop annotations — "4: 50%:20%:5%:25%" (a probabilistic loop of at most
4 iterations) and a deterministic 3-iteration loop.  The exact wiring is
lost, so we rebuild a structurally faithful application that uses every
preserved element:

* an AND fork/join region (A1/A2) exposing parallelism,
* a first OR branch (O1, 35 %/65 %) whose long path contains the
  probabilistic loop, merged at O2,
* a second OR branch (O3, 30 %/70 %) merged at O4,
* a tail with the deterministic loop.

Time units are milliseconds.  Loops are expanded per Section 2.1
(:func:`repro.graph.loops.expand_loop`), so the resulting graph is pure
AND/OR structure.  ``alpha`` rescales every ACET (``a_i = α·c_i``) for
the Figure 6 sweep; ``alpha=None`` keeps the figure's native pairs.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..errors import ConfigError
from ..graph.andor import AndOrGraph
from ..graph.builder import GraphBuilder
from ..graph.loops import expand_loop, simple_body

#: iteration-count probabilities of the probabilistic loop in Figure 3
FIG3_LOOP_PROBS: Dict[int, float] = {1: 0.50, 2: 0.20, 3: 0.05, 4: 0.25}


def figure3_graph(alpha: Optional[float] = None) -> AndOrGraph:
    """Build the synthetic application of Figure 3.

    Parameters
    ----------
    alpha:
        If given (0 < α ≤ 1), every task's ACET becomes ``α · WCET`` —
        this is how the paper sweeps α in Figure 6.  ``None`` keeps the
        reconstructed native ACETs.
    """
    if alpha is not None and not (0 < alpha <= 1):
        raise ConfigError(f"alpha must be in (0, 1], got {alpha}")

    def ac(wcet: float, acet: float) -> float:
        return alpha * wcet if alpha is not None else acet

    b = GraphBuilder("fig3-synthetic")
    # root region: A feeds an AND fork D || E joined by A2
    b.task("A", 8, ac(8, 5))
    b.and_split("A1", after="A",
                branches=[("D", 5, ac(5, 4)), ("E", 10, ac(10, 8))])
    b.and_join("A2", ["D", "E"])

    # first OR branch: 35% takes F + probabilistic loop, 65% takes G -> H
    b.or_node("O1", after=["A2"])
    b.task("F", 8, ac(8, 6), after=["O1"])
    b.probability("O1", "F", 0.35)
    loop_exit = expand_loop(
        b, "LF", FIG3_LOOP_PROBS,
        simple_body("LF", 4, ac(4, 2)), after=["F"])
    b.task("B", 5, ac(5, 3), after=[loop_exit])

    b.task("G", 5, ac(5, 3), after=["O1"])
    b.probability("O1", "G", 0.65)
    b.task("H", 10, ac(10, 6), after=["G"])

    b.or_merge("O2", ["B", "H"])

    # middle region and second OR branch: 30% I, 70% J, merged at O4
    b.task("K", 5, ac(5, 3), after=["O2"])
    b.or_node("O3", after=["K"])
    b.task("I", 10, ac(10, 8), after=["O3"])
    b.probability("O3", "I", 0.30)
    b.task("J", 4, ac(4, 2), after=["O3"])
    b.probability("O3", "J", 0.70)
    b.or_merge("O4", ["I", "J"])

    # tail: L then a deterministic 3-iteration loop of a 4/2 body
    b.task("L", 5, ac(5, 3), after=["O4"])
    expand_loop(b, "LT", {3: 1.0}, simple_body("LT", 4, ac(4, 2)),
                after=["L"])
    return b.build_graph()


def figure1a_graph() -> AndOrGraph:
    """Figure 1a: the AND structure (A1 forks B, C; A2 joins)."""
    b = GraphBuilder("fig1a-and")
    b.task("A", 8, 5)
    b.and_split("A1", after="A", branches=[("B", 5, 3), ("C", 4, 2)])
    b.and_join("A2", ["B", "C"])
    b.task("G", 5, 3, after=["A2"])
    return b.build_graph()


def figure1b_graph() -> AndOrGraph:
    """Figure 1b: the OR structure (O3 branches 30 %/70 %; O4 merges)."""
    b = GraphBuilder("fig1b-or")
    b.task("A", 8, 5)
    b.or_branch("O3", after="A",
                paths={"F": ((8, 6), 0.30), "G": ((5, 3), 0.70)})
    b.or_merge("O4", ["F", "G"])
    b.task("B", 5, 3, after=["O4"])
    return b.build_graph()
