"""The paper's applications and load/α parameterization.

* :func:`atr_graph` / :class:`AtrConfig` — automated target recognition,
* :func:`figure3_graph` — the synthetic application of Figure 3 (plus
  the two Figure 1 illustration graphs),
* :func:`application_with_load` — deadline from the paper's load metric,
* :func:`repro.graph.random_graph` (re-exported) — random applications.
"""

from ..graph.random_gen import GraphGenConfig, random_graph
from .atr import DEFAULT_ROI_PROBS, AtrConfig, atr_graph
from .frames import (
    StreamResult,
    compare_streams,
    render_stream_report,
    simulate_stream,
)
from .library import (
    LIBRARY,
    mpeg_decoder,
    packet_pipeline,
    radar_tracker,
    sensor_fusion,
)
from .scaling import (
    application_with_load,
    average_case_length,
    worst_case_length,
)
from .synthetic import (
    FIG3_LOOP_PROBS,
    figure1a_graph,
    figure1b_graph,
    figure3_graph,
)

__all__ = [
    "AtrConfig",
    "atr_graph",
    "DEFAULT_ROI_PROBS",
    "figure3_graph",
    "figure1a_graph",
    "figure1b_graph",
    "FIG3_LOOP_PROBS",
    "application_with_load",
    "StreamResult",
    "simulate_stream",
    "compare_streams",
    "render_stream_report",
    "LIBRARY",
    "mpeg_decoder",
    "radar_tracker",
    "sensor_fusion",
    "packet_pipeline",
    "worst_case_length",
    "average_case_length",
    "GraphGenConfig",
    "random_graph",
]
