"""A zoo of realistic AND/OR application families.

The paper motivates the model with applications whose control flow
skips work at runtime (ATR's variable ROI count, "the control flow of
most practical applications also has OR structures").  Beyond the
paper's two workloads, this library provides parameterized generators
for common embedded pipelines, all expressed in the validated AND/OR
model — useful as additional evaluation subjects and as modelling
examples:

* :func:`mpeg_decoder` — frame-type branch (I/P/B), per-slice parallel
  decode, deblocking;
* :func:`radar_tracker` — detection-count branch, per-track parallel
  update, probabilistic re-acquisition loop;
* :func:`sensor_fusion` — parallel per-sensor preprocessing, OR on
  fusion mode (full vs degraded);
* :func:`packet_pipeline` — packet-type branch with a crypto loop on
  the slow path.

Time unit: milliseconds, like the paper's workloads.  Every generator
returns a validated :class:`~repro.graph.andor.AndOrGraph`.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from ..errors import ConfigError
from ..graph.andor import AndOrGraph
from ..graph.builder import GraphBuilder
from ..graph.loops import expand_loop, simple_body


def _check_alpha(alpha: float) -> None:
    if not (0 < alpha <= 1):
        raise ConfigError(f"alpha must be in (0, 1], got {alpha}")


def _check_probs(probs: Sequence[float], label: str) -> None:
    if any(p <= 0 for p in probs):
        raise ConfigError(f"{label} probabilities must be positive")
    if abs(sum(probs) - 1.0) > 1e-6:
        raise ConfigError(
            f"{label} probabilities sum to {sum(probs):.6g}, expected 1")


def mpeg_decoder(n_slices: int = 4,
                 frame_probs: Tuple[float, float, float] = (0.1, 0.4, 0.5),
                 alpha: float = 0.6) -> AndOrGraph:
    """An MPEG-style frame decoder.

    ``frame_probs`` are the probabilities of (I, P, B) frames.  I-frames
    decode every slice from scratch (heavy), P-frames add motion
    compensation (medium), B-frames interpolate (light).  Slices decode
    in parallel; a deblocking filter joins them.
    """
    if n_slices < 1:
        raise ConfigError("n_slices must be >= 1")
    if len(frame_probs) != 3:
        raise ConfigError("frame_probs needs exactly (I, P, B) entries")
    _check_probs(frame_probs, "frame")
    _check_alpha(alpha)

    b = GraphBuilder("mpeg-decoder")
    b.task("parse", 2.0, alpha * 2.0)
    b.or_node("O_type", after=["parse"])
    b.or_node("O_decoded")

    slice_wcet = {"I": 8.0, "P": 5.0, "B": 3.0}
    for kind, prob in zip("IPB", frame_probs):
        fork = f"{kind}_fork"
        b.and_node(fork, after=["O_type"])
        b.probability("O_type", fork, prob)
        tasks = []
        for s in range(n_slices):
            t = f"{kind}_slice{s}"
            w = slice_wcet[kind]
            b.task(t, w, alpha * w, after=[fork])
            tasks.append(t)
        join = f"{kind}_join"
        b.and_join(join, tasks)
        b.edge(join, "O_decoded")

    b.task("deblock", 3.0, alpha * 3.0, after=["O_decoded"])
    b.task("emit", 1.0, alpha * 1.0, after=["deblock"])
    return b.build_graph()


def radar_tracker(max_tracks: int = 3,
                  track_probs: Tuple[float, ...] = (0.2, 0.4, 0.3, 0.1),
                  reacquire_probs: Dict[int, float] = None,
                  alpha: float = 0.5) -> AndOrGraph:
    """A radar track-while-scan update cycle.

    One dwell produces 0..``max_tracks`` confirmed detections
    (``track_probs``); each detection spawns a parallel track-update
    chain (gate → filter).  Lost tracks trigger a probabilistic
    re-acquisition loop before the display update.
    """
    if max_tracks < 1:
        raise ConfigError("max_tracks must be >= 1")
    if len(track_probs) != max_tracks + 1:
        raise ConfigError(
            f"track_probs needs {max_tracks + 1} entries, got "
            f"{len(track_probs)}")
    _check_probs(track_probs, "track")
    _check_alpha(alpha)
    reacquire = reacquire_probs or {1: 0.7, 2: 0.2, 3: 0.1}

    b = GraphBuilder("radar-tracker")
    b.task("dwell", 6.0, alpha * 6.0)
    b.task("detect", 4.0, alpha * 4.0, after=["dwell"])
    b.or_node("O_tracks", after=["detect"])
    b.or_node("O_updated")

    for k in range(max_tracks + 1):
        prob = track_probs[k]
        if k == 0:
            t = "t0_coast"
            b.task(t, 1.0, alpha * 1.0, after=["O_tracks"])
            b.probability("O_tracks", t, prob)
            b.edge(t, "O_updated")
            continue
        fork = f"t{k}_fork"
        b.and_node(fork, after=["O_tracks"])
        b.probability("O_tracks", fork, prob)
        exits = []
        for i in range(k):
            gate = f"t{k}_gate{i}"
            filt = f"t{k}_filter{i}"
            b.task(gate, 2.0, alpha * 2.0, after=[fork])
            b.task(filt, 3.0, alpha * 3.0, after=[gate])
            exits.append(filt)
        join = f"t{k}_join"
        b.and_join(join, exits)
        b.edge(join, "O_updated")

    b.task("associate", 2.0, alpha * 2.0, after=["O_updated"])
    loop_exit = expand_loop(b, "reacq", reacquire,
                            simple_body("reacq", 2.0, alpha * 2.0),
                            after=["associate"])
    b.task("display", 1.5, alpha * 1.5, after=[loop_exit])
    return b.build_graph()


def sensor_fusion(n_sensors: int = 4,
                  degraded_prob: float = 0.25,
                  alpha: float = 0.55) -> AndOrGraph:
    """Multi-sensor fusion with a degraded mode.

    All sensors preprocess in parallel (AND); the fusion stage then
    either runs the full joint estimator or — with probability
    ``degraded_prob`` (a sensor dropped out, low confidence) — a cheap
    fallback estimator.
    """
    if n_sensors < 2:
        raise ConfigError("n_sensors must be >= 2")
    if not (0 < degraded_prob < 1):
        raise ConfigError("degraded_prob must be in (0, 1)")
    _check_alpha(alpha)

    b = GraphBuilder("sensor-fusion")
    b.task("sync", 1.0, alpha * 1.0)
    b.and_node("S_fork", after=["sync"])
    pre = []
    for i in range(n_sensors):
        t = f"pre{i}"
        w = 3.0 + (i % 2)  # heterogeneous sensors
        b.task(t, w, alpha * w, after=["S_fork"])
        pre.append(t)
    b.and_join("S_join", pre)

    b.or_node("O_mode", after=["S_join"])
    b.task("fuse_full", 8.0, alpha * 8.0, after=["O_mode"])
    b.probability("O_mode", "fuse_full", 1.0 - degraded_prob)
    b.task("fuse_degraded", 2.5, alpha * 2.5, after=["O_mode"])
    b.probability("O_mode", "fuse_degraded", degraded_prob)
    b.or_merge("O_fused", ["fuse_full", "fuse_degraded"])
    b.task("publish", 1.0, alpha * 1.0, after=["O_fused"])
    return b.build_graph()


def packet_pipeline(crypto_prob: float = 0.3,
                    crypto_rounds: Dict[int, float] = None,
                    alpha: float = 0.4) -> AndOrGraph:
    """A network packet-processing pipeline.

    Packets branch by type: the fast path forwards directly; the slow
    path (probability ``crypto_prob``) runs a variable number of crypto
    rounds (``crypto_rounds`` distribution) before forwarding.
    """
    if not (0 < crypto_prob < 1):
        raise ConfigError("crypto_prob must be in (0, 1)")
    _check_alpha(alpha)
    rounds = crypto_rounds or {1: 0.5, 2: 0.3, 4: 0.2}

    b = GraphBuilder("packet-pipeline")
    b.task("rx", 0.5, alpha * 0.5)
    b.task("classify", 1.0, alpha * 1.0, after=["rx"])
    b.or_node("O_path", after=["classify"])
    b.or_node("O_ready")

    b.task("fast_lookup", 1.5, alpha * 1.5, after=["O_path"])
    b.probability("O_path", "fast_lookup", 1.0 - crypto_prob)
    b.edge("fast_lookup", "O_ready")

    b.task("slow_setup", 1.0, alpha * 1.0, after=["O_path"])
    b.probability("O_path", "slow_setup", crypto_prob)
    loop_exit = expand_loop(b, "crypt", rounds,
                            simple_body("crypt", 2.0, alpha * 2.0),
                            after=["slow_setup"])
    b.task("slow_verify", 1.0, alpha * 1.0, after=[loop_exit])
    b.edge("slow_verify", "O_ready")

    b.task("tx", 0.5, alpha * 0.5, after=["O_ready"])
    return b.build_graph()


#: name → zero-argument constructor with the library defaults
LIBRARY = {
    "mpeg": mpeg_decoder,
    "radar": radar_tracker,
    "fusion": sensor_fusion,
    "packets": packet_pipeline,
}
