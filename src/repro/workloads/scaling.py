"""Load parameterization of applications.

The paper defines *load* as "the length of the canonical schedule for
the longest path over the deadline", so sweeping load means solving for
the deadline: ``D = T_worst / load``.  ``T_worst`` depends on the number
of processors (it is a list-schedule length), so an application instance
is tied to the processor count it was scaled for.
"""

from __future__ import annotations

from ..errors import ConfigError
from ..graph.andor import AndOrGraph, Application
from ..graph.validate import validate_graph
from ..offline.plan import build_plan


def worst_case_length(graph: AndOrGraph, n_processors: int,
                      reserve: float = 0.0) -> float:
    """Canonical worst-case finish time of the longest path."""
    probe = Application(graph=graph, deadline=1.0, name=graph.name)
    plan = build_plan(probe, n_processors, reserve=reserve,
                      require_feasible=False)
    return plan.t_worst


def average_case_length(graph: AndOrGraph, n_processors: int) -> float:
    """Probability-weighted average-case finish time (the profile's a)."""
    probe = Application(graph=graph, deadline=1.0, name=graph.name)
    plan = build_plan(probe, n_processors, reserve=0.0,
                      require_feasible=False)
    return plan.t_avg


def application_with_load(graph: AndOrGraph, load: float,
                          n_processors: int,
                          name: str = "") -> Application:
    """Attach the deadline that yields the requested load.

    ``load`` must be in (0, 1]: load 1 leaves zero static slack, smaller
    loads stretch the deadline proportionally.
    """
    if not (0 < load <= 1.0):
        raise ConfigError(f"load must be in (0, 1], got {load}")
    validate_graph(graph)
    t_worst = worst_case_length(graph, n_processors)
    deadline = t_worst / load
    return Application(graph=graph, deadline=deadline,
                       name=name or graph.name,
                       meta={"load": load, "n_processors": n_processors,
                             "t_worst": t_worst})
