"""Benchmarks for Table 1 and Table 2 (the processor level tables).

The tables themselves are static data; what the simulation exercises at
high frequency is level lookup (snap-up / bracket / power).  These
benches regenerate the tables, assert the structural properties the
paper states, and time the lookup hot path.
"""

import numpy as np

from repro.experiments import table1, table2
from repro.power import (
    INTEL_XSCALE,
    TRANSMETA_TM5400,
    transmeta_model,
    xscale_model,
)


def test_table1_transmeta(benchmark):
    """Table 1: 16 Transmeta TM5400 levels, 200 MHz/1.10 V - 700/1.65."""
    text = table1()
    assert len(TRANSMETA_TM5400) == 16
    assert "700" in text and "1.65" in text
    assert "200" in text and "1.10" in text
    print()
    print(text)

    model = transmeta_model()
    speeds = np.linspace(0.0, 1.0, 1000)

    def snap_all():
        return [model.snap_up(s) for s in speeds]

    result = benchmark(snap_all)
    assert all(r in model.levels() for r in result)


def test_table2_xscale(benchmark):
    """Table 2: 5 Intel XScale levels, 150 MHz/0.75 V - 1000/1.8."""
    text = table2()
    assert len(INTEL_XSCALE) == 5
    assert "1000" in text and "1.80" in text
    assert "150" in text and "0.75" in text
    print()
    print(text)

    model = xscale_model()
    speeds = np.linspace(0.0, 1.0, 1000)

    def power_all():
        return [model.power(model.snap_up(s)) for s in speeds]

    result = benchmark(power_all)
    assert max(result) <= 1.0 + 1e-12
