"""Ablation: list-scheduling heuristic (the paper's 'any heuristic').

The paper fixes LTF but stresses the construction works for any
priority heuristic.  This bench compares LTF with shortest-task-first,
FIFO and critical-path-first on the ATR workload: canonical makespan
(which bounds the feasible load range) and the energy each scheme then
achieves at a fixed deadline.
"""

import random

import numpy as np
from conftest import BENCH_RUNS

from repro.core import get_policy
from repro.graph import Application, GraphGenConfig, random_graph
from repro.offline import available_heuristics, build_plan
from repro.power import NO_OVERHEAD, PAPER_OVERHEAD, transmeta_model
from repro.sim import sample_realization, simulate
from repro.workloads import worst_case_length

HEURISTICS = ("ltf", "stf", "fifo", "cpf")


def _workload():
    """A heterogeneous application (ATR's symmetric ROI sections make
    all priorities coincide, so the ablation uses a random app with a
    wide WCET spread and real fan-out instead)."""
    cfg = GraphGenConfig(or_depth=2, p_branch=0.8, min_tasks=6,
                         max_tasks=10, max_width=3,
                         wcet_lo=1.0, wcet_hi=20.0, alpha=0.5)
    return random_graph(random.Random(20021), cfg)


def _evaluate(heuristic, deadline, n_runs=BENCH_RUNS, seed=23):
    power = transmeta_model()
    graph = _workload()
    app = Application(graph, deadline=deadline)
    plan_static = build_plan(app, 2, heuristic=heuristic)
    reserve = PAPER_OVERHEAD.per_task_reserve(power)
    plan_dyn = build_plan(app, 2, reserve=reserve,
                          structure=plan_static.structure,
                          heuristic=heuristic)
    rng = np.random.default_rng(seed)
    ratios = []
    for _ in range(n_runs):
        rl = sample_realization(plan_static.structure, rng)
        npm = get_policy("NPM").start_run(plan_static, power, NO_OVERHEAD,
                                          realization=rl)
        base = simulate(plan_static, npm, power, NO_OVERHEAD, rl)
        run = get_policy("GSS").start_run(plan_dyn, power, PAPER_OVERHEAD,
                                          realization=rl)
        res = simulate(plan_dyn, run, power, PAPER_OVERHEAD, rl)
        ratios.append(res.total_energy / base.total_energy)
    return plan_static.t_worst, float(np.mean(ratios))


def test_heuristic_ablation(benchmark):
    assert set(HEURISTICS) <= set(available_heuristics())
    # deadline from the paper's default (LTF) at load 0.6 — shared by
    # all heuristics so the energies are comparable
    deadline = worst_case_length(_workload(), 2) / 0.6

    rows = []
    for h in HEURISTICS:
        t_worst, gss = _evaluate(h, deadline)
        rows.append((h, t_worst, gss))
    print("\n# ablation-heuristics  [random app, m=2, "
          "load 0.6 (LTF-relative)]")
    print(f"{'heuristic':>10} {'T_worst':>9} {'GSS E/E_NPM':>12}")
    for h, t_worst, gss in rows:
        print(f"{h:>10} {t_worst:>9.2f} {gss:>12.3f}")

    # every heuristic yields a feasible plan here and sane energies
    for _, t_worst, gss in rows:
        assert t_worst <= deadline
        assert 0 < gss <= 1

    benchmark(_evaluate, "ltf", deadline, 10, 1)
