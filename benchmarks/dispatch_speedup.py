"""Distributed-dispatch benchmark: executor fleet vs local execution.

Times the same Figure-5-shaped load sweep (widened ATR graph, six
processors) three ways and emits ``BENCH_dispatch.json``:

1. **fused** — the local default: the whole sweep stacked into one
   array program in the driver, no pool, no fleet;
2. **serial** — one point at a time in the driver (``fused=False``,
   no pool): the naive baseline a distributed backend must beat once
   work outgrows one machine;
3. **dispatch** — the sweep sharded over a work-stealing executor
   fleet (``--executors`` local worker processes speaking the socket
   protocol), the multi-host execution shape measured on one host;
4. **sharded dispatch** — the fused array program itself split across
   the fleet (``shards=--executors``): each executor runs a contiguous
   run-range of the stacked program and the driver reduces the blocks
   in shard order, so even a *single* sweep point can use the fleet.

All passes are asserted bit-identical point by point before any
timing is reported, and the dispatch pass must have computed every
point on the fleet (no degradations).  There is **no speedup floor**:
on shared CI runners (often one or two cores) dispatch-vs-serial is
reported, not gated — the number exists to track the protocol's
overhead trend, and single-host fleets cannot beat the fused array
program anyway (that is what multi-host capacity is for).

``--budget-seconds`` (> 0) fails the invocation if the *dispatch* pass
exceeds the budget — the CI smoke gate.

Run from the repo root::

    PYTHONPATH=src python benchmarks/dispatch_speedup.py
"""

from __future__ import annotations

import argparse
import sys
import time

from _common import (
    FIG5_ATR,
    assert_series_equal,
    effective_cores,
    peak_rss_mb,
    write_record,
)
from repro.experiments import ExecutionContext, RunConfig, sweep_load
from repro.workloads import AtrConfig, atr_graph


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--points", type=int, default=10,
                    help="number of load-sweep points (grid 0.1..1.0)")
    ap.add_argument("--runs", type=int, default=120,
                    help="Monte-Carlo runs per point")
    ap.add_argument("--executors", type=int, default=4,
                    help="executor processes in the dispatch fleet")
    ap.add_argument("--procs", type=int, default=6)
    ap.add_argument("--seed", type=int, default=2002)
    ap.add_argument("--alpha", type=float, default=0.9)
    ap.add_argument("--out", default="BENCH_dispatch.json")
    ap.add_argument("--budget-seconds", type=float, default=0.0,
                    dest="budget_seconds",
                    help="fail if the dispatch pass exceeds this "
                         "(0 = no gate)")
    args = ap.parse_args(argv)
    if args.points < 1:
        ap.error("--points must be >= 1")
    if args.executors < 1:
        ap.error("--executors must be >= 1")

    graph = atr_graph(AtrConfig(alpha=args.alpha, **FIG5_ATR))
    loads = [round(0.1 + 0.9 * i / max(args.points - 1, 1), 4)
             for i in range(args.points)]
    cfg = RunConfig(n_runs=args.runs, seed=args.seed,
                    n_processors=args.procs, engine="compiled")

    print(f"dispatch_speedup: {args.points} points x {args.runs} runs, "
          f"m={args.procs}, executors={args.executors}, "
          f"cores={effective_cores()}")

    t0 = time.perf_counter()
    series_fused = sweep_load(graph, cfg, loads)
    t_fused = time.perf_counter() - t0
    print(f"  fused    (one array program) {t_fused:8.3f} s")

    t0 = time.perf_counter()
    series_serial = sweep_load(graph, cfg, loads, fused=False)
    t_serial = time.perf_counter() - t0
    print(f"  serial   (point by point)    {t_serial:8.3f} s")

    rss_baseline = peak_rss_mb()
    with ExecutionContext(backend="dispatch",
                          executors=args.executors) as ctx:
        t0 = time.perf_counter()
        series_dispatch = sweep_load(graph, cfg, loads, context=ctx)
        t_dispatch = time.perf_counter() - t0
        stats = ctx.dispatch_stats()

        # pass 4: the fused program itself split across the same fleet
        cfg_sharded = cfg.with_(shards=args.executors)
        t0 = time.perf_counter()
        series_sharded = sweep_load(graph, cfg_sharded, loads, context=ctx)
        t_sharded = time.perf_counter() - t0
    per_executor = stats.pop("per_executor")
    shard_meta = series_sharded.meta.get("fused", {})
    rss_after = peak_rss_mb()
    assert stats["completed"] == args.points, \
        f"fleet completed {stats['completed']}/{args.points} points"
    assert stats["degraded_points"] == 0, \
        "dispatch pass degraded points to the driver"
    print(f"  dispatch ({args.executors} executors)        "
          f"{t_dispatch:8.3f} s  "
          f"({', '.join(f'{n}:{c}' for n, c in sorted(per_executor.items()))})")
    print(f"  sharded  ({shard_meta.get('shards', '?')} shards, "
          f"{shard_meta.get('transport', '?')})   {t_sharded:8.3f} s  "
          f"(rss self {rss_after['self']:.0f} MiB, "
          f"workers {rss_after['children']:.0f} MiB)")

    assert_series_equal(series_serial, series_fused, "fused vs serial")
    assert_series_equal(series_serial, series_dispatch,
                         "dispatch vs serial")
    assert_series_equal(series_serial, series_sharded,
                         "sharded dispatch vs serial")

    vs_serial = t_serial / t_dispatch if t_dispatch > 0 else float("inf")
    vs_fused = t_fused / t_dispatch if t_dispatch > 0 else float("inf")
    record = {
        "benchmark": "dispatch_speedup",
        "bit_identical": True,
        "points": args.points,
        "n_runs": args.runs,
        "n_processors": args.procs,
        "executors": args.executors,
        "cores": effective_cores(),
        "fused_seconds": round(t_fused, 4),
        "serial_seconds": round(t_serial, 4),
        "dispatch_seconds": round(t_dispatch, 4),
        "dispatch_vs_serial_speedup": round(vs_serial, 3),
        "dispatch_vs_fused_speedup": round(vs_fused, 3),
        "dispatched": stats["dispatched"],
        "completed": stats["completed"],
        "stolen": stats["stolen"],
        "duplicates": stats["duplicates"],
        "worker_deaths": stats["worker_deaths"],
        "per_executor": dict(sorted(per_executor.items())),
        "sharded_dispatch_seconds": round(t_sharded, 4),
        "sharded_vs_fused_speedup": round(
            t_fused / t_sharded if t_sharded > 0 else float("inf"), 3),
        "shards_ran": shard_meta.get("shards"),
        "shard_transport": shard_meta.get("transport"),
        "peak_rss_mb": {"baseline": rss_baseline, "final": rss_after},
    }
    write_record(record, args.out)
    print(f"  dispatch vs serial {vs_serial:8.2f} x")
    print(f"  dispatch vs fused  {vs_fused:8.2f} x  -> {args.out}")

    if args.budget_seconds > 0 and t_dispatch > args.budget_seconds:
        print(f"FAIL: dispatch sweep took {t_dispatch:.2f} s, budget "
              f"{args.budget_seconds:.2f} s", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
