"""Micro-benchmarks of the simulator's hot paths.

Not tied to a paper artifact: these exist so performance regressions in
the dispatch loop (which executes millions of times in a full figure
run) are caught by `pytest benchmarks/ --benchmark-only`.
"""

import random

import numpy as np

from repro.core import get_policy
from repro.graph import GraphGenConfig, random_graph
from repro.offline import build_plan
from repro.power import PAPER_OVERHEAD, transmeta_model
from repro.sim import sample_realization, simulate
from repro.workloads import application_with_load


def _large_app():
    cfg = GraphGenConfig(or_depth=3, p_branch=0.9, min_tasks=6,
                         max_tasks=12, max_width=4)
    graph = random_graph(random.Random(42), cfg)
    return application_with_load(graph, 0.6, 4)


def test_offline_phase_throughput(benchmark):
    app = _large_app()
    plan = benchmark(build_plan, app, 4, 0.0065)
    assert plan.t_worst <= app.deadline


def test_online_gss_run_throughput(benchmark):
    power = transmeta_model()
    app = _large_app()
    reserve = PAPER_OVERHEAD.per_task_reserve(power)
    plan = build_plan(app, 4, reserve=reserve)
    rng = np.random.default_rng(0)
    rls = [sample_realization(plan.structure, rng) for _ in range(16)]
    policy = get_policy("GSS")
    idx = {"i": 0}

    def one():
        rl = rls[idx["i"] % len(rls)]
        idx["i"] += 1
        run = policy.start_run(plan, power, PAPER_OVERHEAD,
                               realization=rl)
        return simulate(plan, run, power, PAPER_OVERHEAD, rl)

    res = benchmark(one)
    assert res.met_deadline


def test_realization_sampling_throughput(benchmark):
    app = _large_app()
    plan = build_plan(app, 4)
    rng = np.random.default_rng(1)
    rl = benchmark(sample_realization, plan.structure, rng)
    assert rl.actuals
