"""Processor-count sweep (the paper's 4-/6-processor observation).

"When ATR is executed on 4 or 6 processor systems, similar results are
obtained with more energy consumed by each scheme … when the number of
processors increases, the performance of the dynamic schemes decreases
due to the limited parallelism and the frequent idleness of the
processors."  This bench sweeps m = 1, 2, 4, 6 at fixed load and checks
the monotone degradation, tying it to the workload's measured
parallelism (`repro.analysis.graph_metrics`).
"""

from conftest import BENCH_RUNS

from repro.analysis import graph_metrics
from repro.experiments import RunConfig, evaluate_application
from repro.graph import validate_graph
from repro.workloads import AtrConfig, application_with_load, atr_graph

_ATR = AtrConfig(alpha=0.9, max_rois=6,
                 roi_probs=(0.05, 0.15, 0.20, 0.20, 0.15, 0.15, 0.10))
PROCS = (1, 2, 4, 6)


def _gss_mean(m, n_runs=BENCH_RUNS, seed=13):
    cfg = RunConfig(power_model="transmeta", n_processors=m,
                    n_runs=n_runs, seed=seed)
    app = application_with_load(atr_graph(_ATR), 0.5, m)
    res = evaluate_application(app, cfg)
    return res.mean_normalized()


def test_processor_count_sweep(benchmark):
    metrics = graph_metrics(validate_graph(atr_graph(_ATR)))
    rows = {m: _gss_mean(m) for m in PROCS}
    schemes = list(next(iter(rows.values())))
    print(f"\n# processor sweep  [wide ATR, load=0.5, transmeta; "
          f"expected parallelism {metrics.expected_parallelism:.2f}]")
    print(f"{'m':>4} " + " ".join(f"{s:>7}" for s in schemes))
    for m, means in rows.items():
        print(f"{m:>4} " + " ".join(f"{means[s]:7.3f}" for s in schemes))

    # dynamic savings shrink monotonically once m exceeds the
    # application's parallelism (~2.5 for this ATR)
    gss = [rows[m]["GSS"] for m in PROCS]
    assert gss[1] <= gss[2] + 0.02 and gss[2] <= gss[3] + 0.02
    # and every scheme is valid normalized energy
    for means in rows.values():
        for s, v in means.items():
            assert 0 < v <= 1 + 1e-9, s

    benchmark(_gss_mean, 4, 10, 1)
