"""Figure 4: normalized energy vs load — ATR, dual-processor.

Regenerates both sub-figures (4a Transmeta, 4b Intel XScale) at bench
size, prints the series, asserts the paper's shape claims, and times the
per-point evaluation kernel.
"""

from conftest import BENCH_LOADS, BENCH_RUNS, assert_valid_normalized_series

from repro.experiments import (
    RunConfig,
    evaluate_application,
    render_series,
    sweep_load,
)
from repro.experiments.figures import ATR_ALPHA
from repro.workloads import AtrConfig, application_with_load, atr_graph


def _series(model):
    cfg = RunConfig(power_model=model, n_processors=2, n_runs=BENCH_RUNS,
                    seed=2002)
    graph = atr_graph(AtrConfig(alpha=ATR_ALPHA))
    return sweep_load(graph, cfg, loads=BENCH_LOADS,
                      name=f"figure4-{model}-bench")


def test_figure4a_transmeta(benchmark):
    series = _series("transmeta")
    print()
    print(render_series(series))
    assert_valid_normalized_series(series)

    # paper shape 1: normalized energy dips then rises with load
    gss = [series.get(x, "GSS").mean for x in BENCH_LOADS]
    assert min(gss[1:-1]) <= gss[0] + 1e-6
    assert gss[-1] > min(gss)
    # paper shape 2: dynamic slack makes GSS beat SPM at high load
    assert series.get(0.8, "GSS").mean < series.get(0.8, "SPM").mean

    graph = atr_graph(AtrConfig(alpha=ATR_ALPHA))
    app = application_with_load(graph, 0.5, 2)
    cfg = RunConfig(power_model="transmeta", n_runs=20, seed=1)
    benchmark(evaluate_application, app, cfg)


def test_figure4b_xscale(benchmark):
    series = _series("xscale")
    print()
    print(render_series(series))
    assert_valid_normalized_series(series)

    # paper shape: with few/wide levels SPM shows sharp jumps; by load
    # 0.8 SPM is pinned at S_max (same energy as NPM)
    assert series.get(0.8, "SPM").mean == 1.0
    # greedy benefits from S_min and coarse levels: at moderate-to-high
    # load it is at least competitive with static speculation
    assert series.get(0.6, "GSS").mean <= \
        series.get(0.6, "SS1").mean + 0.02

    graph = atr_graph(AtrConfig(alpha=ATR_ALPHA))
    app = application_with_load(graph, 0.5, 2)
    cfg = RunConfig(power_model="xscale", n_runs=20, seed=1)
    benchmark(evaluate_application, app, cfg)
