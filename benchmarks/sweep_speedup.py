"""Sweep-scale execution-engine benchmark: fused vs pools vs cache.

Times the same Figure-5-shaped load sweep (widened ATR graph, six
processors) four ways and emits ``BENCH_sweep.json``:

1. **fused** — the default engine: the whole sweep is stacked into one
   array program (:mod:`repro.sim.sweepc`) and executed in the parent
   without a single worker pool;
2. **cold** — the legacy run-level pool (``run_level_pool=True``,
   ``fused=False``) with no shared
   :class:`~repro.experiments.ExecutionContext`: every sweep point
   spins up (and tears down) its own worker pool, which is what the
   pre-PR-4 engine always did;
3. **warm** — the same legacy shape under one persistent
   ``ExecutionContext`` shared across all points, so pool spin-up is
   paid once for the whole sweep.  An
   :class:`~repro.experiments.EvaluationCache` in a scratch directory
   is attached, so this pass also populates the on-disk cache (the
   ``put`` cost is charged to the warm timing, as in real use);
4. **cache** — the identical sweep re-run against the now-populated
   cache: every point is served from disk without touching a pool.

The fused pass is additionally re-timed once per kernel tier (legacy
entry loop, numpy tape interpreter, numba jit when installed) on warm
compile caches, so ``BENCH_sweep.json`` records ``tape_speedup`` (and
``jit_speedup``) at sweep scale alongside the per-point numbers in
``BENCH_engine.json``.

A fifth **fused_shard** section times the sharded fused path at a
larger run count (``--shard-runs``): the same sweep executed
monolithically in one process versus split into ``--shards``
seed-aligned run-range shards (0 = auto: one per schedulable core,
raised to fit ``--shard-mem-mb``) on a warmed worker pool.
``shard_speedup`` is monolithic/sharded; both passes are asserted
bit-identical and the record carries the resolved shard count,
transport and the high-water RSS of the parent and its pool workers.
On a single-core host auto-sharding correctly resolves to one shard
(the monolithic pass), so the ratio sits at ~1.0 by construction.

All passes are asserted bit-identical point by point before any
timing is reported — a speedup that changes results is a bug, not a
feature — and the fused pass is asserted to create **zero** pools.

``--budget-seconds`` (> 0) fails the invocation if the *cold* sweep
exceeds the budget.  ``--min-warm-speedup`` / ``--min-cache-speedup``
(> 0) gate the legacy ratios against cold.  ``--min-fused-speedup``
(> 0) gates ``fused_vs_warm_speedup`` — the headline number: the fused
array program must beat the best pool configuration (the warm
persistent context) without engaging a run-level pool at all.
``--min-shard-speedup`` (> 0) gates ``shard_speedup`` with the usual
5% timing-noise tolerance.  CI smoke runs both at 1.0.

Run from the repo root::

    PYTHONPATH=src python benchmarks/sweep_speedup.py
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time

from _common import (
    FIG5_ATR,
    assert_series_equal,
    effective_cores,
    peak_rss_mb,
    write_record,
)
from repro.experiments import (EvaluationCache, ExecutionContext, RunConfig,
                               sweep_load)
from repro.sim.kernels import jit_available
from repro.workloads import AtrConfig, atr_graph


def _warm_task(x):
    """Pool warm-up no-op: spin the workers up outside the timing."""
    return x


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--points", type=int, default=10,
                    help="number of load-sweep points (grid 0.1..1.0)")
    ap.add_argument("--runs", type=int, default=120,
                    help="Monte-Carlo runs per point")
    ap.add_argument("--jobs", type=int, default=4,
                    help="worker count for both pool flavours")
    ap.add_argument("--procs", type=int, default=6)
    ap.add_argument("--seed", type=int, default=2002)
    ap.add_argument("--alpha", type=float, default=0.9)
    ap.add_argument("--out", default="BENCH_sweep.json")
    ap.add_argument("--budget-seconds", type=float, default=0.0,
                    dest="budget_seconds")
    ap.add_argument("--min-warm-speedup", type=float, default=0.0,
                    dest="min_warm_speedup")
    ap.add_argument("--min-cache-speedup", type=float, default=0.0,
                    dest="min_cache_speedup")
    ap.add_argument("--min-fused-speedup", type=float, default=0.0,
                    dest="min_fused_speedup",
                    help="required fused-vs-warm speedup (0 = no gate)")
    ap.add_argument("--shards", type=int, default=0,
                    help="shard count for the fused_shard section "
                         "(0 = auto: one per schedulable core)")
    ap.add_argument("--shard-runs", type=int, default=360,
                    dest="shard_runs",
                    help="Monte-Carlo runs per point for the "
                         "fused_shard section (larger than --runs so "
                         "the fan-out has work to amortize against)")
    ap.add_argument("--shard-mem-mb", type=int, default=0,
                    dest="shard_mem_mb",
                    help="per-shard memory budget for auto shard "
                         "selection (0 = unbudgeted)")
    ap.add_argument("--min-shard-speedup", type=float, default=0.0,
                    dest="min_shard_speedup",
                    help="required monolithic-vs-sharded speedup "
                         "(0 = no gate; 5%% timing-noise tolerance)")
    args = ap.parse_args(argv)
    if args.points < 1:
        ap.error("--points must be >= 1")

    graph = atr_graph(AtrConfig(alpha=args.alpha, **FIG5_ATR))
    loads = [round(0.1 + 0.9 * i / max(args.points - 1, 1), 4)
             for i in range(args.points)]
    # the legacy shape: run-level pooling per point with the fallback
    # disabled, so the cold pass pays one pool spin-up per sweep point
    # — exactly the overhead the persistent context amortizes
    cfg_pool = RunConfig(n_runs=args.runs, seed=args.seed,
                         n_processors=args.procs, engine="compiled",
                         n_jobs=args.jobs, parallel_min_runs=0,
                         run_level_pool=True)
    # the default shape: no pool anywhere, one fused array program
    cfg_fused = cfg_pool.with_(n_jobs=1, run_level_pool=False)

    print(f"sweep_speedup: {args.points} points x {args.runs} runs, "
          f"m={args.procs}, jobs={args.jobs}, cores={effective_cores()}")

    with ExecutionContext(n_jobs=1) as ctx:
        t0 = time.perf_counter()
        series_fused = sweep_load(graph, cfg_fused, loads, context=ctx)
        t_fused = time.perf_counter() - t0
        fused_pools = ctx.pools_created
    assert fused_pools == 0, \
        f"fused sweep engaged {fused_pools} pool(s); it must use none"
    print(f"  fused (one array program){t_fused:8.3f} s  (pools: 0)")

    # per-tier fused passes on the now-warm compile caches (the pass
    # above already stacked the sweep and lowered its tape), so each
    # tier pays only kernel execution — the fair tier-vs-tier number
    tier_list = ["legacy", "numpy"]
    if jit_available():
        tier_list.append("jit")
    fused_tier_seconds = {}
    for tier in tier_list:
        with ExecutionContext(n_jobs=1) as ctx:
            t0 = time.perf_counter()
            series_tier = sweep_load(
                graph, cfg_fused.with_(kernel_tier=tier), loads, context=ctx)
            fused_tier_seconds[tier] = time.perf_counter() - t0
        assert_series_equal(series_fused, series_tier, f"fused[{tier}]")
        print(f"  fused [{tier:>6}] tier    "
              f"{fused_tier_seconds[tier]:8.3f} s")
    tape_speedup = (fused_tier_seconds["legacy"]
                    / fused_tier_seconds["numpy"]
                    if fused_tier_seconds["numpy"] > 0 else float("inf"))
    jit_speedup = None
    if "jit" in fused_tier_seconds and fused_tier_seconds["jit"] > 0:
        jit_speedup = (fused_tier_seconds["legacy"]
                       / fused_tier_seconds["jit"])

    t0 = time.perf_counter()
    series_cold = sweep_load(graph, cfg_pool, loads, fused=False)
    t_cold = time.perf_counter() - t0
    print(f"  cold  (pool per point)   {t_cold:8.3f} s")

    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as tmp:
        cache = EvaluationCache(tmp)
        with ExecutionContext(n_jobs=args.jobs, cache=cache) as ctx:
            t0 = time.perf_counter()
            series_warm = sweep_load(graph, cfg_pool, loads, context=ctx,
                                     fused=False)
            t_warm = time.perf_counter() - t0
            pools_created = ctx.pools_created
        print(f"  warm  (persistent pool)  {t_warm:8.3f} s  "
              f"(pools created: {pools_created})")

        before = cache.stats()
        with ExecutionContext(n_jobs=args.jobs, cache=cache) as ctx:
            t0 = time.perf_counter()
            series_hit = sweep_load(graph, cfg_pool, loads, context=ctx,
                                    fused=False)
            t_hit = time.perf_counter() - t0
            stats = {k: ctx.cache_stats()[k] - before[k] for k in before}
        print(f"  cache (hits from disk)   {t_hit:8.3f} s  "
              f"({stats['hits']} hits / {stats['misses']} misses)")
        assert stats["hits"] >= args.points, \
            "cache pass did not hit on every sweep point"

    # -- fused_shard: the sharded fused path at a larger run count ----------
    cfg_shard_scale = cfg_fused.with_(n_runs=args.shard_runs)
    rss_before_shards = peak_rss_mb()
    with ExecutionContext(n_jobs=1) as ctx:
        t0 = time.perf_counter()
        series_mono = sweep_load(graph, cfg_shard_scale, loads, context=ctx)
        t_mono = time.perf_counter() - t0
    rss_mono = peak_rss_mb()
    print(f"  mono  ({args.shard_runs} runs, 1 proc) {t_mono:8.3f} s")

    shard_request = args.shards if args.shards > 0 else effective_cores()
    pool_jobs = max(1, min(shard_request, args.shard_runs))
    cfg_sharded = cfg_shard_scale.with_(shards=args.shards or 0,
                                        shard_mem_mb=args.shard_mem_mb)
    with ExecutionContext(n_jobs=pool_jobs) as ctx:
        if pool_jobs > 1:  # spin the workers up outside the timing
            ctx.map(_warm_task, [(i,) for i in range(pool_jobs)])
        t0 = time.perf_counter()
        series_shard = sweep_load(graph, cfg_sharded, loads, context=ctx)
        t_shard = time.perf_counter() - t0
    rss_shard = peak_rss_mb()
    shard_meta = series_shard.meta.get("fused", {})
    shards_ran = shard_meta.get("shards", 1)
    shard_transport = shard_meta.get("transport", "inline")
    print(f"  shard ({shards_ran} shards, {shard_transport})"
          f"{t_shard:11.3f} s  "
          f"(rss self {rss_shard['self']:.0f} MiB, "
          f"workers {rss_shard['children']:.0f} MiB)")
    assert_series_equal(series_mono, series_shard, "sharded vs mono")
    shard_speedup = t_mono / t_shard if t_shard > 0 else float("inf")

    assert_series_equal(series_cold, series_fused, "fused vs cold")
    assert_series_equal(series_cold, series_warm, "warm vs cold")
    assert_series_equal(series_cold, series_hit, "cache vs cold")

    warm_speedup = t_cold / t_warm if t_warm > 0 else float("inf")
    cache_speedup = t_cold / t_hit if t_hit > 0 else float("inf")
    fused_speedup = t_cold / t_fused if t_fused > 0 else float("inf")
    fused_vs_warm = t_warm / t_fused if t_fused > 0 else float("inf")
    record = {
        "benchmark": "sweep_speedup",
        "bit_identical": True,
        "points": args.points,
        "n_runs": args.runs,
        "n_processors": args.procs,
        "jobs": args.jobs,
        "cores": effective_cores(),
        "fused_seconds": round(t_fused, 4),
        "fused_legacy_seconds": round(fused_tier_seconds["legacy"], 4),
        "fused_numpy_seconds": round(fused_tier_seconds["numpy"], 4),
        "fused_jit_seconds": (round(fused_tier_seconds["jit"], 4)
                              if "jit" in fused_tier_seconds else None),
        "tape_speedup": round(tape_speedup, 3),
        "jit_speedup": (round(jit_speedup, 3)
                        if jit_speedup is not None else None),
        "kernel_tiers_timed": tier_list,
        "cold_seconds": round(t_cold, 4),
        "warm_seconds": round(t_warm, 4),
        "cache_seconds": round(t_hit, 4),
        "fused_speedup": round(fused_speedup, 3),
        "fused_vs_warm_speedup": round(fused_vs_warm, 3),
        "warm_speedup": round(warm_speedup, 3),
        "cache_speedup": round(cache_speedup, 3),
        "fused_pools_created": fused_pools,
        "warm_pools_created": pools_created,
        "cache_hits": stats["hits"],
        "cache_misses": stats["misses"],
        "shard_runs": args.shard_runs,
        "shards_requested": args.shards,
        "shards_ran": shards_ran,
        "shard_transport": shard_transport,
        "mono_seconds": round(t_mono, 4),
        "shard_seconds": round(t_shard, 4),
        "shard_speedup": round(shard_speedup, 3),
        "peak_rss_mb": {"baseline": rss_before_shards,
                        "monolithic": rss_mono,
                        "sharded": rss_shard},
    }
    write_record(record, args.out)
    print(f"  fused speedup {fused_speedup:8.2f} x  (vs cold)")
    print(f"  fused vs warm {fused_vs_warm:8.2f} x")
    print(f"  tape speedup  {tape_speedup:8.2f} x  (legacy -> numpy, fused)")
    print(f"  warm speedup  {warm_speedup:8.2f} x")
    print(f"  shard speedup {shard_speedup:8.2f} x  "
          f"({shards_ran} shards vs mono at {args.shard_runs} runs)")
    print(f"  cache speedup {cache_speedup:8.2f} x  -> {args.out}")

    if args.budget_seconds > 0 and t_cold > args.budget_seconds:
        print(f"FAIL: cold sweep took {t_cold:.2f} s, budget "
              f"{args.budget_seconds:.2f} s", file=sys.stderr)
        return 1
    if args.min_warm_speedup > 0 and warm_speedup < args.min_warm_speedup:
        print(f"FAIL: warm speedup {warm_speedup:.2f}x below required "
              f"{args.min_warm_speedup:.2f}x", file=sys.stderr)
        return 1
    if args.min_cache_speedup > 0 and cache_speedup < args.min_cache_speedup:
        print(f"FAIL: cache speedup {cache_speedup:.2f}x below required "
              f"{args.min_cache_speedup:.2f}x", file=sys.stderr)
        return 1
    if args.min_fused_speedup > 0 and fused_vs_warm < args.min_fused_speedup:
        print(f"FAIL: fused-vs-warm speedup {fused_vs_warm:.2f}x below "
              f"required {args.min_fused_speedup:.2f}x", file=sys.stderr)
        return 1
    # 5% tolerance: on a single-core host auto-sharding resolves to one
    # shard and the honest ratio is two timings of identical work
    if args.min_shard_speedup > 0 and \
            shard_speedup < args.min_shard_speedup * 0.95:
        print(f"FAIL: shard speedup {shard_speedup:.2f}x below required "
              f"{args.min_shard_speedup:.2f}x (with 5% tolerance)",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
