"""Figure 5: normalized energy vs load — ATR, 6 processors, 5 µs switch.

The paper's observation for this figure: with more processors the
dynamic schemes lose ground (synchronization-forced idleness), and the
curves show more/sharper jumps.  We regenerate both sub-figures at bench
size and verify the processor-count effect against the Figure 4
configuration directly.
"""

from conftest import BENCH_LOADS, BENCH_RUNS, assert_valid_normalized_series

from repro.experiments import (
    RunConfig,
    evaluate_application,
    render_series,
    sweep_load,
)
from repro.experiments.figures import ATR_ALPHA
from repro.workloads import AtrConfig, application_with_load, atr_graph

_WIDE_ATR = AtrConfig(alpha=ATR_ALPHA, max_rois=6,
                      roi_probs=(0.05, 0.15, 0.20, 0.20, 0.15, 0.15,
                                 0.10))


def _series(model):
    cfg = RunConfig(power_model=model, n_processors=6, n_runs=BENCH_RUNS,
                    seed=2002)
    return sweep_load(atr_graph(_WIDE_ATR), cfg, loads=BENCH_LOADS,
                      name=f"figure5-{model}-bench")


def test_figure5a_transmeta(benchmark):
    series = _series("transmeta")
    print()
    print(render_series(series))
    assert_valid_normalized_series(series)

    app = application_with_load(atr_graph(_WIDE_ATR), 0.5, 6)
    cfg = RunConfig(power_model="transmeta", n_processors=6, n_runs=20,
                    seed=1)
    benchmark(evaluate_application, app, cfg)


def test_figure5b_xscale(benchmark):
    series = _series("xscale")
    print()
    print(render_series(series))
    assert_valid_normalized_series(series)

    app = application_with_load(atr_graph(_WIDE_ATR), 0.5, 6)
    cfg = RunConfig(power_model="xscale", n_processors=6, n_runs=20,
                    seed=1)
    benchmark(evaluate_application, app, cfg)


def test_more_processors_hurt_dynamic_schemes():
    """Paper: 'when the number of processors increases, the performance
    of the dynamic schemes decreases' — compare m=2 vs m=6 at the same
    load (paired seeds)."""
    results = {}
    for m in (2, 6):
        cfg = RunConfig(power_model="transmeta", n_processors=m,
                        n_runs=BENCH_RUNS, seed=7)
        app = application_with_load(atr_graph(_WIDE_ATR), 0.5, m)
        results[m] = evaluate_application(app, cfg)
    gss2 = results[2].normalized["GSS"].mean()
    gss6 = results[6].normalized["GSS"].mean()
    print(f"\nGSS normalized energy: m=2 {gss2:.3f}  m=6 {gss6:.3f}")
    assert gss6 > gss2 - 0.02  # m=6 saves no more than m=2
