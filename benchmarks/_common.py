"""Shared plumbing for the benchmark emitters.

Every ``benchmarks/*_speedup.py`` script measures a different execution
shape but emits the same kind of record: wall-clock sections, a
bit-identical assertion against a reference pass, a peak-RSS snapshot
and a ``BENCH_*.json`` file.  This module holds that plumbing once:

* :func:`peak_rss_mb` — lifetime high-water RSS of the process and its
  reaped children,
* :func:`assert_series_equal` — the point-by-point + speed-change-meta
  equality every timed pass must satisfy before its time is reported,
* :func:`best_of` — best-of-N wall-clock for cheap repeatable sections,
* :func:`write_record` — the canonical ``BENCH_*.json`` serialization
  (sorted keys, indent 2, trailing newline),
* :data:`FIG5_ATR` — the widened ATR shape shared by the sweep-scale
  benchmarks,
* :func:`effective_cores` — re-exported from the engine so scripts can
  report the scheduler-visible core count without a second import.

Scripts run from the repo root with ``PYTHONPATH=src``; ``sys.path[0]``
is ``benchmarks/``, so a plain ``from _common import ...`` resolves.
"""

from __future__ import annotations

import json
import sys
import time

from repro.experiments.engine import effective_cores  # noqa: F401

#: the widened ATR used by Figure 5 (six simultaneous ROIs, m=6)
FIG5_ATR = dict(max_rois=6,
                roi_probs=(0.05, 0.15, 0.20, 0.20, 0.15, 0.15, 0.10))


def peak_rss_mb() -> dict:
    """High-water RSS in MiB: this process and its reaped children.

    ``ru_maxrss`` is a lifetime high-water mark (KiB on Linux, bytes on
    macOS), so successive snapshots only ever grow — compare the
    children figure across sections to see what the pool workers added.
    """
    import resource
    scale = 1024.0 * 1024.0 if sys.platform == "darwin" else 1024.0
    own = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    kids = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    return {"self": round(own / scale, 1),
            "children": round(kids / scale, 1)}


def assert_series_equal(a, b, label: str) -> None:
    """Two timed passes over the same sweep must agree bit for bit."""
    assert a.points == b.points, f"{label}: sweep points diverged"
    assert a.meta.get("speed_changes") == b.meta.get("speed_changes"), \
        f"{label}: speed-change counts diverged"


def best_of(fn, reps: int) -> float:
    """Best-of-``reps`` wall-clock seconds of ``fn()``."""
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def write_record(record: dict, path: str) -> None:
    """Write one ``BENCH_*.json`` record in the canonical format."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
