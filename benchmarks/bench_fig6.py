"""Figure 6: normalized energy vs α — synthetic app, dual-processor.

Shape claims reproduced: the dynamic schemes' savings shrink as α grows
(less run-time slack); SPM is essentially α-insensitive; on the XScale
model at load 0.9 SPM runs at S_max and matches NPM exactly.
"""

from conftest import BENCH_ALPHAS, BENCH_RUNS, assert_valid_normalized_series

from repro.experiments import (
    RunConfig,
    evaluate_application,
    render_series,
    sweep_alpha,
)
from repro.experiments.figures import FIG6_LOAD
from repro.workloads import application_with_load, figure3_graph


def _series(model):
    cfg = RunConfig(power_model=model, n_processors=2, n_runs=BENCH_RUNS,
                    seed=2002)
    return sweep_alpha(figure3_graph, cfg, load=FIG6_LOAD,
                       alphas=BENCH_ALPHAS,
                       name=f"figure6-{model}-bench")


def test_figure6a_transmeta(benchmark):
    series = _series("transmeta")
    print()
    print(render_series(series))
    assert_valid_normalized_series(series)

    # dynamic savings shrink as alpha rises
    assert series.get(0.2, "GSS").mean < series.get(0.8, "GSS").mean
    assert series.get(0.2, "AS").mean < series.get(0.8, "AS").mean

    app = application_with_load(figure3_graph(alpha=0.5), FIG6_LOAD, 2)
    cfg = RunConfig(power_model="transmeta", n_runs=20, seed=1)
    benchmark(evaluate_application, app, cfg)


def test_figure6b_xscale(benchmark):
    series = _series("xscale")
    print()
    print(render_series(series))
    assert_valid_normalized_series(series)

    # the paper's SPM observation at load 0.9 on XScale: equal to NPM
    for a in BENCH_ALPHAS:
        assert series.get(a, "SPM").mean == 1.0
    # dynamic schemes still save despite the coarse levels
    assert series.get(0.5, "GSS").mean < 0.9

    app = application_with_load(figure3_graph(alpha=0.5), FIG6_LOAD, 2)
    cfg = RunConfig(power_model="xscale", n_runs=20, seed=1)
    benchmark(evaluate_application, app, cfg)
