"""Ablation: minimum speed and number of voltage levels.

The paper's stated future work: "experiment with different values of
S_min/S_max and different number of speed levels between them".  This
bench builds synthetic level tables with (a) varying S_min at 16 levels
and (b) varying level counts over the Transmeta range, and measures how
the greedy scheme's advantage depends on them — the paper's explanation
is that a high S_min and few levels *help* GSS by stopping it from
draining all slack early.
"""

import numpy as np
from conftest import BENCH_RUNS

from repro.core import get_policy
from repro.offline import build_plan
from repro.power import DiscretePowerModel, PAPER_OVERHEAD
from repro.sim import sample_realization, simulate
from repro.workloads import application_with_load, figure3_graph


def _table(f_min, f_max, n_levels, v_min=1.1, v_max=1.65):
    fs = np.linspace(f_min, f_max, n_levels)
    vs = np.linspace(v_min, v_max, n_levels)
    return [(float(f), float(v)) for f, v in zip(fs, vs)]


def _mean_normalized(power, scheme, n_runs=BENCH_RUNS, seed=17):
    app = application_with_load(figure3_graph(alpha=0.5), 0.6, 2)
    plan_static = build_plan(app, 2, reserve=0.0)
    reserve = PAPER_OVERHEAD.per_task_reserve(power)
    plan_dyn = build_plan(app, 2, reserve=reserve,
                          structure=plan_static.structure)
    rng = np.random.default_rng(seed)
    from repro.power import NO_OVERHEAD
    ratios = []
    for _ in range(n_runs):
        rl = sample_realization(plan_static.structure, rng)
        npm = get_policy("NPM").start_run(plan_static, power, NO_OVERHEAD,
                                          realization=rl)
        base = simulate(plan_static, npm, power, NO_OVERHEAD, rl)
        policy = get_policy(scheme)
        plan = plan_dyn if policy.requires_reserve else plan_static
        run = policy.start_run(plan, power, PAPER_OVERHEAD,
                               realization=rl)
        res = simulate(plan, run, power, PAPER_OVERHEAD, rl)
        ratios.append(res.total_energy / base.total_energy)
    return float(np.mean(ratios))


def test_smin_ablation(benchmark):
    """Sweep S_min at a fixed 16-level ladder."""
    rows = []
    for f_min in (100.0, 200.0, 350.0, 500.0):
        power = DiscretePowerModel(_table(f_min, 700.0, 16),
                                   name=f"smin-{f_min:.0f}")
        rows.append((f_min / 700.0,
                     _mean_normalized(power, "GSS"),
                     _mean_normalized(power, "SS1")))
    print("\n# ablation-smin  [16 levels, load=0.6, alpha=0.5]")
    print(f"{'s_min':>8} {'GSS':>8} {'SS1':>8}")
    for smin, gss, ss1 in rows:
        print(f"{smin:>8.3f} {gss:>8.3f} {ss1:>8.3f}")
    # all results are meaningful normalized energies
    for _, gss, ss1 in rows:
        assert 0 < gss <= 1 and 0 < ss1 <= 1
    # with a very high floor the schemes converge (nothing to decide)
    assert abs(rows[-1][1] - rows[-1][2]) <= abs(rows[0][1] - rows[0][2]) \
        + 0.05

    power = DiscretePowerModel(_table(350.0, 700.0, 16))
    benchmark(_mean_normalized, power, "GSS", 10, 1)


def test_level_count_ablation(benchmark):
    """Sweep the number of levels over the Transmeta range."""
    rows = []
    for n_levels in (2, 4, 8, 16, 32):
        power = DiscretePowerModel(_table(200.0, 700.0, n_levels),
                                   name=f"lv{n_levels}")
        rows.append((n_levels,
                     _mean_normalized(power, "GSS"),
                     _mean_normalized(power, "SS2")))
    print("\n# ablation-levels  [200-700MHz, load=0.6, alpha=0.5]")
    print(f"{'levels':>8} {'GSS':>8} {'SS2':>8}")
    for n, gss, ss2 in rows:
        print(f"{n:>8d} {gss:>8.3f} {ss2:>8.3f}")
    for _, gss, ss2 in rows:
        assert 0 < gss <= 1 and 0 < ss2 <= 1
    # more levels can only help (or tie) the ideal-speed tracking of GSS
    assert rows[-1][1] <= rows[0][1] + 0.03

    power = DiscretePowerModel(_table(200.0, 700.0, 8))
    benchmark(_mean_normalized, power, "SS2", 10, 1)
