"""Shared helpers for the benchmark harness.

Every table and figure of the paper has one bench module.  Each bench

* regenerates the experiment (small Monte-Carlo counts — the full-size
  series is produced by ``python -m repro figN --runs 1000`` and is
  recorded in EXPERIMENTS.md),
* asserts the *shape* properties the paper reports, and
* times the underlying kernel with pytest-benchmark.
"""

from __future__ import annotations

import pytest

from repro.experiments import RunConfig

#: Monte-Carlo runs per benchmark point — small so `--benchmark-only`
#: finishes in seconds; shape assertions are robust at this size.
BENCH_RUNS = 60

#: loads exercised by the bench-size figure sweeps
BENCH_LOADS = (0.2, 0.4, 0.6, 0.8)

#: alphas exercised by the bench-size Figure 6 sweep
BENCH_ALPHAS = (0.2, 0.5, 0.8)


@pytest.fixture(scope="session")
def bench_config():
    return RunConfig(n_runs=BENCH_RUNS, seed=2002)


def assert_valid_normalized_series(series):
    """Common sanity: every point is a valid normalized energy."""
    assert series.points, "series is empty"
    for p in series.points:
        assert 0.0 < p.mean <= 1.0 + 1e-9, p
        assert p.n_runs > 0
