"""Ablation: sensitivity to the actual-time distribution width.

The paper states actual execution times follow "a normal distribution
around a_i" without giving the variance; DESIGN.md fixes
``σ = (c_i − a_i)/3``.  This bench sweeps the σ fraction from 0
(deterministic at the ACET) to 1/2 and shows that the *conclusions*
(scheme ordering, savings magnitudes) are robust to that modelling
choice — an explicit answer to "did the reconstruction luck into the
paper's shapes?".
"""

import numpy as np
from conftest import BENCH_RUNS

from repro.experiments import RunConfig, evaluate_application
from repro.workloads import application_with_load, figure3_graph

SIGMAS = (0.0, 1.0 / 6.0, 1.0 / 3.0, 0.5)


def _means(sigma_fraction, n_runs=BENCH_RUNS, seed=31):
    cfg = RunConfig(power_model="transmeta", n_runs=n_runs, seed=seed,
                    sigma_fraction=sigma_fraction)
    app = application_with_load(figure3_graph(alpha=0.5), 0.7, 2)
    return evaluate_application(app, cfg).mean_normalized()


def test_sigma_ablation(benchmark):
    rows = {s: _means(s) for s in SIGMAS}
    schemes = list(next(iter(rows.values())))
    print("\n# ablation-sigma  [fig3 alpha=0.5, load=0.7, transmeta]")
    print(f"{'sigma':>8} " + " ".join(f"{s:>7}" for s in schemes))
    for s, means in rows.items():
        print(f"{s:>8.3f} " + " ".join(f"{means[c]:7.3f}"
                                       for c in schemes))

    # robustness: the dynamic-beats-static ordering holds at every sigma
    for s, means in rows.items():
        for dyn in ("GSS", "SS1", "SS2", "AS"):
            assert means[dyn] < means["SPM"], (s, dyn)
    # and the absolute energies move only mildly with sigma
    gss = [rows[s]["GSS"] for s in SIGMAS]
    assert max(gss) - min(gss) < 0.08

    benchmark(_means, 1.0 / 3.0, 10, 1)
