"""Benchmarks for the model figures (Figures 1, 2 and 3).

* Figure 1a/1b: the AND and OR structures — rebuilt and validated;
* Figure 2: the dispatch algorithm — timed on one full simulated run;
* Figure 3: the synthetic application — graph construction + offline
  phase timed (this is the per-application setup cost of the system).
"""

import numpy as np

from repro.core import get_policy
from repro.graph import enumerate_paths, validate_graph
from repro.offline import build_plan
from repro.power import PAPER_OVERHEAD, transmeta_model
from repro.sim import sample_realization, simulate
from repro.workloads import (
    application_with_load,
    figure1a_graph,
    figure1b_graph,
    figure3_graph,
)


def test_figure1_structures(benchmark):
    """Figure 1: AND parallelism and OR alternative paths."""
    st_a = validate_graph(figure1a_graph())
    st_b = validate_graph(figure1b_graph())
    assert len(enumerate_paths(st_a)) == 1   # AND: one path, parallel
    assert len(enumerate_paths(st_b)) == 2   # OR: alternative paths
    probs = sorted(p.probability for p in enumerate_paths(st_b))
    assert probs == [0.3, 0.7]

    def rebuild():
        return validate_graph(figure1b_graph())

    benchmark(rebuild)


def test_figure3_synthetic_application(benchmark):
    """Figure 3: the reconstructed synthetic AND/OR application."""
    g = figure3_graph()
    st = validate_graph(g)
    assert g.branch_probabilities("O1") == {"F": 0.35, "G": 0.65}
    assert g.branch_probabilities("O3") == {"I": 0.30, "J": 0.70}
    assert len(enumerate_paths(st)) == 10

    def offline_phase():
        app = application_with_load(figure3_graph(), 0.5, 2)
        return build_plan(app, 2, reserve=0.0065)

    plan = benchmark(offline_phase)
    assert plan.t_worst <= plan.deadline


def test_figure2_dispatch_algorithm(benchmark):
    """Figure 2: one full online-phase run of the GSS algorithm."""
    power = transmeta_model()
    app = application_with_load(figure3_graph(), 0.5, 2)
    reserve = PAPER_OVERHEAD.per_task_reserve(power)
    plan = build_plan(app, 2, reserve=reserve)
    rng = np.random.default_rng(0)
    rl = sample_realization(plan.structure, rng)
    policy = get_policy("GSS")

    def one_run():
        run = policy.start_run(plan, power, PAPER_OVERHEAD,
                               realization=rl)
        return simulate(plan, run, power, PAPER_OVERHEAD, rl)

    res = benchmark(one_run)
    assert res.met_deadline
