"""Extension study: robustness to branch-probability profiling error.

The speculative schemes consume the application's statistical profile;
this bench schedules with the declared probabilities while the *true*
branch behaviour is γ-skewed (γ < 0 inverts the likelihood ordering —
the worst realistic profiling failure).  Findings it pins down:

* deadlines hold under arbitrary profile error (Theorem 1 uses only
  worst cases);
* GSS and SPM have exactly zero regret (they use no statistics);
* the speculative schemes' regret is *small* — the
  ``max(S_spec, S_GSS)`` rule plus level quantization bound the damage
  — which strengthens the paper's theme that precise statistics are not
  where the energy is.
"""

from conftest import BENCH_RUNS

from repro.experiments import (
    RunConfig,
    misprofile_evaluation,
    render_misprofile,
)
from repro.workloads import atr_graph, figure3_graph

GAMMAS = (-2.0, 0.25, 1.0, 4.0)


def test_misprofile_regret(benchmark):
    cfg = RunConfig(n_runs=BENCH_RUNS, power_model="transmeta", seed=41)
    results = {}
    for gamma in GAMMAS:
        results[gamma] = misprofile_evaluation(figure3_graph(), 0.7,
                                               cfg, gamma)
    print("\n# misprofile regret  [fig3, load=0.7, transmeta]")
    print(render_misprofile(results))

    for gamma, r in results.items():
        assert r.regret("GSS") == 0.0
        assert r.regret("SPM") == 0.0
        for scheme in ("SS1", "SS2", "AS"):
            assert abs(r.regret(scheme)) < 0.05, (gamma, scheme)

    benchmark(misprofile_evaluation, atr_graph(), 0.6,
              cfg.with_(n_runs=10), 2.0)
