"""Ablation: sensitivity to the voltage-switch overhead.

The paper's conclusion points at overhead as the reason speculative
schemes exist ("reducing the number of speed changes and thus the
overhead") and its future work asks how overhead magnitude shifts the
balance.  This bench sweeps the switch time from free to 100x the
paper's 5 µs and reports where GSS loses its lead.
"""

from conftest import BENCH_RUNS, assert_valid_normalized_series

from repro.experiments import (
    RunConfig,
    evaluate_application,
    render_series,
    sweep_overhead,
)
from repro.power import OverheadModel
from repro.workloads import application_with_load, figure3_graph

#: switch times in ms: 0, 5 µs (paper), 50 µs, 500 µs
ADJUST_TIMES = (0.0, 0.005, 0.05, 0.5)


def test_overhead_ablation(benchmark):
    cfg = RunConfig(power_model="transmeta", n_runs=BENCH_RUNS, seed=3)
    series = sweep_overhead(figure3_graph(), cfg, load=0.6,
                            adjust_times=ADJUST_TIMES,
                            name="ablation-overhead")
    print()
    print(render_series(series))
    assert_valid_normalized_series(series)

    # energy of every dynamic scheme is non-decreasing in switch cost
    for scheme in ("GSS", "SS1", "SS2", "AS"):
        means = [series.get(t, scheme).mean for t in ADJUST_TIMES]
        assert means[0] <= means[-1] + 1e-6, scheme
    # SPM pays a single switch: it is nearly overhead-insensitive
    spm = [series.get(t, "SPM").mean for t in ADJUST_TIMES[:-1]]
    assert max(spm) - min(spm) < 0.03

    app = application_with_load(figure3_graph(), 0.6, 2)
    heavy = RunConfig(power_model="transmeta", n_runs=20, seed=1,
                      overhead=OverheadModel(comp_cycles=300,
                                             adjust_time=0.05))
    benchmark(evaluate_application, app, heavy)
