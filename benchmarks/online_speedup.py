"""Online streaming-simulator benchmark: admitted jobs per second.

Times one sporadic-arrival stream (Figure 3 synthetic application,
Poisson arrivals, admission control) through
:func:`repro.experiments.online.simulate_online` and emits
``BENCH_online.json``:

1. **compiled** — the default engine: the stream's admitted jobs are
   batched through the compiled/tape kernels for every registered
   scheme (best-of ``--reps``); ``jobs_per_sec`` is admitted jobs over
   that wall-clock (each job simulated under *all* schemes —
   ``scheme_jobs_per_sec`` counts per-scheme job simulations);
2. **dict** — the same stream on the reference string-keyed engine,
   asserted bit-identical (energies, realized finish instants, the
   admit/reject ledger) before ``engine_speedup`` is reported.

The record carries the stream's ledger — arrivals, admitted, rejected
and the per-scheme admitted-then-late counts — plus the peak RSS of
the process, so the admission throughput and the miss accounting are
tracked across PRs alongside the kernel numbers.

``--quick`` shrinks the stream for the CI smoke job.
``--budget-seconds`` (> 0) fails the invocation if the *compiled* pass
exceeds the budget.  ``--min-engine-speedup`` (> 0) requires the
compiled stream to beat the dict reference by at least that factor
(with the usual 5% timing-noise tolerance).

Run from the repo root::

    PYTHONPATH=src python benchmarks/online_speedup.py [--quick]
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from _common import best_of, effective_cores, peak_rss_mb, write_record
from repro.experiments import OnlineConfig, RunConfig, simulate_online
from repro.workloads import figure3_graph


def _assert_streams_equal(a, b) -> None:
    """Two engines simulating one stream must agree bit for bit."""
    assert np.array_equal(a.arrivals, b.arrivals), "arrival traces diverged"
    assert np.array_equal(a.admitted, b.admitted), "admission diverged"
    assert a.path_keys == b.path_keys, "executed paths diverged"
    for scheme, st in a.per_scheme.items():
        other = b.per_scheme[scheme]
        assert np.array_equal(st.job_energy, other.job_energy), \
            f"{scheme}: per-job energies diverged"
        assert np.array_equal(st.job_finish, other.job_finish), \
            f"{scheme}: realized finish instants diverged"
        assert np.array_equal(st.job_miss, other.job_miss), \
            f"{scheme}: miss flags diverged"


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--arrivals", type=int, default=2000,
                    help="expected arrivals in the stream "
                         "(OnlineConfig.target_arrivals)")
    ap.add_argument("--rate", type=float, default=1.0,
                    help="mean arrivals per canonical worst-case length")
    ap.add_argument("--load", type=float, default=0.7,
                    help="per-job relative-deadline load D = T_worst/load")
    ap.add_argument("--arrival", choices=("poisson", "bursty"),
                    default="poisson")
    ap.add_argument("--procs", type=int, default=2)
    ap.add_argument("--seed", type=int, default=2002)
    ap.add_argument("--reps", type=int, default=3,
                    help="compiled-pass timing repetitions (best-of)")
    ap.add_argument("--quick", action="store_true",
                    help="CI smoke shape: a ~200-arrival stream, one rep")
    ap.add_argument("--out", default="BENCH_online.json")
    ap.add_argument("--budget-seconds", type=float, default=0.0,
                    dest="budget_seconds",
                    help="fail if the compiled pass exceeds this "
                         "(0 = no gate)")
    ap.add_argument("--min-engine-speedup", type=float, default=0.0,
                    dest="min_engine_speedup",
                    help="required compiled-vs-dict speedup "
                         "(0 = report only; 5%% timing-noise tolerance)")
    args = ap.parse_args(argv)
    if args.quick:
        args.arrivals = min(args.arrivals, 200)
        args.reps = 1

    graph = figure3_graph()
    cfg = RunConfig(power_model="transmeta", n_processors=args.procs,
                    seed=args.seed)
    online = OnlineConfig(arrival=args.arrival, rate=args.rate,
                          load=args.load, target_arrivals=args.arrivals)

    print(f"online_speedup: ~{args.arrivals} arrivals, rate={args.rate}, "
          f"load={args.load}, {args.arrival}, m={args.procs}, "
          f"cores={effective_cores()}")

    result = simulate_online(graph, cfg, online)  # warm-up + reference
    t_compiled = best_of(lambda: simulate_online(graph, cfg, online),
                         args.reps)

    cfg_dict = cfg.with_(engine="dict")
    result_dict = simulate_online(graph, cfg_dict, online)
    _assert_streams_equal(result, result_dict)
    t_dict = best_of(lambda: simulate_online(graph, cfg_dict, online), 1)
    engine_speedup = t_dict / t_compiled if t_compiled > 0 else float("inf")

    n_schemes = len(result.per_scheme)
    jobs_per_sec = (result.n_admitted / t_compiled
                    if t_compiled > 0 else float("inf"))
    missed = {s: st.n_missed for s, st in result.per_scheme.items()}
    miss_ratio = {s: round(st.miss_ratio(), 4)
                  for s, st in result.per_scheme.items()}
    record = {
        "benchmark": "online_speedup",
        "bit_identical": True,
        "arrival": args.arrival,
        "rate": args.rate,
        "load": args.load,
        "n_processors": args.procs,
        "cores": effective_cores(),
        "seed": args.seed,
        "quick": args.quick,
        "arrivals": result.n_arrivals,
        "admitted": result.n_admitted,
        "rejected": result.n_rejected,
        "missed": missed,
        "miss_ratio": miss_ratio,
        "schemes": sorted(result.per_scheme),
        "compiled_seconds": round(t_compiled, 4),
        "dict_seconds": round(t_dict, 4),
        "engine_speedup": round(engine_speedup, 3),
        "jobs_per_sec": round(jobs_per_sec, 1),
        "scheme_jobs_per_sec": round(jobs_per_sec * n_schemes, 1),
        "peak_rss_mb": peak_rss_mb(),
    }
    write_record(record, args.out)

    print(f"  stream: {result.n_arrivals} arrivals -> "
          f"{result.n_admitted} admitted, {result.n_rejected} rejected")
    print(f"  missed: " + ", ".join(f"{s}:{n}"
                                    for s, n in sorted(missed.items())))
    print(f"  compiled stream  {t_compiled:8.3f} s  "
          f"({jobs_per_sec:,.0f} jobs/s x {n_schemes} schemes)")
    print(f"  dict stream      {t_dict:8.3f} s")
    print(f"  engine speedup   {engine_speedup:8.2f} x  -> {args.out}")

    if args.budget_seconds > 0 and t_compiled > args.budget_seconds:
        print(f"FAIL: compiled stream took {t_compiled:.2f} s, budget "
              f"{args.budget_seconds:.2f} s", file=sys.stderr)
        return 1
    if args.min_engine_speedup > 0 and \
            engine_speedup < args.min_engine_speedup * 0.95:
        print(f"FAIL: engine speedup {engine_speedup:.2f}x below required "
              f"{args.min_engine_speedup:.2f}x (with 5% tolerance)",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
