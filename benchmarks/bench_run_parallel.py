"""Run-level parallel evaluation: equivalence shapes + kernel timing.

Complements ``engine_speedup.py`` (the standalone before/after script):
this module asserts the pooled path's invariants at bench size and
times the sequential chunk kernel and the cached offline rebuild that
the pooled path leans on.
"""

import numpy as np
from conftest import BENCH_RUNS

from repro.experiments import RunConfig, evaluate_application
from repro.experiments.figures import ATR_ALPHA
from repro.offline import build_plan, clear_plan_cache, plan_cache_stats
from repro.workloads import AtrConfig, application_with_load, atr_graph


def _app():
    return application_with_load(atr_graph(AtrConfig(alpha=ATR_ALPHA)),
                                 0.6, 2)


def test_pooled_evaluation_matches_serial(benchmark):
    app = _app()
    # run_level_pool opts into the legacy chunked pool this module times;
    # the default config would demote the n_jobs=2 request to serial
    cfg = RunConfig(power_model="transmeta", n_runs=BENCH_RUNS, seed=2002,
                    run_level_pool=True)
    serial = evaluate_application(app, cfg, n_jobs=1)
    pooled = evaluate_application(app, cfg, n_jobs=2, runs_per_chunk=16)
    for scheme in serial.normalized:
        assert np.array_equal(serial.normalized[scheme],
                              pooled.normalized[scheme])
        assert np.array_equal(serial.speed_changes[scheme],
                              pooled.speed_changes[scheme])
    assert serial.path_keys == pooled.path_keys

    small = RunConfig(power_model="transmeta", n_runs=20, seed=1)
    benchmark(evaluate_application, app, small)


def test_plan_cache_rebuild_throughput(benchmark):
    """A cache-hit rebuild (the per-load cost in a sweep) stays cheap."""
    app = _app()
    clear_plan_cache()
    build_plan(app, 2)  # populate
    plan = benchmark(build_plan, app, 2)
    assert plan.t_worst <= app.deadline
    stats = plan_cache_stats()
    assert stats["hits"] >= 1 and stats["misses"] >= 1
