"""Before/after wall-clock numbers for run-level parallel evaluation.

Times one Figure-4-style Monte-Carlo point (ATR, dual-processor,
Transmeta) twice — sequential (``n_jobs=1``) and pooled (``--jobs``) —
verifies the two produce bit-identical arrays, and writes the numbers
to ``BENCH_engine.json`` so CI and EXPERIMENTS.md can track the
evaluation engine's throughput over time.

Usage::

    PYTHONPATH=src python benchmarks/engine_speedup.py \
        [--runs 1000] [--jobs 0] [--load 0.8] [--out BENCH_engine.json] \
        [--budget-seconds 0] [--min-speedup 0]

``--budget-seconds`` (> 0) fails the invocation if the *sequential*
point exceeds the budget — the CI smoke guard against perf regressions
in the dispatch loop.  ``--min-speedup`` (> 0) additionally requires
``serial/parallel >= min-speedup`` (only meaningful on multi-core
runners).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

from repro.experiments import RunConfig, evaluate_application
from repro.experiments.figures import ATR_ALPHA
from repro.workloads import AtrConfig, application_with_load, atr_graph


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--runs", type=int, default=1000)
    ap.add_argument("--jobs", type=int, default=0,
                    help="pooled worker count (0 = all cores)")
    ap.add_argument("--runs-per-chunk", type=int, default=0)
    ap.add_argument("--load", type=float, default=0.8)
    ap.add_argument("--procs", type=int, default=2)
    ap.add_argument("--seed", type=int, default=2002)
    ap.add_argument("--out", type=str, default="BENCH_engine.json")
    ap.add_argument("--budget-seconds", type=float, default=0.0)
    ap.add_argument("--min-speedup", type=float, default=0.0)
    args = ap.parse_args(argv)

    graph = atr_graph(AtrConfig(alpha=ATR_ALPHA))
    app = application_with_load(graph, args.load, args.procs)
    cfg = RunConfig(power_model="transmeta", n_processors=args.procs,
                    n_runs=args.runs, seed=args.seed)

    t0 = time.perf_counter()
    serial = evaluate_application(app, cfg, n_jobs=1)
    t_serial = time.perf_counter() - t0

    t0 = time.perf_counter()
    pooled = evaluate_application(app, cfg, n_jobs=args.jobs,
                                  runs_per_chunk=args.runs_per_chunk)
    t_pooled = time.perf_counter() - t0

    for scheme in serial.normalized:
        assert np.array_equal(serial.normalized[scheme],
                              pooled.normalized[scheme]), \
            f"pooled result diverged for {scheme}"
    assert serial.path_keys == pooled.path_keys

    speedup = t_serial / t_pooled if t_pooled > 0 else float("inf")
    record = {
        "benchmark": "engine_speedup",
        "n_runs": args.runs,
        "load": args.load,
        "n_processors": args.procs,
        "cores": os.cpu_count(),
        "jobs": args.jobs,
        "serial_seconds": round(t_serial, 4),
        "parallel_seconds": round(t_pooled, 4),
        "speedup": round(speedup, 3),
        "bit_identical": True,
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")

    print(f"engine_speedup: {args.runs} runs, load={args.load}, "
          f"m={args.procs}")
    print(f"  serial   {t_serial:8.3f} s")
    print(f"  parallel {t_pooled:8.3f} s  (jobs={args.jobs}, "
          f"cores={os.cpu_count()})")
    print(f"  speedup  {speedup:8.2f} x  -> {args.out}")

    if args.budget_seconds > 0 and t_serial > args.budget_seconds:
        print(f"FAIL: sequential point took {t_serial:.1f}s "
              f"(budget {args.budget_seconds:.1f}s)", file=sys.stderr)
        return 1
    if args.min_speedup > 0 and speedup < args.min_speedup:
        print(f"FAIL: speedup {speedup:.2f}x below required "
              f"{args.min_speedup:.2f}x", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
