"""Before/after wall-clock numbers for the Monte-Carlo evaluation engine.

Times one Figure-5-style Monte-Carlo point (ATR, dual-processor, load
0.8, Transmeta) three ways and writes the numbers to
``BENCH_engine.json`` so CI and EXPERIMENTS.md can track the engine's
throughput over time:

1. **dict kernel** — ``_simulate_runs`` (the reference string-keyed
   engine) on prebuilt plans and a presampled realization batch;
2. **compiled kernel** — ``_simulate_runs_compiled`` (the integer-
   indexed section program) on the same plans and batch, verified
   bit-identical.  Timed once per kernel tier: ``legacy`` (the
   original entry-tuple loop), ``numpy`` (the tape interpreter;
   ``tape_speedup`` = legacy/numpy is what ``--min-tape-speedup``
   gates) and ``jit`` (``jit_speedup``, recorded only when numba is
   installed);
3. **pool (small)** — ``evaluate_application`` sequential vs a
   default-config multi-worker request at ``--runs``, verified
   bit-identical.  Since run-level pooling became opt-in
   (``RunConfig.run_level_pool``), the default request is *demoted to
   serial* — ``speedup_small`` records the ratio and must sit at ~1.0;
4. **pool (large)** — the same comparison at ``--large-runs``
   (default: ``parallel_min_runs``).  ``speedup_large`` is the
   default-path ratio that ``--min-speedup`` gates: after the run-level
   pool regression fix it must never drop below 1.0 (the historical bug
   was a 0.11x *slowdown* here, because compiled kernels at ~15-30 us
   per run are ~9x faster than the per-chunk pickling they were chunked
   behind).  ``speedup_large_pooled`` records the same point with the
   legacy pool explicitly opted in (``run_level_pool=True``) so the
   chunked path stays measured without gating the default.

The kernel comparison is serial and single-point on purpose: it
isolates the per-run simulation cost from sampling, plan building and
pool plumbing, which is the quantity the compiled engine optimizes.

Usage::

    PYTHONPATH=src python benchmarks/engine_speedup.py \
        [--runs 200] [--jobs 0] [--load 0.8] [--out BENCH_engine.json] \
        [--budget-seconds 0] [--min-speedup 0] [--min-kernel-speedup 0] \
        [--min-tape-speedup 0]

``--budget-seconds`` (> 0) fails the invocation if the *sequential*
small-point evaluation exceeds the budget — the CI smoke guard against
perf regressions in the dispatch loop.  ``--min-speedup`` (> 0)
requires ``speedup_large >= min-speedup`` up to 5% timing noise (the
demoted default path is two timings of the same serial work, so the
ratio hovers around 1.0).  ``--min-kernel-speedup`` (> 0) requires the
compiled kernel to beat the dict kernel by at least that factor — CI
runs it at 1.0 so a regression that makes the default engine *slower*
than the reference engine fails the build.  ``--min-tape-speedup``
(> 0) requires the numpy tape tier to beat the legacy entry loop by at
least that factor (same 5% timing-noise tolerance) — CI runs it at 1.0
so the default tier can never regress below the loop it replaced.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from _common import best_of, effective_cores, peak_rss_mb, write_record
from repro.core.registry import get_policy
from repro.experiments import RunConfig, evaluate_application
from repro.experiments.figures import ATR_ALPHA
from repro.experiments.runner import (
    _simulate_runs,
    _simulate_runs_compiled,
    build_plans,
)
from repro.sim.kernels import jit_available
from repro.sim.realization import sample_realization_batch
from repro.workloads import AtrConfig, application_with_load, atr_graph


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--runs", type=int, default=200)
    ap.add_argument("--large-runs", type=int, default=0, dest="large_runs",
                    help="run count for the pool-engaged timing "
                         "(0 = parallel_min_runs, the smallest batch "
                         "that does not fall back to serial)")
    ap.add_argument("--jobs", type=int, default=0,
                    help="pooled worker count (0 = all cores)")
    ap.add_argument("--runs-per-chunk", type=int, default=0)
    ap.add_argument("--load", type=float, default=0.8)
    ap.add_argument("--procs", type=int, default=2)
    ap.add_argument("--seed", type=int, default=2002)
    ap.add_argument("--reps", type=int, default=3,
                    help="kernel timing repetitions (best-of)")
    ap.add_argument("--out", type=str, default="BENCH_engine.json")
    ap.add_argument("--budget-seconds", type=float, default=0.0)
    ap.add_argument("--min-speedup", type=float, default=0.0)
    ap.add_argument("--min-kernel-speedup", type=float, default=0.0)
    ap.add_argument("--min-tape-speedup", type=float, default=0.0,
                    dest="min_tape_speedup",
                    help="required numpy-tape-tier speedup over the "
                         "legacy entry loop (0 = report only)")
    args = ap.parse_args(argv)

    graph = atr_graph(AtrConfig(alpha=ATR_ALPHA))
    app = application_with_load(graph, args.load, args.procs)
    cfg = RunConfig(power_model="transmeta", n_processors=args.procs,
                    n_runs=args.runs, seed=args.seed)

    # -- per-run kernel comparison (serial, single point) -------------------
    power = cfg.make_power()
    plan_dyn, plan_static = build_plans(app, cfg, power)
    scheme_names = tuple(get_policy(n).name for n in cfg.schemes)
    rng = np.random.default_rng(cfg.seed)
    batch = sample_realization_batch(plan_static.structure, rng, args.runs,
                                     sigma_fraction=cfg.sigma_fraction)

    def dict_kernel():
        return _simulate_runs(plan_dyn, plan_static, scheme_names, power,
                              cfg.overhead, batch)

    def compiled_kernel(tier=None):
        return _simulate_runs_compiled(plan_dyn, plan_static, scheme_names,
                                       power, cfg.overhead, batch,
                                       kernel_tier=tier)

    d_npm, d_abs, _, d_keys = dict_kernel()   # warm-up + reference output
    tiers = ["legacy", "numpy"]
    if jit_available():
        tiers.append("jit")
    tier_seconds = {}
    for tier in tiers:
        c_npm, c_abs, _, c_keys = compiled_kernel(tier)  # warm-up + check
        assert d_keys == c_keys, f"{tier} kernel diverged on path keys"
        assert np.array_equal(d_npm, c_npm), f"{tier} kernel diverged on NPM"
        for scheme in d_abs:
            assert np.array_equal(d_abs[scheme], c_abs[scheme]), \
                f"{tier} kernel diverged for {scheme}"
        tier_seconds[tier] = best_of(lambda: compiled_kernel(tier),
                                     args.reps)

    t_dict = best_of(dict_kernel, args.reps)
    # the default tier is what "the compiled kernel" means everywhere
    # else in the repo — keep kernel_speedup comparable across PRs
    t_compiled = tier_seconds["numpy"]
    kernel_speedup = t_dict / t_compiled if t_compiled > 0 else float("inf")
    tape_speedup = (tier_seconds["legacy"] / t_compiled
                    if t_compiled > 0 else float("inf"))
    jit_speedup = None
    if "jit" in tier_seconds and tier_seconds["jit"] > 0:
        jit_speedup = tier_seconds["legacy"] / tier_seconds["jit"]

    # -- serial vs default multi-worker request (demoted to serial) ---------
    t0 = time.perf_counter()
    serial = evaluate_application(app, cfg, n_jobs=1)
    t_serial = time.perf_counter() - t0

    t0 = time.perf_counter()
    pooled = evaluate_application(app, cfg, n_jobs=args.jobs,
                                  runs_per_chunk=args.runs_per_chunk)
    t_pooled = time.perf_counter() - t0

    for scheme in serial.normalized:
        assert np.array_equal(serial.normalized[scheme],
                              pooled.normalized[scheme]), \
            f"pooled result diverged for {scheme}"
    assert serial.path_keys == pooled.path_keys

    speedup_small = t_serial / t_pooled if t_pooled > 0 else float("inf")

    # -- the gated large batch: default path, pool demoted ------------------
    large_runs = args.large_runs or max(cfg.parallel_min_runs, 1)
    # clamp the fallback threshold so an opted-in pool would engage here
    cfg_large = cfg.with_(
        n_runs=large_runs,
        parallel_min_runs=min(cfg.parallel_min_runs, large_runs))
    t0 = time.perf_counter()
    serial_large = evaluate_application(app, cfg_large, n_jobs=1)
    t_serial_large = time.perf_counter() - t0

    t0 = time.perf_counter()
    pooled_large = evaluate_application(app, cfg_large, n_jobs=args.jobs,
                                        runs_per_chunk=args.runs_per_chunk)
    t_pooled_large = time.perf_counter() - t0

    for scheme in serial_large.normalized:
        assert np.array_equal(serial_large.normalized[scheme],
                              pooled_large.normalized[scheme]), \
            f"pooled large-batch result diverged for {scheme}"
    assert serial_large.path_keys == pooled_large.path_keys

    speedup_large = (t_serial_large / t_pooled_large
                     if t_pooled_large > 0 else float("inf"))

    # -- the legacy chunked pool, explicitly opted in -----------------------
    # kept measured (not gated) so the chunked path's cost stays visible
    cfg_opted = cfg_large.with_(run_level_pool=True)
    t0 = time.perf_counter()
    opted_large = evaluate_application(app, cfg_opted, n_jobs=args.jobs,
                                       runs_per_chunk=args.runs_per_chunk)
    t_opted_large = time.perf_counter() - t0

    for scheme in serial_large.normalized:
        assert np.array_equal(serial_large.normalized[scheme],
                              opted_large.normalized[scheme]), \
            f"opted-in pooled result diverged for {scheme}"
    assert serial_large.path_keys == opted_large.path_keys

    speedup_large_pooled = (t_serial_large / t_opted_large
                            if t_opted_large > 0 else float("inf"))
    record = {
        "benchmark": "engine_speedup",
        "n_runs": args.runs,
        "load": args.load,
        "n_processors": args.procs,
        "cores": effective_cores(),
        "jobs": args.jobs,
        "dict_kernel_seconds": round(t_dict, 4),
        "compiled_kernel_seconds": round(t_compiled, 4),
        "dict_us_per_run": round(t_dict / args.runs * 1e6, 1),
        "compiled_us_per_run": round(t_compiled / args.runs * 1e6, 1),
        "kernel_speedup": round(kernel_speedup, 3),
        "legacy_kernel_seconds": round(tier_seconds["legacy"], 4),
        "legacy_us_per_run": round(
            tier_seconds["legacy"] / args.runs * 1e6, 1),
        "tape_speedup": round(tape_speedup, 3),
        "jit_kernel_seconds": (round(tier_seconds["jit"], 4)
                               if "jit" in tier_seconds else None),
        "jit_speedup": (round(jit_speedup, 3)
                        if jit_speedup is not None else None),
        "kernel_tiers_timed": tiers,
        "serial_seconds": round(t_serial, 4),
        "parallel_seconds": round(t_pooled, 4),
        "speedup_small": round(speedup_small, 3),
        "large_runs": large_runs,
        "serial_seconds_large": round(t_serial_large, 4),
        "parallel_seconds_large": round(t_pooled_large, 4),
        "speedup_large": round(speedup_large, 3),
        "pooled_seconds_large": round(t_opted_large, 4),
        "speedup_large_pooled": round(speedup_large_pooled, 3),
        "run_level_pool_default": False,
        "parallel_min_runs": cfg.parallel_min_runs,
        "peak_rss_mb": peak_rss_mb(),
        "bit_identical": True,
    }
    write_record(record, args.out)

    print(f"engine_speedup: {args.runs} runs, load={args.load}, "
          f"m={args.procs}")
    print(f"  dict kernel     {t_dict:8.4f} s "
          f"({t_dict / args.runs * 1e6:7.1f} us/run)")
    print(f"  legacy kernel   {tier_seconds['legacy']:8.4f} s "
          f"({tier_seconds['legacy'] / args.runs * 1e6:7.1f} us/run)")
    print(f"  numpy tape      {t_compiled:8.4f} s "
          f"({t_compiled / args.runs * 1e6:7.1f} us/run)")
    if "jit" in tier_seconds:
        print(f"  jit kernel      {tier_seconds['jit']:8.4f} s "
              f"({tier_seconds['jit'] / args.runs * 1e6:7.1f} us/run, "
              f"{jit_speedup:.2f} x vs legacy)")
    print(f"  kernel speedup  {kernel_speedup:8.2f} x  (dict -> numpy)")
    print(f"  tape speedup    {tape_speedup:8.2f} x  (legacy -> numpy)")
    print(f"  serial eval     {t_serial:8.3f} s  ({args.runs} runs)")
    print(f"  default eval    {t_pooled:8.3f} s  (jobs={args.jobs}, "
          f"cores={effective_cores()}, pool demoted)")
    print(f"  default speedup {speedup_small:8.2f} x  (small batch)")
    print(f"  serial eval     {t_serial_large:8.3f} s  ({large_runs} runs)")
    print(f"  default eval    {t_pooled_large:8.3f} s  (pool demoted)")
    print(f"  default speedup {speedup_large:8.2f} x  (large batch)")
    print(f"  opted-in pool   {t_opted_large:8.3f} s  "
          f"({speedup_large_pooled:.2f} x, run_level_pool=True)  "
          f"-> {args.out}")

    if args.budget_seconds > 0 and t_serial > args.budget_seconds:
        print(f"FAIL: sequential point took {t_serial:.1f}s "
              f"(budget {args.budget_seconds:.1f}s)", file=sys.stderr)
        return 1
    # 5% tolerance: the demoted path times the same serial work twice,
    # so the honest ratio sits at 1.0 +/- scheduler noise
    if args.min_speedup > 0 and speedup_large < args.min_speedup * 0.95:
        print(f"FAIL: large-batch speedup {speedup_large:.2f}x below "
              f"required {args.min_speedup:.2f}x (with 5% tolerance)",
              file=sys.stderr)
        return 1
    if args.min_kernel_speedup > 0 and kernel_speedup < args.min_kernel_speedup:
        print(f"FAIL: compiled kernel speedup {kernel_speedup:.2f}x below "
              f"required {args.min_kernel_speedup:.2f}x", file=sys.stderr)
        return 1
    if args.min_tape_speedup > 0 and \
            tape_speedup < args.min_tape_speedup * 0.95:
        print(f"FAIL: tape-tier speedup {tape_speedup:.2f}x below required "
              f"{args.min_tape_speedup:.2f}x (with 5% tolerance)",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
