"""Tests for the misprofiling robustness study."""

import pytest

from repro.errors import ConfigError
from repro.experiments import (
    RunConfig,
    misprofile_evaluation,
    render_misprofile,
)
from repro.graph import skew_probabilities, validate_graph, total_probability
from repro.workloads import figure3_graph


class TestSkewTransform:
    def test_identity_at_gamma_one(self):
        g = figure3_graph()
        g2 = skew_probabilities(g, 1.0)
        for o in g.or_nodes():
            if g.is_branching_or(o.name):
                for s, p in g.branch_probabilities(o.name).items():
                    assert g2.branch_probabilities(o.name)[s] == \
                        pytest.approx(p)

    def test_sharpening(self):
        g = skew_probabilities(figure3_graph(), 4.0)
        probs = g.branch_probabilities("O1")
        # 0.35/0.65 sharpened: the likely branch gains mass
        assert probs["G"] > 0.65
        assert sum(probs.values()) == pytest.approx(1.0)
        validate_graph(g)

    def test_flattening(self):
        g = skew_probabilities(figure3_graph(), 0.01)
        probs = g.branch_probabilities("O1")
        assert probs["F"] == pytest.approx(0.5, abs=0.02)

    def test_inversion(self):
        g = skew_probabilities(figure3_graph(), -1.0)
        probs = g.branch_probabilities("O1")
        # the rare branch (F, 35%) becomes the common one
        assert probs["F"] > probs["G"]
        st = validate_graph(g)
        assert total_probability(st) == pytest.approx(1.0)

    def test_zero_gamma_rejected(self):
        with pytest.raises(ConfigError, match="non-zero"):
            skew_probabilities(figure3_graph(), 0.0)


class TestMisprofileStudy:
    @pytest.fixture(scope="class")
    def cfg(self):
        return RunConfig(n_runs=150, power_model="transmeta", seed=9)

    def test_deadlines_hold_under_inverted_profile(self, cfg):
        """Safety never depends on the probabilities (Theorem 1)."""
        # misprofile_evaluation simulates internally and the engine
        # raises on any miss; completing without error is the assertion
        r = misprofile_evaluation(figure3_graph(), 0.8, cfg, -2.0)
        assert set(r.means) == {"SPM", "GSS", "SS1", "SS2", "AS"}

    def test_regret_is_bounded(self, cfg):
        """The max(floor, guarantee) structure caps misprofiling damage."""
        for gamma in (-2.0, 0.25, 4.0):
            r = misprofile_evaluation(figure3_graph(), 0.7, cfg, gamma)
            for scheme in r.means:
                assert abs(r.regret(scheme)) < 0.05, (gamma, scheme)

    def test_gss_has_zero_regret(self, cfg):
        """GSS consumes no statistics: identical either way."""
        r = misprofile_evaluation(figure3_graph(), 0.7, cfg, 3.0)
        assert r.regret("GSS") == pytest.approx(0.0, abs=1e-12)
        assert r.regret("SPM") == pytest.approx(0.0, abs=1e-12)

    def test_means_are_valid(self, cfg):
        r = misprofile_evaluation(figure3_graph(), 0.7, cfg, 2.0)
        for scheme, mean in r.means.items():
            assert 0 < mean <= 1 + 1e-9, scheme

    def test_render(self, cfg):
        results = {g: misprofile_evaluation(figure3_graph(), 0.7, cfg, g)
                   for g in (0.5, 2.0)}
        text = render_misprofile(results)
        assert "gamma" in text and "GSS regret" in text

    def test_invalid_gamma(self, cfg):
        with pytest.raises(ConfigError):
            misprofile_evaluation(figure3_graph(), 0.7, cfg, 0.0)

    def test_render_empty_rejected(self):
        with pytest.raises(ConfigError):
            render_misprofile({})
