"""Integration tests for the Monte-Carlo runner and sweeps."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.experiments import (
    RunConfig,
    build_plans,
    evaluate_application,
    sweep_alpha,
    sweep_load,
    sweep_overhead,
    sweep_processors,
)
from repro.power import OverheadModel
from repro.workloads import application_with_load, atr_graph, figure3_graph


@pytest.fixture(scope="module")
def small_config():
    return RunConfig(n_runs=40, seed=7)


class TestEvaluateApplication:
    def test_normalized_includes_every_scheme(self, small_config):
        app = application_with_load(atr_graph(), 0.5, 2)
        res = evaluate_application(app, small_config)
        assert set(res.normalized) == set(small_config.schemes)
        for arr in res.normalized.values():
            assert arr.shape == (40,)
            assert np.all(arr > 0) and np.all(arr <= 1 + 1e-9)

    def test_deterministic_for_seed(self, small_config):
        app = application_with_load(atr_graph(), 0.5, 2)
        a = evaluate_application(app, small_config)
        b = evaluate_application(app, small_config)
        for scheme in a.normalized:
            assert np.array_equal(a.normalized[scheme],
                                  b.normalized[scheme])

    def test_different_seed_differs(self, small_config):
        app = application_with_load(atr_graph(), 0.5, 2)
        a = evaluate_application(app, small_config)
        b = evaluate_application(app, small_config.with_(seed=8))
        assert not np.array_equal(a.normalized["GSS"],
                                  b.normalized["GSS"])

    def test_npm_in_schemes_is_all_ones(self):
        app = application_with_load(atr_graph(), 0.5, 2)
        cfg = RunConfig(schemes=("NPM", "GSS"), n_runs=10)
        res = evaluate_application(app, cfg)
        assert np.allclose(res.normalized["NPM"], 1.0)

    def test_load_one_disables_dvs(self):
        app = application_with_load(atr_graph(), 1.0, 2)
        cfg = RunConfig(n_runs=10)
        res = evaluate_application(app, cfg)
        # dynamic schemes degrade to NPM; SPM also has no slack
        for scheme in ("GSS", "SS1", "SS2", "AS"):
            assert np.allclose(res.normalized[scheme], 1.0)
            assert np.allclose(res.speed_changes[scheme], 0.0)

    def test_build_plans_reserve(self, small_config):
        app = application_with_load(atr_graph(), 0.5, 2)
        dyn, static = build_plans(app, small_config)
        assert static.reserve == 0.0
        assert dyn is not None and dyn.reserve > 0
        assert dyn.t_worst > static.t_worst

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigError):
            RunConfig(n_runs=0)
        with pytest.raises(ConfigError):
            RunConfig(n_processors=0)
        with pytest.raises(ConfigError):
            RunConfig(schemes=())


class TestSweeps:
    def test_sweep_load_series(self, small_config):
        series = sweep_load(atr_graph(), small_config, loads=(0.3, 0.6),
                            name="t")
        assert series.xs() == [0.3, 0.6]
        assert set(series.schemes()) == set(small_config.schemes)
        for p in series.points:
            assert 0 < p.mean <= 1 + 1e-9
        assert [x for x, _ in series.meta["speed_changes"]] == [0.3, 0.6]

    def test_sweep_alpha_series(self, small_config):
        series = sweep_alpha(figure3_graph, small_config, load=0.7,
                             alphas=(0.3, 0.9))
        assert series.xs() == [0.3, 0.9]
        # more run-time slack (lower alpha) -> dynamic schemes save more
        gss_lo = series.get(0.3, "GSS").mean
        gss_hi = series.get(0.9, "GSS").mean
        assert gss_lo < gss_hi

    def test_sweep_processors(self, small_config):
        series = sweep_processors(atr_graph, small_config, load=0.5,
                                  processor_counts=(2, 4))
        assert series.xs() == [2.0, 4.0]

    def test_sweep_overhead(self, small_config):
        series = sweep_overhead(figure3_graph(), small_config, load=0.6,
                                adjust_times=(0.0, 0.05))
        assert series.xs() == [0.0, 0.05]
        # heavier switching cost cannot make GSS cheaper
        free = series.get(0.0, "GSS").mean
        costly = series.get(0.05, "GSS").mean
        assert costly >= free - 1e-6


class TestOverheadSensitivity:
    def test_enormous_overhead_hurts_dynamic_schemes(self):
        app = application_with_load(figure3_graph(), 0.6, 2)
        cheap = RunConfig(n_runs=30, overhead=OverheadModel(
            comp_cycles=0, adjust_time=0.0))
        costly = RunConfig(n_runs=30, overhead=OverheadModel(
            comp_cycles=0, adjust_time=1.0))  # 1 ms per switch!
        res_cheap = evaluate_application(app, cheap)
        res_costly = evaluate_application(app, costly)
        assert res_costly.normalized["GSS"].mean() > \
            res_cheap.normalized["GSS"].mean()


class TestPathConditional:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.workloads import figure3_graph
        app = application_with_load(figure3_graph(), 0.6, 2)
        return evaluate_application(app, RunConfig(n_runs=400, seed=6))

    def test_path_keys_recorded(self, result):
        assert len(result.path_keys) == 400
        assert all(">" in k for k in result.path_keys)

    def test_frequencies_sum_to_one(self, result):
        freq = result.path_frequencies()
        assert sum(freq.values()) == pytest.approx(1.0)

    def test_frequencies_match_exact_probabilities(self, result):
        from repro.experiments import exact_evaluation
        from repro.workloads import figure3_graph
        app = application_with_load(figure3_graph(), 0.6, 2)
        exact = exact_evaluation(app, result.config)
        freq = result.path_frequencies()
        for key, prob in exact.path_probability.items():
            assert freq.get(key, 0.0) == pytest.approx(prob, abs=0.08), key

    def test_conditional_groups_partition_runs(self, result):
        cond = result.conditional_normalized("GSS")
        assert sum(len(v) for v in cond.values()) == 400

    def test_conditional_means_match_exact(self, result):
        """MC per-path means approximate the exact per-path values."""
        from repro.experiments import exact_evaluation
        from repro.workloads import figure3_graph
        app = application_with_load(figure3_graph(), 0.6, 2)
        cfg = result.config.with_(
            schemes=tuple(result.config.schemes) + ("NPM",))
        exact = exact_evaluation(app, cfg)
        cond = result.conditional_normalized("GSS")
        for key, arr in cond.items():
            if len(arr) < 30:
                continue  # too noisy to compare
            expected = (exact.per_path["GSS"][key]
                        / exact.per_path["NPM"][key])
            assert arr.mean() == pytest.approx(expected, abs=0.05), key

    def test_unknown_scheme_rejected(self, result):
        from repro.errors import ConfigError
        with pytest.raises(ConfigError, match="not in result"):
            result.conditional_normalized("NOPE")
