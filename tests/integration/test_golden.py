"""Golden-number regression tests.

Pins the headline measurements (fixed seeds, fixed configs) so that a
future change to the engine, plans or sampling that shifts the
reproduction's results is caught immediately rather than discovered as
a mysteriously different EXPERIMENTS.md.

The reference file is regenerated intentionally with::

    python tests/integration/test_golden.py --regenerate

Tolerances are loose enough (±0.01 absolute) to survive cross-platform
floating-point drift but tight enough to flag any behavioural change.
"""

import json
import sys
from pathlib import Path

import pytest

from repro.experiments import RunConfig, evaluate_application
from repro.workloads import application_with_load, atr_graph, figure3_graph

GOLDEN_PATH = Path(__file__).parent / "golden_reference.json"

#: (key, graph factory, load, power model)
CASES = [
    ("atr-transmeta-0.5", atr_graph, 0.5, "transmeta"),
    ("atr-xscale-0.5", atr_graph, 0.5, "xscale"),
    ("fig3-transmeta-0.9", figure3_graph, 0.9, "transmeta"),
    ("fig3-xscale-0.9", figure3_graph, 0.9, "xscale"),
]

TOLERANCE = 0.01


def compute_case(graph_fn, load, model):
    cfg = RunConfig(power_model=model, n_processors=2, n_runs=300,
                    seed=2002)
    app = application_with_load(graph_fn(), load, 2)
    result = evaluate_application(app, cfg)
    return {scheme: round(mean, 6)
            for scheme, mean in result.mean_normalized().items()}


def compute_all():
    return {key: compute_case(fn, load, model)
            for key, fn, load, model in CASES}


@pytest.fixture(scope="module")
def golden():
    if not GOLDEN_PATH.exists():
        pytest.skip("golden reference not generated yet")
    return json.loads(GOLDEN_PATH.read_text())


@pytest.mark.parametrize("key,graph_fn,load,model",
                         CASES, ids=[c[0] for c in CASES])
def test_golden_numbers(golden, key, graph_fn, load, model):
    reference = golden[key]
    measured = compute_case(graph_fn, load, model)
    assert set(measured) == set(reference), key
    for scheme, value in measured.items():
        assert value == pytest.approx(reference[scheme],
                                      abs=TOLERANCE), \
            (key, scheme, value, reference[scheme])


def test_golden_sanity(golden):
    """The stored numbers themselves satisfy the paper's orderings."""
    for key, values in golden.items():
        for scheme, mean in values.items():
            assert 0 < mean <= 1 + 1e-9, (key, scheme)
        assert values["GSS"] < values["SPM"], key  # dynamic beats static


if __name__ == "__main__":
    if "--regenerate" in sys.argv:
        GOLDEN_PATH.write_text(json.dumps(compute_all(), indent=2,
                                          sort_keys=True))
        print(f"wrote {GOLDEN_PATH}")
    else:
        print(__doc__)
