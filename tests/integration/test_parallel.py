"""Integration tests for the process-pool experiment fan-out.

The pool path must produce bit-identical results to the serial path
(same seeds, same submission order), otherwise parallel sweeps would not
be reproducible.
"""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.experiments import RunConfig, resolve_jobs
from repro.experiments.parallel import map_applications, map_custom, map_load_points
from repro.workloads import application_with_load, figure3_graph


@pytest.fixture(scope="module")
def cfg():
    return RunConfig(schemes=("GSS", "SPM"), n_runs=15, seed=5)


class TestResolveJobs:
    def test_defaults_to_cpu_count(self):
        assert resolve_jobs(None) >= 1
        assert resolve_jobs(0) >= 1

    def test_explicit(self):
        assert resolve_jobs(3) == 3

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            resolve_jobs(-1)

    def test_clamped_to_available_work(self):
        assert resolve_jobs(32, n_items=3) == 3
        assert resolve_jobs(None, n_items=2) <= 2
        assert resolve_jobs(2, n_items=100) == 2

    def test_clamp_never_below_one(self):
        assert resolve_jobs(4, n_items=0) == 1
        assert resolve_jobs(None, n_items=0) == 1


class TestSerialParallelEquivalence:
    def test_load_points_identical(self, cfg):
        g = figure3_graph()
        serial = map_load_points(g, [0.4, 0.7], cfg, n_jobs=1)
        pooled = map_load_points(g, [0.4, 0.7], cfg, n_jobs=2)
        for a, b in zip(serial, pooled):
            for scheme in a.normalized:
                assert np.array_equal(a.normalized[scheme],
                                      b.normalized[scheme])

    def test_applications_identical(self, cfg):
        apps = [application_with_load(figure3_graph(alpha=a), 0.6, 2)
                for a in (0.4, 0.8)]
        serial = map_applications(apps, cfg, n_jobs=1)
        pooled = map_applications(apps, cfg, n_jobs=2)
        for a, b in zip(serial, pooled):
            assert a.mean_normalized() == b.mean_normalized()

    def test_pool_disables_nested_run_parallelism(self, cfg):
        # a config asking for run-level workers must not nest pools
        # inside point-level workers — and must still match serial
        g = figure3_graph()
        serial = map_load_points(g, [0.4, 0.7], cfg, n_jobs=1)
        pooled = map_load_points(g, [0.4, 0.7], cfg.with_(n_jobs=2),
                                 n_jobs=2)
        for a, b in zip(serial, pooled):
            for scheme in a.normalized:
                assert np.array_equal(a.normalized[scheme],
                                      b.normalized[scheme])

    def test_results_in_submission_order(self, cfg):
        g = figure3_graph()
        results = map_load_points(g, [0.3, 0.9], cfg, n_jobs=2)
        # higher load -> bigger deadline pressure -> SPM saves less
        assert results[0].mean_normalized()["SPM"] != \
            results[1].mean_normalized()["SPM"]


class TestMapCustom:
    def test_custom_function(self):
        out = map_custom(divmod, [(7, 3), (9, 4)], n_jobs=1)
        assert out == [(2, 1), (2, 1)]

    def test_custom_parallel(self):
        out = map_custom(divmod, [(7, 3), (9, 4)], n_jobs=2)
        assert out == [(2, 1), (2, 1)]
