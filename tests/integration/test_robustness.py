"""Failure-injection and edge-condition tests of the whole stack."""

import numpy as np
import pytest

from repro.core import get_policy
from repro.errors import (
    ConfigError,
    GraphError,
    InfeasibleError,
    SimulationError,
)
from repro.graph import Application, GraphBuilder
from repro.offline import build_plan
from repro.power import NO_OVERHEAD, PAPER_OVERHEAD, transmeta_model
from repro.sim import Realization, sample_realization, simulate
from tests.conftest import build_chain_graph, build_or_graph


class TestExtremeConfigurations:
    def test_single_task_application(self, transmeta):
        b = GraphBuilder("one")
        b.task("only", 10, 5)
        app = b.build(deadline=20)
        plan = build_plan(app, 1)
        rl = Realization(actuals={"only": 5.0}, choices={})
        run = get_policy("GSS").start_run(plan, transmeta, NO_OVERHEAD,
                                          realization=rl)
        res = simulate(plan, run, transmeta, NO_OVERHEAD, rl)
        assert res.met_deadline and res.n_tasks_run == 1

    def test_many_processors_few_tasks(self, transmeta):
        app = Application(build_chain_graph(2, wcet=10, acet=5),
                          deadline=40)
        plan = build_plan(app, 16)  # 14 processors forever idle
        rng = np.random.default_rng(0)
        rl = sample_realization(plan.structure, rng)
        run = get_policy("GSS").start_run(plan, transmeta,
                                          PAPER_OVERHEAD,
                                          realization=rl)
        res = simulate(plan, run, transmeta, PAPER_OVERHEAD, rl)
        assert res.met_deadline
        # idle energy covers the unused processors
        assert res.energy.idle > 16 * 0.8 * app.deadline * 0.05 * 0.5

    def test_huge_deadline_floors_at_smin(self, transmeta):
        app = Application(build_chain_graph(2, wcet=10, acet=5),
                          deadline=1e6)
        plan = build_plan(app, 1)
        rl = Realization(actuals={"T0": 10, "T1": 10}, choices={})
        run = get_policy("GSS").start_run(plan, transmeta, NO_OVERHEAD,
                                          realization=rl)
        res = simulate(plan, run, transmeta, NO_OVERHEAD, rl,
                       collect_trace=True)
        assert all(rec.speed == pytest.approx(transmeta.s_min)
                   for rec in res.trace)

    def test_tiny_tasks_and_overheads(self, transmeta):
        b = GraphBuilder("tiny")
        b.chain([(f"t{i}", 0.01, 0.005) for i in range(20)])
        app = b.build(deadline=1.0)
        reserve = PAPER_OVERHEAD.per_task_reserve(transmeta)
        plan = build_plan(app, 1, reserve=reserve)
        rng = np.random.default_rng(1)
        rl = sample_realization(plan.structure, rng)
        run = get_policy("GSS").start_run(plan, transmeta,
                                          PAPER_OVERHEAD,
                                          realization=rl)
        res = simulate(plan, run, transmeta, PAPER_OVERHEAD, rl)
        assert res.met_deadline
        # overheads dominate these micro-tasks: visible in the breakdown
        assert res.energy.overhead > 0


class TestInjectedFailures:
    def test_realization_missing_task_detected(self, transmeta):
        app = Application(build_chain_graph(2, wcet=10, acet=5),
                          deadline=40)
        plan = build_plan(app, 1)
        rl = Realization(actuals={"T0": 5.0}, choices={})  # T1 missing
        run = get_policy("NPM").start_run(plan, transmeta, NO_OVERHEAD,
                                          realization=rl)
        with pytest.raises(SimulationError, match="no actual time"):
            simulate(plan, run, transmeta, NO_OVERHEAD, rl)

    def test_impossible_deadline_rejected_offline(self):
        app = Application(build_chain_graph(3, wcet=10, acet=5),
                          deadline=1.0)
        with pytest.raises(InfeasibleError):
            build_plan(app, 2)

    def test_zero_processors_rejected(self):
        app = Application(build_chain_graph(2, wcet=10, acet=5),
                          deadline=40)
        with pytest.raises(SimulationError):
            build_plan(app, 0)

    def test_unvalidated_bad_graph_rejected_by_plan(self):
        g = GraphBuilder("bad").graph
        g.add_computation("A", 1, 1)
        g.add_or("O")
        g.add_edge("A", "O")
        g.add_computation("B", 1, 1)
        g.add_computation("C", 1, 1)
        g.add_edge("O", "B")
        g.add_edge("O", "C")  # probabilities never set
        app = Application(g, deadline=10)
        with pytest.raises(GraphError):
            build_plan(app, 1)

    def test_run_config_rejects_unknown_scheme_lazily(self):
        from repro.experiments import RunConfig, evaluate_application
        from repro.workloads import application_with_load
        app = application_with_load(build_or_graph(), 0.5, 2)
        cfg = RunConfig(schemes=("GSS", "BOGUS"), n_runs=2)
        with pytest.raises(ConfigError, match="unknown scheme"):
            evaluate_application(app, cfg)


class TestNumericalEdges:
    def test_acet_equal_wcet_everywhere(self, transmeta):
        b = GraphBuilder("det")
        b.chain([(f"t{i}", 5, 5) for i in range(4)])
        app = b.build(deadline=40)
        plan = build_plan(app, 1)
        rng = np.random.default_rng(0)
        rl = sample_realization(plan.structure, rng)
        assert all(v == 5 for v in rl.actuals.values())
        run = get_policy("SS1").start_run(plan, transmeta, NO_OVERHEAD,
                                          realization=rl)
        res = simulate(plan, run, transmeta, NO_OVERHEAD, rl)
        assert res.met_deadline

    def test_deadline_exactly_t_worst_no_overhead(self, transmeta):
        app = Application(build_chain_graph(3, wcet=10, acet=2),
                          deadline=30)
        plan = build_plan(app, 1)
        rl = Realization(actuals={"T0": 10, "T1": 10, "T2": 10},
                         choices={})
        run = get_policy("GSS").start_run(plan, transmeta, NO_OVERHEAD,
                                          realization=rl)
        res = simulate(plan, run, transmeta, NO_OVERHEAD, rl)
        assert res.finish_time == pytest.approx(30)

    def test_float_accumulation_long_chain(self, transmeta):
        b = GraphBuilder("long")
        b.chain([(f"t{i}", 1.1, 0.7) for i in range(200)])
        app = b.build(deadline=1.1 * 200 / 0.8)
        reserve = PAPER_OVERHEAD.per_task_reserve(transmeta)
        plan = build_plan(app, 1, reserve=reserve)
        rng = np.random.default_rng(5)
        rl = sample_realization(plan.structure, rng)
        run = get_policy("GSS").start_run(plan, transmeta,
                                          PAPER_OVERHEAD,
                                          realization=rl)
        res = simulate(plan, run, transmeta, PAPER_OVERHEAD, rl)
        assert res.met_deadline
        assert res.n_tasks_run == 200
