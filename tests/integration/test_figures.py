"""Integration tests for the figure/table regeneration harness.

Small run counts keep these fast; the assertions target the *shapes* the
paper reports, not absolute values (see EXPERIMENTS.md).
"""

import pytest

from repro.experiments import (
    figure4,
    figure5,
    figure6,
    render_series,
    table1,
    table2,
)


@pytest.fixture(scope="module")
def fig4():
    return figure4(n_runs=60, loads=(0.2, 0.5, 0.8), seed=11)


@pytest.fixture(scope="module")
def fig6():
    return figure6(n_runs=60, alphas=(0.2, 0.5, 0.9), seed=11)


class TestFigure4:
    def test_both_power_models_present(self, fig4):
        assert set(fig4) == {"transmeta", "xscale"}

    def test_five_schemes_per_point(self, fig4):
        for series in fig4.values():
            assert set(series.schemes()) == {"SPM", "GSS", "SS1", "SS2",
                                             "AS"}

    def test_energy_normalized_below_one(self, fig4):
        for series in fig4.values():
            for p in series.points:
                assert 0 < p.mean <= 1.0 + 1e-9

    def test_dynamic_beats_spm_at_high_load(self, fig4):
        # at load 0.8 the dynamic schemes exploit run-time slack SPM
        # cannot see
        for series in fig4.values():
            assert series.get(0.8, "GSS").mean < \
                series.get(0.8, "SPM").mean

    def test_render(self, fig4):
        text = render_series(fig4["transmeta"])
        assert "figure4-transmeta" in text


class TestFigure5:
    def test_six_processors(self):
        out = figure5(n_runs=30, loads=(0.5,), seed=3)
        for series in out.values():
            assert series.meta["n_processors"] == 6
            for p in series.points:
                assert 0 < p.mean <= 1.0 + 1e-9


class TestFigure6:
    def test_alpha_axis(self, fig6):
        for series in fig6.values():
            assert series.x_label == "alpha"
            assert series.xs() == [0.2, 0.5, 0.9]

    def test_spm_insensitive_to_alpha(self, fig6):
        # SPM ignores run-time behaviour: its *absolute* energy is fixed
        # by the load, so across alpha it moves far less than GSS (the
        # small residual drift is the NPM denominator changing)
        for series in fig6.values():
            spm = [series.get(a, "SPM").mean for a in (0.2, 0.5, 0.9)]
            gss = [series.get(a, "GSS").mean for a in (0.2, 0.5, 0.9)]
            spm_range = max(spm) - min(spm)
            gss_range = max(gss) - min(gss)
            assert spm_range < 0.05
            assert spm_range < gss_range

    def test_xscale_spm_equals_npm_at_load_09(self, fig6):
        # the paper: "with load = 0.9, SPM runs at S_max ... and consumes
        # the same energy as NPM" on the Intel XScale model
        series = fig6["xscale"]
        for a in (0.2, 0.5, 0.9):
            assert series.get(a, "SPM").mean == pytest.approx(1.0)

    def test_dynamic_schemes_rise_with_alpha(self, fig6):
        # less run-time slack (higher alpha) -> less dynamic saving
        for series in fig6.values():
            assert series.get(0.2, "GSS").mean < \
                series.get(0.9, "GSS").mean


class TestTables:
    def test_table1_contents(self):
        text = table1()
        assert "Transmeta" in text
        assert "700" in text and "200" in text
        assert "1.65" in text and "1.10" in text

    def test_table2_contents(self):
        text = table2()
        assert "XScale" in text
        assert "1000" in text and "150" in text
        assert "1.80" in text and "0.75" in text
