"""Integration tests for the exact path-enumeration evaluator."""

import pytest

from repro.errors import ConfigError
from repro.experiments import (
    RunConfig,
    evaluate_application,
    exact_evaluation,
    render_exact,
)
from repro.workloads import application_with_load, atr_graph, figure3_graph


@pytest.fixture(scope="module")
def cfg():
    return RunConfig(power_model="xscale", n_runs=1500, seed=5)


@pytest.fixture(scope="module")
def exact(cfg):
    app = application_with_load(figure3_graph(), 0.6, 2)
    return exact_evaluation(app, cfg)


class TestExactEvaluation:
    def test_path_probabilities_sum_to_one(self, exact):
        assert sum(exact.path_probability.values()) == pytest.approx(1.0)

    def test_expected_is_weighted_sum(self, exact):
        for scheme, by_path in exact.per_path.items():
            manual = sum(exact.path_probability[k] * e
                         for k, e in by_path.items())
            assert exact.expected[scheme] == pytest.approx(manual)

    def test_every_scheme_every_path(self, exact, cfg):
        for scheme in cfg.schemes:
            assert set(exact.per_path[scheme]) == \
                set(exact.path_probability)

    def test_matches_monte_carlo_at_sigma_zero(self, exact, cfg):
        """The MC harness must converge to the enumeration as σ → 0
        (cross-validation of the sampler and the pairing)."""
        app = application_with_load(figure3_graph(), 0.6, 2)
        mc = evaluate_application(app, cfg.with_(sigma_fraction=0.0))
        for scheme, mean in mc.mean_normalized().items():
            assert mean == pytest.approx(
                exact.expected_normalized[scheme], abs=0.01), scheme

    def test_monte_carlo_with_sigma_is_close(self, exact, cfg):
        """With runtime variation the expectation shifts only mildly."""
        app = application_with_load(figure3_graph(), 0.6, 2)
        mc = evaluate_application(app, cfg)
        for scheme, mean in mc.mean_normalized().items():
            assert mean == pytest.approx(
                exact.expected_normalized[scheme], abs=0.05), scheme

    def test_atr_exact(self, cfg):
        app = application_with_load(atr_graph(), 0.5, 2)
        res = exact_evaluation(app, cfg)
        # one path per ROI count
        assert len(res.path_probability) == 5
        assert 0 < res.expected_normalized["GSS"] < 1

    def test_render(self, exact):
        text = render_exact(exact)
        assert "expected" in text and "E[E/E_NPM]" in text
        assert "GSS" in text

    def test_render_unknown_scheme(self, exact):
        with pytest.raises(ConfigError, match="not evaluated"):
            render_exact(exact, schemes=["NOPE"])

    def test_dvs_disabled_at_full_load(self, cfg):
        app = application_with_load(figure3_graph(), 1.0, 2)
        res = exact_evaluation(app, cfg)
        for scheme in ("GSS", "SS1", "SS2", "AS"):
            assert res.expected_normalized[scheme] == pytest.approx(1.0)
