"""The paper's Conclusion (Section 6), claim by claim, as tests.

Each test quotes one sentence of the conclusion and checks the measured
behaviour that backs it.  Run counts are kept moderate; the same claims
at full size are recorded in EXPERIMENTS.md.
"""

import numpy as np
import pytest

from repro.experiments import RunConfig, evaluate_application
from repro.workloads import (
    AtrConfig,
    application_with_load,
    atr_graph,
    figure3_graph,
)

N_RUNS = 250
SEED = 2002


def _eval(graph, load, model, m=2, overhead=None, seed=SEED):
    kwargs = {}
    if overhead is not None:
        kwargs["overhead"] = overhead
    cfg = RunConfig(power_model=model, n_processors=m, n_runs=N_RUNS,
                    seed=seed, **kwargs)
    app = application_with_load(graph, load, m)
    return evaluate_application(app, cfg)


class TestConclusionClaims:
    def test_greedy_surprisingly_beats_some_speculation(self):
        """'The greedy algorithm is surprisingly better than some
        speculative algorithms.'"""
        res = _eval(figure3_graph(), 0.6, "xscale")
        means = res.mean_normalized()
        assert means["GSS"] < means["SS1"]

    def test_minimal_speed_limitation_explanation(self):
        """'...the minimal speed limitation that prevents the greedy
        algorithm from using up the slack very aggressively' — with the
        floor removed (continuous model, s_min→0), greedy's early tasks
        crawl and its energy advantage over speculation shrinks."""
        from repro.core import get_policy
        from repro.offline import build_plan
        from repro.power import NO_OVERHEAD, ContinuousPowerModel
        from repro.sim import sample_realization, simulate
        app = application_with_load(figure3_graph(), 0.6, 2)
        plan = build_plan(app, 2)
        rng = np.random.default_rng(SEED)
        lo = ContinuousPowerModel(s_min=0.01)
        hi = ContinuousPowerModel(s_min=0.6)
        first_speeds = {}
        for label, power in (("low-floor", lo), ("high-floor", hi)):
            rl = sample_realization(plan.structure, rng)
            run = get_policy("GSS").start_run(plan, power, NO_OVERHEAD,
                                              realization=rl)
            res = simulate(plan, run, power, NO_OVERHEAD, rl,
                           collect_trace=True)
            first = min(res.trace, key=lambda r: r.start)
            first_speeds[label] = first.speed
        # without a floor the greedy first task crawls; the floor saves
        # slack for later tasks, which is the paper's explanation
        assert first_speeds["low-floor"] < 0.3
        assert first_speeds["high-floor"] >= 0.6

    def test_fewer_levels_mean_fewer_changes(self):
        """'...fewer speed levels that prevents the greedy algorithm
        from changing the speed frequently' — on ladders spanning the
        same range, coarser quantization absorbs slack fluctuations
        that fine ladders turn into switches."""
        from repro.core import get_policy
        from repro.offline import build_plan
        from repro.power import PAPER_OVERHEAD, DiscretePowerModel
        from repro.sim import sample_realization, simulate
        switches = {}
        for n_levels in (4, 32):
            fs = np.linspace(200.0, 700.0, n_levels)
            vs = np.linspace(1.10, 1.65, n_levels)
            power = DiscretePowerModel(list(zip(fs, vs)),
                                       name=f"lv{n_levels}")
            app = application_with_load(figure3_graph(alpha=0.9),
                                        0.9, 2)
            reserve = PAPER_OVERHEAD.per_task_reserve(power)
            plan = build_plan(app, 2, reserve=reserve)
            rng = np.random.default_rng(SEED)
            total = 0
            for _ in range(100):
                rl = sample_realization(plan.structure, rng)
                run = get_policy("GSS").start_run(
                    plan, power, PAPER_OVERHEAD, realization=rl)
                res = simulate(plan, run, power, PAPER_OVERHEAD, rl)
                total += res.n_speed_changes
            switches[n_levels] = total
        assert switches[4] < switches[32]

    def test_energy_decreases_at_low_load(self):
        """'The energy consumption for all the power management schemes
        decreases unexpectedly when the load increases at low load...'"""
        g = atr_graph(AtrConfig(alpha=0.9))
        lo = _eval(g, 0.1, "transmeta").mean_normalized()
        mid = _eval(g, 0.35, "transmeta").mean_normalized()
        for scheme in ("SPM", "GSS", "AS"):
            assert mid[scheme] < lo[scheme], scheme

    def test_dynamic_schemes_lose_to_spm_margin_at_high_alpha(self):
        """'The dynamic schemes become worse relative to SPM when load
        becomes higher and alpha becomes larger...'"""
        gaps = {}
        for alpha in (0.3, 1.0):
            means = _eval(figure3_graph(alpha=alpha), 0.9,
                          "transmeta").mean_normalized()
            gaps[alpha] = means["SPM"] - means["GSS"]
        assert gaps[1.0] < gaps[0.3]  # the advantage shrinks

    def test_best_at_moderate_load_and_alpha(self):
        """'All the dynamic algorithms perform the best with moderate
        load and alpha.'"""
        means_by_alpha = {
            alpha: _eval(figure3_graph(alpha=alpha), 0.9,
                         "transmeta").mean_normalized()["AS"]
            for alpha in (0.1, 0.5, 1.0)
        }
        assert means_by_alpha[0.5] < means_by_alpha[0.1]
        assert means_by_alpha[0.5] < means_by_alpha[1.0]

    def test_more_processors_hurt_dynamic_schemes(self):
        """'When the number of processors increases, the performance of
        the dynamic schemes decreases due to the limited parallelism
        and the frequent idleness of the processors.'"""
        cfg = AtrConfig(alpha=0.9, max_rois=6,
                        roi_probs=(0.05, 0.15, 0.20, 0.20, 0.15, 0.15,
                                   0.10))
        g = atr_graph(cfg)
        m2 = _eval(g, 0.5, "transmeta", m=2).mean_normalized()
        m6 = _eval(g, 0.5, "transmeta", m=6).mean_normalized()
        for scheme in ("GSS", "SS1", "AS"):
            assert m6[scheme] > m2[scheme] - 0.02, scheme

    def test_speculation_reduces_speed_changes(self):
        """'...speculative algorithms that intend to save more energy by
        reducing the number of speed changes' — verified at the
        mechanism level where speculation binds (high alpha)."""
        res = _eval(figure3_graph(alpha=0.9), 0.9, "transmeta")
        sw = res.mean_speed_changes()
        assert sw["SS1"] < sw["GSS"]
