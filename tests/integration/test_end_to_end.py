"""Integration: offline phase + engine + policies on the paper's apps."""

import numpy as np
import pytest

from repro.core import ALL_SCHEMES, get_policy
from repro.graph import validate_graph
from repro.offline import build_plan
from repro.power import NO_OVERHEAD, PAPER_OVERHEAD, transmeta_model, xscale_model
from repro.sim import sample_realization, simulate, worst_case_realization
from repro.workloads import application_with_load, atr_graph, figure3_graph


def _simulate_all(app, power, n_runs=50, seed=0, overhead=PAPER_OVERHEAD,
                  m=2):
    reserve = overhead.per_task_reserve(power)
    plan_static = build_plan(app, m, reserve=0.0)
    plan_dyn = build_plan(app, m, reserve=reserve)
    rng = np.random.default_rng(seed)
    out = {name: [] for name in ALL_SCHEMES}
    for _ in range(n_runs):
        rl = sample_realization(plan_static.structure, rng)
        for name in ALL_SCHEMES:
            policy = get_policy(name)
            plan = plan_dyn if policy.requires_reserve else plan_static
            ov = NO_OVERHEAD if name == "NPM" else overhead
            run = policy.start_run(plan, power, ov, realization=rl)
            res = simulate(plan, run, power, ov, rl)
            assert res.met_deadline, (name, res.finish_time, res.deadline)
            out[name].append(res.total_energy)
    return {k: np.array(v) for k, v in out.items()}


@pytest.mark.parametrize("graph_fn", [atr_graph, figure3_graph])
@pytest.mark.parametrize("power_fn", [transmeta_model, xscale_model])
def test_all_schemes_meet_deadlines_and_save_energy(graph_fn, power_fn):
    app = application_with_load(graph_fn(), 0.5, 2)
    energies = _simulate_all(app, power_fn())
    npm = energies["NPM"]
    for name in ("SPM", "GSS", "SS1", "SS2", "AS", "ORACLE"):
        # managed schemes never exceed NPM by more than float noise
        assert np.all(energies[name] <= npm * (1 + 1e-9)), name
        assert energies[name].mean() < npm.mean()


def test_dynamic_schemes_beat_spm_at_moderate_load():
    app = application_with_load(figure3_graph(alpha=0.5), 0.5, 2)
    energies = _simulate_all(app, transmeta_model(), n_runs=100)
    for name in ("GSS", "SS1", "SS2", "AS"):
        assert energies[name].mean() < energies["SPM"].mean(), name


def test_worst_case_realization_finishes_exactly_at_bound():
    app = application_with_load(figure3_graph(), 0.8, 2)
    plan = build_plan(app, 2, reserve=0.0)
    rl = worst_case_realization(plan.structure, plan)
    power = transmeta_model()
    run = get_policy("NPM").start_run(plan, power, NO_OVERHEAD,
                                      realization=rl)
    res = simulate(plan, run, power, NO_OVERHEAD, rl)
    # NPM with all-WCET actuals along the longest path = t_worst
    assert res.finish_time == pytest.approx(plan.t_worst)


def test_gss_under_worst_case_still_meets_deadline():
    power = transmeta_model()
    for load in (0.3, 0.6, 0.9):
        app = application_with_load(atr_graph(), load, 2)
        reserve = PAPER_OVERHEAD.per_task_reserve(power)
        plan = build_plan(app, 2, reserve=reserve)
        rl = worst_case_realization(plan.structure)
        run = get_policy("GSS").start_run(plan, power, PAPER_OVERHEAD,
                                          realization=rl)
        res = simulate(plan, run, power, PAPER_OVERHEAD, rl)
        assert res.met_deadline


def test_six_processor_configuration():
    from repro.workloads import AtrConfig
    cfg = AtrConfig(max_rois=6,
                    roi_probs=(0.05, 0.15, 0.20, 0.20, 0.15, 0.15, 0.10))
    app = application_with_load(atr_graph(cfg), 0.5, 6)
    energies = _simulate_all(app, transmeta_model(), n_runs=30, m=6)
    assert energies["GSS"].mean() < energies["NPM"].mean()


def test_speed_change_counts_ordering():
    """Speculation exists to reduce switches: SS1 <= GSS on average."""
    app = application_with_load(figure3_graph(alpha=0.5), 0.6, 2)
    power = xscale_model()
    reserve = PAPER_OVERHEAD.per_task_reserve(power)
    plan_dyn = build_plan(app, 2, reserve=reserve)
    rng = np.random.default_rng(1)
    changes = {"GSS": 0, "SS1": 0}
    for _ in range(100):
        rl = sample_realization(plan_dyn.structure, rng)
        for name in changes:
            run = get_policy(name).start_run(plan_dyn, power,
                                             PAPER_OVERHEAD,
                                             realization=rl)
            res = simulate(plan_dyn, run, power, PAPER_OVERHEAD, rl)
            changes[name] += res.n_speed_changes
    assert changes["SS1"] <= changes["GSS"]


def test_energy_accounting_is_consistent():
    """busy + idle + overhead == total, and idle covers m*D window."""
    power = transmeta_model()
    app = application_with_load(figure3_graph(), 0.5, 2)
    reserve = PAPER_OVERHEAD.per_task_reserve(power)
    plan = build_plan(app, 2, reserve=reserve)
    rng = np.random.default_rng(3)
    rl = sample_realization(plan.structure, rng)
    run = get_policy("GSS").start_run(plan, power, PAPER_OVERHEAD,
                                      realization=rl)
    res = simulate(plan, run, power, PAPER_OVERHEAD, rl,
                   collect_trace=True)
    assert res.total_energy == pytest.approx(
        res.energy.busy + res.energy.idle + res.energy.overhead)
    busy_from_trace = sum(r.energy for r in res.trace)
    assert res.energy.busy == pytest.approx(busy_from_trace)
