"""Integration tests for the comprehensive evaluation suite."""

import pytest

from repro.errors import ConfigError
from repro.experiments import SuiteConfig, render_suite, run_suite
from repro.workloads import figure3_graph


@pytest.fixture(scope="module")
def small_suite():
    cfg = SuiteConfig(n_runs=40, loads=(0.5,), models=("xscale",),
                      seed=1)
    return run_suite(cfg, workloads={"fig3": figure3_graph})


class TestSuite:
    def test_cells_cover_grid(self, small_suite):
        assert set(small_suite.cells) == {("fig3", "xscale", 0.5)}

    def test_mean_accessor(self, small_suite):
        m = small_suite.mean("fig3", "xscale", 0.5, "GSS")
        assert 0 < m < 1

    def test_overall_wins_nonempty(self, small_suite):
        wins = small_suite.overall_wins()
        assert set(wins) == set(small_suite.config.schemes)

    def test_render(self, small_suite):
        text = render_suite(small_suite)
        assert "fig3" in text and "xscale" in text
        assert "significant pairwise wins" in text

    def test_default_workload_zoo(self):
        from repro.experiments import default_workloads
        zoo = default_workloads()
        assert {"atr", "fig3", "mpeg", "radar", "fusion",
                "packets"} <= set(zoo)

    def test_invalid_config(self):
        with pytest.raises(ConfigError):
            SuiteConfig(loads=())
        with pytest.raises(ConfigError):
            run_suite(SuiteConfig(n_runs=5), workloads={})

    def test_cli_suite(self, capsys):
        from repro.cli import main
        assert main(["suite", "--runs", "10", "--loads", "0.5",
                     "--models", "xscale"]) == 0
        out = capsys.readouterr().out
        assert "pairwise wins" in out
        assert "atr" in out and "radar" in out
