"""Run-level parallel evaluation: determinism, chunking, failure paths.

The contract under test: ``evaluate_application`` samples the full
realization batch once in the parent from the config seed, so the
worker count and chunk size may shape wall-clock but must never change
a single bit of the result.
"""

import numpy as np
import pytest

from repro.errors import ConfigError, ParallelError
from repro.experiments import RunConfig, evaluate_application
from repro.experiments.parallel import map_custom, map_load_points
from repro.experiments.runner import EvaluationResult, _auto_chunk_size
from repro.workloads import application_with_load, atr_graph, figure3_graph


@pytest.fixture(scope="module")
def app():
    return application_with_load(atr_graph(), 0.5, 2)


@pytest.fixture(scope="module")
def serial_result(app):
    return evaluate_application(app, RunConfig(n_runs=30, seed=11),
                                n_jobs=1)


def _assert_identical(a, b):
    assert np.array_equal(a.npm_energy, b.npm_energy)
    assert a.path_keys == b.path_keys
    assert set(a.normalized) == set(b.normalized)
    for scheme in a.normalized:
        assert np.array_equal(a.normalized[scheme], b.normalized[scheme])
        assert np.array_equal(a.absolute[scheme], b.absolute[scheme])
        assert np.array_equal(a.speed_changes[scheme],
                              b.speed_changes[scheme])


class TestRunLevelDeterminism:
    # parallel_min_runs=0 disables the small-batch serial fallback and
    # run_level_pool=True opts into the legacy chunked pool, so these
    # bench-sized batches genuinely exercise the worker pool

    def test_pooled_identical_to_serial(self, app, serial_result):
        pooled = evaluate_application(
            app, RunConfig(n_runs=30, seed=11, parallel_min_runs=0,
                           run_level_pool=True),
            n_jobs=4)
        _assert_identical(serial_result, pooled)

    def test_chunk_size_irrelevant(self, app, serial_result):
        for chunk in (1, 7, 30):
            pooled = evaluate_application(
                app, RunConfig(n_runs=30, seed=11, parallel_min_runs=0,
                               run_level_pool=True),
                n_jobs=2, runs_per_chunk=chunk)
            _assert_identical(serial_result, pooled)

    def test_config_carried_jobs(self, app, serial_result):
        cfg = RunConfig(n_runs=30, seed=11, n_jobs=3, runs_per_chunk=8,
                        parallel_min_runs=0, run_level_pool=True)
        _assert_identical(serial_result, evaluate_application(app, cfg))

    def test_explicit_argument_overrides_config(self, app, serial_result):
        cfg = RunConfig(n_runs=30, seed=11, n_jobs=4, parallel_min_runs=0,
                        run_level_pool=True)
        # n_jobs=1 override must take the sequential path and still match
        _assert_identical(serial_result,
                          evaluate_application(app, cfg, n_jobs=1))

    def test_dict_engine_pool_identical(self, app, serial_result):
        pooled = evaluate_application(
            app, RunConfig(n_runs=30, seed=11, engine="dict",
                           parallel_min_runs=0, run_level_pool=True),
            n_jobs=2)
        _assert_identical(serial_result, pooled)

    def test_jobs_clamped_to_work(self, app):
        # 3 runs, 16 workers requested: must not crash or pad results
        res = evaluate_application(
            app, RunConfig(n_runs=3, seed=2, parallel_min_runs=0,
                           run_level_pool=True),
            n_jobs=16, runs_per_chunk=1)
        assert res.npm_energy.shape == (3,)
        assert len(res.path_keys) == 3


class TestSerialFallback:
    """Below ``parallel_min_runs`` a pooled request must run serially."""

    def _spy_pool(self, monkeypatch):
        # since PR 4 every pool is created inside ExecutionContext.pool
        import repro.experiments.engine as engine_mod
        calls = []
        orig = engine_mod.ProcessPoolExecutor

        def spy(*args, **kwargs):
            calls.append(kwargs.get("max_workers"))
            return orig(*args, **kwargs)

        monkeypatch.setattr(engine_mod, "ProcessPoolExecutor", spy)
        return calls

    def test_small_batch_stays_serial(self, app, serial_result,
                                      monkeypatch):
        # 30 runs < DEFAULT_PARALLEL_MIN_RUNS: no pool despite n_jobs=4
        calls = self._spy_pool(monkeypatch)
        res = evaluate_application(app, RunConfig(n_runs=30, seed=11,
                                                  run_level_pool=True),
                                   n_jobs=4)
        assert calls == []
        _assert_identical(serial_result, res)

    def test_zero_threshold_forces_pool(self, app, serial_result,
                                        monkeypatch):
        calls = self._spy_pool(monkeypatch)
        res = evaluate_application(
            app, RunConfig(n_runs=30, seed=11, parallel_min_runs=0,
                           run_level_pool=True),
            n_jobs=2)
        assert calls == [2]
        _assert_identical(serial_result, res)

    def test_threshold_boundary_is_inclusive(self, app, monkeypatch):
        # n_runs == parallel_min_runs is big enough: the pool runs
        calls = self._spy_pool(monkeypatch)
        evaluate_application(
            app, RunConfig(n_runs=30, seed=11, parallel_min_runs=30,
                           run_level_pool=True),
            n_jobs=2)
        assert calls == [2]

    def test_below_threshold_by_one_stays_serial(self, app, monkeypatch):
        calls = self._spy_pool(monkeypatch)
        evaluate_application(
            app, RunConfig(n_runs=30, seed=11, parallel_min_runs=31,
                           run_level_pool=True),
            n_jobs=2)
        assert calls == []

    def test_without_opt_in_no_pool_is_ever_created(self, app,
                                                    serial_result,
                                                    monkeypatch):
        # the PR's headline fix: every threshold open, pool still absent
        calls = self._spy_pool(monkeypatch)
        res = evaluate_application(
            app, RunConfig(n_runs=30, seed=11, parallel_min_runs=0),
            n_jobs=4)
        assert calls == []
        _assert_identical(serial_result, res)

    def test_negative_threshold_rejected(self):
        with pytest.raises(ConfigError):
            RunConfig(parallel_min_runs=-1)

    def test_warm_pool_overrides_min_runs_threshold(self, app,
                                                    serial_result,
                                                    monkeypatch):
        # pool startup is the cost the threshold amortizes; once a live
        # pool is attached there is nothing left to amortize, so a
        # below-threshold batch uses it rather than idling it
        from repro.experiments import ExecutionContext
        calls = self._spy_pool(monkeypatch)
        with ExecutionContext(n_jobs=2) as ctx:
            ctx.pool()  # pre-warmed before the evaluation arrives
            assert calls == [2]
            res = evaluate_application(
                app, RunConfig(n_runs=30, seed=11,
                               parallel_min_runs=1000,
                               run_level_pool=True),
                n_jobs=2, context=ctx)
            assert ctx.pools_created == 1  # reused, never respun
        assert calls == [2]
        _assert_identical(serial_result, res)

    def test_cold_attached_context_still_respects_threshold(
            self, app, serial_result, monkeypatch):
        # a context whose pool has not started yet would still pay the
        # startup cost — the threshold keeps applying
        from repro.experiments import ExecutionContext
        calls = self._spy_pool(monkeypatch)
        with ExecutionContext(n_jobs=2) as ctx:
            res = evaluate_application(
                app, RunConfig(n_runs=30, seed=11,
                               parallel_min_runs=1000,
                               run_level_pool=True),
                n_jobs=2, context=ctx)
            assert ctx.pools_created == 0
        assert calls == []
        _assert_identical(serial_result, res)


class TestChunkKnobValidation:
    def test_auto_chunk_size_bounds(self):
        assert _auto_chunk_size(1000, 4) == 63  # ceil(1000/16)
        assert _auto_chunk_size(3, 8) == 1
        assert _auto_chunk_size(1, 1) == 1

    def test_negative_jobs_rejected(self):
        with pytest.raises(ConfigError):
            RunConfig(n_jobs=-1)

    def test_negative_chunk_rejected(self):
        with pytest.raises(ConfigError):
            RunConfig(runs_per_chunk=-5)

    def test_chunk_beyond_runs_rejected(self):
        with pytest.raises(ConfigError, match="exceeds n_runs"):
            RunConfig(n_runs=10, runs_per_chunk=11)

    def test_negative_chunk_argument_rejected(self, app):
        with pytest.raises(ConfigError):
            evaluate_application(app, RunConfig(n_runs=5),
                                 runs_per_chunk=-1)


def _fail_on(x):
    if x == "bad":
        raise RuntimeError("worker exploded")
    return x


class TestWorkerFailures:
    def test_custom_pool_failure_has_context(self):
        with pytest.raises(ParallelError, match="args=\\('bad',\\)") as ei:
            map_custom(_fail_on, [("ok",), ("bad",), ("ok",)], n_jobs=2)
        assert isinstance(ei.value.__cause__, RuntimeError)
        assert "worker exploded" in str(ei.value)

    def test_load_point_failure_names_the_point(self):
        cfg = RunConfig(schemes=("GSS",), n_runs=5, seed=1)
        # load > 1 is rejected inside the worker process
        with pytest.raises(ParallelError, match="load=1.5"):
            map_load_points(figure3_graph(), [0.5, 1.5], cfg, n_jobs=2)

    def test_failure_surfaces_promptly(self):
        import time
        start = time.monotonic()
        with pytest.raises(ParallelError):
            map_custom(_fail_on, [("bad",)] + [("ok",)] * 3, n_jobs=2)
        # fail-fast: nowhere near the time 4 sequential retries would take
        assert time.monotonic() - start < 30.0


class TestPathFrequencies:
    def test_exact_fractions(self):
        res = EvaluationResult(app_name="x", config=RunConfig(n_runs=7),
                               path_keys=["a", "b", "a", "c", "a", "b",
                                          "a"])
        freq = res.path_frequencies()
        assert freq == {"a": 4 / 7, "b": 2 / 7, "c": 1 / 7}

    def test_sum_is_exact_for_large_n(self):
        # the old 1/n accumulation drifted; counting must not
        keys = (["p"] * 333) + (["q"] * 334) + (["r"] * 333)
        res = EvaluationResult(app_name="x", config=RunConfig(n_runs=1000),
                               path_keys=keys)
        freq = res.path_frequencies()
        assert freq["p"] == 333 / 1000
        assert freq["q"] == 334 / 1000
        assert sum(freq.values()) == pytest.approx(1.0, abs=1e-15)

    def test_empty_rejected(self):
        res = EvaluationResult(app_name="x", config=RunConfig(n_runs=1))
        with pytest.raises(ConfigError):
            res.path_frequencies()
