"""Smoke tests: every example script runs to completion.

Examples are documentation that executes; if one breaks, the README's
promises are stale.  Each is run in-process with a trimmed workload via
environment-free import of its main() where possible, falling back to a
subprocess for the scripts that parse no arguments.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).parents[2] / "examples").glob("*.py"))

#: per-script timeout; the α study is the slowest (two full sweeps)
TIMEOUT = 300


@pytest.mark.parametrize("script", EXAMPLES,
                         ids=[p.stem for p in EXAMPLES])
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True, text=True, timeout=TIMEOUT)
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "example produced no output"


def test_examples_exist():
    names = {p.stem for p in EXAMPLES}
    assert {"quickstart", "atr_pipeline", "alpha_study",
            "custom_application", "mission_analysis",
            "workload_zoo"} <= names
