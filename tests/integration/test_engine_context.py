"""Persistent execution context: pool reuse, shm transport, cached sweeps.

The PR-4 contract: a sweep handed an :class:`ExecutionContext` must
create exactly **one** worker pool no matter how many points it fans
out, and every transport/caching variant — per-point pools, persistent
pool, shared-memory realization views, pickled chunks, cache hits from
disk — must be bit-identical to the serial reference.
"""

import numpy as np
import pytest

from repro.experiments import (EvaluationCache, ExecutionContext, RunConfig,
                               evaluate_application, evaluation_key)
from repro.experiments.sweeps import sweep_load
from repro.workloads import application_with_load, figure3_graph

LOADS = [round(0.1 * i, 1) for i in range(1, 11)]  # the paper's 10-point grid


@pytest.fixture(scope="module")
def graph():
    return figure3_graph()


@pytest.fixture(scope="module")
def cfg():
    return RunConfig(n_runs=20, seed=5)


@pytest.fixture(scope="module")
def serial_series(graph, cfg):
    return sweep_load(graph, cfg, LOADS)


def _spy_pool(monkeypatch):
    # every pool — point-level or run-level — is created here
    import repro.experiments.engine as engine_mod
    calls = []
    orig = engine_mod.ProcessPoolExecutor

    def spy(*args, **kwargs):
        calls.append(kwargs.get("max_workers"))
        return orig(*args, **kwargs)

    monkeypatch.setattr(engine_mod, "ProcessPoolExecutor", spy)
    return calls


def _assert_series_equal(a, b):
    assert a.points == b.points
    assert a.meta.get("speed_changes") == b.meta.get("speed_changes")


def _assert_identical(a, b):
    assert np.array_equal(a.npm_energy, b.npm_energy)
    assert a.path_keys == b.path_keys
    assert set(a.normalized) == set(b.normalized)
    for scheme in a.normalized:
        assert np.array_equal(a.normalized[scheme], b.normalized[scheme])
        assert np.array_equal(a.absolute[scheme], b.absolute[scheme])


class TestPoolReuse:
    def test_serial_sweep_creates_no_pool(self, graph, cfg, monkeypatch):
        calls = _spy_pool(monkeypatch)
        sweep_load(graph, cfg, LOADS)
        assert calls == []

    def test_fused_sweep_creates_no_pool_even_with_context(self, graph,
                                                           cfg,
                                                           serial_series,
                                                           monkeypatch):
        # the sweep compiler's contract: a homogeneous sweep fuses in
        # the parent and never touches the context's pool
        calls = _spy_pool(monkeypatch)
        with ExecutionContext(n_jobs=4) as ctx:
            series = sweep_load(graph, cfg, LOADS, context=ctx)
            assert ctx.pools_created == 0
        assert calls == []
        _assert_series_equal(serial_series, series)

    def test_shared_context_creates_exactly_one_pool(self, graph, cfg,
                                                     serial_series,
                                                     monkeypatch):
        # fused=False falls back to point-level fan-out over one pool
        calls = _spy_pool(monkeypatch)
        with ExecutionContext(n_jobs=4) as ctx:
            series = sweep_load(graph, cfg, LOADS, context=ctx,
                                fused=False)
            assert ctx.pools_created == 1
        assert calls == [4]
        _assert_series_equal(serial_series, series)

    def test_per_point_pools_match_shared_pool(self, graph, cfg,
                                               serial_series, monkeypatch):
        # the pre-PR-4 shape: run-level pooling without a context spins
        # one pool per sweep point — same bits, just slower
        calls = _spy_pool(monkeypatch)
        cfg_pool = cfg.with_(n_jobs=2, parallel_min_runs=0,
                             run_level_pool=True)
        series = sweep_load(graph, cfg_pool, LOADS, fused=False)
        assert len(calls) == len(LOADS)
        _assert_series_equal(serial_series, series)

    def test_pool_survives_repeated_sweeps(self, graph, cfg,
                                           serial_series):
        with ExecutionContext(n_jobs=4) as ctx:
            first = sweep_load(graph, cfg, LOADS, context=ctx,
                               fused=False)
            second = sweep_load(graph, cfg, LOADS, context=ctx,
                                fused=False)
            assert ctx.pools_created == 1
        _assert_series_equal(serial_series, first)
        _assert_series_equal(serial_series, second)

    def test_closed_context_rejects_work(self, graph, cfg):
        from repro.errors import ParallelError
        ctx = ExecutionContext(n_jobs=2)
        ctx.close()
        with pytest.raises(ParallelError):
            ctx.pool()


class TestSharedMemoryTransport:
    @pytest.fixture(scope="class")
    def app(self):
        return application_with_load(figure3_graph(), 0.5, 2)

    @pytest.fixture(scope="class")
    def run_cfg(self):
        return RunConfig(n_runs=30, seed=11, parallel_min_runs=0,
                         run_level_pool=True)

    @pytest.fixture(scope="class")
    def serial_result(self, app, run_cfg):
        return evaluate_application(app, run_cfg, n_jobs=1)

    def test_shm_views_match_serial(self, app, run_cfg, serial_result):
        with ExecutionContext(n_jobs=2, shared_memory=True) as ctx:
            res = evaluate_application(app, run_cfg, n_jobs=2, context=ctx)
        _assert_identical(serial_result, res)

    def test_pickled_chunks_match_serial(self, app, run_cfg,
                                         serial_result):
        with ExecutionContext(n_jobs=2, shared_memory=False) as ctx:
            res = evaluate_application(app, run_cfg, n_jobs=2, context=ctx)
        _assert_identical(serial_result, res)


class TestCachedSweep:
    def test_cache_hit_sweep_is_bit_identical(self, graph, cfg,
                                              serial_series, tmp_path):
        cache = EvaluationCache(tmp_path)
        with ExecutionContext(n_jobs=4, cache=cache) as ctx:
            first = sweep_load(graph, cfg, LOADS, context=ctx)
            second = sweep_load(graph, cfg, LOADS, context=ctx)
        _assert_series_equal(serial_series, first)
        _assert_series_equal(serial_series, second)
        stats = cache.stats()
        assert stats["misses"] == len(LOADS)
        assert stats["hits"] == len(LOADS)
        # the per-sweep delta lands in the series meta
        assert first.meta["cache"]["misses"] == len(LOADS)
        assert second.meta["cache"]["hits"] == len(LOADS)

    def test_cache_entry_serves_serial_rerun(self, graph, cfg, tmp_path):
        # an entry computed by the pooled sweep must satisfy a later
        # serial evaluation of the same point
        cache = EvaluationCache(tmp_path)
        with ExecutionContext(n_jobs=4, cache=cache) as ctx:
            sweep_load(graph, cfg, LOADS, context=ctx)
        app = application_with_load(graph, LOADS[3], cfg.n_processors)
        direct = evaluate_application(app, cfg)
        hit = cache.get(evaluation_key(app, cfg), app.name, cfg)
        assert hit is not None
        _assert_identical(direct, hit)
