"""Integration tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fig_flags(self):
        args = build_parser().parse_args(
            ["fig4", "--runs", "10", "--jobs", "2", "--oracle"])
        assert args.runs == 10 and args.jobs == 2 and args.oracle


class TestCommands:
    def test_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Transmeta" in out and "XScale" in out

    def test_run(self, capsys):
        assert main(["run", "--app", "fig3", "--runs", "5",
                     "--model", "xscale"]) == 0
        out = capsys.readouterr().out
        assert "E/E_NPM" in out and "GSS" in out

    def test_run_with_scheme_subset(self, capsys):
        assert main(["run", "--runs", "3", "--schemes", "GSS",
                     "SPM"]) == 0
        out = capsys.readouterr().out
        assert "GSS" in out and "SS1" not in out

    def test_fig6_small(self, capsys):
        assert main(["fig6", "--runs", "5"]) == 0
        out = capsys.readouterr().out
        assert "figure6-transmeta" in out
        assert "figure6-xscale" in out
        assert "speed changes" in out

    def test_fig4_csv(self, tmp_path, capsys):
        csv = tmp_path / "out.csv"
        assert main(["fig4", "--runs", "5", "--csv", str(csv)]) == 0
        text = csv.read_text()
        assert text.startswith("x,scheme,mean")
        assert "GSS" in text

    def test_gantt(self, capsys):
        assert main(["gantt", "--app", "fig3", "--scheme", "GSS",
                     "--load", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "P0 |" in out and "scheme=GSS" in out

    def test_unknown_app_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--app", "doom"])


class TestAnalysisCommands:
    def test_analyze(self, capsys):
        from repro.cli import main
        assert main(["analyze", "--app", "fig3", "--load", "0.6"]) == 0
        out = capsys.readouterr().out
        assert "T_worst" in out and "parallelism" in out
        assert "slack" in out

    def test_stream(self, capsys):
        from repro.cli import main
        assert main(["stream", "--app", "fig3", "--frames", "5",
                     "--schemes", "GSS"]) == 0
        out = capsys.readouterr().out
        assert "mission: 5 frames" in out
        assert "GSS" in out and "NPM" in out  # NPM always added

    def test_fig_chart_flag(self, capsys):
        from repro.cli import main
        assert main(["fig6", "--runs", "4", "--chart"]) == 0
        out = capsys.readouterr().out
        assert "y: normalized energy" in out


class TestReportCommand:
    def test_report_writes_markdown(self, tmp_path, capsys):
        from repro.cli import main
        out_path = tmp_path / "r.md"
        assert main(["report", "--runs", "4", "--figures", "fig6",
                     "-o", str(out_path)]) == 0
        text = out_path.read_text()
        assert "# Measured results" in text
        assert "Figure 6" in text
        assert "| alpha |" in text
        assert "Table 1" in text

    def test_report_figures_subset(self, tmp_path):
        from repro.cli import main
        out_path = tmp_path / "r.md"
        assert main(["report", "--runs", "4", "--figures", "fig4",
                     "-o", str(out_path)]) == 0
        text = out_path.read_text()
        assert "Figure 4" in text and "Figure 5" not in text


class TestStatisticsCommands:
    def test_exact(self, capsys):
        from repro.cli import main
        assert main(["exact", "--app", "fig3", "--load", "0.6"]) == 0
        out = capsys.readouterr().out
        assert "E[E/E_NPM]" in out and "expected" in out

    def test_misprofile(self, capsys):
        from repro.cli import main
        assert main(["misprofile", "--app", "fig3", "--runs", "20",
                     "--gammas", "0.5", "2.0"]) == 0
        out = capsys.readouterr().out
        assert "regret" in out and "0.50" in out
