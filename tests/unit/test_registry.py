"""Unit tests for the scheme registry."""

import pytest

from repro.core import (
    ALL_SCHEMES,
    PAPER_SCHEMES,
    available_schemes,
    get_policies,
    get_policy,
)
from repro.errors import ConfigError


class TestRegistry:
    @pytest.mark.parametrize("name,label", [
        ("npm", "NPM"), ("NPM", "NPM"),
        ("spm", "SPM"), ("static", "SPM"),
        ("gss", "GSS"), ("greedy", "GSS"),
        ("ss1", "SS1"), ("SS-1", "SS1"),
        ("ss2", "SS2"), ("SS-2", "SS2"),
        ("as", "AS"), ("adaptive", "AS"),
        ("oracle", "ORACLE"), ("clairvoyant", "ORACLE"),
    ])
    def test_lookup_and_aliases(self, name, label):
        assert get_policy(name).name == label

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ConfigError, match="unknown scheme"):
            get_policy("edf")

    def test_paper_schemes_resolvable(self):
        for name in PAPER_SCHEMES:
            assert get_policy(name).name == name

    def test_all_schemes_includes_baseline_and_oracle(self):
        assert "NPM" in ALL_SCHEMES and "ORACLE" in ALL_SCHEMES
        assert set(PAPER_SCHEMES) < set(ALL_SCHEMES)

    def test_get_policies(self):
        ps = get_policies(["gss", "spm"])
        assert [p.name for p in ps] == ["GSS", "SPM"]

    def test_available_schemes_sorted(self):
        names = available_schemes()
        assert names == sorted(names)
        assert "gss" in names

    def test_reserve_requirements(self):
        assert get_policy("gss").requires_reserve
        assert get_policy("ss1").requires_reserve
        assert get_policy("ss2").requires_reserve
        assert get_policy("as").requires_reserve
        assert not get_policy("npm").requires_reserve
        assert not get_policy("spm").requires_reserve
        assert not get_policy("oracle").requires_reserve

    def test_each_call_returns_fresh_instance(self):
        assert get_policy("gss") is not get_policy("gss")
