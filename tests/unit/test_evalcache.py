"""Unit tests for the content-addressed evaluation cache.

The contract: ``evaluation_key`` must change when — and only when — a
field that can change the *result* changes.  Execution knobs (worker
count, chunking, fallback threshold) shape wall-clock, never bits, so
they must hash identically; a cached entry loaded back must be
bit-identical to the result that was stored; a corrupted, truncated
or wrong-schema entry must degrade to a miss with a single warning —
never a crash — and the broken bytes must be quarantined (moved into
``<root>/quarantine/``, not destroyed) before the point is recomputed.
"""

import numpy as np
import pytest

from repro.experiments import (EvaluationCache, RunConfig,
                               evaluate_application, evaluation_key)
from repro.experiments.evalcache import plan_setup_key
from repro.power import PAPER_OVERHEAD
from repro.workloads import application_with_load, figure3_graph


@pytest.fixture(scope="module")
def app():
    return application_with_load(figure3_graph(), 0.6, 2)


@pytest.fixture(scope="module")
def cfg():
    return RunConfig(n_runs=12, seed=7)


class TestEvaluationKey:
    def test_deterministic(self, app, cfg):
        assert evaluation_key(app, cfg) == evaluation_key(app, cfg)

    def test_graph_changes_key(self, app, cfg):
        other = application_with_load(figure3_graph(), 0.7, 2)
        assert evaluation_key(app, cfg) != evaluation_key(other, cfg)

    @pytest.mark.parametrize("change", [
        {"seed": 8},
        {"n_runs": 13},
        {"sigma_fraction": 0.25},
        {"idle_fraction": 0.10},
        {"schemes": ("GSS", "AS")},
        {"engine": "dict"},
        {"power_model": "continuous"},
        {"heuristic": "stf"},
        {"n_processors": 3},
        {"overhead": PAPER_OVERHEAD.with_(adjust_time=0.02)},
    ])
    def test_result_field_changes_key(self, app, cfg, change):
        assert evaluation_key(app, cfg) != \
            evaluation_key(app, cfg.with_(**change))

    @pytest.mark.parametrize("change", [
        {"n_jobs": 4},
        {"runs_per_chunk": 3},
        {"parallel_min_runs": 0},
    ])
    def test_execution_knobs_do_not_change_key(self, app, cfg, change):
        # these shape wall-clock only; results are bit-identical, so a
        # cache entry computed serially must serve a pooled request
        assert evaluation_key(app, cfg) == \
            evaluation_key(app, cfg.with_(**change))

    def test_scheme_aliases_canonicalized(self, app, cfg):
        lower = cfg.with_(schemes=("gss", "ss1"))
        canon = cfg.with_(schemes=("GSS", "SS1"))
        assert evaluation_key(app, lower) == evaluation_key(app, canon)

    def test_setup_key_ignores_draw_fields(self, app, cfg):
        # the plan/compile setup shipped to workers only depends on the
        # schedule, not on how many realizations are drawn from it
        assert plan_setup_key(app, cfg) == \
            plan_setup_key(app, cfg.with_(n_runs=99, seed=1,
                                          sigma_fraction=0.2))
        assert plan_setup_key(app, cfg) != \
            plan_setup_key(app, cfg.with_(heuristic="stf"))


class TestCacheRoundTrip:
    def test_put_get_bit_identical(self, app, cfg, tmp_path):
        cache = EvaluationCache(tmp_path)
        result = evaluate_application(app, cfg)
        key = evaluation_key(app, cfg)
        cache.put(key, result)
        loaded = cache.get(key, app.name, cfg)
        assert loaded is not None
        assert np.array_equal(loaded.npm_energy, result.npm_energy)
        assert loaded.path_keys == result.path_keys
        assert set(loaded.normalized) == set(result.normalized)
        for scheme in result.normalized:
            assert np.array_equal(loaded.normalized[scheme],
                                  result.normalized[scheme])
            assert np.array_equal(loaded.absolute[scheme],
                                  result.absolute[scheme])
            assert np.array_equal(loaded.speed_changes[scheme],
                                  result.speed_changes[scheme])
        assert cache.stats() == {"hits": 1, "misses": 0, "errors": 0,
                                 "quarantined": 0}

    def test_absent_key_is_a_miss(self, app, cfg, tmp_path):
        cache = EvaluationCache(tmp_path)
        assert cache.get(evaluation_key(app, cfg),
                         app.name, cfg) is None
        assert cache.stats() == {"hits": 0, "misses": 1, "errors": 0,
                                 "quarantined": 0}

    def test_corrupt_entry_recomputes_with_warning(self, app, cfg,
                                                   tmp_path):
        cache = EvaluationCache(tmp_path)
        key = evaluation_key(app, cfg)
        result = evaluate_application(app, cfg)
        cache.put(key, result)
        path = cache.path_for(key)
        path.write_bytes(b"this is not a numpy archive")
        with pytest.warns(RuntimeWarning, match="quarantined"):
            assert cache.get(key, app.name, cfg) is None
        assert cache.stats()["errors"] == 1
        assert not path.exists()  # moved aside, so the recompute can re-put
        cache.put(key, result)
        assert cache.get(key, app.name, cfg) is not None

    def test_entry_for_other_config_rejected(self, app, cfg, tmp_path):
        # defensive: a payload stored under the wrong key must not be
        # served for a config whose scheme set does not match
        cache = EvaluationCache(tmp_path)
        key = evaluation_key(app, cfg)
        cache.put(key, evaluate_application(app, cfg))
        other = cfg.with_(schemes=("GSS",))
        with pytest.warns(RuntimeWarning):
            assert cache.get(key, app.name, other) is None


class TestQuarantine:
    """Every corruption class: one warning, one quarantined copy, a miss."""

    @pytest.fixture()
    def stored(self, app, cfg, tmp_path):
        cache = EvaluationCache(tmp_path / "cache")
        key = evaluation_key(app, cfg)
        result = evaluate_application(app, cfg)
        cache.put(key, result)
        return cache, key, result

    def _assert_quarantined(self, cache, key, app, cfg, result):
        path = cache.path_for(key)
        with pytest.warns(RuntimeWarning, match="quarantined") as caught:
            assert cache.get(key, app.name, cfg) is None
        runtime = [w for w in caught
                   if issubclass(w.category, RuntimeWarning)]
        assert len(runtime) == 1  # exactly one warning per broken entry
        assert cache.stats()["quarantined"] == 1
        assert cache.stats()["errors"] == 1
        assert not path.exists()
        kept = list(cache.quarantine_dir().iterdir())
        assert [p.name for p in kept] == [path.name]  # evidence preserved
        # the slot is free again: recompute and re-put round-trips
        cache.put(key, result)
        loaded = cache.get(key, app.name, cfg)
        assert loaded is not None
        assert np.array_equal(loaded.npm_energy, result.npm_energy)

    def test_truncated_entry(self, app, cfg, stored):
        cache, key, result = stored
        path = cache.path_for(key)
        blob = path.read_bytes()
        path.write_bytes(blob[:len(blob) // 2])  # torn write
        self._assert_quarantined(cache, key, app, cfg, result)

    def test_zero_byte_entry(self, app, cfg, stored):
        cache, key, result = stored
        cache.path_for(key).write_bytes(b"")
        self._assert_quarantined(cache, key, app, cfg, result)

    def test_wrong_schema_entry(self, app, cfg, stored):
        cache, key, result = stored
        path = cache.path_for(key)
        # a well-formed archive from some other (future) layout version
        np.savez(path.open("wb"), format=np.asarray(99))
        self._assert_quarantined(cache, key, app, cfg, result)

    def test_unwritable_quarantine_falls_back_to_unlink(self, app, cfg,
                                                        stored,
                                                        monkeypatch):
        cache, key, result = stored
        path = cache.path_for(key)
        path.write_bytes(b"broken")
        import repro.experiments.evalcache as mod

        def deny(src, dst):
            raise OSError("read-only")

        monkeypatch.setattr(mod.os, "replace", deny)
        with pytest.warns(RuntimeWarning, match="deleted"):
            assert cache.get(key, app.name, cfg) is None
        assert cache.stats()["quarantined"] == 0
        assert not path.exists()
