"""Unit tests for offline-plan visualization."""

import pytest

from repro.errors import ConfigError
from repro.graph import Application
from repro.offline import build_plan, render_plan, render_section
from repro.workloads import application_with_load, figure3_graph
from tests.conftest import build_fork_graph


@pytest.fixture(scope="module")
def fig3_plan():
    app = application_with_load(figure3_graph(), 0.5, 2)
    return build_plan(app, 2)


class TestRenderSection:
    def test_root_section(self, fig3_plan):
        text = render_section(fig3_plan, fig3_plan.structure.root_id)
        assert "(root)" in text
        assert "LST" in text and "F=LST+c" in text
        assert "P0 |" in text and "P1 |" in text

    def test_sync_only_section(self, fig3_plan):
        # the loop skip sections contain only an AND node
        for sid, sp in fig3_plan.sections.items():
            if not sp.schedule.tasks:
                text = render_section(fig3_plan, sid)
                assert "synchronization only" in text
                return
        pytest.fail("expected at least one zero-task section")

    def test_unknown_section(self, fig3_plan):
        with pytest.raises(ConfigError, match="no section"):
            render_section(fig3_plan, 999)

    def test_lst_consistency_in_output(self, fig3_plan):
        sid = fig3_plan.structure.root_id
        sp = fig3_plan.sections[sid]
        text = render_section(fig3_plan, sid)
        for name, lst in sp.lst.items():
            assert f"{lst:>9.2f}" in text, name


class TestRenderPlan:
    def test_full_plan(self, fig3_plan):
        text = render_plan(fig3_plan)
        assert "offline plan" in text
        assert f"T_worst={fig3_plan.t_worst:.2f}" in text
        assert "PMP remaining-time profile" in text
        # every branching OR shows its per-path w/a values
        assert "O1 -> section" in text

    def test_section_subset(self, fig3_plan):
        text = render_plan(fig3_plan, sections=[0])
        headers = [ln for ln in text.splitlines()
                   if ln.startswith("section ")]
        assert len(headers) == 1 and headers[0].startswith("section 0")

    def test_plan_without_or_nodes(self):
        app = Application(build_fork_graph(), deadline=40)
        plan = build_plan(app, 2)
        text = render_plan(plan)
        assert "PMP remaining-time profile" not in text
