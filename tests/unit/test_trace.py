"""Unit tests for trace collection and Gantt rendering."""

import pytest

from repro.errors import ConfigError
from repro.sim.trace import render_gantt, task_table, trace_one_run
from repro.workloads import application_with_load, figure3_graph


@pytest.fixture(scope="module")
def traced():
    app = application_with_load(figure3_graph(), 0.5, 2)
    return trace_one_run(app, "GSS", power_model="transmeta", seed=42), app


class TestTraceOneRun:
    def test_trace_collected(self, traced):
        result, _ = traced
        assert result.trace
        assert result.scheme == "GSS"
        assert result.met_deadline

    def test_trace_records_consistent(self, traced):
        result, _ = traced
        for rec in result.trace:
            assert rec.finish > rec.start
            assert 0 < rec.speed <= 1.0
            assert rec.energy > 0
            assert rec.duration == pytest.approx(rec.finish - rec.start)

    def test_npm_trace(self):
        app = application_with_load(figure3_graph(), 0.5, 2)
        res = trace_one_run(app, "NPM", seed=1)
        assert all(r.speed == 1.0 for r in res.trace)

    def test_processor_non_overlap(self, traced):
        result, _ = traced
        by_proc = {}
        for rec in result.trace:
            by_proc.setdefault(rec.processor, []).append(rec)
        for recs in by_proc.values():
            recs.sort(key=lambda r: r.start)
            for a, b in zip(recs, recs[1:]):
                assert b.start >= a.finish - 1e-9


class TestRendering:
    def test_gantt_renders(self, traced):
        result, app = traced
        text = render_gantt(result, app.deadline)
        assert "scheme=GSS" in text
        assert "P0 |" in text and "P1 |" in text

    def test_gantt_requires_trace(self):
        app = application_with_load(figure3_graph(), 0.5, 2)
        from repro.experiments import RunConfig, build_plans
        from repro.core import get_policy
        from repro.power import NO_OVERHEAD, transmeta_model
        from repro.sim import sample_realization, simulate
        import numpy as np
        power = transmeta_model()
        _, plan = build_plans(app, RunConfig(n_runs=1), power)
        rl = sample_realization(plan.structure, np.random.default_rng(0))
        run = get_policy("NPM").start_run(plan, power, NO_OVERHEAD, rl)
        res = simulate(plan, run, power, NO_OVERHEAD, rl)  # no trace
        with pytest.raises(ConfigError, match="no trace"):
            render_gantt(res)

    def test_task_table_lists_every_task(self, traced):
        result, _ = traced
        table = task_table(result)
        for rec in result.trace:
            assert rec.name in table
