"""Unit tests for shared data types and the error hierarchy."""

import pytest

from repro.errors import (
    ConfigError,
    DeadlineMissError,
    GraphError,
    InfeasibleError,
    PowerModelError,
    ReproError,
    SimulationError,
    ValidationError,
)
from repro.types import (
    EnergyBreakdown,
    PathStats,
    ScheduledTask,
    SimResult,
    TaskRecord,
)


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (GraphError, ValidationError, InfeasibleError,
                    PowerModelError, SimulationError, DeadlineMissError,
                    ConfigError):
            assert issubclass(exc, ReproError)

    def test_validation_is_graph_error(self):
        assert issubclass(ValidationError, GraphError)

    def test_deadline_miss_is_simulation_error(self):
        assert issubclass(DeadlineMissError, SimulationError)

    def test_infeasible_message(self):
        e = InfeasibleError(30.0, 25.0, detail="m=2")
        assert "30" in str(e) and "25" in str(e) and "m=2" in str(e)
        assert e.worst_case == 30.0 and e.deadline == 25.0

    def test_deadline_miss_message(self):
        e = DeadlineMissError(10.5, 10.0, scheme="GSS")
        assert "GSS" in str(e)
        assert e.finish_time == 10.5


class TestEnergyBreakdown:
    def test_total(self):
        e = EnergyBreakdown(busy=2.0, idle=1.0, overhead=0.5)
        assert e.total == pytest.approx(3.5)

    def test_iadd(self):
        a = EnergyBreakdown(busy=1, idle=1, overhead=1)
        a += EnergyBreakdown(busy=2, idle=3, overhead=4)
        assert (a.busy, a.idle, a.overhead) == (3, 4, 5)


class TestPathStats:
    def test_valid(self):
        s = PathStats(worst=10, average=5)
        assert s.worst == 10 and s.average == 5

    def test_average_above_worst_rejected(self):
        with pytest.raises(ValueError, match="exceeds worst"):
            PathStats(worst=5, average=6)

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            PathStats(worst=-1, average=0)

    def test_zero_allowed(self):
        s = PathStats(worst=0, average=0)
        assert s.worst == 0


class TestRecords:
    def test_task_record_duration(self):
        r = TaskRecord(name="A", processor=0, start=1.0, finish=3.5,
                       speed=0.5, actual_cycles=1.25, energy=0.1)
        assert r.duration == pytest.approx(2.5)

    def test_scheduled_task_duration(self):
        s = ScheduledTask(name="A", processor=1, start=2, finish=7,
                          order=0)
        assert s.duration == 5

    def test_sim_result_met_deadline(self):
        e = EnergyBreakdown()
        ok = SimResult(scheme="X", finish_time=9.999999, deadline=10,
                       energy=e, n_speed_changes=0, n_tasks_run=1)
        late = SimResult(scheme="X", finish_time=10.1, deadline=10,
                         energy=e, n_speed_changes=0, n_tasks_run=1)
        assert ok.met_deadline and not late.met_deadline

    def test_sim_result_total_energy(self):
        e = EnergyBreakdown(busy=1, idle=2, overhead=3)
        r = SimResult(scheme="X", finish_time=1, deadline=10, energy=e,
                      n_speed_changes=0, n_tasks_run=0)
        assert r.total_energy == 6
