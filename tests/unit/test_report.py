"""Unit tests for series rendering."""

import pytest

from repro.experiments import render_series, render_speed_changes, series_to_csv
from repro.types import ExperimentPoint, SeriesResult


@pytest.fixture
def series():
    s = SeriesResult(name="demo", x_label="load",
                     meta={"app": "atr", "n_runs": 10})
    for x in (0.1, 0.2):
        for scheme, mean in (("SPM", 0.8), ("GSS", 0.5)):
            s.points.append(ExperimentPoint(
                x=x, scheme=scheme, mean=mean + x, std=0.01, n_runs=10,
                ci95=0.006))
    s.meta["speed_changes"] = {0.1: {"SPM": 2.0, "GSS": 4.5},
                               0.2: {"SPM": 2.0, "GSS": 5.5}}
    return s


class TestSeriesResult:
    def test_schemes_in_insertion_order(self, series):
        assert series.schemes() == ["SPM", "GSS"]

    def test_xs(self, series):
        assert series.xs() == [0.1, 0.2]

    def test_get(self, series):
        p = series.get(0.2, "GSS")
        assert p is not None and p.mean == pytest.approx(0.7)
        assert series.get(0.3, "GSS") is None
        assert series.get(0.1, "ZZZ") is None


class TestRendering:
    def test_render_contains_all_cells(self, series):
        text = render_series(series)
        assert "demo" in text and "load" in text
        assert "SPM" in text and "GSS" in text
        assert "0.900" in text   # SPM at 0.1
        assert "0.700" in text   # GSS at 0.2

    def test_render_with_ci(self, series):
        text = render_series(series, with_ci=True)
        assert "±0.006" in text

    def test_render_subset_of_schemes(self, series):
        text = render_series(series, schemes=["GSS"])
        assert "GSS" in text and "SPM" not in text

    def test_render_missing_cell_dash(self, series):
        text = render_series(series, schemes=["GSS", "XX"])
        assert "-" in text

    def test_speed_changes_table(self, series):
        text = render_speed_changes(series)
        assert "speed changes" in text
        assert "4.5" in text and "5.5" in text

    def test_speed_changes_missing(self):
        s = SeriesResult(name="empty", x_label="x")
        assert "no speed-change data" in render_speed_changes(s)

    def test_csv(self, series):
        csv = series_to_csv(series)
        lines = csv.strip().splitlines()
        assert lines[0] == "x,scheme,mean,std,ci95,n_runs"
        assert len(lines) == 1 + 4
        assert "0.1,SPM," in csv
