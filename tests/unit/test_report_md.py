"""Unit tests for the markdown report generator."""

import pytest

from repro.experiments.report_md import generate_report, write_report


class TestGenerateReport:
    @pytest.fixture(scope="class")
    def report(self):
        return generate_report(n_runs=4, seed=1, figures=["fig6"])

    def test_header_and_tables(self, report):
        assert report.startswith("# Measured results")
        assert "Table 1" in report and "Table 2" in report

    def test_requested_figures_only(self, report):
        assert "Figure 6" in report
        assert "Figure 4" not in report and "Figure 5" not in report

    def test_markdown_tables_well_formed(self, report):
        lines = [ln for ln in report.splitlines()
                 if ln.startswith("| alpha |")]
        assert lines, "figure table header missing"
        header_cols = lines[0].count("|")
        assert header_cols >= 6  # alpha + five schemes

    def test_switch_table_included(self, report):
        assert "switches per run" in report

    def test_write_report(self, tmp_path):
        path = tmp_path / "out.md"
        write_report(str(path), n_runs=3, figures=["fig6"])
        assert path.read_text().startswith("# Measured results")
