"""Unit tests for graph transformations."""

import random

import pytest

from repro.errors import ConfigError
from repro.graph import (
    GraphBuilder,
    concatenate,
    map_task_stats,
    random_graph,
    relabel,
    scale_times,
    total_probability,
    validate_graph,
    with_alpha,
)
from repro.types import TaskStats
from tests.conftest import build_or_graph


class TestWithAlpha:
    def test_sets_acet(self):
        g = with_alpha(build_or_graph(), 0.25)
        for node in g.computation_nodes():
            assert node.acet == pytest.approx(0.25 * node.wcet)

    def test_preserves_structure(self):
        base = build_or_graph()
        g = with_alpha(base, 0.5)
        assert set(g.edges()) == set(base.edges())
        assert g.branch_probabilities("O1") == \
            base.branch_probabilities("O1")
        validate_graph(g)

    def test_works_on_random_graphs(self):
        base = random_graph(random.Random(4))
        g = with_alpha(base, 0.3)
        st = validate_graph(g)
        assert total_probability(st) == pytest.approx(1.0)

    def test_invalid_alpha(self):
        with pytest.raises(ConfigError):
            with_alpha(build_or_graph(), 0.0)
        with pytest.raises(ConfigError):
            with_alpha(build_or_graph(), 1.0001)

    def test_name_derivation(self):
        assert with_alpha(build_or_graph(), 0.5).name == "orapp@a0.5"
        assert with_alpha(build_or_graph(), 0.5, name="x").name == "x"


class TestScaleTimes:
    def test_scales_both(self):
        base = build_or_graph()
        g = scale_times(base, 10.0)
        for node in base.computation_nodes():
            scaled = g.node(node.name)
            assert scaled.wcet == pytest.approx(node.wcet * 10)
            assert scaled.acet == pytest.approx(node.acet * 10)

    def test_invalid_factor(self):
        with pytest.raises(ConfigError):
            scale_times(build_or_graph(), 0.0)

    def test_alpha_invariant(self):
        base = build_or_graph()
        g = scale_times(base, 3.5)
        for node in base.computation_nodes():
            assert g.node(node.name).stats.alpha == pytest.approx(
                node.stats.alpha)


class TestRelabel:
    def test_prefixes_everything(self):
        g = relabel(build_or_graph(), "x.")
        assert "x.A" in g and "x.O1" in g
        assert ("x.A", "x.O1") in g.edges()
        assert g.branch_probabilities("x.O1") == {"x.B": 0.3,
                                                  "x.C": 0.7}

    def test_empty_prefix_rejected(self):
        with pytest.raises(ConfigError):
            relabel(build_or_graph(), "")


class TestConcatenate:
    def test_serial_composition(self):
        g = concatenate(build_or_graph(), build_or_graph())
        st = validate_graph(g)
        # both OR structures survive; total probability still 1
        assert total_probability(st) == pytest.approx(1.0)
        assert "a.A" in g and "b.A" in g
        # the handoff joins a's sink to b's root
        assert ("a.D", "a.__handoff") in g.edges()
        assert ("a.__handoff", "b.A") in g.edges()

    def test_worst_case_adds_up(self):
        from repro.workloads import worst_case_length
        base = build_or_graph()
        double = concatenate(base, base)
        assert worst_case_length(double, 2) == pytest.approx(
            2 * worst_case_length(base, 2))

    def test_rejects_or_terminated_first(self):
        b = GraphBuilder("endor")
        b.task("A", 1, 1)
        b.or_node("O", after=["A"])
        g = b.graph  # ends at an OR node (unvalidated on purpose)
        with pytest.raises(ConfigError, match="ends at an OR"):
            concatenate(g, build_or_graph())


class TestMapTaskStats:
    def test_custom_mapping(self):
        g = map_task_stats(
            build_or_graph(),
            lambda n, s: TaskStats(wcet=s.wcet + 1, acet=s.acet))
        assert g.node("A").wcet == 9
        assert g.node("A").acet == 5

    def test_sync_nodes_untouched(self):
        g = map_task_stats(build_or_graph(),
                           lambda n, s: TaskStats(s.wcet * 2, s.acet))
        assert g.node("O1").is_or and g.node("O1").stats is None
