"""Unit tests for list-scheduling heuristics."""

import numpy as np
import pytest

from repro.core import get_policy
from repro.errors import ConfigError
from repro.graph import Application, GraphBuilder, validate_graph
from repro.offline import (
    DEFAULT_HEURISTIC,
    available_heuristics,
    build_plan,
    get_heuristic,
    list_schedule,
    wcet_duration,
)
from repro.power import NO_OVERHEAD, transmeta_model
from repro.sim import sample_realization, simulate


def wide_section():
    """root feeding three chains of different lengths."""
    b = GraphBuilder("wide")
    b.task("root", 1, 1)
    b.task("a1", 2, 1, after=["root"])
    b.task("a2", 9, 5, after=["a1"])     # long chain (total 11)
    b.task("b1", 6, 3, after=["root"])   # medium single task
    b.task("c1", 3, 2, after=["root"])   # short single task
    return b.build_graph()


def _schedule(heuristic):
    g = wide_section()
    st = validate_graph(g)
    sub = st.subgraph(st.root_id)
    prio = get_heuristic(heuristic)(sub)
    return list_schedule(sub, 2, wcet_duration(sub), priority=prio)


class TestRegistry:
    def test_available(self):
        names = available_heuristics()
        assert {"ltf", "stf", "fifo", "cpf"} <= set(names)
        assert DEFAULT_HEURISTIC == "ltf"

    def test_case_insensitive(self):
        assert get_heuristic("LTF") is get_heuristic("ltf")

    def test_unknown_rejected(self):
        with pytest.raises(ConfigError, match="unknown heuristic"):
            get_heuristic("edf")


class TestPriorities:
    def test_ltf_runs_longest_first(self):
        sched = _schedule("ltf")
        # at t=1: b1(6) and c1(3) and a1(2) ready; LTF picks b1, then c1
        assert sched.start("b1") == 1
        assert sched.start("c1") == 1

    def test_stf_runs_shortest_first(self):
        sched = _schedule("stf")
        assert sched.start("a1") == 1
        assert sched.start("c1") == 1
        assert sched.start("b1") > 1

    def test_cpf_prefers_long_chain(self):
        sched = _schedule("cpf")
        # a1 heads an 11-unit chain: critical-path-first starts it at 1
        assert sched.start("a1") == 1

    def test_cpf_shortens_makespan_here(self):
        # CPF: a1,b1 at t=1; a2 at 3; c1 at 3... finish = 3+9=12
        # LTF: b1,c1 at 1; a1 at 4; a2 at 6; finish = 15
        assert _schedule("cpf").length < _schedule("ltf").length

    def test_fifo_uses_insertion_order(self):
        sched = _schedule("fifo")
        assert sched.start("a1") == 1  # first inserted among ready


class TestPlanIntegration:
    @pytest.mark.parametrize("heuristic", ["ltf", "stf", "fifo", "cpf"])
    def test_deadline_guarantee_any_heuristic(self, heuristic):
        """The paper: the online phase is correct under any heuristic."""
        g = wide_section()
        app = Application(g, deadline=30)
        plan = build_plan(app, 2, heuristic=heuristic)
        power = transmeta_model()
        rng = np.random.default_rng(0)
        for _ in range(20):
            rl = sample_realization(plan.structure, rng)
            for scheme in ("GSS", "AS"):
                run = get_policy(scheme).start_run(plan, power,
                                                   NO_OVERHEAD,
                                                   realization=rl)
                res = simulate(plan, run, power, NO_OVERHEAD, rl)
                assert res.met_deadline

    def test_t_worst_depends_on_heuristic(self):
        g = wide_section()
        app = Application(g, deadline=100)
        t_ltf = build_plan(app, 2, heuristic="ltf").t_worst
        t_cpf = build_plan(app, 2, heuristic="cpf").t_worst
        assert t_cpf < t_ltf  # CPF wins on this adversarial shape

    def test_infeasible_under_one_heuristic_only(self):
        from repro.errors import InfeasibleError
        g = wide_section()
        app = Application(g, deadline=13)  # CPF fits (12), LTF not (15)
        build_plan(app, 2, heuristic="cpf")
        with pytest.raises(InfeasibleError):
            build_plan(app, 2, heuristic="ltf")
