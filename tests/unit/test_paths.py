"""Unit tests for execution-path enumeration."""

import pytest

from repro.graph import (
    enumerate_paths,
    expected_total_work,
    iter_paths,
    path_acet_sum,
    path_wcet_sum,
    total_probability,
    validate_graph,
)
from tests.conftest import build_fork_graph, build_nested_or_graph, build_or_graph


class TestEnumeration:
    def test_and_only_graph_has_single_path(self):
        st = validate_graph(build_fork_graph())
        paths = enumerate_paths(st)
        assert len(paths) == 1
        assert paths[0].probability == 1.0
        assert paths[0].sections == (st.root_id,)

    def test_single_or_two_paths(self):
        st = validate_graph(build_or_graph())
        paths = enumerate_paths(st)
        assert len(paths) == 2
        assert sorted(p.probability for p in paths) == [0.3, 0.7]
        for p in paths:
            assert len(p.sections) == 3  # root, branch, tail

    def test_nested_or_four_paths(self):
        st = validate_graph(build_nested_or_graph())
        paths = enumerate_paths(st)
        assert len(paths) == 4
        probs = sorted(round(p.probability, 10) for p in paths)
        assert probs == [0.2, 0.2, 0.3, 0.3]

    def test_total_probability_is_one(self):
        for g in (build_fork_graph(), build_or_graph(),
                  build_nested_or_graph()):
            st = validate_graph(g)
            assert total_probability(st) == pytest.approx(1.0)

    def test_path_keys_are_unique(self):
        st = validate_graph(build_nested_or_graph())
        keys = [p.key() for p in iter_paths(st)]
        assert len(set(keys)) == len(keys)

    def test_choice_map_records_or_decisions(self):
        st = validate_graph(build_or_graph())
        for p in iter_paths(st):
            cm = p.choice_map
            assert "O1" in cm and "O2" in cm
            assert cm["O1"] in p.sections

    def test_max_paths_guard(self):
        st = validate_graph(build_nested_or_graph())
        with pytest.raises(ValueError, match="execution paths"):
            enumerate_paths(st, max_paths=2)


class TestPathSums:
    def test_wcet_and_acet_sums(self):
        st = validate_graph(build_or_graph())
        by_prob = {round(p.probability, 2): p for p in iter_paths(st)}
        # short path: A(8) + C(5) + D(5); long: A(8) + B(8) + D(5)
        assert path_wcet_sum(st, by_prob[0.7]) == 18
        assert path_wcet_sum(st, by_prob[0.3]) == 21
        assert path_acet_sum(st, by_prob[0.7]) == 5 + 3 + 3
        assert path_acet_sum(st, by_prob[0.3]) == 5 + 6 + 3

    def test_expected_total_work(self):
        st = validate_graph(build_or_graph())
        expected_acet = 0.3 * (5 + 6 + 3) + 0.7 * (5 + 3 + 3)
        assert expected_total_work(st) == pytest.approx(expected_acet)
        expected_wcet = 0.3 * 21 + 0.7 * 18
        assert expected_total_work(st, use_acet=False) == pytest.approx(
            expected_wcet)
