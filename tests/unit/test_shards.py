"""Shard planning and resolution edges for the sharded fused sweep.

The bit-identity of sharded execution lives in the property tier
(tests/property/test_fused_equivalence.py) and the chaos tier; these
tests pin the small deterministic parts — the run-range planner, the
memory estimate, shard-count resolution (explicit / config / session
default / auto), config validation, the shm result-block round-trip,
and the cache-key contract that sharding is an execution knob.
"""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.experiments import RunConfig, evaluation_key
from repro.experiments import fused as fused_mod
from repro.experiments.fused import (
    _resolve_shard_count,
    default_shards,
)
from repro.sim.sweepc import FUSED_MEM_FACTOR, fused_bytes_estimate, plan_shards
from repro.workloads import application_with_load, figure3_graph


class TestPlanShards:
    def test_non_divisible_runs_spread_the_remainder_first(self):
        # 40 runs over 3 shards: 40 % 3 = 1 extra run on shard 0
        assert plan_shards(40, 3) == [(0, 14), (14, 27), (27, 40)]

    def test_more_shards_than_runs_clamps_to_one_run_each(self):
        assert plan_shards(5, 9) == [(i, i + 1) for i in range(5)]

    def test_single_shard_is_the_whole_axis(self):
        assert plan_shards(40, 1) == [(0, 40)]

    def test_zero_or_negative_request_clamps_to_one(self):
        assert plan_shards(10, 0) == [(0, 10)]
        assert plan_shards(10, -4) == [(0, 10)]

    @pytest.mark.parametrize("n_runs,shards", [
        (1, 1), (2, 3), (7, 2), (40, 3), (100, 7), (1000, 16),
    ])
    def test_ranges_tile_the_run_axis_exactly(self, n_runs, shards):
        ranges = plan_shards(n_runs, shards)
        assert ranges[0][0] == 0 and ranges[-1][1] == n_runs
        for (_, hi), (lo, _) in zip(ranges, ranges[1:]):
            assert hi == lo  # contiguous, ordered, no gaps or overlaps
        sizes = [hi - lo for lo, hi in ranges]
        assert min(sizes) >= 1 and max(sizes) - min(sizes) <= 1

    def test_empty_run_axis_rejected(self):
        with pytest.raises(ValueError, match="n_runs"):
            plan_shards(0, 2)


class _StubProgram:
    """Duck-typed CompiledPlan/StackedProgram for the estimator."""

    def __init__(self, n_cols=4, n_slots=6):
        self.comp_names = [f"c{i}" for i in range(n_cols)]
        self.n_slots = n_slots


class TestBytesEstimate:
    def test_scales_linearly_with_the_run_axis(self):
        prog = _StubProgram()
        assert fused_bytes_estimate(prog, 200) == \
            2 * fused_bytes_estimate(prog, 100)
        assert fused_bytes_estimate(prog, 0) == 0

    def test_counts_columns_and_slots(self):
        per_run = fused_bytes_estimate(_StubProgram(n_cols=4, n_slots=6), 1)
        assert per_run == int(8.0 * (4 + 6) * FUSED_MEM_FACTOR)


class _StubBuild:
    """Just enough _FusedBuild surface for _resolve_shard_count."""

    def __init__(self, n_cols=4, n_slots=6):
        self.stacked_static = _StubProgram(n_cols, n_slots)


class TestResolveShardCount:
    def _cfgs(self, n=3, **kw):
        return [RunConfig(schemes=("GSS",), n_runs=40, seed=1, **kw)] * n

    def test_unset_everywhere_means_monolithic(self, monkeypatch):
        monkeypatch.setattr(fused_mod, "DEFAULT_SHARDS", None)
        assert _resolve_shard_count(_StubBuild(), self._cfgs(), None) == 1

    def test_explicit_argument_outranks_the_config(self):
        cfgs = self._cfgs(shards=2)
        assert _resolve_shard_count(_StubBuild(), cfgs, 5) == 5
        assert _resolve_shard_count(_StubBuild(), cfgs, None) == 2

    def test_session_default_applies_last(self, monkeypatch):
        monkeypatch.setattr(fused_mod, "DEFAULT_SHARDS", "4")
        assert _resolve_shard_count(_StubBuild(), self._cfgs(), None) == 4

    def test_clamped_to_the_run_count(self):
        assert _resolve_shard_count(_StubBuild(), self._cfgs(), 999) == 40

    def test_mixed_run_counts_refuse_to_shard(self):
        cfgs = [RunConfig(schemes=("GSS",), n_runs=40, seed=1),
                RunConfig(schemes=("GSS",), n_runs=30, seed=1)]
        assert _resolve_shard_count(_StubBuild(), cfgs, 3) == 1

    def test_auto_follows_effective_cores(self, monkeypatch):
        monkeypatch.setattr(fused_mod, "effective_cores", lambda: 6)
        assert _resolve_shard_count(_StubBuild(), self._cfgs(), 0) == 6

    def test_auto_raised_by_the_memory_budget(self, monkeypatch):
        monkeypatch.setattr(fused_mod, "effective_cores", lambda: 2)
        build = _StubBuild()
        cfgs = self._cfgs(shard_mem_mb=1)
        est = fused_bytes_estimate(build.stacked_static, 3 * 40)
        need = -(-est // (1 * 1024 * 1024))
        expect = max(1, min(max(2, need), 40))
        assert _resolve_shard_count(build, cfgs, 0) == expect

    def test_auto_budget_never_exceeds_the_run_count(self, monkeypatch):
        monkeypatch.setattr(fused_mod, "effective_cores", lambda: 1)
        # a 1-byte budget demands more shards than there are runs
        big = _StubBuild(n_cols=64, n_slots=64)
        cfgs = self._cfgs(shard_mem_mb=1)
        for cfg in cfgs:
            assert cfg.n_runs == 40
        assert _resolve_shard_count(big, cfgs, 0) <= 40


class TestDefaultShards:
    def test_unset_and_empty_mean_no_request(self, monkeypatch):
        monkeypatch.setattr(fused_mod, "DEFAULT_SHARDS", None)
        assert default_shards() is None
        monkeypatch.setattr(fused_mod, "DEFAULT_SHARDS", "")
        assert default_shards() is None

    def test_parses_integers(self, monkeypatch):
        monkeypatch.setattr(fused_mod, "DEFAULT_SHARDS", "3")
        assert default_shards() == 3
        monkeypatch.setattr(fused_mod, "DEFAULT_SHARDS", "0")
        assert default_shards() == 0

    @pytest.mark.parametrize("bad", ["three", "1.5", "-2"])
    def test_rejects_malformed_values(self, monkeypatch, bad):
        monkeypatch.setattr(fused_mod, "DEFAULT_SHARDS", bad)
        with pytest.raises(ConfigError, match="REPRO_SHARDS"):
            default_shards()


class TestRunConfigValidation:
    def test_negative_shards_rejected(self):
        with pytest.raises(ConfigError, match="shards"):
            RunConfig(shards=-1)

    def test_negative_budget_rejected(self):
        with pytest.raises(ConfigError, match="shard_mem_mb"):
            RunConfig(shard_mem_mb=-1)

    def test_zero_is_auto_not_an_error(self):
        cfg = RunConfig(shards=0, shard_mem_mb=0)
        assert cfg.shards == 0 and cfg.shard_mem_mb == 0


class TestKeyInsulation:
    """Sharding is pure execution: it must never split the cache."""

    @pytest.mark.parametrize("change", [
        {"shards": 4},
        {"shards": 0},
        {"shard_mem_mb": 64},
        {"shards": 3, "shard_mem_mb": 128},
    ])
    def test_shard_knobs_do_not_change_evaluation_key(self, change):
        app = application_with_load(figure3_graph(), 0.5, 2)
        cfg = RunConfig(schemes=("GSS",), n_runs=20, seed=3)
        assert evaluation_key(app, cfg) == \
            evaluation_key(app, cfg.with_(**change))


def _identity(x):
    return x


class TestWorkerKernelStats:
    """--cache-stats aggregation: probe every pool worker exactly once."""

    def test_no_live_pool_returns_nothing(self):
        from repro.experiments import ExecutionContext
        with ExecutionContext(n_jobs=2) as ctx:
            assert ctx.worker_kernel_stats() == []

    def test_each_live_worker_reports_once(self):
        from repro.experiments import ExecutionContext
        with ExecutionContext(n_jobs=2) as ctx:
            assert ctx.map(_identity, [(i,) for i in range(4)]) == \
                [0, 1, 2, 3]  # spins the persistent pool up
            stats = ctx.worker_kernel_stats()
        assert len(stats) == 2  # deduplicated by worker pid
        for counters in stats:
            assert set(counters) >= {"program_cache", "tape_cache",
                                     "stacked_cache"}
            for label in ("program_cache", "tape_cache", "stacked_cache"):
                assert counters[label]["hits"] >= 0
                assert counters[label]["misses"] >= 0


class TestShardBlockTransport:
    def test_matrix_round_trips_exactly(self):
        from repro.experiments.engine import publish_shard_block
        rng = np.random.default_rng(7)
        matrix = rng.normal(size=(9, 120))
        block = publish_shard_block(matrix)
        if block is None:
            pytest.skip("shared memory unavailable on this platform")
        out = block.take()
        assert np.array_equal(out, matrix)
        assert out.dtype == matrix.dtype

    def test_empty_matrix_is_not_published(self):
        from repro.experiments.engine import publish_shard_block
        assert publish_shard_block(np.empty((0, 0))) is None

    def test_take_after_unlink_raises_transport_error(self):
        from repro.errors import TransportError
        from repro.experiments.engine import publish_shard_block
        block = publish_shard_block(np.ones((2, 3)))
        if block is None:
            pytest.skip("shared memory unavailable on this platform")
        block.take()  # consumes and unlinks the segment
        with pytest.raises(TransportError):
            block.take()
