"""Unit tests for the online simulation engine."""

import numpy as np
import pytest

from repro.core import get_policy
from repro.errors import DeadlineMissError, SimulationError
from repro.graph import Application
from repro.offline import build_plan
from repro.power import NO_OVERHEAD, PAPER_OVERHEAD
from repro.sim import Realization, sample_realization, simulate, worst_case_realization
from repro.sim.engine import simulate as engine_simulate
from tests.conftest import build_chain_graph, build_fork_graph, build_or_graph


def _run(graph, deadline, scheme, power, overhead, realization, m=2,
         **kwargs):
    app = Application(graph, deadline=deadline)
    policy = get_policy(scheme)
    reserve = overhead.per_task_reserve(power) if policy.requires_reserve \
        else 0.0
    plan = build_plan(app, m, reserve=reserve)
    run = policy.start_run(plan, power, overhead, realization=realization)
    return simulate(plan, run, power, overhead, realization, **kwargs)


class TestNPMBehaviour:
    def test_npm_runs_at_max_speed(self, xscale):
        g = build_chain_graph(3, wcet=10, acet=5)
        st_rl = worst_case_realization(
            build_plan(Application(g, deadline=100), 1).structure)
        res = _run(g, 100, "NPM", xscale, NO_OVERHEAD, st_rl, m=1,
                   collect_trace=True)
        assert res.finish_time == pytest.approx(30)
        assert all(rec.speed == 1.0 for rec in res.trace)
        assert res.n_speed_changes == 0

    def test_npm_energy_breakdown(self, xscale):
        g = build_chain_graph(2, wcet=10, acet=10)
        rl = Realization(actuals={"T0": 10, "T1": 10}, choices={})
        res = _run(g, 100, "NPM", xscale, NO_OVERHEAD, rl, m=1)
        assert res.energy.busy == pytest.approx(20 * xscale.power(1.0))
        assert res.energy.idle == pytest.approx((100 - 20) * 0.05)
        assert res.energy.overhead == 0.0

    def test_idle_counts_all_processors(self, xscale):
        g = build_chain_graph(1, wcet=10, acet=10)
        rl = Realization(actuals={"T0": 10}, choices={})
        res = _run(g, 50, "NPM", xscale, NO_OVERHEAD, rl, m=3)
        # 3 processors * 50 time units - 10 busy
        assert res.energy.idle == pytest.approx((150 - 10) * 0.05)


class TestDispatchProtocol:
    def test_canonical_order_enforced(self, xscale):
        # Y is ready before X but canonically ordered after it: the
        # engine must not start Y before X is dispatched
        from repro.graph import GraphBuilder
        b = GraphBuilder("order")
        b.task("A", 10, 10)       # long head task
        b.task("X", 5, 5, after=["A"])
        b.task("Y", 1, 1, after=["A"])
        g = b.build_graph()
        rl = Realization(actuals={"A": 10, "X": 5, "Y": 1}, choices={})
        res = _run(g, 100, "NPM", xscale, NO_OVERHEAD, rl, m=2,
                   collect_trace=True)
        rec = {r.name: r for r in res.trace}
        assert rec["X"].start >= rec["A"].finish
        assert rec["Y"].start >= rec["X"].start

    def test_parallel_execution_on_two_processors(self, xscale):
        g = build_fork_graph()
        rl = Realization(actuals={"A": 8, "B": 5, "C": 4, "D": 5},
                         choices={})
        res = _run(g, 100, "NPM", xscale, NO_OVERHEAD, rl, m=2,
                   collect_trace=True)
        rec = {r.name: r for r in res.trace}
        assert rec["B"].processor != rec["C"].processor
        assert rec["B"].start == pytest.approx(rec["C"].start)
        assert res.finish_time == pytest.approx(18)

    def test_or_branch_follows_realization(self, xscale):
        g = build_or_graph()
        plan = build_plan(Application(g, deadline=100), 2)
        st = plan.structure
        for branch, expected in (("B", {"A", "B", "D"}),
                                 ("C", {"A", "C", "D"})):
            sid = st.section_of_node(branch).id
            rl = Realization(
                actuals={"A": 8, "B": 8, "C": 5, "D": 5},
                choices={"O1": sid})
            res = _run(g, 100, "NPM", xscale, NO_OVERHEAD, rl,
                       collect_trace=True)
            assert {r.name for r in res.trace} == expected

    def test_or_synchronization_waits_for_section(self, xscale):
        # the merge fires only when the whole section drained
        g = build_fork_graph()
        rl = Realization(actuals={"A": 8, "B": 5, "C": 1, "D": 5},
                         choices={})
        res = _run(g, 100, "NPM", xscale, NO_OVERHEAD, rl, m=2,
                   collect_trace=True)
        rec = {r.name: r for r in res.trace}
        # D is after the AND join: must wait for B (the longer branch)
        assert rec["D"].start >= rec["B"].finish

    def test_missing_or_choice_raises(self, xscale):
        g = build_or_graph()
        rl = Realization(actuals={"A": 8, "B": 8, "C": 5, "D": 5},
                         choices={})
        with pytest.raises(SimulationError, match="no branch choice"):
            _run(g, 100, "NPM", xscale, NO_OVERHEAD, rl)

    def test_invalid_or_choice_raises(self, xscale):
        g = build_or_graph()
        rl = Realization(actuals={"A": 8, "B": 8, "C": 5, "D": 5},
                         choices={"O1": 999})
        with pytest.raises(SimulationError, match="not a successor"):
            _run(g, 100, "NPM", xscale, NO_OVERHEAD, rl)

    def test_actual_above_wcet_raises(self, xscale):
        g = build_chain_graph(1, wcet=10, acet=5)
        rl = Realization(actuals={"T0": 11}, choices={})
        with pytest.raises(SimulationError, match="exceeds WCET"):
            _run(g, 100, "NPM", xscale, NO_OVERHEAD, rl)


class TestDeadlines:
    def test_deadline_miss_raises(self, xscale):
        g = build_chain_graph(2, wcet=10, acet=10)
        rl = Realization(actuals={"T0": 10, "T1": 10}, choices={})
        app = Application(g, deadline=20)
        plan = build_plan(app, 1)
        policy = get_policy("SPM")
        # sabotage: hand SPM a plan whose deadline the speed cannot meet
        run = policy.start_run(plan, xscale, PAPER_OVERHEAD,
                               realization=rl)
        run.fixed_speed = 0.15  # way too slow
        with pytest.raises(DeadlineMissError):
            engine_simulate(plan, run, xscale, PAPER_OVERHEAD, rl)

    def test_check_deadline_false_returns_result(self, xscale):
        g = build_chain_graph(2, wcet=10, acet=10)
        rl = Realization(actuals={"T0": 10, "T1": 10}, choices={})
        app = Application(g, deadline=20)
        plan = build_plan(app, 1)
        policy = get_policy("SPM")
        run = policy.start_run(plan, xscale, PAPER_OVERHEAD,
                               realization=rl)
        run.fixed_speed = 0.15
        res = engine_simulate(plan, run, xscale, PAPER_OVERHEAD, rl,
                              check_deadline=False)
        assert not res.met_deadline


class TestGSSMechanics:
    def test_gss_exploits_static_slack(self, xscale):
        g = build_chain_graph(2, wcet=10, acet=10)
        rl = Realization(actuals={"T0": 10, "T1": 10}, choices={})
        res = _run(g, 100, "GSS", xscale, NO_OVERHEAD, rl, m=1,
                   collect_trace=True)
        assert all(rec.speed < 1.0 for rec in res.trace)
        assert res.met_deadline

    def test_gss_no_slack_runs_at_max(self, xscale):
        g = build_chain_graph(2, wcet=10, acet=10)
        rl = Realization(actuals={"T0": 10, "T1": 10}, choices={})
        res = _run(g, 20, "GSS", xscale, NO_OVERHEAD, rl, m=1,
                   collect_trace=True)
        assert all(rec.speed == 1.0 for rec in res.trace)
        assert res.finish_time == pytest.approx(20)

    def test_gss_speed_change_counted_once_per_level_change(self, xscale):
        g = build_chain_graph(3, wcet=10, acet=10)
        rl = Realization(actuals={"T0": 10, "T1": 10, "T2": 10},
                         choices={})
        res = _run(g, 60, "GSS", xscale, NO_OVERHEAD, rl, m=1,
                   collect_trace=True)
        # constant-work tasks with proportional slack: after the first
        # slowdown the level stays put
        changes = sum(rec.speed_changed for rec in res.trace)
        assert changes == res.n_speed_changes
        assert res.n_speed_changes <= 2

    def test_overheads_charged(self, xscale):
        g = build_chain_graph(2, wcet=10, acet=10)
        rl = Realization(actuals={"T0": 10, "T1": 10}, choices={})
        res_free = _run(g, 60, "GSS", xscale, NO_OVERHEAD, rl, m=1)
        res_paid = _run(g, 60, "GSS", xscale, PAPER_OVERHEAD, rl, m=1)
        assert res_paid.energy.overhead > 0
        assert res_free.energy.overhead == 0

    def test_gss_dynamic_slack_reclaimed(self, xscale):
        g = build_chain_graph(2, wcet=10, acet=2)
        # first task finishes very early: second inherits the slack
        rl = Realization(actuals={"T0": 2, "T1": 10}, choices={})
        res = _run(g, 25, "GSS", xscale, NO_OVERHEAD, rl, m=1,
                   collect_trace=True)
        rec = {r.name: r for r in res.trace}
        assert rec["T1"].speed < 1.0
        assert res.met_deadline
