"""Unit tests for experiment-result persistence."""

import pytest

from repro.errors import ConfigError
from repro.experiments import load_series, merge_series, save_series
from repro.experiments.persist import series_from_jsonable, series_to_jsonable
from repro.types import ExperimentPoint, SeriesResult, speed_change_items


def make_series(name="s", xs=(0.1, 0.2), schemes=("GSS", "SPM")):
    s = SeriesResult(name=name, x_label="load",
                     meta={"app": "atr", "n_runs": 10})
    for x in xs:
        for scheme in schemes:
            s.points.append(ExperimentPoint(
                x=x, scheme=scheme, mean=0.5 + x, std=0.01,
                n_runs=10, ci95=0.002))
    s.meta["speed_changes"] = [[x, {sc: 2.0 for sc in schemes}]
                               for x in xs]
    return s


class TestJsonable:
    def test_round_trip(self):
        s = make_series()
        s2 = series_from_jsonable(series_to_jsonable(s))
        assert s2.name == s.name and s2.x_label == s.x_label
        assert len(s2.points) == len(s.points)
        assert s2.get(0.2, "GSS").mean == pytest.approx(0.7)
        changes = dict(speed_change_items(s2.meta["speed_changes"]))
        assert changes[0.1]["GSS"] == 2.0

    def test_duplicate_x_survives_round_trip(self):
        # the old dict-keyed format silently overwrote duplicate x
        s = make_series(xs=(0.1,))
        s.meta["speed_changes"] = [[0.5, {"GSS": 1.0}], [0.5, {"GSS": 3.0}]]
        s2 = series_from_jsonable(series_to_jsonable(s))
        assert s2.meta["speed_changes"] == [[0.5, {"GSS": 1.0}],
                                            [0.5, {"GSS": 3.0}]]

    def test_legacy_dict_meta_still_serializes(self):
        # an old in-memory series (dict keyed by raw float) must persist
        # and read back as the aligned-list format
        s = make_series()
        s.meta["speed_changes"] = {0.2: {"GSS": 4.0}, 0.1: {"GSS": 2.0}}
        s2 = series_from_jsonable(series_to_jsonable(s))
        assert s2.meta["speed_changes"] == [[0.1, {"GSS": 2.0}],
                                            [0.2, {"GSS": 4.0}]]

    def test_legacy_stringified_dict_reads_back(self):
        # JSON files written before the list format stringified the keys
        d = series_to_jsonable(make_series(xs=(0.1,)))
        d["meta"]["speed_changes"] = {"0.2": {"GSS": 4.0},
                                      "0.1": {"GSS": 2.0}}
        s2 = series_from_jsonable(d)
        assert s2.meta["speed_changes"] == [[0.1, {"GSS": 2.0}],
                                            [0.2, {"GSS": 4.0}]]

    def test_version_check(self):
        d = series_to_jsonable(make_series())
        d["format_version"] = 99
        with pytest.raises(ConfigError, match="version"):
            series_from_jsonable(d)

    def test_malformed_rejected(self):
        with pytest.raises(ConfigError, match="malformed"):
            series_from_jsonable({"format_version": 1, "name": "x"})


class TestFiles:
    def test_save_load_bundle(self, tmp_path):
        path = tmp_path / "bundle.json"
        bundle = {"transmeta": make_series("a"),
                  "xscale": make_series("b")}
        save_series(bundle, path)
        loaded = load_series(path)
        assert set(loaded) == {"transmeta", "xscale"}
        assert loaded["xscale"].name == "b"

    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigError, match="no such"):
            load_series(tmp_path / "nope.json")

    def test_invalid_json(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text("{broken")
        with pytest.raises(ConfigError, match="invalid JSON"):
            load_series(p)

    def test_not_a_bundle(self, tmp_path):
        p = tmp_path / "list.json"
        p.write_text("[1, 2]")
        with pytest.raises(ConfigError, match="not a series bundle"):
            load_series(p)


class TestMerge:
    def test_merge_disjoint(self):
        a = make_series(xs=(0.1, 0.2))
        b = make_series(xs=(0.3,))
        merged = merge_series(a, b)
        assert merged.xs() == [0.1, 0.2, 0.3]
        assert [x for x, _ in merged.meta["speed_changes"]] == [0.1, 0.2,
                                                               0.3]

    def test_merge_overlap_rejected(self):
        with pytest.raises(ConfigError, match="overlap"):
            merge_series(make_series(xs=(0.1,)), make_series(xs=(0.1,)))

    def test_merge_axis_mismatch_rejected(self):
        b = make_series()
        b.x_label = "alpha"
        with pytest.raises(ConfigError, match="different axes"):
            merge_series(make_series(), b)

    def test_cli_save_round_trip(self, tmp_path, capsys):
        from repro.cli import main
        path = tmp_path / "fig6.json"
        assert main(["fig6", "--runs", "4", "--save", str(path)]) == 0
        loaded = load_series(path)
        assert set(loaded) == {"transmeta", "xscale"}
        assert loaded["transmeta"].x_label == "alpha"
