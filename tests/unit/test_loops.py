"""Unit tests for loop collapse and probabilistic expansion."""

import pytest

from repro.errors import GraphError
from repro.graph import (
    GraphBuilder,
    average_iterations,
    chain_body,
    enumerate_paths,
    expand_loop,
    loop_as_task_stats,
    simple_body,
    total_probability,
    validate_graph,
)


class TestCollapse:
    def test_loop_as_task_stats(self):
        s = loop_as_task_stats(body_wcet=4, body_acet=2,
                               max_iterations=4, avg_iterations=2.05)
        assert s.wcet == 16
        assert s.acet == pytest.approx(4.1)

    def test_invalid_iterations(self):
        with pytest.raises(GraphError):
            loop_as_task_stats(4, 2, 0, 1)
        with pytest.raises(GraphError):
            loop_as_task_stats(4, 2, 3, 5)

    def test_average_iterations(self):
        probs = {1: 0.5, 2: 0.2, 3: 0.05, 4: 0.25}
        assert average_iterations(probs) == pytest.approx(2.05)


def _build_with_loop(iter_probs):
    b = GraphBuilder("loop")
    b.task("pre", 3, 2)
    exit_node = expand_loop(b, "L", iter_probs, simple_body("L", 4, 2),
                            after=["pre"])
    b.task("post", 2, 1, after=[exit_node])
    return b.build_graph()


class TestExpansion:
    def test_deterministic_loop_unrolls_inline(self):
        g = _build_with_loop({3: 1.0})
        st = validate_graph(g)
        assert len(st.sections) == 1  # no OR nodes at all
        assert {"L#i1", "L#i2", "L#i3"} <= set(g.node_names)
        assert g.successors("L#i1") == ["L#i2"]

    def test_probabilistic_loop_paths_and_probabilities(self):
        probs = {1: 0.5, 2: 0.2, 3: 0.05, 4: 0.25}
        g = _build_with_loop(probs)
        st = validate_graph(g)
        assert total_probability(st) == pytest.approx(1.0)
        paths = enumerate_paths(st)
        # one execution path per possible iteration count
        assert len(paths) == 4
        by_iters = {}
        for p in paths:
            n_bodies = sum(
                1 for sid in p.sections
                for n in st.section(sid).nodes if n.startswith("L#i"))
            by_iters[n_bodies] = p.probability
        for k, prob in probs.items():
            assert by_iters[k] == pytest.approx(prob)

    def test_zero_probability_iteration_chains_directly(self):
        # stopping after 3 is impossible: body 3 chains into body 4
        probs = {2: 0.6, 4: 0.4}
        g = _build_with_loop(probs)
        st = validate_graph(g)
        paths = enumerate_paths(st)
        assert len(paths) == 2
        assert "L#or3" not in g.node_names
        assert g.successors("L#i3") == ["L#i4"]

    def test_chain_body(self):
        b = GraphBuilder("cb")
        b.task("pre", 1, 1)
        exit_node = expand_loop(
            b, "L", {2: 1.0},
            chain_body("L", [("x", 2, 1), ("y", 3, 2)]), after=["pre"])
        g = b.build_graph()
        assert g.successors("L#x#i1") == ["L#y#i1"]
        assert g.successors("L#y#i1") == ["L#x#i2"]
        assert exit_node == "L#y#i2"

    def test_expected_iterations_preserved(self):
        probs = {1: 0.5, 2: 0.2, 3: 0.05, 4: 0.25}
        g = _build_with_loop(probs)
        st = validate_graph(g)
        from repro.graph import expected_total_work
        # expected work = pre + E[iters]*body + post (ACET)
        expected = 2 + average_iterations(probs) * 2 + 1
        assert expected_total_work(st) == pytest.approx(expected)


class TestExpansionErrors:
    def test_empty_probs(self):
        b = GraphBuilder()
        with pytest.raises(GraphError, match="empty"):
            expand_loop(b, "L", {}, simple_body("L", 1, 1))

    def test_zero_iteration_rejected(self):
        b = GraphBuilder()
        with pytest.raises(GraphError, match=">= 1"):
            expand_loop(b, "L", {0: 0.5, 1: 0.5}, simple_body("L", 1, 1))

    def test_probs_must_sum_to_one(self):
        b = GraphBuilder()
        with pytest.raises(GraphError, match="sum to"):
            expand_loop(b, "L", {1: 0.5, 2: 0.4}, simple_body("L", 1, 1))

    def test_negative_probability(self):
        b = GraphBuilder()
        with pytest.raises(GraphError, match="> 0"):
            expand_loop(b, "L", {1: 1.2, 2: -0.2}, simple_body("L", 1, 1))

    def test_fractional_iteration_count(self):
        b = GraphBuilder()
        with pytest.raises(GraphError, match="natural"):
            expand_loop(b, "L", {1.5: 1.0}, simple_body("L", 1, 1))

    def test_chain_body_requires_specs(self):
        with pytest.raises(GraphError, match="at least one"):
            chain_body("L", [])
