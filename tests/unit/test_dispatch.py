"""Unit tests for the distributed dispatcher's edge cases.

The chaos tier (tests/chaos/test_dispatch.py) drives whole sweeps
through real executor fleets; these tests pin the small parts — wire
framing, endpoint parsing, the dedup ledger, executor-count clamping,
config validation — plus the degenerate fleet shapes (empty sweep, one
point on many executors, more executors than points).
"""

import pickle
import socket
import struct

import numpy as np
import pytest

from repro.errors import ConfigError, DispatchError
from repro.experiments import (
    EvaluationCache,
    RunConfig,
    evaluate_application,
    evaluation_key,
)
from repro.experiments.dispatch import (
    DispatchWorker,
    FrameBuffer,
    PointLedger,
    dispatch_points,
    parse_endpoint,
    recv_frame,
    send_frame,
)
from repro.experiments.engine import (
    BACKENDS,
    ExecutionContext,
    resolve_backend,
    resolve_jobs,
)
from repro.experiments.sweeps import sweep_load
from tests.conftest import build_chain_graph


class TestEndpoint:
    def test_parse_roundtrip(self):
        assert parse_endpoint("127.0.0.1:7070") == ("127.0.0.1", 7070)
        assert parse_endpoint("example.org:0") == ("example.org", 0)

    @pytest.mark.parametrize("bad", ["nonsense", ":7070", "host:",
                                     "host:notaport", "host:70707"])
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(ConfigError):
            parse_endpoint(bad)


class TestFraming:
    def test_frame_roundtrip_over_socketpair(self):
        a, b = socket.socketpair()
        try:
            payload = ("task", (1, 2), 2, {"arbitrary": [1, 2.5]}, None)
            send_frame(a, payload)
            assert recv_frame(b) == payload
        finally:
            a.close()
            b.close()

    def test_recv_frame_eof_is_none(self):
        a, b = socket.socketpair()
        a.close()
        try:
            assert recv_frame(b) is None
        finally:
            b.close()

    def test_framebuffer_reassembles_split_frames(self):
        blob = pickle.dumps(("heartbeat",))
        wire = struct.pack(">I", len(blob)) + blob
        wire = wire * 2  # two messages back to back
        buf = FrameBuffer()
        messages = []
        for i in range(0, len(wire), 3):  # drip-feed 3 bytes at a time
            messages.extend(buf.feed(wire[i:i + 3]))
        assert messages == [("heartbeat",), ("heartbeat",)]

    def test_framebuffer_rejects_oversized_announcement(self):
        buf = FrameBuffer()
        with pytest.raises(DispatchError, match="oversized"):
            buf.feed(struct.pack(">I", (1 << 30) + 1))


class TestPointLedger:
    def test_duplicate_delivery_after_steal_is_deduped_by_key(self):
        """The thief and the straggler deliver the same cache key; the
        second delivery is rejected and counted, never double-stored."""
        ledger = PointLedger(3, keys=["k0", "k1", "k2"])
        assert ledger.accept(1, "thief-result") is True
        assert ledger.accept(1, "straggler-result") is False
        assert ledger.duplicates == 1
        assert ledger.results[1] == "thief-result"
        assert not ledger.all_done()
        assert ledger.pending() == [0, 2]

    def test_default_keys_are_per_index(self):
        ledger = PointLedger(2)
        assert ledger.accept(0, "a") and ledger.accept(1, "b")
        assert ledger.all_done() and ledger.duplicates == 0

    def test_key_count_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            PointLedger(2, keys=["only-one"])


class TestBackendResolution:
    def test_registry_matches_runconfig_validation(self):
        # RunConfig hardcodes the pair to stay import-light; this test
        # pins the two registries together
        assert BACKENDS == ("local", "dispatch")

    def test_resolve_backend(self):
        assert resolve_backend("local") == "local"
        assert resolve_backend("dispatch") == "dispatch"
        with pytest.raises(ConfigError):
            resolve_backend("bogus")

    @pytest.mark.parametrize("bad", [
        {"backend": "bogus"},
        {"executors": -1},
        {"connect": "nonsense"},
    ])
    def test_runconfig_rejects_bad_knobs(self, bad):
        with pytest.raises(ConfigError):
            RunConfig(**bad)

    def test_executors_clamped_like_resolve_jobs(self):
        """``--executors`` follows resolve_jobs semantics: 0 = all
        cores, clamped to the number of sweep points, never below 1."""
        ctx = ExecutionContext(n_jobs=1, backend="dispatch", executors=64)
        assert ctx.dispatch_jobs(n_items=3) == 3
        assert ctx.dispatch_jobs(n_items=100) == 64
        ctx0 = ExecutionContext(n_jobs=1, backend="dispatch", executors=0)
        # 0 = all cores, exactly as resolve_jobs defines it
        assert ctx0.dispatch_jobs(n_items=2) == resolve_jobs(0, n_items=2)
        assert ctx0.dispatch_jobs() == resolve_jobs(0)
        # no explicit request: falls back to the context's n_jobs, so
        # an n_jobs=1 context never engages the dispatcher
        assert ExecutionContext(n_jobs=1,
                                backend="dispatch").dispatch_jobs() == 1
        with pytest.raises(ConfigError):
            ExecutionContext(backend="dispatch", executors=-2)


class TestExecutorCacheProbe:
    """A (re)joining executor must skip work the fleet already did."""

    @pytest.fixture
    def point(self):
        from repro.workloads import application_with_load
        app = application_with_load(build_chain_graph(), 0.5, 2)
        cfg = RunConfig(schemes=("GSS",), n_runs=10, seed=3)
        return app, cfg

    def test_cache_hit_returns_without_computing(self, tmp_path, point,
                                                 monkeypatch):
        app, cfg = point
        cache = EvaluationCache(tmp_path)
        expected = evaluate_application(app, cfg)
        cache.put(evaluation_key(app, cfg), expected)
        worker = DispatchWorker("localhost", 1, cache_dir=str(tmp_path))
        import repro.experiments.parallel as parallel_mod

        def _boom(*args, **kwargs):
            raise AssertionError("computed despite a cache hit")

        monkeypatch.setattr(parallel_mod, "_evaluate_app_point", _boom)
        result = worker._evaluate(0, app, cfg)
        assert np.array_equal(result.npm_energy, expected.npm_energy)
        assert np.array_equal(result.absolute["GSS"],
                              expected.absolute["GSS"])

    def test_cache_miss_computes_and_fills_the_store(self, tmp_path,
                                                     point):
        app, cfg = point
        worker = DispatchWorker("localhost", 1, cache_dir=str(tmp_path))
        result = worker._evaluate(0, app, cfg)
        # the fresh result landed in the shared store: a second worker
        # (or this one, re-joining) now hits
        hit = EvaluationCache(tmp_path).get(
            evaluation_key(app, cfg), app.name, cfg)
        assert hit is not None
        assert np.array_equal(hit.npm_energy, result.npm_energy)

    def test_shard_tasks_bypass_the_probe(self, tmp_path, point,
                                          monkeypatch):
        """A shard is an execution slice, not an addressable point: it
        must neither probe nor fill the evaluation cache."""
        from repro.experiments import evalcache as evalcache_mod
        from repro.experiments.fused import ShardTask
        app, cfg = point
        task = ShardTask(0, 2, 0, 5, (app,), (cfg,), False)
        worker = DispatchWorker("localhost", 1, cache_dir=str(tmp_path))

        def _no_key(*args, **kwargs):
            raise AssertionError("shard task was keyed for the cache")

        monkeypatch.setattr(evalcache_mod, "evaluation_key", _no_key)
        result = worker._evaluate(0, task, cfg)
        assert result.n_points == 1  # a ShardResult, computed directly

    def test_no_cache_dir_stays_cache_blind(self, tmp_path, point):
        app, cfg = point
        worker = DispatchWorker("localhost", 1)
        assert worker._open_cache() is None
        result = worker._evaluate(0, app, cfg)
        expected = evaluate_application(app, cfg)
        assert np.array_equal(result.npm_energy, expected.npm_energy)


class TestFleetShapes:
    def test_empty_sweep_is_empty_without_a_fleet(self):
        with ExecutionContext(backend="dispatch", executors=4) as ctx:
            assert dispatch_points(ctx, [], []) == []
            assert ctx.dispatch_stats()["dispatched"] == 0

    def test_one_point_many_executors(self):
        """A single point on a wide request: the fleet is clamped to
        one executor and the sweep still matches the serial result."""
        graph = build_chain_graph()
        cfg = RunConfig(schemes=("GSS",), n_runs=10, seed=3)
        ref = sweep_load(graph, cfg, [0.5])
        with ExecutionContext(backend="dispatch", executors=8) as ctx:
            got = sweep_load(graph, cfg, [0.5], context=ctx)
            stats = ctx.dispatch_stats()
        assert got.points == ref.points
        assert stats["completed"] == 1
        assert len(stats["per_executor"]) == 1  # clamped: one executor

    def test_more_executors_than_points(self):
        graph = build_chain_graph()
        cfg = RunConfig(schemes=("GSS",), n_runs=10, seed=3)
        loads = [0.4, 0.8]
        ref = sweep_load(graph, cfg, loads)
        with ExecutionContext(backend="dispatch", executors=16) as ctx:
            got = sweep_load(graph, cfg, loads, context=ctx)
            stats = ctx.dispatch_stats()
        assert got.points == ref.points
        assert stats["completed"] == len(loads)
        assert sum(stats["per_executor"].values()) == len(loads)
        assert len(stats["per_executor"]) <= len(loads)
