"""Unit tests for the Table 1/Table 2 voltage-frequency tables."""

import pytest

from repro.power import INTEL_XSCALE, TRANSMETA_TM5400, format_table, normalized_levels


class TestTransmetaTable:
    def test_sixteen_levels(self):
        assert len(TRANSMETA_TM5400) == 16

    def test_endpoints_match_paper(self):
        freqs = sorted(f for f, _ in TRANSMETA_TM5400)
        volts = dict(TRANSMETA_TM5400)
        assert freqs[0] == 200.0 and freqs[-1] == 700.0
        assert volts[200.0] == pytest.approx(1.10)
        assert volts[700.0] == pytest.approx(1.65)

    def test_monotone(self):
        pairs = sorted(TRANSMETA_TM5400)
        for (f1, v1), (f2, v2) in zip(pairs, pairs[1:]):
            assert f1 < f2 and v1 <= v2


class TestXScaleTable:
    def test_five_levels(self):
        assert len(INTEL_XSCALE) == 5

    def test_values(self):
        assert INTEL_XSCALE[0] == (150.0, 0.75)
        assert INTEL_XSCALE[-1] == (1000.0, 1.80)

    def test_nonlinear_voltage_frequency(self):
        # the paper stresses V(f) is NOT linear in either model's table:
        # compare slopes of successive segments
        pairs = sorted(INTEL_XSCALE)
        slopes = [(v2 - v1) / (f2 - f1)
                  for (f1, v1), (f2, v2) in zip(pairs, pairs[1:])]
        assert max(slopes) / min(slopes) > 1.5


class TestHelpers:
    def test_normalized_levels(self):
        norm = normalized_levels(INTEL_XSCALE)
        assert norm[-1] == (1.0, 1.0)
        assert norm[0][0] == pytest.approx(0.15)
        assert norm[0][1] == pytest.approx(0.75 / 1.8)

    def test_normalized_rejects_empty(self):
        with pytest.raises(ValueError, match="empty"):
            normalized_levels([])

    def test_format_table_layout(self):
        text = format_table(TRANSMETA_TM5400, columns=4)
        lines = text.splitlines()
        # header + 16 entries / 4 per row
        assert len(lines) == 1 + 4
        assert "f(MHz)" in lines[0]
        assert "700" in lines[1] and "200" in lines[-1]
