"""Edge cases of work partitioning: chunking, job resolution, fallbacks.

The contract under test: chunk boundaries and worker counts are pure
execution shape — every run lands in exactly one chunk, degenerate
sizes (one run, chunk bigger than the batch, more jobs than work) fall
back to the serial path without ever paying for a pool, and none of the
resilience knobs leak into the evaluation cache key.
"""

import numpy as np
import pytest

from repro.errors import ConfigError, SimulationError
from repro.experiments import (ExecutionContext, RunConfig,
                               evaluate_application, evaluation_key)
from repro.experiments.engine import resolve_jobs
from repro.sim.realization import batch_in_chunks
from repro.workloads import application_with_load, figure3_graph


class TestBatchInChunks:
    @pytest.mark.parametrize("n,size", [(10, 1), (10, 3), (10, 10),
                                        (10, 17), (1, 4), (7, 7)])
    def test_every_run_in_exactly_one_chunk(self, n, size):
        chunks = list(batch_in_chunks(list(range(n)), size))
        assert all(block for _, block in chunks)  # no empty chunks
        covered = [x for _, block in chunks for x in block]
        assert covered == list(range(n))
        for start, block in chunks:
            assert block[0] == start  # offsets merge back into position

    def test_zero_runs_yield_no_chunks(self):
        assert list(batch_in_chunks([], 5)) == []

    @pytest.mark.parametrize("size", [0, -1])
    def test_nonpositive_chunk_size_rejected(self, size):
        with pytest.raises(SimulationError, match=">= 1"):
            list(batch_in_chunks([1, 2, 3], size))


class TestResolveJobs:
    def test_none_and_zero_mean_all_cores(self):
        import os
        cores = os.cpu_count() or 1
        assert resolve_jobs(None) == cores
        assert resolve_jobs(0) == cores

    def test_negative_rejected(self):
        with pytest.raises(ConfigError, match="positive"):
            resolve_jobs(-2)

    def test_clamped_to_available_work(self):
        assert resolve_jobs(32, n_items=3) == 3
        assert resolve_jobs(2, n_items=10) == 2

    def test_never_below_one(self):
        assert resolve_jobs(4, n_items=0) == 1


@pytest.fixture(scope="module")
def app():
    return application_with_load(figure3_graph(), 0.6, 2)


@pytest.fixture(scope="module")
def serial_result(app):
    return evaluate_application(app, RunConfig(schemes=("GSS",), n_runs=20,
                                               seed=3))


class _NoPoolAllowed:
    def __init__(self, *a, **kw):  # pragma: no cover - failure path
        raise AssertionError("a worker pool was created for serial work")


class TestSerialFallbacks:
    """Degenerate shapes must take the serial path — proven by a pool spy."""

    @pytest.fixture(autouse=True)
    def _forbid_pools(self, monkeypatch):
        import repro.experiments.engine as engine
        monkeypatch.setattr(engine, "ProcessPoolExecutor", _NoPoolAllowed)

    def test_single_run_with_many_jobs_is_serial(self, app):
        cfg = RunConfig(schemes=("GSS",), n_runs=1, seed=3,
                        parallel_min_runs=0, run_level_pool=True)
        result = evaluate_application(app, cfg, n_jobs=8)
        assert result.npm_energy.shape == (1,)

    def test_below_parallel_min_runs_is_serial(self, app, serial_result):
        # 20 runs sit below the default threshold, so n_jobs=2 (and the
        # resilience knobs riding along) must not start a pool — and the
        # result must be bit-identical to the plain serial evaluation
        cfg = RunConfig(schemes=("GSS",), n_runs=20, seed=3, n_jobs=2,
                        max_retries=5, chunk_timeout=1.0,
                        run_level_pool=True)
        assert cfg.n_runs < cfg.parallel_min_runs
        result = evaluate_application(app, cfg)
        assert np.array_equal(result.npm_energy, serial_result.npm_energy)
        assert np.array_equal(result.normalized["GSS"],
                              serial_result.normalized["GSS"])

    def test_pool_request_without_opt_in_is_demoted(self, app,
                                                    serial_result):
        # the regression fix itself: n_jobs=2 with every threshold open
        # but no run_level_pool opt-in must stay serial (and identical)
        cfg = RunConfig(schemes=("GSS",), n_runs=20, seed=3, n_jobs=2,
                        parallel_min_runs=0)
        result = evaluate_application(app, cfg)
        assert np.array_equal(result.npm_energy, serial_result.npm_energy)


class TestParallelBoundary:
    def test_min_runs_zero_uses_the_pool_bit_identically(self, app,
                                                         serial_result):
        cfg = RunConfig(schemes=("GSS",), n_runs=20, seed=3, n_jobs=2,
                        runs_per_chunk=3, parallel_min_runs=0,
                        max_retries=5, run_level_pool=True)
        with ExecutionContext(n_jobs=2) as ctx:
            result = evaluate_application(app, cfg, context=ctx)
            assert ctx.pools_created == 1  # the threshold really crossed
        assert np.array_equal(result.npm_energy, serial_result.npm_energy)
        assert np.array_equal(result.normalized["GSS"],
                              serial_result.normalized["GSS"])
        assert result.path_keys == serial_result.path_keys

    def test_chunk_larger_than_batch_collapses_to_one_chunk(self, app,
                                                            serial_result):
        # the config itself refuses an oversized chunk outright...
        with pytest.raises(ConfigError, match="exceeds n_runs"):
            RunConfig(schemes=("GSS",), n_runs=20, runs_per_chunk=500)
        # ...while the call-site override clamps it to the batch size
        cfg = RunConfig(schemes=("GSS",), n_runs=20, seed=3, n_jobs=2,
                        parallel_min_runs=0, run_level_pool=True)
        with ExecutionContext(n_jobs=2) as ctx:
            result = evaluate_application(app, cfg, runs_per_chunk=500,
                                          context=ctx)
        assert np.array_equal(result.npm_energy, serial_result.npm_energy)

    def test_empty_map_returns_empty(self):
        with ExecutionContext(n_jobs=2) as ctx:
            assert ctx.map(sorted, []) == []
            assert ctx.pools_created == 0  # no work, no pool


class TestKeyInsulation:
    @pytest.mark.parametrize("change", [
        {"max_retries": 9},
        {"chunk_timeout": 2.5},
        {"degrade": False},
        {"run_level_pool": True},
    ])
    def test_resilience_knobs_do_not_change_evaluation_key(self, app,
                                                           change):
        cfg = RunConfig(schemes=("GSS",), n_runs=20, seed=3)
        assert evaluation_key(app, cfg) == \
            evaluation_key(app, cfg.with_(**change))

    @pytest.mark.parametrize("change", [
        {"backend": "dispatch"},
        {"executors": 4},
        {"connect": "127.0.0.1:9999"},
        {"backend": "dispatch", "executors": 0,
         "connect": "0.0.0.0:7070"},
    ])
    def test_dispatch_knobs_do_not_change_evaluation_key(self, app,
                                                         change):
        """Where a sweep executes must never decide whether it hits the
        cache — a dispatched sweep and a local one share entries."""
        cfg = RunConfig(schemes=("GSS",), n_runs=20, seed=3)
        assert evaluation_key(app, cfg) == \
            evaluation_key(app, cfg.with_(**change))
