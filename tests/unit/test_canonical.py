"""Unit tests for canonical LTF list scheduling."""

import pytest

from repro.errors import SimulationError
from repro.graph import GraphBuilder, validate_graph
from repro.offline import acet_duration, list_schedule, wcet_duration
from tests.conftest import build_chain_graph, build_fork_graph


def _section_subgraph(graph):
    st = validate_graph(graph)
    return st.subgraph(st.root_id)


class TestChainScheduling:
    def test_chain_is_sequential(self):
        sub = _section_subgraph(build_chain_graph(3, wcet=10, acet=5))
        sched = list_schedule(sub, 2, wcet_duration(sub))
        assert sched.length == 30
        assert sched.start("T0") == 0
        assert sched.start("T1") == 10
        assert sched.start("T2") == 20

    def test_orders_follow_dispatch(self):
        sub = _section_subgraph(build_chain_graph(3))
        sched = list_schedule(sub, 2, wcet_duration(sub))
        orders = [sched.tasks[f"T{i}"].order for i in range(3)]
        assert orders == sorted(orders)

    def test_acet_duration_shorter(self):
        sub = _section_subgraph(build_chain_graph(3, wcet=10, acet=4))
        sched = list_schedule(sub, 1, acet_duration(sub))
        assert sched.length == 12


class TestParallelScheduling:
    def test_fork_uses_both_processors(self):
        sub = _section_subgraph(build_fork_graph())
        sched = list_schedule(sub, 2, wcet_duration(sub))
        # A(8) then B(5) || C(4) then D(5): length 8 + 5 + 5 = 18
        assert sched.length == 18
        assert sched.tasks["B"].processor != sched.tasks["C"].processor
        assert sched.start("B") == 8 and sched.start("C") == 8

    def test_single_processor_serializes(self):
        sub = _section_subgraph(build_fork_graph())
        sched = list_schedule(sub, 1, wcet_duration(sub))
        assert sched.length == 8 + 5 + 4 + 5

    def test_ltf_priority(self):
        # three simultaneous tasks on two processors: the two longest
        # start first (longest task first heuristic)
        b = GraphBuilder("ltf")
        b.task("root", 1, 1)
        for name, w in (("short", 2), ("long", 9), ("mid", 5)):
            b.task(name, w, w / 2, after=["root"])
        sub = _section_subgraph(b.build_graph())
        sched = list_schedule(sub, 2, wcet_duration(sub))
        assert sched.start("long") == 1
        assert sched.start("mid") == 1
        # both processors busy until mid finishes at 6; short starts then
        assert sched.start("short") == 6

    def test_and_nodes_take_no_time(self):
        sub = _section_subgraph(build_fork_graph())
        sched = list_schedule(sub, 2, wcet_duration(sub))
        assert "A1" not in sched.tasks  # AND nodes are not placed
        assert "A1" in sched.dispatch_order

    def test_dispatch_order_contains_all_nodes(self):
        sub = _section_subgraph(build_fork_graph())
        sched = list_schedule(sub, 2, wcet_duration(sub))
        assert set(sched.dispatch_order) == set(sub.node_names)

    def test_dispatch_order_respects_dependencies(self):
        sub = _section_subgraph(build_fork_graph())
        sched = list_schedule(sub, 3, wcet_duration(sub))
        pos = {n: i for i, n in enumerate(sched.dispatch_order)}
        for u, v in sub.edges():
            assert pos[u] < pos[v]


class TestInflation:
    def test_reserve_inflates_each_computation_task(self):
        sub = _section_subgraph(build_chain_graph(3, wcet=10, acet=5))
        plain = list_schedule(sub, 1, wcet_duration(sub, 0.0))
        inflated = list_schedule(sub, 1, wcet_duration(sub, 0.5))
        assert inflated.length == pytest.approx(plain.length + 3 * 0.5)

    def test_reserve_does_not_inflate_and_nodes(self):
        sub = _section_subgraph(build_fork_graph())
        dur = wcet_duration(sub, 0.5)
        assert dur("A1") == 0.0
        assert dur("A") == 8.5


class TestErrors:
    def test_zero_processors_rejected(self):
        sub = _section_subgraph(build_chain_graph(2))
        with pytest.raises(SimulationError, match="at least one"):
            list_schedule(sub, 0, wcet_duration(sub))

    def test_determinism(self):
        sub = _section_subgraph(build_fork_graph())
        a = list_schedule(sub, 2, wcet_duration(sub))
        b = list_schedule(sub, 2, wcet_duration(sub))
        assert a.dispatch_order == b.dispatch_order
        assert {k: (v.start, v.processor) for k, v in a.tasks.items()} == \
               {k: (v.start, v.processor) for k, v in b.tasks.items()}
