"""Unit tests for distribution summaries and histograms."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.experiments import (
    RunConfig,
    evaluate_application,
    render_distributions,
    render_histogram,
    result_distributions,
    summarize_distribution,
)
from repro.workloads import application_with_load, figure3_graph


class TestSummarize:
    def test_percentiles_ordered(self, rng):
        s = summarize_distribution("x", rng.normal(0.5, 0.1, 500))
        values = [v for _q, v in s.percentiles]
        assert values == sorted(values)
        assert s.minimum <= values[0] and values[-1] <= s.maximum

    def test_iqr(self):
        s = summarize_distribution("x", np.linspace(0, 1, 101))
        assert s.iqr == pytest.approx(0.5)
        assert s.percentile(50) == pytest.approx(0.5)

    def test_unknown_percentile(self):
        s = summarize_distribution("x", np.ones(10))
        with pytest.raises(ConfigError, match="not computed"):
            s.percentile(42)

    def test_empty_rejected(self):
        with pytest.raises(ConfigError, match="empty"):
            summarize_distribution("x", np.array([]))

    def test_single_value(self):
        s = summarize_distribution("x", np.array([0.7]))
        assert s.std == 0.0 and s.mean == 0.7


class TestResultIntegration:
    @pytest.fixture(scope="class")
    def result(self):
        app = application_with_load(figure3_graph(), 0.6, 2)
        return evaluate_application(app, RunConfig(n_runs=200, seed=4))

    def test_all_schemes_summarized(self, result):
        dists = result_distributions(result)
        assert set(dists) == set(result.normalized)

    def test_unknown_scheme_rejected(self, result):
        with pytest.raises(ConfigError, match="not in result"):
            result_distributions(result, schemes=["NOPE"])

    def test_speculation_narrows_spread(self, result):
        """SS1's constant floor yields a tighter distribution than GSS."""
        dists = result_distributions(result, schemes=["GSS", "SS1"])
        assert dists["SS1"].std <= dists["GSS"].std * 1.2

    def test_render_table(self, result):
        text = render_distributions(result_distributions(result))
        assert "p50" in text and "GSS" in text

    def test_render_histogram(self, result):
        text = render_histogram("GSS", result.normalized["GSS"],
                                bins=8)
        assert text.count("[") == 8
        assert "n=200" in text

    def test_histogram_counts_sum(self, result):
        text = render_histogram("GSS", result.normalized["GSS"],
                                bins=6)
        counts = [int(line.rsplit(" ", 1)[1])
                  for line in text.splitlines()[1:]]
        assert sum(counts) == 200

    def test_histogram_invalid_args(self, result):
        with pytest.raises(ConfigError):
            render_histogram("x", result.normalized["GSS"], bins=1)
        with pytest.raises(ConfigError):
            render_histogram("x", np.array([]))
