"""Kernel-tier registry: resolution rules, cache-key exclusion, tape
lowering, and the JIT drivers' python cores (exercised without numba).

The golden suites pin the tiers bit-identical through the public
evaluation APIs; these tests pin the registry mechanics — what a tier
name resolves to, that the tier can never split the evaluation cache,
and that the tape lowered onto a program is cached and structurally
sound.
"""

import warnings

import numpy as np
import pytest

from repro.errors import ConfigError, SimulationError
from repro.experiments import RunConfig, evaluate_application
from repro.experiments.evalcache import evaluation_key
from repro.offline import build_plan
from repro.sim import kernels
from repro.sim.compiled import compile_plan
from repro.workloads import application_with_load, atr_graph
from tests.conftest import build_nested_or_graph


class TestTierResolution:
    def test_default_is_the_numpy_tape_interpreter(self):
        # RunConfig.kernel_tier=None must resolve to the session
        # default, which (absent REPRO_KERNEL_TIER) is the tape tier
        assert kernels.resolve_kernel_tier(None) == \
            kernels.DEFAULT_KERNEL_TIER

    def test_session_default_is_monkeypatchable(self, monkeypatch):
        monkeypatch.setattr(kernels, "DEFAULT_KERNEL_TIER", "legacy")
        assert kernels.resolve_kernel_tier(None) == "legacy"

    def test_concrete_tiers_pass_through_idempotently(self):
        for tier in ("legacy", "numpy"):
            assert kernels.resolve_kernel_tier(tier) == tier
            assert kernels.resolve_kernel_tier(
                kernels.resolve_kernel_tier(tier)) == tier

    def test_auto_without_numba_warns_once_and_falls_back(self,
                                                          monkeypatch):
        monkeypatch.setattr(kernels, "_jit_probe", False)
        monkeypatch.setattr(kernels, "_warned_no_jit", False)
        with pytest.warns(RuntimeWarning, match="numba is not installed"):
            assert kernels.resolve_kernel_tier("auto") == "numpy"
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # a second warning would raise
            assert kernels.resolve_kernel_tier("jit") == "numpy"

    def test_auto_with_numba_selects_jit(self, monkeypatch):
        monkeypatch.setattr(kernels, "_jit_probe", True)
        assert kernels.resolve_kernel_tier("auto") == "jit"
        assert kernels.resolve_kernel_tier("jit") == "jit"

    def test_unknown_tier_raises(self):
        with pytest.raises(ConfigError):
            kernels.resolve_kernel_tier("vectorized")
        with pytest.raises(ConfigError):
            kernels.get_kernels("vectorized")

    def test_runconfig_validation_in_sync_with_registry(self):
        # RunConfig hardcodes the accepted names to stay import-light;
        # this pins them to the registry so they cannot drift apart
        for tier in ("auto",) + kernels.TIERS:
            assert RunConfig(kernel_tier=tier).kernel_tier == tier
        with pytest.raises(ConfigError):
            RunConfig(kernel_tier="vectorized")

    def test_get_kernels_returns_distinct_callables_per_tier(self):
        fixed_l, dyn_l = kernels.get_kernels("legacy")
        fixed_n, dyn_n = kernels.get_kernels("numpy")
        fixed_j, dyn_j = kernels.get_kernels("jit")
        assert len({fixed_l, fixed_n, fixed_j}) == 3
        assert len({dyn_l, dyn_n, dyn_j}) == 3


class TestCacheKeyExclusion:
    def test_tier_never_splits_the_evaluation_cache(self):
        # the tier is an execution knob: every tier is bit-identical,
        # so cached results must be shared across them
        app = application_with_load(atr_graph(), 0.5, 2)
        base = RunConfig(schemes=("GSS",), n_runs=10, seed=1)
        keys = {evaluation_key(app, base.with_(kernel_tier=t))
                for t in (None, "auto", "legacy", "numpy", "jit")}
        assert len(keys) == 1
        # sanity: result-relevant fields do split the key
        assert evaluation_key(app, base.with_(seed=2)) not in keys


class TestTapeLowering:
    def test_tape_is_cached_on_the_program(self):
        app = application_with_load(build_nested_or_graph(), 0.6, 2)
        prog = compile_plan(build_plan(app, 2))
        prog._tape = None  # force a fresh lowering
        before = kernels.tape_cache_stats()
        tape = kernels.build_tape(prog)
        again = kernels.build_tape(prog)
        assert again is tape
        after = kernels.tape_cache_stats()
        assert after["misses"] == before["misses"] + 1
        assert after["hits"] == before["hits"] + 1

    def test_section_tapes_are_structurally_sound(self):
        app = application_with_load(build_nested_or_graph(), 0.6, 2)
        prog = compile_plan(build_plan(app, 2))
        tape = kernels.build_tape(prog)
        for sid, sec in prog.sections.items():
            st = tape.sections[sid]
            n = len(sec.entries)
            assert st.kind.shape == (n,)
            assert st.pred_off.shape == (n + 1,)
            assert st.pred_off[0] == 0
            assert st.pred_off[-1] == len(st.pred_idx)
            # CSR rows reproduce each entry's predecessor list exactly
            for k, entry in enumerate(sec.entries):
                row = st.pred_idx[st.pred_off[k]:st.pred_off[k + 1]]
                assert list(row) == list(entry[6])


class TestWcetPrecheck:
    """The tape interpreter hoists the per-entry WCET check into one
    per-section precheck; pin its error selection (first entry in entry
    order with any violating run, first violating run in the group) and
    its message to the legacy kernel, which checks entry by entry."""

    def _doctored_batch(self):
        from repro.sim import sample_realization_batch
        app = application_with_load(atr_graph(), 0.6, 2)
        plan = build_plan(app, 2)
        prog = compile_plan(plan)
        rng = np.random.default_rng(3)
        batch = sample_realization_batch(plan.structure, rng, 64)
        matrix = prog.realization_matrix(batch)
        groups, path_keys = prog.executed_paths(batch.choices, len(batch))
        tape = kernels.build_tape(prog)
        # doctor two computation entries of one executed section past
        # their WCET — later entry on every run, earlier entry on every
        # run but the group's first — so the raised error must name the
        # earlier entry and the group's *second* run
        path, idx, st = next(
            (path, idx, tape.sections[sid])
            for path, idx in groups if idx.size >= 2
            for sid in path if tape.sections[sid].comp_cols.size >= 2)
        matrix[idx[1:], st.comp_cols[0]] = 1e9
        matrix[idx, st.comp_cols[1]] = 1e9
        return plan, prog, matrix, groups, path_keys

    def test_fixed_kernel_error_matches_legacy(self):
        from repro.power import PAPER_OVERHEAD, transmeta_model
        from repro.sim.compiled import run_fixed_batch
        _plan, prog, matrix, groups, path_keys = self._doctored_batch()
        power = transmeta_model()
        msgs = {}
        for tier in ("legacy", "numpy"):
            with pytest.raises(SimulationError) as ei:
                run_fixed_batch(prog, power, PAPER_OVERHEAD, matrix,
                                groups, path_keys, power.s_max, "NPM",
                                kernel_tier=tier)
            msgs[tier] = str(ei.value)
        assert "exceeds WCET" in msgs["legacy"]
        assert msgs["numpy"] == msgs["legacy"]

    def test_dynamic_kernel_error_matches_legacy(self):
        from repro.core import get_policy
        from repro.power import PAPER_OVERHEAD, transmeta_model
        from repro.sim import supports_dynamic_batch
        from repro.sim.compiled import run_dynamic_batch
        plan, prog, matrix, groups, path_keys = self._doctored_batch()
        power = transmeta_model()
        run = get_policy("GSS").start_run(plan, power, PAPER_OVERHEAD)
        assert supports_dynamic_batch(run, power)
        msgs = {}
        for tier in ("legacy", "numpy"):
            with pytest.raises(SimulationError) as ei:
                run_dynamic_batch(prog, power, PAPER_OVERHEAD, matrix,
                                  groups, path_keys, run, "GSS",
                                  kernel_tier=tier)
            msgs[tier] = str(ei.value)
        assert "exceeds WCET" in msgs["legacy"]
        assert msgs["numpy"] == msgs["legacy"]


class TestJitPythonCores:
    """The jit drivers run their (numba-targeted) cores as plain
    python when numba is absent — pin them bit-identical to the
    legacy kernels through the full evaluation API."""

    @pytest.fixture(autouse=True)
    def force_jit_driver(self, monkeypatch):
        # bypass the numba probe: resolve every request to the jit
        # driver, whose cores run uncompiled without numba
        monkeypatch.setattr(kernels, "resolve_kernel_tier",
                            lambda tier=None: "jit")

    @pytest.mark.parametrize("model", ["transmeta", "xscale"])
    def test_jit_driver_equals_dict_engine(self, model):
        from repro.core import ALL_SCHEMES
        app = application_with_load(build_nested_or_graph(), 0.8, 2)
        cfg = RunConfig(schemes=ALL_SCHEMES, n_runs=25, seed=13,
                        power_model=model)
        r_jit = evaluate_application(app, cfg)
        r_dict = evaluate_application(app, cfg.with_(engine="dict"))
        assert r_jit.path_keys == r_dict.path_keys
        for scheme in ALL_SCHEMES:
            assert np.array_equal(r_jit.absolute[scheme],
                                  r_dict.absolute[scheme]), scheme
            assert np.array_equal(r_jit.speed_changes[scheme],
                                  r_dict.speed_changes[scheme]), scheme

    def test_jit_driver_handles_infeasible_dynamic_plans(self):
        app = application_with_load(atr_graph(), 1.0, 2)
        cfg = RunConfig(schemes=("GSS", "AS"), n_runs=10, seed=11)
        r_jit = evaluate_application(app, cfg)
        r_dict = evaluate_application(app, cfg.with_(engine="dict"))
        for scheme in cfg.schemes:
            assert np.array_equal(r_jit.normalized[scheme],
                                  r_dict.normalized[scheme]), scheme


class TestKernelMeta:
    def test_meta_snapshot_shape(self):
        meta = kernels.kernel_meta("legacy")
        assert meta["tier"] == "legacy"
        assert set(meta["program_cache"]) == {"hits", "misses", "size"}
        assert set(meta["stacked_cache"]) == {"hits", "misses", "size"}
        # tapes live on their program instances — no store, no size
        assert set(meta["tape_cache"]) == {"hits", "misses"}

    def test_sweep_meta_records_the_kernel(self):
        from repro.experiments.sweeps import sweep_load
        cfg = RunConfig(schemes=("SPM",), n_runs=5, seed=2)
        series = sweep_load(atr_graph(), cfg, loads=(0.4, 0.6))
        kernel = series.meta["kernel"]
        assert kernel["tier"] == kernels.resolve_kernel_tier(None)
        assert "tape_cache" in kernel and "stacked_cache" in kernel
