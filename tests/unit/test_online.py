"""Online scenario-mode unit tests: config, ledger, sweep and reports.

The streaming invariants (admission soundness, bit-identical replay,
the degenerate-stream equality with the offline evaluator) live in
``tests/property/test_online_invariants.py``; this module pins the
mechanics — :class:`OnlineConfig` validation, the admission ledger's
arithmetic, the rate sweep's series/meta shape and the text reports.
"""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.experiments import (
    DEFAULT_RATES,
    OnlineConfig,
    RunConfig,
    render_online_meta,
    render_online_report,
    simulate_online,
    sweep_arrival_rate,
)
from repro.experiments.online import _admit_stream, _replay_fifo
from repro.experiments.persist import load_series, save_series
from repro.experiments.report import render_series
from repro.types import SeriesResult
from repro.workloads import figure3_graph

SCHEMES = ("NPM", "SPM", "GSS")  # a fast cross-section of the registry


def _policy(**kwargs):
    return RunConfig(**kwargs).retry_policy()


class TestOnlineConfig:
    def test_defaults_validate(self):
        oc = OnlineConfig()
        assert oc.arrival == "poisson"
        assert oc.resolved_horizon() == oc.horizon

    @pytest.mark.parametrize("kwargs,match", [
        (dict(arrival="uniform"), "arrival"),
        (dict(rate=-0.5), "rate"),
        (dict(horizon=0.0), "horizon"),
        (dict(load=0.0), "load"),
        (dict(load=1.5), "load"),
        (dict(target_arrivals=0), "target_arrivals"),
        (dict(arrival="trace"), "trace"),
    ])
    def test_invalid_fields_rejected(self, kwargs, match):
        with pytest.raises(ConfigError, match=match):
            OnlineConfig(**kwargs)

    def test_with_returns_updated_copy(self):
        oc = OnlineConfig(rate=0.5)
        assert oc.with_(rate=2.0).rate == 2.0
        assert oc.rate == 0.5

    def test_target_arrivals_derives_horizon(self):
        oc = OnlineConfig(rate=2.0, horizon=7.0, target_arrivals=100)
        assert oc.resolved_horizon() == pytest.approx(50.0)

    def test_trace_times_coerced_to_floats(self):
        oc = OnlineConfig(arrival="trace", trace=(0, 1, 2))
        assert oc.trace == (0.0, 1.0, 2.0)
        assert all(isinstance(t, float) for t in oc.trace)

    def test_trace_arrival_times_scale_with_t_worst(self):
        oc = OnlineConfig(arrival="trace", trace=(0.0, 1.0, 2.5),
                          horizon=10.0)
        times = oc.arrival_times(t_worst=4.0, seed=0)
        assert np.array_equal(times, [0.0, 4.0, 10.0])


class TestAdmissionLedger:
    def test_spaced_arrivals_all_admitted(self):
        times = np.array([0.0, 20.0, 40.0])
        admitted, windows, retries = _admit_stream(
            times, t_worst=10.0, t_avg=6.0, deadline=15.0,
            policy=_policy())
        assert admitted.all()
        assert np.array_equal(windows, [15.0, 15.0, 15.0])
        assert retries == 0

    def test_window_shrinks_under_commitment(self):
        # job 0 books [0, 10); job 1 arriving at 1 with D=10 has only
        # (1 + 10) - 10 = 1 unit left: the worst case no longer fits
        times = np.array([0.0, 1.0])
        admitted, windows, _ = _admit_stream(
            times, t_worst=10.0, t_avg=10.0, deadline=10.0,
            policy=_policy())
        assert admitted.tolist() == [True, False]
        assert windows.tolist() == [10.0, 1.0]

    def test_rejected_jobs_consume_nothing(self):
        # the rejected middle arrival must not advance the ledger: the
        # third job sees the same booking as if the second never came
        times = np.array([0.0, 1.0, 10.0])
        admitted, windows, _ = _admit_stream(
            times, t_worst=10.0, t_avg=10.0, deadline=10.0,
            policy=_policy())
        assert admitted.tolist() == [True, False, True]
        assert windows.tolist() == [10.0, 1.0, 10.0]

    def test_average_case_reservation_admits_more(self):
        # identical stream, smaller T_avg: the optimistic reservation
        # frees the platform earlier and the clumped arrival fits
        times = np.array([0.0, 3.0])
        tight, _, _ = _admit_stream(times, t_worst=10.0, t_avg=10.0,
                                    deadline=10.0, policy=_policy())
        loose, _, _ = _admit_stream(times, t_worst=10.0, t_avg=2.0,
                                    deadline=10.0, policy=_policy())
        assert tight.tolist() == [True, False]
        assert loose.tolist() == [True, True]

    def test_exact_fit_is_admitted(self):
        # window == T_worst sits on the feasibility boundary; the
        # ledger grants the same tolerance build_plan does
        times = np.array([0.0, 6.0])
        admitted, windows, _ = _admit_stream(
            times, t_worst=10.0, t_avg=6.0, deadline=10.0,
            policy=_policy())
        assert admitted.all()
        assert windows[1] == pytest.approx(10.0)

    def test_empty_stream(self):
        admitted, windows, retries = _admit_stream(
            np.empty(0), t_worst=10.0, t_avg=5.0, deadline=20.0,
            policy=_policy())
        assert admitted.size == 0 and windows.size == 0 and retries == 0


class TestReplayFifo:
    def test_idle_gaps_and_queueing(self):
        arrivals = np.array([0.0, 1.0, 20.0])
        durations = np.array([5.0, 5.0, 5.0])
        fin, miss = _replay_fifo(arrivals, durations, deadline=8.0)
        # job 1 queues behind job 0 (starts at 5); job 2 finds the
        # platform idle again
        assert fin.tolist() == [5.0, 10.0, 25.0]
        assert miss.tolist() == [False, True, False]

    def test_exact_deadline_is_met(self):
        fin, miss = _replay_fifo(np.array([0.0]), np.array([8.0]),
                                 deadline=8.0)
        assert fin.tolist() == [8.0]
        assert not miss.any()


class TestSimulateOnline:
    def test_zero_rate_stream_is_empty(self):
        cfg = RunConfig(schemes=SCHEMES, n_processors=2, seed=1)
        res = simulate_online(figure3_graph(), cfg,
                              OnlineConfig(rate=0.0, horizon=30.0))
        assert res.n_arrivals == 0
        assert res.n_admitted == 0 and res.n_rejected == 0
        assert set(res.per_scheme) == set(SCHEMES)
        for st in res.per_scheme.values():
            assert st.job_energy.size == 0
            assert st.energy == 0.0
            assert st.n_missed == 0
            assert st.miss_ratio() == 0.0
            assert st.mean_normalized() == 0.0

    def test_ledger_accounting_is_consistent(self):
        cfg = RunConfig(schemes=SCHEMES, n_processors=2, seed=3)
        oc = OnlineConfig(rate=1.0, load=0.7, target_arrivals=30)
        res = simulate_online(figure3_graph(), cfg, oc)
        assert res.n_arrivals == res.n_admitted + res.n_rejected
        assert res.arrivals.size == res.admitted.size == res.windows.size
        assert res.n_admitted > 0
        assert res.npm_energy.size == res.n_admitted
        assert len(res.path_keys) == res.n_admitted
        for st in res.per_scheme.values():
            assert st.job_energy.size == res.n_admitted
            assert st.job_finish.size == res.n_admitted
            # normalization denominator is the per-job NPM energy
            assert np.array_equal(st.job_normalized,
                                  st.job_energy / res.npm_energy)

    def test_trace_path_round_trip(self, tmp_path):
        path = tmp_path / "trace.json"
        path.write_text('{"arrivals": [0.0, 2.0, 4.0]}')
        cfg = RunConfig(schemes=("NPM",), n_processors=2, seed=5)
        oc = OnlineConfig(arrival="trace", trace_path=str(path),
                          horizon=10.0, load=0.7)
        res = simulate_online(figure3_graph(), cfg, oc)
        assert res.n_arrivals == 3
        assert np.array_equal(res.arrivals,
                              np.array([0.0, 2.0, 4.0]) * res.t_worst)


class TestSweepArrivalRate:
    @pytest.fixture(scope="class")
    def series(self):
        cfg = RunConfig(schemes=SCHEMES, n_processors=2, seed=2002)
        oc = OnlineConfig(load=0.7, target_arrivals=20)
        return sweep_arrival_rate(figure3_graph(), cfg, oc,
                                  rates=(0.5, 1.0), name="online-test")

    def test_series_shape(self, series):
        assert series.name == "online-test"
        assert series.x_label == "rate"
        xs = sorted({p.x for p in series.points})
        assert xs == [0.5, 1.0]
        for x in xs:
            schemes = {p.scheme for p in series.points if p.x == x}
            assert schemes == set(SCHEMES)

    def test_online_meta_is_aligned(self, series):
        meta = series.meta["online"]
        assert meta["load"] == 0.7
        assert meta["target_arrivals"] == 20
        for key in ("arrivals", "admitted", "rejected", "missed",
                    "miss_ratio"):
            assert [row[0] for row in meta[key]] == [0.5, 1.0]
        for (x, arriv), (_, adm), (_, rej) in zip(
                meta["arrivals"], meta["admitted"], meta["rejected"]):
            assert arriv == adm + rej
        for _, by_scheme in meta["miss_ratio"]:
            assert set(by_scheme) == set(SCHEMES)
        assert [row[0] for row in series.meta["speed_changes"]] == [0.5, 1.0]

    def test_header_meta_excludes_ledgers(self, series):
        # the online ledger and the speed-change pairs are structured
        # meta: they get their own renderers, not the header line
        header = render_series(series).splitlines()[0]
        assert "online=" not in header
        assert "speed_changes=" not in header

    def test_persistence_round_trip(self, series, tmp_path):
        path = tmp_path / "online.json"
        save_series({"transmeta": series}, str(path))
        loaded = load_series(str(path))["transmeta"]
        assert loaded.points == series.points
        assert loaded.meta["online"] == series.meta["online"]

    def test_default_rate_grid_is_increasing(self):
        assert list(DEFAULT_RATES) == sorted(DEFAULT_RATES)
        assert all(r > 0 for r in DEFAULT_RATES)


class TestReports:
    def test_stream_report_lists_every_scheme(self):
        cfg = RunConfig(schemes=SCHEMES, n_processors=2, seed=7)
        oc = OnlineConfig(rate=1.0, load=0.7, target_arrivals=15)
        res = simulate_online(figure3_graph(), cfg, oc)
        text = render_online_report(res)
        assert f"arrivals={res.n_arrivals}" in text
        assert f"admitted={res.n_admitted}" in text
        for name in SCHEMES:
            assert name in text

    def test_online_meta_report(self):
        cfg = RunConfig(schemes=("NPM", "GSS"), n_processors=2, seed=7)
        oc = OnlineConfig(load=0.7, target_arrivals=15)
        series = sweep_arrival_rate(figure3_graph(), cfg, oc,
                                    rates=(1.0,))
        text = render_online_meta(series)
        assert "GSS" in text
        assert "1" in text  # the rate column

    def test_online_meta_report_without_stream_data(self):
        empty = SeriesResult(name="plain", x_label="load")
        assert "no online stream data" in render_online_meta(empty)
