"""Unit tests for the workload library."""

import pytest

from repro.errors import ConfigError
from repro.graph import enumerate_paths, total_probability, validate_graph
from repro.workloads import (
    LIBRARY,
    mpeg_decoder,
    packet_pipeline,
    radar_tracker,
    sensor_fusion,
)


class TestLibraryCommon:
    @pytest.mark.parametrize("name", sorted(LIBRARY))
    def test_defaults_are_valid(self, name):
        g = LIBRARY[name]()
        st = validate_graph(g)
        assert total_probability(st) == pytest.approx(1.0)

    @pytest.mark.parametrize("name", sorted(LIBRARY))
    def test_schedulable_end_to_end(self, name):
        """Each library app runs under GSS and meets its deadline."""
        import numpy as np
        from repro.core import get_policy
        from repro.offline import build_plan
        from repro.power import PAPER_OVERHEAD, transmeta_model
        from repro.sim import sample_realization, simulate
        from repro.workloads import application_with_load
        power = transmeta_model()
        app = application_with_load(LIBRARY[name](), 0.6, 2)
        reserve = PAPER_OVERHEAD.per_task_reserve(power)
        plan = build_plan(app, 2, reserve=reserve)
        rng = np.random.default_rng(0)
        for _ in range(10):
            rl = sample_realization(plan.structure, rng)
            run = get_policy("GSS").start_run(plan, power,
                                              PAPER_OVERHEAD,
                                              realization=rl)
            res = simulate(plan, run, power, PAPER_OVERHEAD, rl)
            assert res.met_deadline


class TestMpegDecoder:
    def test_three_frame_paths(self):
        st = validate_graph(mpeg_decoder())
        paths = enumerate_paths(st)
        assert len(paths) == 3
        assert sorted(round(p.probability, 2) for p in paths) == \
            [0.1, 0.4, 0.5]

    def test_slices_parallel(self):
        g = mpeg_decoder(n_slices=3)
        assert set(g.successors("I_fork")) == {
            "I_slice0", "I_slice1", "I_slice2"}

    def test_i_frames_heaviest(self):
        g = mpeg_decoder()
        assert g.node("I_slice0").wcet > g.node("P_slice0").wcet \
            > g.node("B_slice0").wcet

    @pytest.mark.parametrize("kwargs", [
        {"n_slices": 0},
        {"frame_probs": (0.5, 0.5)},
        {"frame_probs": (0.5, 0.3, 0.3)},
        {"alpha": 0.0},
    ])
    def test_invalid_config(self, kwargs):
        with pytest.raises(ConfigError):
            mpeg_decoder(**kwargs)


class TestRadarTracker:
    def test_track_branches_and_loop(self):
        st = validate_graph(radar_tracker())
        # 4 track-count branches x 3 re-acquisition exits
        assert len(enumerate_paths(st)) == 12

    def test_track_updates_parallel(self):
        g = radar_tracker(max_tracks=2, track_probs=(0.3, 0.4, 0.3))
        assert set(g.successors("t2_fork")) == {"t2_gate0", "t2_gate1"}
        assert g.successors("t2_gate0") == ["t2_filter0"]

    def test_invalid_probs(self):
        with pytest.raises(ConfigError):
            radar_tracker(max_tracks=2, track_probs=(0.5, 0.5))


class TestSensorFusion:
    def test_mode_probabilities(self):
        g = sensor_fusion(degraded_prob=0.2)
        probs = g.branch_probabilities("O_mode")
        assert probs["fuse_degraded"] == pytest.approx(0.2)
        assert probs["fuse_full"] == pytest.approx(0.8)

    def test_sensor_count(self):
        g = sensor_fusion(n_sensors=6)
        assert len(g.successors("S_fork")) == 6

    def test_invalid_config(self):
        with pytest.raises(ConfigError):
            sensor_fusion(n_sensors=1)
        with pytest.raises(ConfigError):
            sensor_fusion(degraded_prob=1.0)


class TestPacketPipeline:
    def test_fast_and_slow_paths(self):
        st = validate_graph(packet_pipeline())
        paths = enumerate_paths(st)
        # fast path + one per crypto-round count
        assert len(paths) == 1 + 3
        fast = max(paths, key=lambda p: p.probability)
        assert fast.probability == pytest.approx(0.7)

    def test_crypto_rounds_expanded(self):
        g = packet_pipeline(crypto_rounds={1: 0.5, 3: 0.5})
        assert "crypt#i1" in g and "crypt#i3" in g

    def test_invalid_config(self):
        with pytest.raises(ConfigError):
            packet_pipeline(crypto_prob=0.0)
